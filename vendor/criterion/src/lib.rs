//! Offline shim of the `criterion` API subset used by this workspace.
//!
//! Behaves like a lightweight wall-clock microbenchmark harness: each
//! `bench_function` warms up, auto-scales the iteration count to a
//! minimum measurement window, and prints mean time per iteration
//! (plus throughput when configured). No statistics, plots, or
//! baseline storage.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites work.
pub use std::hint::black_box;

/// Minimum measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched inputs are sized (accepted, ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The per-benchmark timing driver.
pub struct Bencher {
    /// (total duration, iterations) of the final measurement pass.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { measured: None }
    }

    /// Times `routine` over an auto-scaled iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: grow n until the window is met.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_WINDOW || n >= 1 << 30 {
                self.measured = Some((elapsed, n));
                return;
            }
            // Aim past the window with headroom.
            let factor = (MEASURE_WINDOW.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)) * 1.5;
            n = (n as f64 * factor.clamp(2.0, 100.0)) as u64;
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_WINDOW || n >= 1 << 24 {
                self.measured = Some((elapsed, n));
                return;
            }
            let factor = (MEASURE_WINDOW.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)) * 1.5;
            n = (n as f64 * factor.clamp(2.0, 100.0)) as u64;
        }
    }
}

fn report(name: &str, measured: Option<(Duration, u64)>, throughput: Option<Throughput>) {
    let Some((elapsed, iters)) = measured else {
        println!("{name:<48} (no measurement)");
        return;
    };
    let per_iter_ns = elapsed.as_secs_f64() * 1e9 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.1} Melem/s", n as f64 / per_iter_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.1} MiB/s", n as f64 / per_iter_ns * 1e3 / 1.048_576)
        }
        None => String::new(),
    };
    println!("{name:<48} {per_iter_ns:>14.1} ns/iter  ({iters} iters){rate}");
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&id, b.measured, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim's fixed measurement
    /// loop ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new();
        f(&mut b);
        report(&id, b.measured, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
