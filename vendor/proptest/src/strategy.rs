//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates values of `Value` from the case RNG. No shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds it.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;
    fn arbitrary() -> crate::bool::Any {
        crate::bool::ANY
    }
}
