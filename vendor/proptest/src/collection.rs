//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `proptest::collection::vec`: a vector of `element` values with a
/// length in `size` (a `usize` for an exact length, or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
