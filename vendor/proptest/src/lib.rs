//! Offline shim of the `proptest` API subset used by this workspace.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with its case number and message), and generation is deterministic —
//! the case RNG is seeded from the test's module path, so failures
//! reproduce exactly across runs.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// `any::<T>()` for the handful of primitive types the shim knows.
    pub fn any<T: crate::strategy::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// The `proptest!` macro: runs each embedded `#[test]` function over
/// `Config::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest: case {}/{} of {} failed: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __e
                    );
                }
            }
        }
    )*};
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
