//! Test configuration, the case RNG, and the failure type.

use std::fmt;

/// Runner configuration. Only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        // Real proptest defaults to 256; keep that so coverage matches
        // what the call sites were written against.
        Config { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }

    /// Alias matching real proptest's `TestCaseError::Reject`.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every property has its own stream and
    /// failures reproduce run over run.
    pub fn from_name(name: &str) -> TestRng {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.as_bytes() {
            state = Self::mix(state ^ u64::from(*b));
        }
        TestRng { state }
    }

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}
