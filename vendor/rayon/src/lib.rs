//! Offline shim of the `rayon` API subset used by this workspace:
//! [`join`] only, implemented with scoped OS threads. Real parallelism
//! (one thread per branch), none of rayon's work-stealing pool.

/// Runs two closures, potentially in parallel, returning both results.
///
/// The second closure runs on a freshly spawned scoped thread while the
/// first runs on the caller's thread. Panics from either branch
/// propagate to the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_branches_run() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn nested_joins() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }
}
