//! Slice sampling helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Random sampling from slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly chosen element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (all of them when
    /// `amount >= len`), as an iterator of references.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx.truncate(amount);
        idx.into_iter().map(|i| &self[i]).collect::<Vec<&T>>().into_iter()
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn choose_multiple_distinct() {
        let xs: Vec<u32> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicates in {picked:?}");
    }

    #[test]
    fn choose_multiple_clamps_to_len() {
        let xs = [1, 2, 3];
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(xs.choose_multiple(&mut rng, 10).count(), 3);
    }

    #[test]
    fn choose_empty_is_none() {
        let xs: [u8; 0] = [];
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(xs.choose(&mut rng).is_none());
    }
}
