//! Offline shim of the `rand` 0.8 API subset used by this workspace.
//!
//! See `vendor/README.md` for why this exists. The generator behind
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64 — the
//! same construction the real 64-bit `SmallRng` uses — so streams are
//! high quality and fully deterministic in the seed.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core RNG interface: a source of uniform random bits.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (via [`Standard`]).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// A sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — negligible for
                // simulation workloads (span ≪ 2^64 here).
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (matching the
    /// construction used by `rand` 0.8).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn bool_balance() {
        let mut r = SmallRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }
}
