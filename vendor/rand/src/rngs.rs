//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the algorithm behind `rand` 0.8's 64-bit `SmallRng`.
/// Fast, small state, excellent statistical quality; not
/// cryptographic.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> SmallRng {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; nudge.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        SmallRng { s }
    }
}

/// Alias kept for API compatibility with `rand::rngs::StdRng` users.
pub type StdRng = SmallRng;
