//! Watch max-min fair sharing happen: trace one transfer's rate while
//! competitors come and go, and render the timeline as an ASCII chart.
//!
//! ```text
//! cargo run --release --example rate_timeline
//! ```

use gridftp_vc::net::{FlowSpec, NetworkSim};
use gridftp_vc::prelude::SimTime;
use gridftp_vc::topology::{study_topology, Site};

fn main() {
    let topo = study_topology();
    let path = topo.path(Site::Slac, Site::Bnl);
    let mut sim = NetworkSim::new(topo.graph.clone(), 0);

    // The watched transfer: 60 GB, tagged 1, traced.
    sim.trace_tag(1);
    sim.add_flow(FlowSpec::best_effort(path.links.clone(), 60e9).with_tag(1));

    // Competitors arriving at 10 s intervals, departing as they finish.
    let mut arrivals: Vec<(u64, f64)> = vec![(10, 20e9), (20, 10e9), (30, 30e9)];
    arrivals.sort_by_key(|&(t, _)| t);
    let mut done = Vec::new();
    for (at, bytes) in arrivals {
        done.extend(sim.run_until(SimTime::from_secs(at)));
        sim.add_flow(FlowSpec::best_effort(path.links.clone(), bytes));
    }
    done.extend(sim.drain(SimTime::from_secs(1_000)));

    let watched = done.iter().find(|c| c.tag == 1).expect("watched flow finished");
    let trace = sim.trace(1).expect("traced").clone();

    println!(
        "watched transfer: {:.0} GB in {:.1} s, mean {:.1} Gbps, peak {:.1} Gbps (burstiness {:.2})",
        watched.bytes / 1e9,
        watched.duration_s(),
        watched.throughput_bps() / 1e9,
        watched.peak_rate_bps / 1e9,
        watched.burstiness(),
    );
    println!("\nrate breakpoints:");
    for (t, r) in &trace.points {
        println!("  t = {:>6.2} s -> {:>5.2} Gbps", t.as_secs_f64(), r / 1e9);
    }

    // ASCII timeline: sample the piecewise-constant rate each second.
    println!("\ntimeline (each column = 1 s, height = Gbps):");
    let end = watched.end.as_secs_f64().ceil() as u64;
    let samples: Vec<f64> = (0..end).map(|s| trace.rate_at(SimTime::from_secs(s)) / 1e9).collect();
    let max = samples.iter().copied().fold(1.0, f64::max);
    let rows = 10usize;
    for row in (1..=rows).rev() {
        let threshold = max * row as f64 / rows as f64;
        let line: String =
            samples.iter().map(|&v| if v >= threshold - 1e-9 { '#' } else { ' ' }).collect();
        println!("{threshold:>5.1} |{line}");
    }
    println!("      +{}", "-".repeat(samples.len()));
}
