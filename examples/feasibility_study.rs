//! The paper's headline question, end to end: given a site's GridFTP
//! usage log, what fraction of its sessions could ride dynamic virtual
//! circuits despite the setup-delay overhead?
//!
//! Generates a calibrated NCAR–NICS-style dataset, runs the §VI-A
//! analysis over the full (g, setup-delay) grid, and prints the
//! finding-(i) numbers plus a sweep of suitability against setup
//! delay.
//!
//! ```text
//! cargo run --release --example feasibility_study [scale]
//! ```

use gridftp_vc::core::sessions::group_sessions;
use gridftp_vc::workload::ablations::setup_delay_sweep;
use gridftp_vc::workload::ncar_nics::{self, NcarNicsConfig};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.2);

    println!("generating NCAR-NICS-style dataset (scale {scale}) ...");
    let ds = ncar_nics::generate(NcarNicsConfig { seed: 2009, scale });
    println!("{} transfers", ds.len());

    // Session structure at the paper's three g values.
    for g in [0.0, 60.0, 120.0] {
        let grouping = group_sessions(&ds, g);
        println!(
            "g = {:>3.0} s: {:>5} sessions ({} single-transfer, largest {})",
            g,
            grouping.sessions.len(),
            grouping.single_transfer_sessions(),
            grouping.max_transfers()
        );
    }

    // The Table IV cells.
    let report = gridftp_vc::core::feasibility_report(&ds);
    println!("\nVC suitability (one-tenth-of-session-duration rule):");
    for cell in &report.suitability {
        println!(
            "  g = {:>3.0} s, setup = {:>6.2} s: {:>6.2}% of sessions ({:>6.2}% of transfers)",
            cell.gap_s,
            cell.setup_delay_s,
            cell.pct_sessions(),
            cell.pct_transfers()
        );
    }

    // Generalization: suitability as a continuous function of setup
    // delay (how much would faster signalling buy?).
    println!("\nsetup-delay sweep (g = 1 min):");
    for cell in setup_delay_sweep(&ds, &[0.05, 0.5, 5.0, 30.0, 60.0, 180.0, 600.0]) {
        println!(
            "  setup {:>7.2} s -> {:>6.2}% sessions, {:>6.2}% transfers",
            cell.setup_delay_s,
            cell.pct_sessions(),
            cell.pct_transfers()
        );
    }

    let (ps, pt) = report.headline().expect("non-empty dataset");
    println!("\nheadline (paper: 56.87% / 90.54% for NCAR-NICS):");
    println!("  {ps:.2}% of sessions, {pt:.2}% of transfers are VC-suitable at g = setup = 1 min");
}
