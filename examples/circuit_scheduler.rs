//! Driving the OSCARS-style IDC directly: advance reservations,
//! admission control, path selection, blocking, and the two
//! setup-delay models of Table IV.
//!
//! ```text
//! cargo run --release --example circuit_scheduler
//! ```

use gridftp_vc::oscars::{BlockReason, Idc, ReservationRequest, SetupDelayModel};
use gridftp_vc::prelude::{SimTime, Site};
use gridftp_vc::topology::study_topology;

fn main() {
    let topo = study_topology();
    let mut idc = Idc::new(topo.graph.clone(), SetupDelayModel::esnet_deployed());

    let hour = |h: u64| SimTime::from_secs(h * 3600);
    let req = |src, dst, gbps: f64, from: u64, to: u64| ReservationRequest {
        src: topo.dtn(src),
        dst: topo.dtn(dst),
        rate_bps: gbps * 1e9,
        start: hour(from),
        end: hour(to),
    };

    // A morning of createReservation traffic.
    let requests = [
        ("NERSC->ORNL 4G, 9-11h", req(Site::Nersc, Site::Ornl, 4.0, 9, 11)),
        ("SLAC->BNL   6G, 9-12h", req(Site::Slac, Site::Bnl, 6.0, 9, 12)),
        ("NERSC->ORNL 4G, 9-10h", req(Site::Nersc, Site::Ornl, 4.0, 9, 10)),
        ("NERSC->ORNL 4G, 9-10h (third)", req(Site::Nersc, Site::Ornl, 4.0, 9, 10)),
        ("NCAR->NICS  8G, 10-14h", req(Site::Ncar, Site::Nics, 8.0, 10, 14)),
        ("NERSC->ANL  9G, 11-12h", req(Site::Nersc, Site::Anl, 9.0, 11, 12)),
    ];

    let mut admitted = Vec::new();
    for (label, r) in requests {
        match idc.create_reservation(r) {
            Ok(id) => {
                let res = idc.reservation(id).expect("admitted");
                println!("ADMIT {label:<32} path: {}", res.path.describe(&topo.graph));
                admitted.push(id);
            }
            Err(BlockReason::NoFeasiblePath) => {
                println!("BLOCK {label:<32} (no path with spare bandwidth)");
            }
            Err(BlockReason::InvalidRequest(e)) => {
                println!("REJECT {label:<32} ({e})");
            }
        }
    }

    let stats = idc.stats();
    println!(
        "\n{} requests, {} admitted, blocking probability {:.2}",
        stats.requests,
        stats.admitted,
        stats.blocking_probability()
    );

    // Provision the first circuit for immediate use at t = 9h sharp
    // and show the deployed batched-setup latency, then compare
    // against hardware signalling.
    if let Some(&id) = admitted.first() {
        let asked_at = hour(9);
        let ready = idc.provision(id, asked_at).expect("admitted reservation provisions");
        println!(
            "\nbatched IDC: asked {:.0}s -> usable at {:.0}s (setup delay {:.0}s)",
            asked_at.as_secs_f64(),
            ready.as_secs_f64(),
            (ready - asked_at).as_secs_f64()
        );
    }
    let hw = SetupDelayModel::hardware();
    println!(
        "hardware signalling would be ready {:.3}s after the request",
        (hw.ready_at(hour(9)) - hour(9)).as_secs_f64()
    );

    // How much bandwidth is still reservable NERSC->ORNL at 9h?
    let probe = idc.probe_available_bps(req(Site::Nersc, Site::Ornl, 0.1, 9, 10));
    println!("\nspare reservable NERSC->ORNL over 9-10h: {:.1} Gbps", probe / 1e9);
}
