//! The §VII-C study in miniature: correlate GridFTP transfers against
//! router SNMP byte counters along the NERSC–ORNL path (Eq. 1,
//! Tables XI–XIII) on a freshly simulated month of test transfers.
//!
//! ```text
//! cargo run --release --example snmp_study
//! ```

use gridftp_vc::core::snmp_attr::{attributed_bytes, link_load_bps};
use gridftp_vc::core::snmp_corr::{router_correlation_directional, CorrelationKind};
use gridftp_vc::logs::TransferType;
use gridftp_vc::stats::Summary;
use gridftp_vc::workload::nersc_ornl::{self, NerscOrnlConfig};

fn main() {
    println!("simulating the NERSC-ORNL test-transfer month ...");
    let out = nersc_ornl::generate(NerscOrnlConfig::default());
    println!(
        "{} transfers ({} STOR / {} RETR), SNMP on {} interfaces per direction\n",
        out.log.len(),
        out.log.filter_type(TransferType::Store).len(),
        out.log.filter_type(TransferType::Retr).len(),
        out.snmp_fwd.len()
    );

    // Eq. 1 in action on one transfer.
    let r = &out.log.records()[0];
    let series = &out.snmp_fwd[2];
    let b = attributed_bytes(series, r.start_unix_us, r.end_unix_us());
    println!(
        "example transfer: {:.1} GB logged; Eq. 1 attributes {:.1} GB on {} \
         (avg link load {:.2} Gbps during the transfer)",
        r.size_bytes as f64 / 1e9,
        b / 1e9,
        series.interface,
        link_load_bps(series, r.start_unix_us, r.end_unix_us()) / 1e9,
    );

    // Tables XI and XII, overall rows.
    println!("\nper-router correlations over all {} transfers:", out.log.len());
    println!("{:>6} {:>22} {:>12} {:>12}", "router", "interface", "vs total", "vs other");
    for i in 0..out.snmp_fwd.len() {
        let total = router_correlation_directional(
            &out.log,
            &out.snmp_fwd[i],
            &out.snmp_rev[i],
            |r| r.transfer_type == TransferType::Retr,
            CorrelationKind::TotalBytes,
        );
        let other = router_correlation_directional(
            &out.log,
            &out.snmp_fwd[i],
            &out.snmp_rev[i],
            |r| r.transfer_type == TransferType::Retr,
            CorrelationKind::OtherFlows,
        );
        println!(
            "{:>6} {:>22} {:>12.3} {:>12.3}",
            format!("rt{}", i + 1),
            out.snmp_fwd[i].interface,
            total.overall.unwrap_or(f64::NAN),
            other.overall.unwrap_or(f64::NAN),
        );
    }
    println!("(the paper's finding iv: high vs-total, low vs-other => science flows dominate)");

    // Table XIII: average link load summary over the RETR transfers.
    let retr = out.log.filter_type(TransferType::Retr);
    println!("\naverage rt1 link load during each RETR transfer (Gbps):");
    let loads: Vec<f64> = retr
        .records()
        .iter()
        .map(|r| link_load_bps(&out.snmp_fwd[0], r.start_unix_us, r.end_unix_us()) / 1e9)
        .collect();
    if let Some(s) = Summary::of(&loads) {
        println!(
            "  min {:.2} / median {:.2} / mean {:.2} / max {:.2}  (10 Gbps links)",
            s.min, s.median, s.mean, s.max
        );
    }
}
