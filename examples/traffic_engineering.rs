//! §IV's provider-side alternatives, end to end: automatic α-flow
//! identification with redirection onto intra-domain LSPs (HNTES), and
//! inter-domain circuit chaining across campus + backbone domains.
//!
//! ```text
//! cargo run --release --example traffic_engineering
//! ```

use gridftp_vc::hntes::{capture_experiment, flowrec, AlphaClassifier, HntesController};
use gridftp_vc::oscars::interdomain::{Domain, InterDomainController};
use gridftp_vc::oscars::{Idc, SetupDelayModel};
use gridftp_vc::prelude::SimTime;
use gridftp_vc::topology::{Graph, NodeKind, Site};
use gridftp_vc::workload::ncar_nics::{self, NcarNicsConfig};
use std::collections::HashMap;

fn main() {
    hntes_demo();
    interdomain_demo();
}

/// Learn redirection rules from one month of synthetic science
/// traffic, then watch them capture the next month.
fn hntes_demo() {
    println!("== HNTES: offline alpha-flow identification ==");
    let log = ncar_nics::generate(NcarNicsConfig { seed: 77, scale: 0.2 });
    let topo = gridftp_vc::topology::study_topology();
    let edge = |name: &str| {
        if name.contains("ucar") {
            Some(topo.dtn(Site::Ncar))
        } else if name.contains("nics") {
            Some(topo.dtn(Site::Nics))
        } else {
            None
        }
    };
    let flows = flowrec::from_transfer_log(&log, edge);
    println!("provider sees {} flow records from {} transfers", flows.len(), log.len());

    let classifier = AlphaClassifier::default();
    println!(
        "alpha flows carry {:.1}% of all bytes",
        classifier.alpha_byte_fraction(&flows) * 100.0
    );

    // Day-sliced replay: learn from each day, apply to the next.
    let day_us = 86_400_000_000i64;
    let first = flows.iter().map(|f| f.start_unix_us).min().unwrap_or(0);
    let n_days =
        flows.iter().map(|f| ((f.start_unix_us - first) / day_us) as usize).max().unwrap_or(0) + 1;
    let mut days = vec![Vec::new(); n_days];
    for f in flows {
        days[((f.start_unix_us - first) / day_us) as usize].push(f);
    }
    let report = capture_experiment(classifier, &days);
    println!(
        "offline pair-learning captured {:.1}% of alpha bytes with {} rule(s); {} alpha flows missed",
        report.capture_fraction() * 100.0,
        report.final_rules,
        report.missed_flows
    );

    // The controller object itself, for inspection.
    let mut ctl = HntesController::new(classifier);
    ctl.observe_interval(&days.concat(), first + n_days as i64 * day_us);
    for rule in ctl.rules() {
        println!("installed rule: redirect {} -> {} onto LSP", rule.ingress, rule.egress);
    }
    println!();
}

/// Chain a circuit across campus -> backbone -> campus domains.
fn interdomain_demo() {
    println!("== Inter-domain circuit chaining ==");
    let mk = |names: &[(&str, NodeKind)]| -> (Graph, Vec<gridftp_vc::topology::NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = names.iter().map(|(n, k)| g.add_node(n, *k)).collect();
        for w in 0..ids.len() - 1 {
            g.add_duplex_link(ids[w], ids[w + 1], 10e9, 0.004);
        }
        (g, ids)
    };
    use NodeKind::{Host, Router};
    let (g1, n1) = mk(&[("dtn-a", Host), ("campus-a-gw", Router)]);
    let (g2, n2) = mk(&[("peer-a", Router), ("core", Router), ("peer-b", Router)]);
    let (g3, n3) = mk(&[("campus-b-gw", Router), ("dtn-b", Host)]);

    let mut ctl = InterDomainController::new(vec![
        Domain {
            name: "campus-a".into(),
            idc: Idc::new(g1, SetupDelayModel::hardware()),
            gateways: HashMap::from([("peer-a".to_string(), n1[1])]),
            endpoints: HashMap::from([("dtn-a".to_string(), n1[0])]),
        },
        Domain {
            name: "backbone".into(),
            idc: Idc::new(g2, SetupDelayModel::esnet_deployed()),
            gateways: HashMap::from([("peer-a".to_string(), n2[0]), ("peer-b".to_string(), n2[2])]),
            endpoints: HashMap::new(),
        },
        Domain {
            name: "campus-b".into(),
            idc: Idc::new(g3, SetupDelayModel::hardware()),
            gateways: HashMap::from([("peer-b".to_string(), n3[0])]),
            endpoints: HashMap::from([("dtn-b".to_string(), n3[1])]),
        },
    ]);

    let now = SimTime::from_secs(10);
    match ctl.create_circuit("dtn-a", "dtn-b", 5e9, now, SimTime::from_secs(7200), now) {
        Ok(c) => {
            println!(
                "5 Gbps circuit admitted across {} domains; requested t={:.0}s, usable t={:.0}s",
                c.segments.len(),
                now.as_secs_f64(),
                c.ready_at.as_secs_f64()
            );
            for (d, id) in &c.segments {
                println!("  segment in {}: reservation {:?}", ctl.domains()[*d].name, id);
            }
            ctl.teardown(&c, SimTime::from_secs(20));
            println!("circuit torn down in all domains");
        }
        Err(e) => println!("blocked: {e:?}"),
    }
}
