//! Quickstart: move files between two GridFTP clusters over the study
//! topology, with and without a dynamic virtual circuit, and print
//! what the usage log records.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gridftp_vc::gridftp::session::VcRequestSpec;
use gridftp_vc::prelude::*;

fn main() {
    // 1. The wide-area plant: ESnet-like backbone with the seven
    //    study sites attached at 10 Gbps.
    let topo = study_topology();
    let path = topo.path(Site::Slac, Site::Bnl);
    println!("SLAC->BNL path: {}", path.describe(&topo.graph));
    println!(
        "  {} hops, RTT {:.1} ms, bottleneck {:.0} Gbps",
        path.hops(),
        path.rtt_s(&topo.graph) * 1e3,
        path.bottleneck_bps(&topo.graph) / 1e9
    );

    // 2. A fluid network simulation plus the OSCARS circuit scheduler
    //    (deployed ESnet model: 1-minute batched setup).
    let sim = NetworkSim::new(topo.graph.clone(), 0);
    let idc = Idc::new(topo.graph.clone(), SetupDelayModel::esnet_deployed());
    let mut driver = Driver::new(sim, 7).with_idc(idc);

    let slac = driver.register_cluster(
        "dtn.slac.stanford.edu",
        topo.dtn(Site::Slac),
        ServerCaps::default(),
        2,
    );
    let bnl = driver.register_cluster("dtn.bnl.gov", topo.dtn(Site::Bnl), ServerCaps::default(), 2);

    // 3. A best-effort session: four 8 GB files, back to back.
    let jobs = vec![TransferJob { size_bytes: 8 << 30, ..TransferJob::default() }; 4];
    driver.schedule_session(SimTime::ZERO, slac, bnl, SessionSpec::sequential(jobs.clone(), 2.0));

    // 4. The same session an hour later, protected by a 4 Gbps
    //    dynamic circuit for its whole lifetime.
    driver.schedule_session(
        SimTime::from_secs(3600),
        slac,
        bnl,
        SessionSpec::sequential(jobs, 2.0).with_vc(VcRequestSpec {
            rate_bps: 4e9,
            max_duration_s: 1800.0,
            wait_for_circuit: true,
        }),
    );

    // 5. Run and inspect the usage log (the record set of paper §II).
    let out = driver.run(SimTime::from_secs(86_400));
    println!("\nusage log ({} transfers):", out.log.len());
    for r in out.log.records() {
        println!(
            "  {} {:>6.1} MB in {:>6.1} s -> {:>8.1} Mbps ({} streams, start {})",
            r.transfer_type.token(),
            r.size_bytes as f64 / 1e6,
            r.duration_s(),
            r.throughput_mbps(),
            r.num_streams,
            r.start_civil().iso8601(),
        );
    }
    if let Some(stats) = out.idc_stats {
        println!(
            "\ncircuit scheduler: {} requests, {} admitted, blocking probability {:.2}",
            stats.requests,
            stats.admitted,
            stats.blocking_probability()
        );
    }

    // 6. Paper-style analysis: group into sessions, check VC
    //    suitability under the deployed 1-minute setup delay.
    let report = gridftp_vc::core::feasibility_report(&out.log);
    let (pct_sessions, pct_transfers) = report.headline().expect("transfers ran");
    println!(
        "VC-suitable at g = 1 min, setup 1 min: {pct_sessions:.0}% of sessions ({pct_transfers:.0}% of transfers)"
    );
}
