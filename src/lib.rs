//! # gridftp-vc
//!
//! A from-scratch reproduction of *"On using virtual circuits for
//! GridFTP transfers"* (SC 2012): the paper's GridFTP-log analysis
//! methodology plus every substrate it rests on — a discrete-event
//! fluid network simulator, an ESnet-like topology, an OSCARS-style
//! dynamic virtual-circuit scheduler, a GridFTP data-transfer-node
//! model, and calibrated workload generators standing in for the
//! proprietary NERSC/NCAR/SLAC log extracts.
//!
//! This crate is a facade: it re-exports the workspace crates under
//! one roof so applications can depend on a single package.
//!
//! ## Quick start
//!
//! ```
//! use gridftp_vc::prelude::*;
//!
//! // Build the study topology and a fluid network simulation on it.
//! let topo = study_topology();
//! let sim = NetworkSim::new(topo.graph.clone(), 0);
//! let mut driver = Driver::new(sim, 42);
//!
//! // Register two GridFTP clusters and move one 1 GB file.
//! let src = driver.register_cluster("src.example", topo.dtn(Site::Nersc), ServerCaps::default(), 1);
//! let dst = driver.register_cluster("dst.example", topo.dtn(Site::Ornl), ServerCaps::default(), 1);
//! driver.schedule_transfer(SimTime::ZERO, src, dst, TransferJob::default());
//!
//! let out = driver.run(SimTime::from_secs(86_400));
//! assert_eq!(out.log.len(), 1);
//!
//! // Analyze the log the way the paper does.
//! let report = feasibility_report(&out.log);
//! assert_eq!(report.n_transfers, 1);
//! ```
//!
//! ## Layout
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`stats`] | `gvc-stats` | quantiles, summaries, correlation, binning, distributions |
//! | [`engine`] | `gvc-engine` | simulation time, event queue, civil calendar |
//! | [`topology`] | `gvc-topology` | graph, Dijkstra/CSPF, study topology |
//! | [`net`] | `gvc-net` | max-min fair fluid simulator, TCP model, SNMP counters |
//! | [`oscars`] | `gvc-oscars` | reservation calendar, IDC, setup-delay models |
//! | [`gridftp`] | `gvc-gridftp` | server clusters, transfers, sessions, the driver |
//! | [`hntes`] | `gvc-hntes` | α-flow identification and LSP redirection |
//! | [`logs`] | `gvc-logs` | usage-log records, datasets, serialization |
//! | [`core`] | `gvc-core` | the paper's analyses (sessions, Table IV, Eq. 1/2, …) |
//! | [`workload`] | `gvc-workload` | calibrated scenario generators and ablations |
//! | [`faults`] | `gvc-faults` | fault plans, injection, retry/backoff recovery policy |
//! | [`telemetry`] | `gvc-telemetry` | metrics registry, JSONL tracing, spans, run manifests, offline trace analysis |
//! | [`scenario`] | `gvc-scenario` | declarative scenario specs, corpus loader, golden-output regression gate |

pub use gvc_core as core;
pub use gvc_engine as engine;
pub use gvc_faults as faults;
pub use gvc_gridftp as gridftp;
pub use gvc_hntes as hntes;
pub use gvc_logs as logs;
pub use gvc_net as net;
pub use gvc_oscars as oscars;
pub use gvc_scenario as scenario;
pub use gvc_stats as stats;
pub use gvc_telemetry as telemetry;
pub use gvc_topology as topology;
pub use gvc_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use gvc_core::{feasibility_report, group_sessions, vc_suitability, FeasibilityReport};
    pub use gvc_engine::{SimSpan, SimTime};
    pub use gvc_faults::{FaultPlan, RecoveryPolicy};
    pub use gvc_gridftp::{Driver, ServerCaps, SessionSpec, TransferJob};
    pub use gvc_logs::{Dataset, EndpointKind, TransferRecord, TransferType};
    pub use gvc_net::{FlowSpec, NetworkSim, TcpModel};
    pub use gvc_oscars::{Idc, ReservationRequest, SetupDelayModel};
    pub use gvc_stats::Summary;
    pub use gvc_topology::{study_topology, Site};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Spot-check that the re-exported paths are usable.
        let _ = crate::prelude::SimTime::from_secs(1);
        let t = crate::topology::study_topology();
        assert!(t.graph.node_count() > 10);
        let s = crate::stats::Summary::of(&[1.0, 2.0]).unwrap();
        assert_eq!(s.n, 2);
        let p = crate::faults::FaultPlan::parse("seed=9,fail-first=1").unwrap();
        assert_eq!(p.seed, 9);
        assert!(crate::prelude::RecoveryPolicy::default().validate().is_ok());
        assert!(!crate::telemetry::Telemetry::default().tracer.enabled());
        assert!(crate::telemetry::SpanId::NONE.is_none());
        let model = crate::telemetry::TraceModel::from_text("").unwrap();
        assert!(crate::telemetry::check(&model, &Default::default()).clean());
        let err = crate::scenario::ScenarioSpec::parse("").unwrap_err();
        assert!(err.to_string().contains("[scenario]"));
    }
}
