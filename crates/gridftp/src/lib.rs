//! GridFTP data-transfer-node model.
//!
//! GridFTP (§II) raises throughput with *streaming* (parallel TCP
//! connections) and *striping* (data blocks spread over multiple
//! servers per end), and its usage logger records one entry per file.
//! This crate models the pieces of that stack that shape the paper's
//! measurements:
//!
//! * [`server`] — a site's GridFTP cluster: per-server NIC/disk/CPU
//!   capacities registered as fair-share resources, so concurrent
//!   transfers at one node compete for the server (Eq. 2's `R`) and
//!   disk endpoints cap below memory endpoints (Table VI);
//! * [`transfer`] — turning one file movement (size, streams, stripes,
//!   endpoint kinds) into a capped fluid flow plus its logged record;
//! * [`session`] — batch scripts: one-or-more transfers back-to-back,
//!   optionally several in flight at once (which is what produces the
//!   *negative* inter-transfer gaps of §V);
//! * [`driver`] — the event loop marrying session scripts, background
//!   traffic, optional OSCARS circuits, and the fluid simulator, and
//!   emitting the usage log the analyses consume.

pub mod driver;
pub mod server;
pub mod session;
pub mod transfer;

pub use driver::{
    Driver, DriverOutput, DriverTelemetry, ResilienceReport, Shards, TransferStat, TstatReport,
};
pub use server::{ServerCaps, ServerCluster};
pub use session::{SessionSpec, VcRequestSpec};
pub use transfer::{FailureModel, ServerNoise, TransferJob};
