//! Session scripts.
//!
//! §V: "The term session refers to multiple transfers executed in
//! batch mode by an automated script" — scientists move whole
//! directories with one command. Scripts run transfers back-to-back
//! (small positive gaps) or several at a time (which is how *negative*
//! gaps between consecutive log entries arise). A session may also
//! request a dynamic virtual circuit for its whole lifetime: "a
//! virtual circuit, once established, can be used for all transfers
//! within a session before VC release" (§VI-A).

use crate::transfer::TransferJob;

/// A circuit request attached to a session.
#[derive(Debug, Clone, Copy)]
pub struct VcRequestSpec {
    /// Guaranteed rate to reserve, bps.
    pub rate_bps: f64,
    /// Reservation window length, seconds (from session start).
    pub max_duration_s: f64,
    /// Whether the script blocks until the circuit is usable before
    /// starting its first transfer (the Table IV usage pattern), or
    /// starts best-effort and upgrades.
    pub wait_for_circuit: bool,
}

/// A batch script: an ordered list of file transfers between one
/// server pair.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The files to move, in order.
    pub jobs: Vec<TransferJob>,
    /// Gap between one transfer's (logged) end and the next start,
    /// seconds. Zero for tight batch loops.
    pub inter_transfer_gap_s: f64,
    /// Transfers kept in flight simultaneously (≥ 1). Values > 1
    /// produce the concurrent starts / negative log gaps of §V.
    pub concurrency: u32,
    /// Optional circuit for the session's lifetime.
    pub vc: Option<VcRequestSpec>,
}

impl SessionSpec {
    /// A sequential session with the given jobs and gap.
    pub fn sequential(jobs: Vec<TransferJob>, gap_s: f64) -> SessionSpec {
        SessionSpec { jobs, inter_transfer_gap_s: gap_s, concurrency: 1, vc: None }
    }

    /// Sets the concurrency, returning `self`.
    ///
    /// # Panics
    /// Panics when `concurrency == 0`.
    pub fn with_concurrency(mut self, concurrency: u32) -> SessionSpec {
        assert!(concurrency >= 1, "concurrency must be at least 1");
        self.concurrency = concurrency;
        self
    }

    /// Attaches a circuit request, returning `self`.
    pub fn with_vc(mut self, vc: VcRequestSpec) -> SessionSpec {
        self.vc = Some(vc);
        self
    }

    /// Total payload of the session, bytes (the Table I/II "session
    /// size").
    pub fn total_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.size_bytes).sum()
    }

    /// Number of transfers.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the script has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let jobs = vec![
            TransferJob { size_bytes: 100, ..TransferJob::default() },
            TransferJob { size_bytes: 200, ..TransferJob::default() },
        ];
        let s = SessionSpec::sequential(jobs, 1.0);
        assert_eq!(s.total_bytes(), 300);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.concurrency, 1);
    }

    #[test]
    fn builders() {
        let s = SessionSpec::sequential(vec![], 0.0).with_concurrency(4).with_vc(VcRequestSpec {
            rate_bps: 1e9,
            max_duration_s: 600.0,
            wait_for_circuit: true,
        });
        assert_eq!(s.concurrency, 4);
        assert!(s.vc.is_some());
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_concurrency_panics() {
        let _ = SessionSpec::sequential(vec![], 0.0).with_concurrency(0);
    }
}
