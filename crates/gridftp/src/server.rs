//! GridFTP server clusters as fair-share resources.
//!
//! A site's GridFTP service is a cluster of `n_servers` identical
//! data-transfer nodes (the NCAR `frost` cluster had 3 in 2009, mostly
//! 2 in 2010 and 1 in 2011 — the paper's Table VIII driver). Each
//! node contributes NIC bandwidth, disk read/write bandwidth, and an
//! aggregate per-node transfer capacity `R` (the constant in Eq. 2:
//! "a theoretical maximum aggregated throughput that a server can
//! support across all concurrent transfers"). Cluster-wide capacities
//! are registered as [`gvc_net`] resources so every concurrent
//! transfer touching the cluster competes in the max-min solver.

use gvc_net::{NetworkSim, ResourceId};
use gvc_topology::NodeId;

/// Per-server capacities, bits per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCaps {
    /// NIC line rate.
    pub nic_bps: f64,
    /// Disk-array read bandwidth.
    pub disk_read_bps: f64,
    /// Disk-array write bandwidth.
    pub disk_write_bps: f64,
    /// Aggregate transfer capacity per node (Eq. 2's `R`): the most a
    /// node can push across all its concurrent transfers, limited by
    /// CPU, memory bus and kernel overheads.
    pub node_cap_bps: f64,
    /// Effective per-transfer streaming rate of a *disk* endpoint:
    /// what one client actually gets from the file system (seek
    /// patterns, per-client throttles, shared-FS contention) — often
    /// far below the array's aggregate bandwidth. `INFINITY` disables
    /// the cap. The SLAC–BNL production arrays sat near 250 Mbps per
    /// transfer, which is why the paper's Fig. 4 medians tie at
    /// ~200 Mbps for large files in both stream groups.
    pub disk_stream_bps: f64,
}

impl Default for ServerCaps {
    fn default() -> ServerCaps {
        ServerCaps {
            nic_bps: 10e9,
            // The paper's Fig. 1 shows NERSC disk writes bottlenecking
            // below memory endpoints; high-end DTN disk arrays of the
            // era moved ~2-3 Gbps reads, a bit less on writes.
            disk_read_bps: 2.8e9,
            disk_write_bps: 2.2e9,
            // Eq. 2's R was estimated at 2.19 Gbps (90th pct at NERSC).
            node_cap_bps: 2.4e9,
            disk_stream_bps: f64::INFINITY,
        }
    }
}

/// A site's GridFTP cluster registered with the simulator.
#[derive(Debug, Clone)]
pub struct ServerCluster {
    /// Server domain name as it appears in usage logs.
    pub name: String,
    /// The topology node terminating this cluster's transfers.
    pub node: NodeId,
    /// Per-server capacities.
    pub caps: ServerCaps,
    n_servers: u32,
    agg: ResourceId,
    disk_read: ResourceId,
    disk_write: ResourceId,
}

impl ServerCluster {
    /// Registers a cluster of `n_servers` nodes with the simulator.
    ///
    /// # Panics
    /// Panics when `n_servers == 0`.
    pub fn register(
        sim: &mut NetworkSim,
        name: &str,
        node: NodeId,
        caps: ServerCaps,
        n_servers: u32,
    ) -> ServerCluster {
        assert!(n_servers > 0, "a cluster needs at least one server");
        let n = f64::from(n_servers);
        let agg = sim.add_resource(caps.node_cap_bps * n);
        let disk_read = sim.add_resource(caps.disk_read_bps * n);
        let disk_write = sim.add_resource(caps.disk_write_bps * n);
        ServerCluster { name: name.to_owned(), node, caps, n_servers, agg, disk_read, disk_write }
    }

    /// Current server count.
    pub fn n_servers(&self) -> u32 {
        self.n_servers
    }

    /// Resizes the cluster (the frost 3 → 2 → 1 shrink), updating the
    /// registered capacities.
    ///
    /// # Panics
    /// Panics when `n_servers == 0`.
    pub fn resize(&mut self, sim: &mut NetworkSim, n_servers: u32) {
        assert!(n_servers > 0, "a cluster needs at least one server");
        self.n_servers = n_servers;
        let n = f64::from(n_servers);
        sim.set_resource_capacity(self.agg, self.caps.node_cap_bps * n);
        sim.set_resource_capacity(self.disk_read, self.caps.disk_read_bps * n);
        sim.set_resource_capacity(self.disk_write, self.caps.disk_write_bps * n);
    }

    /// The shared aggregate resource (every transfer touching the
    /// cluster crosses it).
    pub fn aggregate_resource(&self) -> ResourceId {
        self.agg
    }

    /// The shared disk-read resource (crossed when the source endpoint
    /// is disk).
    pub fn disk_read_resource(&self) -> ResourceId {
        self.disk_read
    }

    /// The shared disk-write resource (crossed when the destination
    /// endpoint is disk).
    pub fn disk_write_resource(&self) -> ResourceId {
        self.disk_write
    }

    /// The per-transfer cap contributed by this cluster when the
    /// transfer uses `stripes` stripes and reads (`as_source`) or
    /// writes from/to `disk` endpoints. A transfer cannot use more
    /// stripes than there are servers.
    pub fn per_transfer_cap_bps(&self, stripes: u32, disk: bool, as_source: bool) -> f64 {
        let k = f64::from(stripes.clamp(1, self.n_servers));
        let per_server = if disk {
            let d = if as_source { self.caps.disk_read_bps } else { self.caps.disk_write_bps };
            d.min(self.caps.node_cap_bps).min(self.caps.nic_bps).min(self.caps.disk_stream_bps)
        } else {
            self.caps.node_cap_bps.min(self.caps.nic_bps)
        };
        k * per_server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_topology::{Graph, NodeKind};

    fn sim() -> (NetworkSim, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node("a", NodeKind::Host);
        (NetworkSim::new(g, 0), a)
    }

    #[test]
    fn register_creates_three_resources() {
        let (mut sim, node) = sim();
        let c = ServerCluster::register(&mut sim, "dtn.example", node, ServerCaps::default(), 2);
        assert_ne!(c.aggregate_resource(), c.disk_read_resource());
        assert_ne!(c.disk_read_resource(), c.disk_write_resource());
        assert_eq!(c.n_servers(), 2);
    }

    #[test]
    fn per_transfer_cap_scales_with_stripes() {
        let (mut sim, node) = sim();
        let c = ServerCluster::register(&mut sim, "s", node, ServerCaps::default(), 3);
        let one = c.per_transfer_cap_bps(1, false, true);
        let three = c.per_transfer_cap_bps(3, false, true);
        assert!((three / one - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stripes_clamped_to_cluster_size() {
        let (mut sim, node) = sim();
        let c = ServerCluster::register(&mut sim, "s", node, ServerCaps::default(), 2);
        assert_eq!(c.per_transfer_cap_bps(8, false, true), c.per_transfer_cap_bps(2, false, true));
        assert_eq!(c.per_transfer_cap_bps(0, false, true), c.per_transfer_cap_bps(1, false, true));
    }

    #[test]
    fn disk_endpoint_caps_below_memory() {
        let (mut sim, node) = sim();
        let c = ServerCluster::register(&mut sim, "s", node, ServerCaps::default(), 1);
        let mem = c.per_transfer_cap_bps(1, false, false);
        let disk_write = c.per_transfer_cap_bps(1, true, false);
        let disk_read = c.per_transfer_cap_bps(1, true, true);
        // Fig. 1: writes bottleneck; reads keep up with memory
        // endpoints (disk-to-memory ≈ memory-to-memory medians).
        assert!(disk_write < disk_read, "writes slower than reads");
        assert!(disk_write < mem);
        assert_eq!(disk_read, mem, "reads are not the bottleneck");
    }

    #[test]
    fn resize_changes_capacity() {
        let (mut sim, node) = sim();
        let mut c = ServerCluster::register(&mut sim, "s", node, ServerCaps::default(), 3);
        c.resize(&mut sim, 1);
        assert_eq!(c.n_servers(), 1);
        assert_eq!(c.per_transfer_cap_bps(3, false, true), c.per_transfer_cap_bps(1, false, true));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let (mut sim, node) = sim();
        ServerCluster::register(&mut sim, "s", node, ServerCaps::default(), 0);
    }
}
