//! The simulation driver: session scripts × fluid network × circuits.
//!
//! The driver owns the [`NetworkSim`], an [`EventQueue`] of script
//! events, and (optionally) an OSCARS [`Idc`]. It interleaves the two
//! clocks — script events and flow completions — never running either
//! backwards, executes sessions job by job, and emits the GridFTP
//! usage log that the analysis crate consumes. Everything is
//! deterministic in the seed.

use crate::server::{ServerCaps, ServerCluster};
use crate::session::SessionSpec;
use crate::transfer::{prepare_transfer, FailureModel, PreparedTransfer, ServerNoise, TransferJob};
use gvc_engine::{EventQueue, QueueTelemetry, ResourcePartition, SimSpan, SimTime};
use gvc_faults::{
    FaultInjector, FaultKind, FaultPlan, FaultTelemetry, RecoveryAction, RecoveryPolicy,
};
use gvc_logs::{Dataset, TransferRecord, TransferType};
use gvc_net::tcp::TcpModel;
use gvc_net::{FlowCompletion, FlowId, FlowSpec, NetTelemetry, NetworkSim};
use gvc_oscars::{Idc, IdcTelemetry, ReservationId, ReservationRequest};
use gvc_stats::rng::component_rng;
use gvc_telemetry::timeline::series;
use gvc_telemetry::{
    BufferSink, Counter, Histogram, Perf, Registry, SpanId, Stopwatch, Telemetry, TimelineHandle,
    TraceEvent, Tracer,
};
use gvc_topology::{LinkId, NodeId, Path};
use rand::rngs::SmallRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Driver/transfer-lifecycle telemetry, registered from a
/// [`Telemetry`] context by [`Driver::with_telemetry`].
#[derive(Clone)]
pub struct DriverTelemetry {
    /// `gridftp_sessions_started_total`.
    pub sessions_started: Arc<Counter>,
    /// `gridftp_sessions_completed_total`.
    pub sessions_completed: Arc<Counter>,
    /// `gridftp_transfers_started_total`.
    pub transfers_started: Arc<Counter>,
    /// `gridftp_transfers_completed_total`.
    pub transfers_completed: Arc<Counter>,
    /// `gridftp_transferred_bytes_total`: payload bytes completed.
    pub transferred_bytes: Arc<Counter>,
    /// `gridftp_transfer_throughput_mbps`: logged per-transfer rates.
    pub throughput_mbps: Arc<Histogram>,
    /// `sim_event_handle_seconds{class=...}`: wall time spent handling
    /// each script-event class, indexed by [`Event`] discriminant.
    event_seconds: [Arc<Histogram>; 7],
    /// Trace handle for `transfer.*` and `kernel.*` events.
    pub tracer: Tracer,
    /// Sim-time flight recorder for the `driver.*` windowed series
    /// (`None` unless the [`Telemetry`] context carries one).
    pub timeline: Option<TimelineHandle>,
}

impl DriverTelemetry {
    /// Registers driver metrics in `ctx`'s registry, tracing through
    /// `ctx`'s tracer.
    pub fn register(ctx: &Telemetry) -> DriverTelemetry {
        let reg = &ctx.registry;
        let class_hist = |class: &str| {
            reg.histogram("sim_event_handle_seconds", &[("class", class)], Histogram::timing)
        };
        DriverTelemetry {
            sessions_started: reg.counter("gridftp_sessions_started_total", &[]),
            sessions_completed: reg.counter("gridftp_sessions_completed_total", &[]),
            transfers_started: reg.counter("gridftp_transfers_started_total", &[]),
            transfers_completed: reg.counter("gridftp_transfers_completed_total", &[]),
            transferred_bytes: reg.counter("gridftp_transferred_bytes_total", &[]),
            throughput_mbps: reg.histogram(
                "gridftp_transfer_throughput_mbps",
                &[],
                Histogram::rate_mbps,
            ),
            event_seconds: [
                class_hist("start_session"),
                class_hist("launch_next"),
                class_hist("inject_background"),
                class_hist("resize_cluster"),
                class_hist("retry_vc"),
                class_hist("preempt_vc"),
                class_hist("link_flap"),
            ],
            tracer: ctx.tracer.clone(),
            timeline: ctx.timeline.clone(),
        }
    }
}

/// Tag marking background flows (excluded from the usage log).
pub const BACKGROUND_TAG: u64 = u64::MAX;

/// Worker-pool sizing for [`Driver::run_sharded`].
///
/// The lane *partition* never depends on this value — it only sets
/// how many lanes execute at once — so a run's outputs are
/// byte-identical for every setting, including `Fixed(1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shards {
    /// One worker per available CPU.
    Auto,
    /// Exactly `n` workers (1 = lanes run sequentially, in order).
    Fixed(usize),
}

impl Shards {
    /// The worker count this setting resolves to on this host.
    pub fn threads(self) -> usize {
        match self {
            Shards::Auto => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
            Shards::Fixed(n) => n.max(1),
        }
    }
}

/// Everything scheduled on a driver so far, replayable into per-lane
/// sub-drivers. [`Driver::run_sharded`] needs to re-schedule the
/// workload lane by lane, and the event calendar is a heap that
/// cannot be iterated, so the schedule is also recorded at call time.
#[derive(Default)]
struct ShardScript {
    clusters: Vec<(String, NodeId, ServerCaps, u32)>,
    sessions: Vec<(SimTime, ClusterId, ClusterId, SessionSpec)>,
    backgrounds: Vec<(SimTime, FlowSpec)>,
    resizes: Vec<(SimTime, ClusterId, u32)>,
}

/// Per-lane bookkeeping [`Driver::run_core`] reports alongside its
/// output: what the coordinator needs to recompute pooled statistics
/// (the recovery-latency mean cannot be rebuilt from per-lane means).
struct LaneStats {
    /// Kernel pops plus flow completions (perf-phase item count).
    events: u64,
    recovery_lat_sum_s: f64,
    recovery_lat_n: u64,
}

/// Handle to a registered cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterId(pub usize);

enum Event {
    StartSession(usize),
    LaunchNext(usize),
    InjectBackground(Box<FlowSpec>),
    ResizeCluster(ClusterId, u32),
    /// Re-attempt circuit establishment for a session (recovery).
    RetryVc(usize),
    /// Tear down a session's circuit mid-reservation (injected fault).
    PreemptVc(usize),
    /// Apply scheduled link flap `i` from the fault plan.
    LinkFlap(usize),
    /// Restore the capacity taken by link flap `i`.
    LinkRestore(usize),
}

impl Event {
    /// Index into [`DriverTelemetry::event_seconds`] and the trace
    /// `class` field.
    fn class(&self) -> (usize, &'static str) {
        match self {
            Event::StartSession(_) => (0, "start_session"),
            Event::LaunchNext(_) => (1, "launch_next"),
            Event::InjectBackground(_) => (2, "inject_background"),
            Event::ResizeCluster(_, _) => (3, "resize_cluster"),
            Event::RetryVc(_) => (4, "retry_vc"),
            Event::PreemptVc(_) => (5, "preempt_vc"),
            Event::LinkFlap(_) | Event::LinkRestore(_) => (6, "link_flap"),
        }
    }
}

struct SessionState {
    spec: SessionSpec,
    src: ClusterId,
    dst: ClusterId,
    next_job: usize,
    in_flight: u32,
    vc: Option<(ReservationId, SimTime, f64)>,
    done: bool,
    /// Circuit-establishment attempts made so far (recovery path).
    vc_attempts: u32,
    /// When the first establishment attempt was made.
    vc_started: Option<SimTime>,
    /// The session stopped pursuing a circuit (fallback, give-up, or
    /// preemption); retries must not resurrect it.
    vc_given_up: bool,
    /// `session.run` span, open for the session's whole lifetime.
    span: SpanId,
    /// `session.queue_wait` span, open until the first job launches.
    wait_span: SpanId,
    /// `session.vc_setup` span, open while a circuit is being pursued.
    vc_span: SpanId,
}

struct InFlight {
    session: usize,
    job: TransferJob,
    flow: FlowId,
    overhead_s: f64,
    lossy: bool,
    failed: bool,
    /// `session.transfer` span, closed when the flow completes.
    span: SpanId,
}

/// A lane sub-driver plus the private sink/registry/timeline the
/// coordinator later absorbs in lane order.
type LaneParts = (Driver, Option<Arc<BufferSink>>, Option<Arc<Registry>>, Option<TimelineHandle>);

/// The session/transfer driver over a fluid network simulation.
pub struct Driver {
    sim: NetworkSim,
    tcp: TcpModel,
    noise: ServerNoise,
    failures: FailureModel,
    /// Control-channel overhead added to each logged transfer, s.
    pub control_overhead_s: f64,
    seed: u64,
    rng: SmallRng,
    pending: EventQueue<Event>,
    clusters: Vec<ServerCluster>,
    sessions: Vec<SessionState>,
    in_flight: BTreeMap<u64, InFlight>,
    next_tag: u64,
    idc: Option<Idc>,
    faults: Option<FaultInjector>,
    recovery: Option<RecoveryPolicy>,
    ftel: FaultTelemetry,
    vc_requested: u64,
    vc_established: u64,
    recovery_lat_sum_s: f64,
    recovery_lat_n: u64,
    /// Original capacity of each currently-flapped link, by flap index.
    flap_orig: BTreeMap<usize, (LinkId, f64)>,
    log: Vec<TransferRecord>,
    tstat: Vec<TransferStat>,
    telemetry: Option<DriverTelemetry>,
    /// Kept so `with_idc` after `with_telemetry` still instruments the
    /// controller.
    telemetry_ctx: Option<Telemetry>,
    /// Span handle; disabled (zero-cost) unless telemetry is attached.
    tracer: Tracer,
    /// The `driver.run` root span, opened by [`Driver::run`].
    run_span: SpanId,
    /// The recorded schedule, for [`Driver::run_sharded`].
    script: ShardScript,
    /// Set on lane sub-drivers: `(coordinator run span, lane index)`.
    /// The lane's root span is then `driver.lane` under that parent.
    lane_root: Option<(SpanId, usize)>,
}

impl Driver {
    /// A driver over `sim`, seeded deterministically.
    pub fn new(mut sim: NetworkSim, seed: u64) -> Driver {
        // Background flows carry a reserved tag; telling the simulator
        // lets its parallel SNMP recorder split out the background
        // share for the `net.bg_util` timeline series.
        sim.set_background_tag(BACKGROUND_TAG);
        Driver {
            sim,
            tcp: TcpModel::default(),
            noise: ServerNoise::default(),
            failures: FailureModel::default(),
            control_overhead_s: 0.2,
            seed,
            rng: component_rng(seed, "gridftp-driver"),
            pending: EventQueue::new(),
            clusters: Vec::new(),
            sessions: Vec::new(),
            in_flight: BTreeMap::new(),
            next_tag: 1,
            idc: None,
            faults: None,
            recovery: None,
            ftel: FaultTelemetry::disabled(),
            vc_requested: 0,
            vc_established: 0,
            recovery_lat_sum_s: 0.0,
            recovery_lat_n: 0,
            flap_orig: BTreeMap::new(),
            log: Vec::new(),
            tstat: Vec::new(),
            telemetry: None,
            telemetry_ctx: None,
            tracer: Tracer::disabled(),
            run_span: SpanId::NONE,
            script: ShardScript::default(),
            lane_root: None,
        }
    }

    /// Attaches a telemetry context, instrumenting the event calendar,
    /// the fluid simulator, the IDC (if present), and the driver's own
    /// transfer lifecycle. Order-independent with [`Driver::with_idc`].
    pub fn with_telemetry(mut self, ctx: &Telemetry) -> Driver {
        self.pending.set_telemetry(
            QueueTelemetry::register(&ctx.registry)
                .with_tracer(ctx.tracer.clone())
                .with_timeline(ctx.timeline.clone()),
        );
        self.sim.set_telemetry(NetTelemetry::register(&ctx.registry, ctx.tracer.clone()));
        if let Some(idc) = self.idc.as_mut() {
            idc.set_telemetry(
                IdcTelemetry::register(&ctx.registry, ctx.tracer.clone())
                    .with_timeline(ctx.timeline.clone()),
            );
        }
        self.telemetry = Some(DriverTelemetry::register(ctx));
        self.ftel = FaultTelemetry::register(&ctx.registry, ctx.tracer.clone())
            .with_timeline(ctx.timeline.clone());
        self.telemetry_ctx = Some(ctx.clone());
        self.tracer = ctx.tracer.clone();
        self
    }

    /// Attaches a fault plan, returning `self`. Sessions requesting
    /// circuits then run the recovery chain (default
    /// [`RecoveryPolicy`] unless [`Driver::with_recovery`] set one).
    pub fn with_faults(mut self, plan: FaultPlan) -> Driver {
        self.faults = Some(FaultInjector::new(plan));
        if self.recovery.is_none() {
            self.recovery = Some(RecoveryPolicy::default());
        }
        self
    }

    /// Sets the circuit-recovery policy, returning `self`. Enables the
    /// retry/backoff/fallback chain even without a fault plan.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Driver {
        self.recovery = Some(policy);
        self
    }

    /// Overrides the TCP model, returning `self`.
    pub fn with_tcp(mut self, tcp: TcpModel) -> Driver {
        self.tcp = tcp;
        self
    }

    /// Overrides the server-noise model, returning `self`.
    pub fn with_noise(mut self, noise: ServerNoise) -> Driver {
        self.noise = noise;
        self
    }

    /// Overrides the failure/restart model, returning `self`.
    pub fn with_failures(mut self, failures: FailureModel) -> Driver {
        self.failures = failures;
        self
    }

    /// Attaches an OSCARS controller for VC-enabled sessions,
    /// returning `self`.
    pub fn with_idc(mut self, idc: Idc) -> Driver {
        self.idc = Some(idc);
        if let (Some(ctx), Some(idc)) = (&self.telemetry_ctx, self.idc.as_mut()) {
            idc.set_telemetry(
                IdcTelemetry::register(&ctx.registry, ctx.tracer.clone())
                    .with_timeline(ctx.timeline.clone()),
            );
        }
        self
    }

    /// The underlying simulator (e.g. for SNMP access after a run).
    pub fn sim(&self) -> &NetworkSim {
        &self.sim
    }

    /// Mutable simulator access (e.g. to monitor links before a run).
    pub fn sim_mut(&mut self) -> &mut NetworkSim {
        &mut self.sim
    }

    /// Registers a GridFTP cluster at `node`.
    pub fn register_cluster(
        &mut self,
        name: &str,
        node: NodeId,
        caps: ServerCaps,
        n_servers: u32,
    ) -> ClusterId {
        let c = ServerCluster::register(&mut self.sim, name, node, caps, n_servers);
        self.clusters.push(c);
        self.script.clusters.push((name.to_owned(), node, caps, n_servers));
        ClusterId(self.clusters.len() - 1)
    }

    /// The cluster record.
    pub fn cluster(&self, id: ClusterId) -> &ServerCluster {
        &self.clusters[id.0]
    }

    /// Schedules a session from `src` to `dst` starting at `at`.
    pub fn schedule_session(
        &mut self,
        at: SimTime,
        src: ClusterId,
        dst: ClusterId,
        spec: SessionSpec,
    ) {
        self.script.sessions.push((at, src, dst, spec.clone()));
        let idx = self.push_session_slot(src, dst, spec);
        self.pending.schedule(at, Event::StartSession(idx));
    }

    /// Registers a session's state without scheduling it. Lane
    /// sub-drivers register *every* session slot — so global session
    /// indices (and the RNG streams keyed on them) are preserved —
    /// but only schedule the sessions their lane owns.
    fn push_session_slot(&mut self, src: ClusterId, dst: ClusterId, spec: SessionSpec) -> usize {
        let idx = self.sessions.len();
        self.sessions.push(SessionState {
            spec,
            src,
            dst,
            next_job: 0,
            in_flight: 0,
            vc: None,
            done: false,
            vc_attempts: 0,
            vc_started: None,
            vc_given_up: false,
            span: SpanId::NONE,
            wait_span: SpanId::NONE,
            vc_span: SpanId::NONE,
        });
        idx
    }

    /// Schedules a single transfer (a one-job session).
    pub fn schedule_transfer(
        &mut self,
        at: SimTime,
        src: ClusterId,
        dst: ClusterId,
        job: TransferJob,
    ) {
        self.schedule_session(at, src, dst, SessionSpec::sequential(vec![job], 0.0));
    }

    /// Schedules background flows (from
    /// [`gvc_net::background::generate_background`]).
    pub fn schedule_background(&mut self, arrivals: Vec<gvc_net::background::BackgroundArrival>) {
        for a in arrivals {
            let spec = a.spec.with_tag(BACKGROUND_TAG);
            self.script.backgrounds.push((a.at, spec.clone()));
            self.pending.schedule(a.at, Event::InjectBackground(Box::new(spec)));
        }
    }

    /// Schedules a cluster resize (the frost 3 → 2 → 1 shrink).
    pub fn schedule_resize(&mut self, at: SimTime, cluster: ClusterId, n_servers: u32) {
        self.script.resizes.push((at, cluster, n_servers));
        self.pending.schedule(at, Event::ResizeCluster(cluster, n_servers));
    }

    /// The attached sim-time flight recorder, if any. Driver-side
    /// series are all counters of 1.0 increments (or per-event
    /// quantile observations), each fired in exactly one shard lane,
    /// so the per-window merges are shard-invariant.
    fn tl(&self) -> Option<&TimelineHandle> {
        self.telemetry.as_ref().and_then(|t| t.timeline.as_ref())
    }

    fn path_between(&self, src: ClusterId, dst: ClusterId) -> Option<Path> {
        gvc_topology::shortest_path(
            self.sim.graph(),
            self.clusters[src.0].node,
            self.clusters[dst.0].node,
        )
    }

    /// Handles one script event, timing it per class when telemetry is
    /// attached.
    fn dispatch(&mut self, ev: Event) {
        let Some(t) = self.telemetry.clone() else {
            self.handle_event(ev);
            return;
        };
        let (class_idx, class) = ev.class();
        let t_us = self.sim.now().micros() as i64;
        let started = Stopwatch::start();
        self.handle_event(ev);
        let wall = started.elapsed_s();
        t.event_seconds[class_idx].record(wall);
        t.tracer.emit_with(|| {
            TraceEvent::new(t_us, "kernel.event").field("class", class).field("wall_us", wall * 1e6)
        });
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::StartSession(idx) => self.start_session(idx),
            Event::LaunchNext(idx) => self.launch_ready_jobs(idx),
            Event::InjectBackground(spec) => {
                self.sim.add_flow(*spec);
            }
            Event::ResizeCluster(id, n) => {
                let c = &mut self.clusters[id.0];
                c.resize(&mut self.sim, n);
            }
            Event::RetryVc(idx) => self.retry_vc(idx),
            Event::PreemptVc(idx) => self.preempt_vc(idx),
            Event::LinkFlap(i) => self.apply_link_flap(i),
            Event::LinkRestore(i) => self.restore_link(i),
        }
    }

    fn start_session(&mut self, idx: usize) {
        let now = self.sim.now();
        // Optional circuit for the session.
        let (src, dst, vc_spec) = {
            let s = &self.sessions[idx];
            (s.src, s.dst, s.spec.vc)
        };
        if let Some(t) = &self.telemetry {
            t.sessions_started.inc();
            if let Some(tl) = &t.timeline {
                tl.add(series::DRIVER_SESSION_STARTS, now.micros(), 1.0);
            }
            let (jobs, conc) = {
                let s = &self.sessions[idx];
                (s.spec.jobs.len(), s.spec.concurrency)
            };
            t.tracer.emit_with(|| {
                TraceEvent::new(now.micros() as i64, "transfer.session_start")
                    .field("session", idx)
                    .field("jobs", jobs)
                    .field("concurrency", conc)
                    .field("vc", vc_spec.is_some())
            });
        }
        let session_span =
            self.tracer.span_enter_with(self.run_span, now.micros() as i64, "session.run", |ev| {
                ev.field("session", idx).field("vc", vc_spec.is_some())
            });
        self.sessions[idx].span = session_span;
        self.sessions[idx].wait_span =
            self.tracer.span_enter(session_span, now.micros() as i64, "session.queue_wait");
        if vc_spec.is_some() && self.idc.is_some() {
            self.vc_requested += 1;
            if self.recovery.is_some() {
                // Recovery chain: bounded retries with backoff, then
                // fallback to the routed IP path.
                self.sessions[idx].vc_started = Some(now);
                if self.try_establish_vc(idx) {
                    return;
                }
            } else if let (Some(vc), Some(idc)) = (vc_spec, self.idc.as_mut()) {
                // Legacy single-shot path, kept bit-for-bit: no faults
                // or recovery configured.
                let vc_span = self.tracer.span_enter_with(
                    session_span,
                    now.micros() as i64,
                    "session.vc_setup",
                    |ev| ev.field("session", idx),
                );
                let req = ReservationRequest {
                    src: self.clusters[src.0].node,
                    dst: self.clusters[dst.0].node,
                    rate_bps: vc.rate_bps,
                    start: now,
                    end: now + SimSpan::from_secs_f64(vc.max_duration_s),
                };
                let mut outcome = "blocked";
                if let Ok(id) = idc.create_reservation(req) {
                    // Provisioning a freshly admitted reservation
                    // cannot fail; if it somehow does, the session
                    // simply runs IP-routed.
                    outcome = "provision_error";
                    if let Ok(ready) = idc.provision(id, now) {
                        self.sessions[idx].vc = Some((id, ready, vc.rate_bps));
                        self.vc_established += 1;
                        if let Some(tl) = self.telemetry.as_ref().and_then(|t| t.timeline.as_ref())
                        {
                            tl.observe(
                                series::DRIVER_VC_SETUP,
                                now.micros(),
                                (ready - now).as_secs_f64(),
                            );
                        }
                        self.tracer.span_exit_with(vc_span, ready.micros() as i64, |ev| {
                            ev.field("outcome", "established")
                        });
                        if vc.wait_for_circuit {
                            self.pending.schedule(ready, Event::LaunchNext(idx));
                            return;
                        }
                        self.launch_ready_jobs(idx);
                        return;
                    }
                }
                self.tracer.span_exit_with(vc_span, now.micros() as i64, |ev| {
                    ev.field("outcome", outcome)
                });
            }
        }
        self.launch_ready_jobs(idx);
    }

    /// One circuit-establishment attempt under the recovery chain.
    /// Returns `true` when job launch is deferred (waiting on the
    /// circuit, either now provisioned or still being retried).
    fn try_establish_vc(&mut self, idx: usize) -> bool {
        let now = self.sim.now();
        let (src, dst, vc) = {
            let s = &self.sessions[idx];
            (s.src, s.dst, s.spec.vc)
        };
        let (Some(vc), Some(policy)) = (vc, self.recovery) else {
            return false;
        };
        if self.idc.is_none() {
            return false;
        }
        self.sessions[idx].vc_attempts += 1;
        let attempt = self.sessions[idx].vc_attempts;
        if self.sessions[idx].vc_span.is_none() {
            self.sessions[idx].vc_span = self.tracer.span_enter_with(
                self.sessions[idx].span,
                now.micros() as i64,
                "session.vc_setup",
                |ev| ev.field("session", idx),
            );
        }
        let vc_span = self.sessions[idx].vc_span;
        let attempt_span =
            self.tracer.span_enter_with(vc_span, now.micros() as i64, "vc.attempt", |ev| {
                ev.field("session", idx).field("attempt", attempt)
            });
        let injected = self.faults.as_mut().and_then(FaultInjector::provision_fault);
        let req = ReservationRequest {
            src: self.clusters[src.0].node,
            dst: self.clusters[dst.0].node,
            rate_bps: vc.rate_bps,
            start: now,
            end: now + SimSpan::from_secs_f64(vc.max_duration_s),
        };
        // `reason` labels the failed attempt in the trace; injected
        // faults also tear down anything the IDC admitted so a failed
        // attempt never leaks a reservation.
        let mut established: Option<(ReservationId, SimTime)> = None;
        let mut reason: &'static str = "";
        if let Some(idc) = self.idc.as_mut() {
            match idc.create_reservation(req) {
                Ok(id) => {
                    if injected.is_some() {
                        let _ = idc.teardown(id, now);
                    } else {
                        match idc.provision(id, now) {
                            Ok(ready) if (ready - now).as_secs_f64() > policy.setup_deadline_s => {
                                let _ = idc.teardown(id, now);
                                reason = "setup_deadline";
                            }
                            Ok(ready) => established = Some((id, ready)),
                            Err(_) => reason = "provision_error",
                        }
                    }
                }
                Err(_) => {
                    if injected.is_none() {
                        reason = "blocked";
                    }
                }
            }
        }
        if let Some(kind) = injected {
            self.ftel.count_injected_at(kind, now.micros());
            reason = kind.as_str();
            self.ftel.tracer.emit_with(|| {
                TraceEvent::new(now.micros() as i64, "fault.injected")
                    .field("fault", kind.as_str())
                    .field("session", idx)
                    .field("attempt", attempt)
            });
        }

        if let Some((id, ready)) = established {
            self.tracer.span_exit_with(attempt_span, now.micros() as i64, |ev| {
                ev.field("outcome", "established")
            });
            self.tracer.span_exit_with(vc_span, ready.micros() as i64, |ev| {
                ev.field("outcome", "established")
            });
            self.sessions[idx].vc_span = SpanId::NONE;
            self.sessions[idx].vc = Some((id, ready, vc.rate_bps));
            self.vc_established += 1;
            if let Some(tl) = self.tl() {
                // Setup latency = first attempt to circuit-ready,
                // including provisioning delay and any backoff waits.
                let t0 = self.sessions[idx].vc_started.unwrap_or(now);
                tl.observe(series::DRIVER_VC_SETUP, now.micros(), (ready - t0).as_secs_f64());
            }
            if attempt > 1 {
                let waited_s =
                    self.sessions[idx].vc_started.map_or(0.0, |t0| (now - t0).as_secs_f64());
                self.record_recovery_latency(waited_s);
                self.ftel.tracer.emit_with(|| {
                    TraceEvent::new(now.micros() as i64, "recovery.established")
                        .field("session", idx)
                        .field("attempts", attempt)
                        .field("waited_s", waited_s)
                });
            }
            if let Some(after_s) = self.faults.as_ref().and_then(FaultInjector::preempt_after_s) {
                self.pending
                    .schedule(ready + SimSpan::from_secs_f64(after_s), Event::PreemptVc(idx));
            }
            if vc.wait_for_circuit {
                self.pending.schedule(ready, Event::LaunchNext(idx));
                return true;
            }
            return false;
        }

        // The attempt failed; ask the policy what happens next.
        let seed = self.faults.as_ref().map_or(self.seed, |f| f.plan().seed);
        let waited_s = self.sessions[idx].vc_started.map_or(0.0, |t0| (now - t0).as_secs_f64());
        match policy.decide(seed, attempt) {
            RecoveryAction::Retry { delay_s_micros } => {
                self.ftel.retries.inc();
                if let Some(tl) = self.tl() {
                    tl.add(series::DRIVER_RETRIES, now.micros(), 1.0);
                }
                let delay_s = delay_s_micros as f64 / 1e6;
                self.ftel.tracer.emit_with(|| {
                    TraceEvent::new(now.micros() as i64, "recovery.retry")
                        .field("session", idx)
                        .field("attempt", attempt)
                        .field("reason", reason)
                        .field("delay_s", delay_s)
                });
                self.tracer.span_exit_with(attempt_span, now.micros() as i64, |ev| {
                    ev.field("outcome", "retry").field("reason", reason)
                });
                // The backoff window's end is decided now, so the span
                // closes immediately with a future timestamp.
                let backoff =
                    self.tracer.span_enter_with(vc_span, now.micros() as i64, "vc.backoff", |ev| {
                        ev.field("session", idx).field("attempt", attempt)
                    });
                self.tracer
                    .span_exit(backoff, (now + SimSpan(delay_s_micros as i64)).micros() as i64);
                self.pending.schedule(now + SimSpan(delay_s_micros as i64), Event::RetryVc(idx));
                // Blocking sessions keep waiting through retries;
                // best-effort ones start IP-routed immediately.
                vc.wait_for_circuit
            }
            RecoveryAction::FallbackToIp => {
                self.ftel.fallback_ip.inc();
                if let Some(tl) = self.tl() {
                    tl.add(series::DRIVER_FALLBACKS, now.micros(), 1.0);
                }
                self.record_recovery_latency(waited_s);
                self.sessions[idx].vc_given_up = true;
                self.tracer.span_exit_with(attempt_span, now.micros() as i64, |ev| {
                    ev.field("outcome", "fallback_ip").field("reason", reason)
                });
                self.tracer.span_exit_with(vc_span, now.micros() as i64, |ev| {
                    ev.field("outcome", "fallback_ip")
                });
                self.sessions[idx].vc_span = SpanId::NONE;
                let marker = self.tracer.span_enter_with(
                    self.sessions[idx].span,
                    now.micros() as i64,
                    "session.fallback",
                    |ev| ev.field("session", idx).field("reason", reason),
                );
                self.tracer.span_exit(marker, now.micros() as i64);
                self.ftel.tracer.emit_with(|| {
                    TraceEvent::new(now.micros() as i64, "recovery.fallback")
                        .field("session", idx)
                        .field("attempts", attempt)
                        .field("reason", reason)
                });
                false
            }
            RecoveryAction::GiveUp => {
                self.record_recovery_latency(waited_s);
                self.sessions[idx].vc_given_up = true;
                self.tracer.span_exit_with(attempt_span, now.micros() as i64, |ev| {
                    ev.field("outcome", "giveup").field("reason", reason)
                });
                self.tracer.span_exit_with(vc_span, now.micros() as i64, |ev| {
                    ev.field("outcome", "giveup")
                });
                self.sessions[idx].vc_span = SpanId::NONE;
                self.ftel.tracer.emit_with(|| {
                    TraceEvent::new(now.micros() as i64, "recovery.giveup")
                        .field("session", idx)
                        .field("attempts", attempt)
                        .field("reason", reason)
                });
                // Transfers still run (the paper's workloads move with
                // or without a circuit); only the circuit is abandoned.
                false
            }
        }
    }

    fn record_recovery_latency(&mut self, waited_s: f64) {
        self.ftel.recovery_latency.record(waited_s);
        self.recovery_lat_sum_s += waited_s;
        self.recovery_lat_n += 1;
    }

    fn retry_vc(&mut self, idx: usize) {
        let s = &self.sessions[idx];
        if s.done || s.vc_given_up || s.vc.is_some() {
            return;
        }
        if !self.try_establish_vc(idx) {
            self.launch_ready_jobs(idx);
        }
    }

    /// Injected mid-reservation teardown: the provider preempts the
    /// circuit. In-flight transfers lose their guarantee and finish
    /// best-effort; the session does not re-request.
    fn preempt_vc(&mut self, idx: usize) {
        let now = self.sim.now();
        let Some((id, _, _)) = self.sessions[idx].vc else {
            return;
        };
        if self.sessions[idx].done {
            return;
        }
        if let Some(idc) = self.idc.as_mut() {
            let _ = idc.teardown(id, now);
        }
        self.sessions[idx].vc = None;
        self.sessions[idx].vc_given_up = true;
        let flows: Vec<FlowId> =
            self.in_flight.values().filter(|f| f.session == idx).map(|f| f.flow).collect();
        for fid in flows {
            self.sim.set_flow_guarantee(fid, 0.0);
        }
        if let Some(f) = self.faults.as_mut() {
            f.note_preemption();
        }
        self.ftel.count_injected_at(FaultKind::Preemption, now.micros());
        self.ftel.tracer.emit_with(|| {
            TraceEvent::new(now.micros() as i64, "fault.injected")
                .field("fault", FaultKind::Preemption.as_str())
                .field("session", idx)
        });
    }

    fn apply_link_flap(&mut self, i: usize) {
        let Some(flap) = self.faults.as_ref().and_then(|f| f.link_flaps().get(i).cloned()) else {
            return;
        };
        let Some((src, dst)) = flap.link.split_once("->") else {
            return;
        };
        let Some(lid) = self.sim.link_by_names(src, dst) else {
            return;
        };
        let orig = self.sim.graph().link(lid).capacity_bps;
        if !self.sim.set_link_capacity(lid, orig * flap.residual_frac) {
            return;
        }
        self.flap_orig.insert(i, (lid, orig));
        if let Some(f) = self.faults.as_mut() {
            f.note_link_flap();
        }
        self.ftel.count_injected_at(FaultKind::LinkFlap, self.sim.now().micros());
        let t_us = self.sim.now().micros() as i64;
        self.ftel.tracer.emit_with(|| {
            TraceEvent::new(t_us, "fault.injected")
                .field("fault", FaultKind::LinkFlap.as_str())
                .field("link", flap.link.as_str())
                .field("residual_frac", flap.residual_frac)
        });
    }

    fn restore_link(&mut self, i: usize) {
        let Some((lid, orig)) = self.flap_orig.remove(&i) else {
            return;
        };
        self.sim.set_link_capacity(lid, orig);
        let t_us = self.sim.now().micros() as i64;
        self.ftel.tracer.emit_with(|| {
            TraceEvent::new(t_us, "fault.cleared")
                .field("fault", FaultKind::LinkFlap.as_str())
                .field("flap", i)
        });
    }

    /// Launches jobs until the session's concurrency target is met.
    fn launch_ready_jobs(&mut self, idx: usize) {
        loop {
            let job = {
                let s = &self.sessions[idx];
                if s.done || s.in_flight >= s.spec.concurrency {
                    None
                } else {
                    s.spec.jobs.get(s.next_job).cloned()
                }
            };
            let Some(job) = job else { break };
            let job_index = self.sessions[idx].next_job;
            let launched = self.launch_job(idx, job_index, job);
            let s = &mut self.sessions[idx];
            s.next_job += 1;
            if launched {
                s.in_flight += 1;
            }
        }
    }

    /// Returns whether a flow was actually started; jobs between
    /// disconnected clusters are dropped.
    fn launch_job(&mut self, idx: usize, job_index: usize, job: TransferJob) -> bool {
        let (src, dst) = (self.sessions[idx].src, self.sessions[idx].dst);
        let Some(path) = self.path_between(src, dst) else {
            return false;
        };
        // Failure draws come from a stream keyed by (session, job) so
        // one session's shape never perturbs another's outcomes.
        let mut fail_rng = component_rng(self.seed, &format!("gridftp-fail/{idx}/{job_index}"));
        let mut prepared: PreparedTransfer = prepare_transfer(
            self.sim.graph(),
            &path,
            &self.clusters[src.0],
            &self.clusters[dst.0],
            job,
            &self.tcp,
            self.noise,
            self.failures,
            self.control_overhead_s,
            &mut self.rng,
            &mut fail_rng,
        );
        // Injected server restart: forced failure penalty on top of
        // whatever the probabilistic model drew.
        let forced = self.faults.as_mut().is_some_and(|f| f.server_restart(idx, job_index as u32));
        if forced {
            prepared.overhead_s += self.failures.sample_forced_penalty_s(&mut fail_rng);
            prepared.failed = true;
            self.ftel.count_injected_at(FaultKind::ServerRestart, self.sim.now().micros());
            let t_us = self.sim.now().micros() as i64;
            self.ftel.tracer.emit_with(|| {
                TraceEvent::new(t_us, "fault.injected")
                    .field("fault", FaultKind::ServerRestart.as_str())
                    .field("session", idx)
                    .field("job", job_index)
            });
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        let mut spec = prepared.spec.with_tag(tag);
        // Circuit guarantee, shared across the session's concurrency.
        if let Some((_, ready, rate)) = self.sessions[idx].vc {
            if self.sim.now() >= ready {
                spec.min_rate_bps = rate / f64::from(self.sessions[idx].spec.concurrency);
            }
        }
        let flow = self.sim.add_flow(spec);
        if let Some(t) = &self.telemetry {
            t.transfers_started.inc();
            let (bytes, streams, stripes) =
                (prepared.job.size_bytes, prepared.job.streams, prepared.job.stripes);
            t.tracer.emit_with(|| {
                TraceEvent::new(self.sim.now().micros() as i64, "transfer.start")
                    .field("tag", tag)
                    .field("session", idx)
                    .field("bytes", bytes)
                    .field("streams", streams)
                    .field("stripes", stripes)
            });
        }
        let t_us = self.sim.now().micros() as i64;
        if !self.sessions[idx].wait_span.is_none() {
            self.tracer.span_exit(self.sessions[idx].wait_span, t_us);
            self.sessions[idx].wait_span = SpanId::NONE;
        }
        let bytes = prepared.job.size_bytes;
        let span =
            self.tracer.span_enter_with(self.sessions[idx].span, t_us, "session.transfer", |ev| {
                ev.field("tag", tag).field("session", idx).field("bytes", bytes)
            });
        self.in_flight.insert(
            tag,
            InFlight {
                session: idx,
                job: prepared.job,
                flow,
                overhead_s: prepared.overhead_s,
                lossy: prepared.lossy,
                failed: prepared.failed,
                span,
            },
        );
        true
    }

    fn handle_completion(&mut self, c: FlowCompletion) {
        if c.tag == BACKGROUND_TAG {
            return;
        }
        let Some(info) = self.in_flight.remove(&c.tag) else {
            return;
        };
        let idx = info.session;
        let (src, dst) = (self.sessions[idx].src, self.sessions[idx].dst);
        // Logged duration includes slow start and control overhead.
        let duration_us = ((c.end - c.start).micros() as f64 + info.overhead_s * 1e6) as i64;
        let (server, remote) = match info.job.logged_as {
            TransferType::Retr => (&self.clusters[src.0].name, &self.clusters[dst.0].name),
            TransferType::Store => (&self.clusters[dst.0].name, &self.clusters[src.0].name),
        };
        self.tstat.push(TransferStat {
            start_unix_us: self.sim.to_unix_us(c.start),
            session: idx,
            num_streams: info.job.streams,
            lossy: info.lossy,
            failed: info.failed,
        });
        self.log.push(TransferRecord {
            transfer_type: info.job.logged_as,
            size_bytes: info.job.size_bytes,
            start_unix_us: self.sim.to_unix_us(c.start),
            duration_us,
            server: server.clone(),
            remote: Some(remote.clone()),
            num_streams: info.job.streams,
            num_stripes: info.job.stripes,
            tcp_buffer_bytes: info.job.tcp_buffer_bytes,
            block_size_bytes: info.job.block_size_bytes,
            src_kind: Some(info.job.src_kind),
            dst_kind: Some(info.job.dst_kind),
        });
        if let Some(t) = &self.telemetry {
            let duration_s = duration_us as f64 / 1e6;
            let mbps = if duration_s > 0.0 {
                info.job.size_bytes as f64 * 8.0 / duration_s / 1e6
            } else {
                0.0
            };
            t.transfers_completed.inc();
            t.transferred_bytes.add(info.job.size_bytes);
            t.throughput_mbps.record(mbps);
            if let Some(tl) = &t.timeline {
                tl.add(series::DRIVER_TRANSFERS, c.end.micros(), 1.0);
            }
            let (bytes, streams, lossy, failed) =
                (info.job.size_bytes, info.job.streams, info.lossy, info.failed);
            t.tracer.emit_with(|| {
                TraceEvent::new(c.end.micros() as i64, "transfer.complete")
                    .field("tag", c.tag)
                    .field("session", idx)
                    .field("bytes", bytes)
                    .field("duration_s", duration_s)
                    .field("mbps", mbps)
                    .field("streams", streams)
                    .field("lossy", lossy)
                    .field("failed", failed)
            });
        }
        self.tracer.span_exit(info.span, c.end.micros() as i64);

        // Session bookkeeping: free a slot and continue after the gap.
        let s = &mut self.sessions[idx];
        s.in_flight -= 1;
        if s.next_job < s.spec.jobs.len() {
            let gap =
                SimSpan::from_secs_f64(info.overhead_s + s.spec.inter_transfer_gap_s.max(0.0));
            self.pending.schedule(self.sim.now() + gap, Event::LaunchNext(idx));
        } else if s.in_flight == 0 && !s.done {
            s.done = true;
            let session_span = s.span;
            if let (Some((id, _, _)), Some(idc)) = (s.vc, self.idc.as_mut()) {
                // The session owns this reservation, so it is known to
                // the IDC; teardown is also idempotent.
                let _ = idc.teardown(id, self.sim.now());
            }
            self.tracer.span_exit(session_span, self.sim.now().micros() as i64);
            if let Some(t) = &self.telemetry {
                t.sessions_completed.inc();
                if let Some(tl) = &t.timeline {
                    tl.add(series::DRIVER_SESSION_COMPLETIONS, self.sim.now().micros(), 1.0);
                }
                t.tracer.emit_with(|| {
                    TraceEvent::new(self.sim.now().micros() as i64, "transfer.session_complete")
                        .field("session", idx)
                });
            }
        }
    }

    /// Runs to completion: processes every scheduled event and every
    /// flow completion, then returns the usage log.
    ///
    /// `limit` bounds the simulation clock as a safety net against
    /// stalled flows.
    pub fn run(self, limit: SimTime) -> DriverOutput {
        self.run_core(limit).0
    }

    /// The drive loop proper, also reporting the lane-level stats the
    /// sharded coordinator needs to pool runs.
    fn run_core(mut self, limit: SimTime) -> (DriverOutput, LaneStats) {
        // Host-perf phase around the whole drive loop; items = kernel
        // pops + flow completions. Disabled handle = one branch here.
        let perf = self.telemetry_ctx.as_ref().map(|c| c.perf.clone()).unwrap_or_default();
        let mut perf_phase = perf.phase("simulate");
        let mut completions: u64 = 0;
        let start_us = self.sim.now().micros() as i64;
        self.run_span = match self.lane_root {
            Some((parent, lane)) => {
                self.tracer
                    .span_enter_with(parent, start_us, "driver.lane", |ev| ev.field("lane", lane))
            }
            None => self.tracer.span_enter(SpanId::NONE, start_us, "driver.run"),
        };
        // Scheduled link flaps from the fault plan become calendar
        // events before anything else runs.
        let flap_windows: Vec<(usize, f64, f64)> = self
            .faults
            .as_ref()
            .map(|f| {
                f.link_flaps()
                    .iter()
                    .enumerate()
                    .map(|(i, flap)| (i, flap.at_s, flap.duration_s))
                    .collect()
            })
            .unwrap_or_default();
        for (i, at_s, duration_s) in flap_windows {
            self.pending.schedule(SimTime::from_secs_f64(at_s), Event::LinkFlap(i));
            self.pending.schedule(SimTime::from_secs_f64(at_s + duration_s), Event::LinkRestore(i));
        }
        loop {
            let t_event = self.pending.peek_time();
            let t_comp = self.sim.peek_completion();
            // Which timeline advances next? Completions win ties so a
            // freed slot is visible to the event sharing its instant.
            let next_is_completion = match (t_event, t_comp) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(te), Some(tc)) => tc <= te,
            };
            if next_is_completion {
                let Some(tc) = t_comp else { break };
                if tc > limit {
                    break;
                }
                let done = self.sim.run_until(tc);
                completions += done.len() as u64;
                for c in done {
                    self.handle_completion(c);
                }
            } else {
                let Some(te) = t_event else { break };
                if te > limit {
                    break;
                }
                let done = self.sim.run_until(te);
                completions += done.len() as u64;
                for c in done {
                    self.handle_completion(c);
                }
                if let Some((_, ev)) = self.pending.pop() {
                    self.dispatch(ev);
                }
            }
        }
        self.tracer.span_exit(self.run_span, self.sim.now().micros() as i64);
        let idc_stats = self.idc.as_ref().map(gvc_oscars::Idc::stats);
        let open_reservations = self.idc.as_ref().map(Idc::open_reservations);
        let resilience = self.recovery.map(|_| ResilienceReport {
            vc_requested: self.vc_requested,
            vc_established: self.vc_established,
            faults_injected: self.faults.as_ref().map_or(0, FaultInjector::injected_total),
            retries: self.ftel.retries.get(),
            fallbacks: self.ftel.fallback_ip.get(),
            preemptions: self.ftel.injected_count(FaultKind::Preemption),
            mean_recovery_latency_s: if self.recovery_lat_n > 0 {
                self.recovery_lat_sum_s / self.recovery_lat_n as f64
            } else {
                0.0
            },
        });
        let stats = LaneStats {
            events: self.pending.dispatched() + completions,
            recovery_lat_sum_s: self.recovery_lat_sum_s,
            recovery_lat_n: self.recovery_lat_n,
        };
        perf_phase.items(stats.events);
        drop(perf_phase);
        if let Some(t) = &self.telemetry {
            t.tracer.flush();
        }
        self.ftel.tracer.flush();
        self.tstat.sort_by_key(|t| t.start_unix_us);
        (
            DriverOutput {
                log: Dataset::from_records(self.log),
                sim: self.sim,
                idc_stats,
                tstat: TstatReport { transfers: self.tstat },
                resilience,
                open_reservations,
            },
            stats,
        )
    }

    /// Partitions the recorded schedule into independent event lanes:
    /// a union-find over the resources each scheduled item can touch
    /// — its endpoint clusters, every link on its routed path, and
    /// (for circuit-requesting sessions) the shared IDC calendar.
    /// Items in the same component must run in one lane; disjoint
    /// components never interact and can run in parallel.
    ///
    /// The partition depends only on the workload and topology, never
    /// on the shard count, which is what makes sharded outputs
    /// byte-identical for every [`Shards`] setting.
    fn lane_partition(&self) -> Vec<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        enum LaneKey {
            /// The OSCARS calendar: every circuit-requesting session
            /// contends for the same reservable bandwidth, whatever
            /// path CSPF ends up picking for it.
            Idc,
            Cluster(usize),
            Link(u32),
            Resource(u32),
        }
        let mut part = ResourcePartition::new();
        let mut idx = 0;
        for (_, src, dst, spec) in &self.script.sessions {
            let mut keys = vec![LaneKey::Cluster(src.0), LaneKey::Cluster(dst.0)];
            if let Some(path) = self.path_between(*src, *dst) {
                keys.extend(path.links.iter().map(|&l| LaneKey::Link(l.0)));
            }
            if spec.vc.is_some() && self.idc.is_some() {
                keys.push(LaneKey::Idc);
            }
            part.add_item(idx, keys);
            idx += 1;
        }
        for (_, spec) in &self.script.backgrounds {
            let keys: Vec<LaneKey> = spec
                .route
                .iter()
                .map(|&l| LaneKey::Link(l.0))
                .chain(spec.resources.iter().map(|&r| LaneKey::Resource(r.0)))
                .collect();
            part.add_item(idx, keys);
            idx += 1;
        }
        for (_, cluster, _) in &self.script.resizes {
            part.add_item(idx, [LaneKey::Cluster(cluster.0)]);
            idx += 1;
        }
        for flap in self.faults.iter().flat_map(FaultInjector::link_flaps) {
            let key = flap
                .link
                .split_once("->")
                .and_then(|(s, d)| self.sim.link_by_names(s, d))
                .map(|l| LaneKey::Link(l.0));
            part.add_item(idx, key);
            idx += 1;
        }
        part.lanes()
    }

    /// Number of independent event lanes the current schedule splits
    /// into (1 = [`Driver::run_sharded`] degenerates to [`Driver::run`]).
    pub fn lane_count(&self) -> usize {
        self.lane_partition().len().max(1)
    }

    /// Builds the sub-driver for one lane: a fresh simulator over the
    /// same topology, every cluster and session slot registered in
    /// global order (preserving ids and per-session RNG streams), but
    /// only the lane's own items scheduled.
    fn build_lane(&self, k: usize, members: &[usize], parent: SpanId) -> LaneParts {
        let s_n = self.script.sessions.len();
        let b_n = self.script.backgrounds.len();
        let r_n = self.script.resizes.len();
        let owns = |i: usize| members.binary_search(&i).is_ok();
        let mut sim = NetworkSim::new(self.sim.graph().clone(), self.sim.to_unix_us(SimTime::ZERO));
        for link in self.sim.snmp().monitored_links() {
            sim.monitor_link(link);
        }
        let mut lane = Driver::new(sim, self.seed);
        // Each lane draws server noise from its own labelled stream;
        // the label depends on the (shard-count-invariant) lane index,
        // so every sharded run of a workload sees the same draws.
        lane.rng = component_rng(self.seed, &format!("gridftp-driver/lane{k}"));
        lane.tcp = self.tcp;
        lane.noise = self.noise;
        lane.failures = self.failures;
        lane.control_overhead_s = self.control_overhead_s;
        lane.recovery = self.recovery;
        lane.lane_root = Some((parent, k));
        // At most one lane contains circuit-requesting sessions (they
        // all share the IDC lane key), so its fork keeps the legacy
        // reservation-id space and sees every reservation.
        let owns_vc = members.iter().any(|&i| i < s_n && self.script.sessions[i].3.vc.is_some());
        if owns_vc {
            lane.idc = self.idc.as_ref().map(|idc| idc.fork_with_id_base(0));
        }
        if let Some(f) = &self.faults {
            let mut plan = f.plan().clone();
            // Only the lane's own flaps: flap indices re-number within
            // the lane, matching the LinkFlap events its run schedules.
            plan.link_flaps = members
                .iter()
                .filter_map(|&i| i.checked_sub(s_n + b_n + r_n))
                .filter_map(|fi| f.plan().link_flaps.get(fi).cloned())
                .collect();
            lane.faults = Some(FaultInjector::new(plan));
        }
        let mut sink = None;
        let mut registry = None;
        let mut timeline = None;
        if let Some(ctx) = &self.telemetry_ctx {
            let tracer = if ctx.tracer.enabled() {
                let buf = Arc::new(BufferSink::new());
                sink = Some(Arc::clone(&buf));
                // Disjoint span-id blocks per lane: ids stay unique
                // after the lane buffers concatenate.
                Tracer::to_sink_with_span_base(buf, (k as u64 + 1) << 40)
            } else {
                Tracer::disabled()
            };
            // Each lane records into its own flight recorder (same
            // window width); the coordinator absorbs them in lane
            // order, so the merged timeline is shard-invariant.
            timeline = ctx.timeline.as_ref().map(|tl| TimelineHandle::new(tl.width_us()));
            let lane_ctx = Telemetry {
                registry: Arc::new(Registry::new()),
                tracer,
                perf: Perf::disabled(),
                timeline: timeline.clone(),
            };
            registry = Some(Arc::clone(&lane_ctx.registry));
            lane = lane.with_telemetry(&lane_ctx);
        }
        for (name, node, caps, n) in &self.script.clusters {
            lane.register_cluster(name, *node, *caps, *n);
        }
        for (i, (at, src, dst, spec)) in self.script.sessions.iter().enumerate() {
            lane.push_session_slot(*src, *dst, spec.clone());
            if owns(i) {
                lane.pending.schedule(*at, Event::StartSession(i));
            }
        }
        for (j, (at, spec)) in self.script.backgrounds.iter().enumerate() {
            if owns(s_n + j) {
                lane.pending.schedule(*at, Event::InjectBackground(Box::new(spec.clone())));
            }
        }
        for (r, (at, cluster, n)) in self.script.resizes.iter().enumerate() {
            if owns(s_n + b_n + r) {
                lane.pending.schedule(*at, Event::ResizeCluster(*cluster, *n));
            }
        }
        (lane, sink, registry, timeline)
    }

    /// Runs the recorded schedule as independent event lanes —
    /// potentially in parallel — and merges the results through a
    /// deterministic, lane-ordered fold.
    ///
    /// Determinism contract:
    ///
    /// * outputs are byte-identical for every `shards` value and for
    ///   parallel vs. `--no-default-features` sequential builds;
    /// * a schedule that partitions into a single lane (everything
    ///   shares a path, which includes the paper's one-pair studies)
    ///   delegates to [`Driver::run`] and is bit-for-bit the legacy
    ///   serial run;
    /// * a multi-lane schedule is its own deterministic mode: the
    ///   serial kernel threads one noise stream through all sessions
    ///   in event order, while lanes draw from per-lane streams, so
    ///   multi-lane outputs are reproducible but not byte-equal to
    ///   [`Driver::run`] (see `docs/kernel.md`).
    pub fn run_sharded(mut self, limit: SimTime, shards: Shards) -> DriverOutput {
        let lanes = self.lane_partition();
        if lanes.len() <= 1 {
            return self.run(limit);
        }
        let perf = self.telemetry_ctx.as_ref().map(|c| c.perf.clone()).unwrap_or_default();
        let mut perf_phase = perf.phase("simulate");
        // Events recorded on the coordinator's calendar are replayed
        // into the lanes instead; close their queue-wait spans as
        // cancelled so the trace stays balanced.
        self.pending.clear();
        let lane_count = lanes.len();
        let run_span = self.tracer.span_enter_with(
            SpanId::NONE,
            self.sim.now().micros() as i64,
            "driver.run",
            |ev| ev.field("lanes", lane_count),
        );
        let mut drivers = Vec::with_capacity(lane_count);
        let mut sinks = Vec::with_capacity(lane_count);
        let mut registries = Vec::with_capacity(lane_count);
        let mut timelines = Vec::with_capacity(lane_count);
        for (k, members) in lanes.iter().enumerate() {
            let (d, sink, registry, timeline) = self.build_lane(k, members, run_span);
            drivers.push(d);
            sinks.push(sink);
            registries.push(registry);
            timelines.push(timeline);
        }
        let results = run_lanes(drivers, limit, shards.threads());
        // Stitch the trace: coordinator events first, then each
        // lane's buffer whole, in lane order. Within-lane order is
        // the lane's own emit order; the offline tools sort by
        // timestamp where they need a global timeline.
        for sink in sinks.into_iter().flatten() {
            for ev in sink.take() {
                self.tracer.emit_with(move || ev);
            }
        }
        if let Some(ctx) = &self.telemetry_ctx {
            for registry in registries.into_iter().flatten() {
                ctx.registry.merge_from(&registry);
            }
            // Fold lane flight recorders in lane order. Per-window
            // cell merges are commutative, so the merged timeline is
            // identical for every shard count and thread schedule.
            if let Some(parent_tl) = &ctx.timeline {
                for tl in timelines.into_iter().flatten() {
                    parent_tl.absorb(&tl);
                }
            }
        }
        let end_us = results.iter().map(|(o, _)| o.sim.now().micros() as i64).max().unwrap_or(0);
        self.tracer.span_exit(run_span, end_us);
        let mut records = Vec::new();
        let mut transfers = Vec::new();
        let mut idc_sum = gvc_oscars::IdcStats::default();
        let mut open_sum = 0usize;
        let mut events = 0u64;
        let mut rep = ResilienceReport {
            vc_requested: 0,
            vc_established: 0,
            faults_injected: 0,
            retries: 0,
            fallbacks: 0,
            preemptions: 0,
            mean_recovery_latency_s: 0.0,
        };
        let (mut lat_sum, mut lat_n) = (0.0_f64, 0_u64);
        for (o, ls) in results {
            self.sim.absorb_snmp(o.sim.snmp());
            self.sim.absorb_bg_snmp(o.sim.bg_snmp());
            records.extend(o.log.into_records());
            transfers.extend(o.tstat.transfers);
            if let Some(s) = o.idc_stats {
                idc_sum.requests += s.requests;
                idc_sum.admitted += s.admitted;
                idc_sum.blocked += s.blocked;
            }
            open_sum += o.open_reservations.unwrap_or(0);
            if let Some(r) = o.resilience {
                rep.vc_requested += r.vc_requested;
                rep.vc_established += r.vc_established;
                rep.faults_injected += r.faults_injected;
                rep.retries += r.retries;
                rep.fallbacks += r.fallbacks;
                rep.preemptions += r.preemptions;
            }
            lat_sum += ls.recovery_lat_sum_s;
            lat_n += ls.recovery_lat_n;
            events += ls.events;
        }
        rep.mean_recovery_latency_s = if lat_n > 0 { lat_sum / lat_n as f64 } else { 0.0 };
        perf_phase.items(events);
        drop(perf_phase);
        if let Some(t) = &self.telemetry {
            t.tracer.flush();
        }
        self.ftel.tracer.flush();
        // Stable sort: equal start times keep lane-concatenation
        // order, which is itself deterministic.
        transfers.sort_by_key(|t| t.start_unix_us);
        DriverOutput {
            log: Dataset::from_records(records),
            sim: self.sim,
            idc_stats: self.idc.as_ref().map(|_| idc_sum),
            tstat: TstatReport { transfers },
            resilience: self.recovery.map(|_| rep),
            open_reservations: self.idc.as_ref().map(|_| open_sum),
        }
    }
}

/// Executes lane sub-drivers, returning results in lane order. With
/// the `parallel` feature and more than one worker, lanes run via
/// recursive `rayon::join` splits bounded by the worker budget; the
/// halves concatenate back in lane order however execution
/// interleaves, so results never depend on scheduling.
#[cfg(feature = "parallel")]
fn run_lanes(lanes: Vec<Driver>, limit: SimTime, threads: usize) -> Vec<(DriverOutput, LaneStats)> {
    fn go(
        mut lanes: Vec<Driver>,
        limit: SimTime,
        workers: usize,
    ) -> Vec<(DriverOutput, LaneStats)> {
        if workers <= 1 || lanes.len() <= 1 {
            return lanes.into_iter().map(|d| d.run_core(limit)).collect();
        }
        let right = lanes.split_off(lanes.len() / 2);
        let (left_workers, right_workers) = (workers - workers / 2, workers / 2);
        let (mut l, r) =
            rayon::join(|| go(lanes, limit, left_workers), || go(right, limit, right_workers));
        l.extend(r);
        l
    }
    go(lanes, limit, threads)
}

/// Sequential fallback: lanes run one after another, in lane order.
#[cfg(not(feature = "parallel"))]
fn run_lanes(
    lanes: Vec<Driver>,
    limit: SimTime,
    _threads: usize,
) -> Vec<(DriverOutput, LaneStats)> {
    lanes.into_iter().map(|d| d.run_core(limit)).collect()
}

/// Per-transfer connection statistics, in the spirit of the `tstat`
/// tool the paper plans to use to test its rare-loss hypothesis
/// (§VII-B): which transfers actually saw a loss event, and which
/// failed and restarted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferStat {
    /// Start time, unix µs (aligns with the log's start order).
    pub start_unix_us: i64,
    /// Index of the session that ran this transfer.
    pub session: usize,
    /// Parallel streams used.
    pub num_streams: u32,
    /// Did a TCP loss event hit this transfer?
    pub lossy: bool,
    /// Did the transfer fail and restart mid-flight?
    pub failed: bool,
}

/// The per-run connection report.
#[derive(Debug, Clone, Default)]
pub struct TstatReport {
    /// One entry per logged transfer, in start order.
    pub transfers: Vec<TransferStat>,
}

impl TstatReport {
    /// Fraction of transfers that saw a loss event — the paper's
    /// hypothesis is that this is tiny.
    pub fn loss_fraction(&self) -> f64 {
        if self.transfers.is_empty() {
            return 0.0;
        }
        self.transfers.iter().filter(|t| t.lossy).count() as f64 / self.transfers.len() as f64
    }

    /// Fraction of transfers that failed and restarted.
    pub fn failure_fraction(&self) -> f64 {
        if self.transfers.is_empty() {
            return 0.0;
        }
        self.transfers.iter().filter(|t| t.failed).count() as f64 / self.transfers.len() as f64
    }
}

/// Fault/recovery outcome summary for one run, produced whenever a
/// recovery policy was configured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceReport {
    /// Sessions that requested a circuit.
    pub vc_requested: u64,
    /// Sessions whose circuit was eventually established.
    pub vc_established: u64,
    /// Faults the injector actually delivered (all kinds).
    pub faults_injected: u64,
    /// Establishment attempts retried.
    pub retries: u64,
    /// Sessions that fell back to the routed IP path.
    pub fallbacks: u64,
    /// Circuits preempted mid-reservation.
    pub preemptions: u64,
    /// Mean first-attempt-to-outcome latency over sessions that needed
    /// recovery, seconds.
    pub mean_recovery_latency_s: f64,
}

impl ResilienceReport {
    /// Fraction of circuit-requesting sessions that got one (1.0 when
    /// none asked — nothing failed).
    pub fn session_success_rate(&self) -> f64 {
        if self.vc_requested == 0 {
            1.0
        } else {
            self.vc_established as f64 / self.vc_requested as f64
        }
    }
}

/// Results of a driver run.
pub struct DriverOutput {
    /// The GridFTP usage log.
    pub log: Dataset,
    /// The simulator (for SNMP counters).
    pub sim: NetworkSim,
    /// IDC admission stats when circuits were in play.
    pub idc_stats: Option<gvc_oscars::IdcStats>,
    /// Per-transfer loss/failure statistics (tstat-style).
    pub tstat: TstatReport,
    /// Fault/recovery summary (when a recovery policy was active).
    pub resilience: Option<ResilienceReport>,
    /// Reservations still open at the IDC after the run — must be 0
    /// when every session completed or fell back (no leaks).
    pub open_reservations: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::EndpointKind;
    use gvc_net::background::{generate_background, BackgroundConfig};
    use gvc_oscars::SetupDelayModel;
    use gvc_topology::{study_topology, Site};
    use proptest::prelude::*;

    fn base_driver(seed: u64) -> (Driver, ClusterId, ClusterId) {
        let t = study_topology();
        let (nersc, ornl) = (t.dtn(Site::Nersc), t.dtn(Site::Ornl));
        let sim = NetworkSim::new(t.graph, 0);
        let mut d = Driver::new(sim, seed);
        let a = d.register_cluster("dtn.nersc.gov", nersc, ServerCaps::default(), 2);
        let b = d.register_cluster("dtn.ornl.gov", ornl, ServerCaps::default(), 2);
        (d, a, b)
    }

    fn job(mb: u64) -> TransferJob {
        TransferJob { size_bytes: mb << 20, ..TransferJob::default() }
    }

    #[test]
    fn single_transfer_produces_one_record() {
        let (mut d, a, b) = base_driver(1);
        d.schedule_transfer(SimTime::from_secs(10), a, b, job(1024));
        let out = d.run(SimTime::from_secs(10_000));
        assert_eq!(out.log.len(), 1);
        let r = &out.log.records()[0];
        assert_eq!(r.size_bytes, 1024 << 20);
        assert_eq!(r.start_unix_us, 10_000_000);
        assert!(r.duration_us > 0);
        assert!(r.throughput_mbps() > 50.0, "tp={}", r.throughput_mbps());
        assert_eq!(r.server, "dtn.nersc.gov");
        assert_eq!(r.remote.as_deref(), Some("dtn.ornl.gov"));
    }

    #[test]
    fn sequential_session_is_ordered_with_gaps() {
        let (mut d, a, b) = base_driver(2);
        let spec = SessionSpec::sequential(vec![job(256), job(256), job(256)], 5.0);
        d.schedule_session(SimTime::ZERO, a, b, spec);
        let out = d.run(SimTime::from_secs(100_000));
        assert_eq!(out.log.len(), 3);
        let recs = out.log.records();
        for w in recs.windows(2) {
            let gap_us = w[1].start_unix_us - w[0].end_unix_us();
            assert!(gap_us >= 4_900_000, "gap {gap_us} too small");
        }
    }

    #[test]
    fn concurrent_session_overlaps() {
        let (mut d, a, b) = base_driver(3);
        let spec = SessionSpec::sequential(vec![job(512); 4], 0.0).with_concurrency(4);
        d.schedule_session(SimTime::ZERO, a, b, spec);
        let out = d.run(SimTime::from_secs(100_000));
        assert_eq!(out.log.len(), 4);
        let recs = out.log.records();
        // All four start together: negative gap between consecutive
        // log entries (end of one vs start of next).
        let neg = recs.windows(2).filter(|w| w[1].start_unix_us < w[0].end_unix_us()).count();
        assert!(neg >= 3, "expected overlapping transfers, got {neg}");
    }

    #[test]
    fn concurrency_reduces_per_transfer_throughput() {
        // Same total work; concurrent transfers share the node cap.
        // Quiet noise keeps the per-transfer caps above the fair
        // share, so contention is what separates the two runs.
        let quiet = ServerNoise { mean: 1.0, sd: 0.0 };
        let (mut d1, a1, b1) = base_driver(4);
        d1 = d1.with_noise(quiet);
        d1.schedule_session(
            SimTime::ZERO,
            a1,
            b1,
            SessionSpec::sequential(vec![job(1024); 3], 0.0),
        );
        let seq = d1.run(SimTime::from_secs(1_000_000));
        let (mut d2, a2, b2) = base_driver(4);
        d2 = d2.with_noise(quiet);
        d2.schedule_session(
            SimTime::ZERO,
            a2,
            b2,
            SessionSpec::sequential(vec![job(1024); 3], 0.0).with_concurrency(3),
        );
        let conc = d2.run(SimTime::from_secs(1_000_000));
        let mean = |ds: &Dataset| {
            let tps = ds.throughputs_mbps();
            tps.iter().sum::<f64>() / tps.len() as f64
        };
        assert!(
            mean(&conc.log) < mean(&seq.log),
            "concurrent {} !< sequential {}",
            mean(&conc.log),
            mean(&seq.log)
        );
    }

    #[test]
    fn store_direction_swaps_server_and_remote() {
        let (mut d, a, b) = base_driver(5);
        let mut j = job(64);
        j.logged_as = TransferType::Store;
        d.schedule_transfer(SimTime::ZERO, a, b, j);
        let out = d.run(SimTime::from_secs(10_000));
        let r = &out.log.records()[0];
        assert_eq!(r.server, "dtn.ornl.gov");
        assert_eq!(r.remote.as_deref(), Some("dtn.nersc.gov"));
    }

    #[test]
    fn background_flows_not_logged_but_counted_by_snmp() {
        let t = study_topology();
        let path = t.path(Site::Nersc, Site::Ornl);
        let watch = path.links[2];
        let (nersc, ornl) = (t.dtn(Site::Nersc), t.dtn(Site::Ornl));
        let mut sim = NetworkSim::new(t.graph.clone(), 0);
        sim.monitor_link(watch);
        let mut d = Driver::new(sim, 6);
        let a = d.register_cluster("nersc", nersc, ServerCaps::default(), 1);
        let b = d.register_cluster("ornl", ornl, ServerCaps::default(), 1);
        let bg =
            generate_background(&t.graph, &BackgroundConfig::default(), SimTime::from_secs(120), 6);
        assert!(!bg.is_empty());
        d.schedule_background(bg);
        d.schedule_transfer(SimTime::ZERO, a, b, job(128));
        let out = d.run(SimTime::from_secs(100_000));
        assert_eq!(out.log.len(), 1, "background flows must not be logged");
        let snmp = out.sim.snmp().series(watch).unwrap();
        // Counter contains the transfer plus whatever background
        // crossed this link: at least the transfer's bytes.
        assert!(snmp.total_bytes() >= 128 << 20);
    }

    #[test]
    fn vc_session_gets_guarantee_and_waits_for_setup() {
        let t = study_topology();
        let (slac, bnl) = (t.dtn(Site::Slac), t.dtn(Site::Bnl));
        let idc = Idc::new(t.graph.clone(), SetupDelayModel::one_minute());
        let sim = NetworkSim::new(t.graph, 0);
        let mut d = Driver::new(sim, 7).with_idc(idc);
        let a = d.register_cluster("slac", slac, ServerCaps::default(), 1);
        let b = d.register_cluster("bnl", bnl, ServerCaps::default(), 1);
        let spec =
            SessionSpec::sequential(vec![job(512)], 0.0).with_vc(crate::session::VcRequestSpec {
                rate_bps: 1e9,
                max_duration_s: 3600.0,
                wait_for_circuit: true,
            });
        d.schedule_session(SimTime::ZERO, a, b, spec);
        let out = d.run(SimTime::from_secs(100_000));
        assert_eq!(out.log.len(), 1);
        // First transfer waits out the 1-minute setup delay.
        assert!(out.log.records()[0].start_unix_us >= 60_000_000);
        let stats = out.idc_stats.unwrap();
        assert_eq!(stats.admitted, 1);
    }

    #[test]
    fn telemetry_covers_kernel_idc_transfer_and_net() {
        use gvc_telemetry::RingSink;
        let t = study_topology();
        let (slac, bnl) = (t.dtn(Site::Slac), t.dtn(Site::Bnl));
        let idc = Idc::new(t.graph.clone(), SetupDelayModel::one_minute());
        let sim = NetworkSim::new(t.graph, 0);
        let ring = Arc::new(RingSink::new(4096));
        let ctx = Telemetry::with_sink(ring.clone());
        let mut d = Driver::new(sim, 7).with_idc(idc).with_telemetry(&ctx);
        let a = d.register_cluster("slac", slac, ServerCaps::default(), 1);
        let b = d.register_cluster("bnl", bnl, ServerCaps::default(), 1);
        let spec = SessionSpec::sequential(vec![job(512), job(256)], 1.0).with_vc(
            crate::session::VcRequestSpec {
                rate_bps: 1e9,
                max_duration_s: 3600.0,
                wait_for_circuit: true,
            },
        );
        d.schedule_session(SimTime::ZERO, a, b, spec);
        d.schedule_transfer(SimTime::from_secs(10), a, b, job(128));
        let out = d.run(SimTime::from_secs(100_000));
        assert_eq!(out.log.len(), 3);

        let reg = &ctx.registry;
        assert_eq!(reg.counter("gridftp_sessions_started_total", &[]).get(), 2);
        assert_eq!(reg.counter("gridftp_sessions_completed_total", &[]).get(), 2);
        assert_eq!(reg.counter("gridftp_transfers_started_total", &[]).get(), 3);
        assert_eq!(reg.counter("gridftp_transfers_completed_total", &[]).get(), 3);
        assert_eq!(
            reg.counter("gridftp_transferred_bytes_total", &[]).get(),
            (512 + 256 + 128) << 20
        );
        assert_eq!(reg.counter("idc_admitted_total", &[]).get(), 1);
        assert!(reg.counter("sim_events_dispatched_total", &[]).get() >= 3);
        assert!(reg.counter("net_fairshare_recomputations_total", &[]).get() >= 3);
        let tp =
            reg.histogram("gridftp_transfer_throughput_mbps", &[], Histogram::rate_mbps).snapshot();
        assert_eq!(tp.count(), 3);

        // All four subsystem namespaces appear in the trace.
        let kinds: std::collections::HashSet<&str> = ring.events().iter().map(|e| e.kind).collect();
        for expected in [
            "kernel.event",
            "idc.admit",
            "idc.provision",
            "idc.teardown",
            "transfer.session_start",
            "transfer.start",
            "transfer.complete",
            "transfer.session_complete",
            "net.fairshare",
            "span.start",
            "span.end",
        ] {
            assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
        }

        // The exposition text covers event-queue, admission, and
        // throughput metrics.
        let text = reg.render();
        for needle in [
            "sim_events_dispatched_total",
            "idc_admitted_total",
            "gridftp_transfer_throughput_mbps_bucket",
            "net_snmp_deposited_bytes_total",
            "sim_event_handle_seconds_bucket{class=\"start_session\"",
        ] {
            assert!(text.contains(needle), "exposition missing {needle}");
        }
    }

    #[test]
    fn session_spans_nest_and_survive_the_offline_checks() {
        use gvc_telemetry::RingSink;
        let t = study_topology();
        let (slac, bnl) = (t.dtn(Site::Slac), t.dtn(Site::Bnl));
        let idc = Idc::new(t.graph.clone(), SetupDelayModel::one_minute());
        let sim = NetworkSim::new(t.graph, 0);
        let ring = Arc::new(RingSink::new(16384));
        let ctx = Telemetry::with_sink(ring.clone());
        let mut d = Driver::new(sim, 7)
            .with_idc(idc)
            .with_recovery(RecoveryPolicy::default())
            .with_telemetry(&ctx);
        let a = d.register_cluster("slac", slac, ServerCaps::default(), 1);
        let b = d.register_cluster("bnl", bnl, ServerCaps::default(), 1);
        let spec = SessionSpec::sequential(vec![job(512), job(256)], 1.0).with_vc(
            crate::session::VcRequestSpec {
                rate_bps: 1e9,
                max_duration_s: 3600.0,
                wait_for_circuit: true,
            },
        );
        d.schedule_session(SimTime::ZERO, a, b, spec);
        let out = d.run(SimTime::from_secs(100_000));
        assert_eq!(out.log.len(), 2);

        // Round-trip the span stream through the offline toolchain.
        let text: String = ring
            .events()
            .iter()
            .map(gvc_telemetry::TraceEvent::to_json)
            .collect::<Vec<_>>()
            .join("\n");
        let model = gvc_telemetry::TraceModel::from_text(&text).expect("trace parses");
        let report = gvc_telemetry::check(&model, &gvc_telemetry::CheckConfig::default());
        assert!(report.clean(), "violations: {:?}", report.violations);

        let names: std::collections::HashSet<&str> =
            model.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            "driver.run",
            "session.run",
            "session.queue_wait",
            "session.vc_setup",
            "vc.attempt",
            "session.transfer",
            "kernel.queue_wait",
            "circuit.lifetime",
            "idc.setup",
        ] {
            assert!(names.contains(expected), "missing span {expected}: {names:?}");
        }

        // The one-minute setup delay shows up as the session's setup
        // phase: the first transfer cannot start before the circuit.
        let rows = gvc_telemetry::sessions(&model);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].setup_us >= 60_000_000, "setup_us={}", rows[0].setup_us);
        assert_eq!(rows[0].transfers, 2);
        assert_eq!(rows[0].attempts, 1);
        assert!(!rows[0].fallback);

        // And the profile's main tree reconciles exactly.
        let profile = gvc_telemetry::profile(&model);
        let main = profile.main.expect("driver.run tree");
        assert_eq!(main.name, "driver.run");
        assert_eq!(main.attributed_us, main.end_us - main.start_us);
    }

    #[test]
    fn fallback_sessions_mark_the_fallback_span() {
        use gvc_faults::FaultPlan;
        use gvc_telemetry::RingSink;
        let t = study_topology();
        let (slac, bnl) = (t.dtn(Site::Slac), t.dtn(Site::Bnl));
        let idc = Idc::new(t.graph.clone(), SetupDelayModel::one_minute());
        let sim = NetworkSim::new(t.graph, 0);
        let ring = Arc::new(RingSink::new(16384));
        let ctx = Telemetry::with_sink(ring.clone());
        let mut d = Driver::new(sim, 11)
            .with_idc(idc)
            .with_faults(FaultPlan { fail_first_provisions: 100, ..FaultPlan::default() })
            .with_telemetry(&ctx);
        let a = d.register_cluster("slac", slac, ServerCaps::default(), 1);
        let b = d.register_cluster("bnl", bnl, ServerCaps::default(), 1);
        d.schedule_session(
            SimTime::ZERO,
            a,
            b,
            SessionSpec::sequential(vec![job(64)], 0.0).with_vc(crate::session::VcRequestSpec {
                rate_bps: 1e9,
                max_duration_s: 3600.0,
                wait_for_circuit: true,
            }),
        );
        let out = d.run(SimTime::from_secs(100_000));
        assert_eq!(out.log.len(), 1);
        assert_eq!(out.resilience.unwrap().fallbacks, 1);
        let text: String = ring
            .events()
            .iter()
            .map(gvc_telemetry::TraceEvent::to_json)
            .collect::<Vec<_>>()
            .join("\n");
        let model = gvc_telemetry::TraceModel::from_text(&text).expect("trace parses");
        // Retry-dominated session: structural checks must pass, but the
        // default setup-share bound would (rightly) flag it — loosen it.
        let report =
            gvc_telemetry::check(&model, &gvc_telemetry::CheckConfig { max_setup_share: 1.0 });
        assert!(report.clean(), "violations: {:?}", report.violations);
        let names: Vec<&str> = model.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"vc.backoff"), "{names:?}");
        assert!(names.contains(&"session.fallback"), "{names:?}");
        let rows = gvc_telemetry::sessions(&model);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].fallback);
        assert!(rows[0].attempts > 1);
    }

    #[test]
    fn telemetry_disabled_run_is_identical() {
        let run = |instrument: bool| {
            let (mut d, a, b) = base_driver(9);
            if instrument {
                let ctx = Telemetry::metrics_only();
                d = d.with_telemetry(&ctx);
            }
            d.schedule_session(
                SimTime::ZERO,
                a,
                b,
                SessionSpec::sequential(vec![job(100); 5], 1.0).with_concurrency(2),
            );
            d.run(SimTime::from_secs(1_000_000)).log
        };
        // Instrumentation must not perturb simulation results.
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (mut d, a, b) = base_driver(seed);
            d.schedule_session(
                SimTime::ZERO,
                a,
                b,
                SessionSpec::sequential(vec![job(100); 5], 1.0),
            );
            d.run(SimTime::from_secs(1_000_000)).log
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).records()[0].duration_us, run(43).records()[0].duration_us);
    }

    #[test]
    fn tstat_reports_loss_and_failure_fractions() {
        let (mut d, a, b) = base_driver(20);
        d = d.with_tcp(TcpModel { loss_probability: 1.0, ..TcpModel::default() }).with_failures(
            crate::transfer::FailureModel {
                probability: 1.0,
                min_recovery_s: 1.0,
                max_recovery_s: 1.0,
                marker_interval_s: 0.0,
            },
        );
        d.schedule_session(SimTime::ZERO, a, b, SessionSpec::sequential(vec![job(64); 5], 0.0));
        let out = d.run(SimTime::from_secs(1_000_000));
        assert_eq!(out.tstat.transfers.len(), 5);
        assert_eq!(out.tstat.loss_fraction(), 1.0);
        assert_eq!(out.tstat.failure_fraction(), 1.0);
        // And with everything off, both fractions are zero.
        let (mut d2, a2, b2) = base_driver(20);
        d2 = d2.with_tcp(TcpModel { loss_probability: 0.0, ..TcpModel::default() }).with_failures(
            crate::transfer::FailureModel {
                probability: 0.0,
                ..crate::transfer::FailureModel::default()
            },
        );
        d2.schedule_session(SimTime::ZERO, a2, b2, SessionSpec::sequential(vec![job(64); 5], 0.0));
        let out2 = d2.run(SimTime::from_secs(1_000_000));
        assert_eq!(out2.tstat.loss_fraction(), 0.0);
        assert_eq!(out2.tstat.failure_fraction(), 0.0);
    }

    #[test]
    fn failures_lengthen_logged_durations() {
        let run = |prob: f64| {
            let (mut d, a, b) = base_driver(21);
            d = d.with_failures(crate::transfer::FailureModel {
                probability: prob,
                min_recovery_s: 20.0,
                max_recovery_s: 20.0,
                marker_interval_s: 0.0,
            });
            d.schedule_session(
                SimTime::ZERO,
                a,
                b,
                SessionSpec::sequential(vec![job(256); 6], 0.0),
            );
            let out = d.run(SimTime::from_secs(1_000_000));
            out.log.records().iter().map(gvc_logs::TransferRecord::duration_s).sum::<f64>()
        };
        let clean = run(0.0);
        let failing = run(1.0);
        assert!(failing > clean + 6.0 * 19.0, "failing {failing} vs clean {clean}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Conservation: every scheduled job appears in the log exactly
        /// once, regardless of session shapes, concurrency, gaps, or
        /// interleaving — and the tstat report stays aligned.
        #[test]
        fn prop_every_job_logged_once(
            sessions in proptest::collection::vec(
                (1usize..12, 1u32..5, 0.0f64..20.0, 0u64..2000),
                1..6,
            ),
            seed in 0u64..1000,
        ) {
            let (mut d, a, b) = base_driver(seed);
            let mut expected_sizes: Vec<u64> = Vec::new();
            for (i, &(njobs, conc, gap, start_s)) in sessions.iter().enumerate() {
                let jobs: Vec<TransferJob> = (0..njobs)
                    .map(|j| TransferJob {
                        // Unique, recoverable size per job.
                        size_bytes: 1_000_000 + (i * 100 + j) as u64,
                        ..TransferJob::default()
                    })
                    .collect();
                expected_sizes.extend(jobs.iter().map(|j| j.size_bytes));
                d.schedule_session(
                    SimTime::from_secs(start_s),
                    a,
                    b,
                    SessionSpec::sequential(jobs, gap).with_concurrency(conc),
                );
            }
            let out = d.run(SimTime::from_secs(100_000_000));
            prop_assert_eq!(out.log.len(), expected_sizes.len());
            prop_assert_eq!(out.tstat.transfers.len(), expected_sizes.len());
            let mut logged: Vec<u64> =
                out.log.records().iter().map(|r| r.size_bytes).collect();
            logged.sort_unstable();
            expected_sizes.sort_unstable();
            prop_assert_eq!(logged, expected_sizes);
            // Durations are positive and starts are ordered.
            for r in out.log.records() {
                prop_assert!(r.duration_us > 0);
            }
            for w in out.log.records().windows(2) {
                prop_assert!(w[0].start_unix_us <= w[1].start_unix_us);
            }
        }
    }

    fn vc_driver(seed: u64) -> (Driver, ClusterId, ClusterId) {
        let t = study_topology();
        let (slac, bnl) = (t.dtn(Site::Slac), t.dtn(Site::Bnl));
        let idc = Idc::new(t.graph.clone(), SetupDelayModel::one_minute());
        let sim = NetworkSim::new(t.graph, 0);
        let mut d = Driver::new(sim, seed).with_idc(idc);
        let a = d.register_cluster("slac", slac, ServerCaps::default(), 1);
        let b = d.register_cluster("bnl", bnl, ServerCaps::default(), 1);
        (d, a, b)
    }

    fn vc_spec() -> crate::session::VcRequestSpec {
        crate::session::VcRequestSpec {
            rate_bps: 1e9,
            max_duration_s: 3600.0,
            wait_for_circuit: true,
        }
    }

    #[test]
    fn recovery_retries_after_injected_failures() {
        use gvc_faults::FaultPlan;
        let (mut d, a, b) = vc_driver(7);
        d = d.with_faults(FaultPlan { fail_first_provisions: 2, ..FaultPlan::default() });
        d.schedule_session(
            SimTime::ZERO,
            a,
            b,
            SessionSpec::sequential(vec![job(256)], 0.0).with_vc(vc_spec()),
        );
        let out = d.run(SimTime::from_secs(100_000));
        assert_eq!(out.log.len(), 1);
        let r = out.resilience.unwrap();
        assert_eq!(r.vc_requested, 1);
        assert_eq!(r.vc_established, 1);
        assert_eq!(r.retries, 2);
        assert_eq!(r.faults_injected, 2);
        assert_eq!(r.fallbacks, 0);
        assert!((r.session_success_rate() - 1.0).abs() < 1e-12);
        assert!(r.mean_recovery_latency_s > 0.0);
        assert_eq!(out.open_reservations, Some(0));
        // Two backoffs plus the 1-minute setup push the first start
        // past a clean single-shot provision.
        assert!(out.log.records()[0].start_unix_us >= 60_000_000);
    }

    #[test]
    fn recovery_exhaustion_falls_back_to_ip() {
        use gvc_faults::FaultPlan;
        let (mut d, a, b) = vc_driver(7);
        d = d.with_faults(FaultPlan { fail_first_provisions: 100, ..FaultPlan::default() });
        d.schedule_session(
            SimTime::ZERO,
            a,
            b,
            SessionSpec::sequential(vec![job(256)], 0.0).with_vc(vc_spec()),
        );
        let out = d.run(SimTime::from_secs(100_000));
        // The transfer still runs — IP-routed.
        assert_eq!(out.log.len(), 1);
        let r = out.resilience.unwrap();
        assert_eq!(r.vc_established, 0);
        assert_eq!(r.retries, 3); // default budget: 1 + 3 retries
        assert_eq!(r.fallbacks, 1);
        assert_eq!(r.session_success_rate(), 0.0);
        assert_eq!(out.open_reservations, Some(0), "no leaked reservations");
    }

    #[test]
    fn preemption_releases_reservation_and_session_finishes() {
        use gvc_faults::FaultPlan;
        let (mut d, a, b) = vc_driver(8);
        d = d.with_faults(FaultPlan { preempt_after_s: Some(5.0), ..FaultPlan::default() });
        // Big enough to still be in flight 5 s after circuit readiness.
        d.schedule_session(
            SimTime::ZERO,
            a,
            b,
            SessionSpec::sequential(vec![job(4096)], 0.0).with_vc(vc_spec()),
        );
        let out = d.run(SimTime::from_secs(1_000_000));
        assert_eq!(out.log.len(), 1);
        let r = out.resilience.unwrap();
        assert_eq!(r.vc_established, 1);
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.faults_injected, 1);
        assert_eq!(out.open_reservations, Some(0), "preempted circuit must be released");
    }

    #[test]
    fn forced_server_restarts_mark_transfers_failed() {
        use gvc_faults::FaultPlan;
        let (mut d, a, b) = base_driver(30);
        d = d
            .with_faults(FaultPlan { server_restart_p: 1.0, ..FaultPlan::default() })
            .with_failures(crate::transfer::FailureModel {
                probability: 0.0,
                min_recovery_s: 10.0,
                max_recovery_s: 10.0,
                marker_interval_s: 0.0,
            });
        d.schedule_session(SimTime::ZERO, a, b, SessionSpec::sequential(vec![job(64); 4], 0.0));
        let out = d.run(SimTime::from_secs(1_000_000));
        assert_eq!(out.tstat.transfers.len(), 4);
        assert_eq!(out.tstat.failure_fraction(), 1.0);
        assert_eq!(out.resilience.unwrap().faults_injected, 4);
    }

    #[test]
    fn link_flap_lengthens_transfers_in_its_window() {
        use gvc_faults::{FaultPlan, LinkFlapSpec};
        let run = |flap: bool| {
            let t = study_topology();
            let path = t.path(Site::Nersc, Site::Ornl);
            let l = t.graph.link(path.links[1]);
            let link_name = format!(
                "{}->{}",
                t.graph.nodes()[l.src.0 as usize].name,
                t.graph.nodes()[l.dst.0 as usize].name
            );
            let (nersc, ornl) = (t.dtn(Site::Nersc), t.dtn(Site::Ornl));
            let sim = NetworkSim::new(t.graph, 0);
            let mut d = Driver::new(sim, 12);
            if flap {
                d = d.with_faults(FaultPlan {
                    link_flaps: vec![LinkFlapSpec {
                        link: link_name,
                        at_s: 1.0,
                        duration_s: 30.0,
                        residual_frac: 0.05,
                    }],
                    ..FaultPlan::default()
                });
            }
            let a = d.register_cluster("nersc", nersc, ServerCaps::default(), 1);
            let b = d.register_cluster("ornl", ornl, ServerCaps::default(), 1);
            d.schedule_transfer(SimTime::ZERO, a, b, job(2048));
            let out = d.run(SimTime::from_secs(100_000));
            assert_eq!(out.log.len(), 1);
            out.log.records()[0].duration_s()
        };
        let clean = run(false);
        let flapped = run(true);
        assert!(flapped > clean + 10.0, "flapped {flapped} vs clean {clean}");
    }

    #[test]
    fn failure_outcomes_isolated_across_sessions() {
        // The pre-fix defect: failure draws came from the run-wide
        // sequential stream, so growing session 0 shifted session 1's
        // outcomes. Keyed per-(session, job) streams decouple them.
        let run = |s0_jobs: usize| {
            let (mut d, a, b) = base_driver(31);
            d = d.with_failures(crate::transfer::FailureModel {
                probability: 0.4,
                ..crate::transfer::FailureModel::default()
            });
            d.schedule_session(
                SimTime::ZERO,
                a,
                b,
                SessionSpec::sequential(vec![job(32); s0_jobs], 0.0),
            );
            d.schedule_session(
                SimTime::from_secs(5_000),
                a,
                b,
                SessionSpec::sequential(vec![job(32); 6], 0.0),
            );
            let out = d.run(SimTime::from_secs(10_000_000));
            out.tstat
                .transfers
                .iter()
                .filter(|t| t.session == 1)
                .map(|t| t.failed)
                .collect::<Vec<bool>>()
        };
        let short = run(2);
        let long = run(8);
        assert_eq!(short.len(), 6);
        assert_eq!(short, long, "session 1's failures must not depend on session 0's shape");
        // The pattern is non-degenerate at p = 0.4 over six draws.
        assert!(short.iter().any(|&f| f));
        assert!(short.iter().any(|&f| !f));
    }

    #[test]
    fn inert_faults_leave_legacy_behavior_untouched() {
        use gvc_faults::FaultPlan;
        let run = |with_inert: bool| {
            let (mut d, a, b) = base_driver(9);
            if with_inert {
                d = d.with_faults(FaultPlan::default());
            }
            d.schedule_session(
                SimTime::ZERO,
                a,
                b,
                SessionSpec::sequential(vec![job(100); 5], 1.0).with_concurrency(2),
            );
            d.run(SimTime::from_secs(1_000_000)).log
        };
        assert_eq!(run(false), run(true));
        // And a plain run reports no resilience data at all.
        let (mut d, a, b) = base_driver(9);
        d.schedule_transfer(SimTime::ZERO, a, b, job(16));
        let out = d.run(SimTime::from_secs(1_000_000));
        assert!(out.resilience.is_none());
        assert!(out.open_reservations.is_none());
    }

    #[test]
    fn resize_slows_later_transfers() {
        let (mut d, a, b) = base_driver(4);
        let mut j = job(2048);
        j.stripes = 2;
        j.src_kind = EndpointKind::Memory;
        j.dst_kind = EndpointKind::Memory;
        d.schedule_transfer(SimTime::ZERO, a, b, j.clone());
        d.schedule_resize(SimTime::from_secs(5_000), a, 1);
        d.schedule_resize(SimTime::from_secs(5_000), b, 1);
        d.schedule_transfer(SimTime::from_secs(6_000), a, b, j);
        let out = d.run(SimTime::from_secs(1_000_000));
        assert_eq!(out.log.len(), 2);
        let tp: Vec<f64> = out.log.throughputs_mbps();
        assert!(tp[0] > tp[1] * 1.4, "before={} after={}", tp[0], tp[1]);
    }

    /// A three-lane workload: pairs local to different hubs never
    /// share a link. `vc_pair` requests a circuit on the SLAC pair.
    fn disjoint_pairs_driver(seed: u64, with_telemetry: Option<&Telemetry>, vc: bool) -> Driver {
        let t = study_topology();
        let pairs = [(Site::Nersc, Site::Slac), (Site::Ornl, Site::Nics), (Site::Anl, Site::Bnl)];
        let dtns: Vec<(NodeId, NodeId)> =
            pairs.iter().map(|&(x, y)| (t.dtn(x), t.dtn(y))).collect();
        let mut d = Driver::new(NetworkSim::new(t.graph.clone(), 0), seed);
        if vc {
            d = d.with_idc(Idc::new(t.graph.clone(), SetupDelayModel::one_minute()));
        }
        if let Some(ctx) = with_telemetry {
            d = d.with_telemetry(ctx);
        }
        let mut clusters = Vec::new();
        for (i, &(x, y)) in dtns.iter().enumerate() {
            let a = d.register_cluster(&format!("src{i}"), x, ServerCaps::default(), 2);
            let b = d.register_cluster(&format!("dst{i}"), y, ServerCaps::default(), 2);
            clusters.push((a, b));
        }
        for (i, &(a, b)) in clusters.iter().enumerate() {
            let mut spec = SessionSpec::sequential(vec![job(256); 3], 1.0).with_concurrency(2);
            if vc && i == 0 {
                spec = spec.with_vc(vc_spec());
            }
            d.schedule_session(SimTime::from_secs(i as u64), a, b, spec);
            d.schedule_transfer(SimTime::from_secs(30 + i as u64), a, b, job(64));
        }
        d
    }

    #[test]
    fn lane_partition_separates_disjoint_pairs_and_merges_shared_paths() {
        let d = disjoint_pairs_driver(11, None, false);
        assert_eq!(d.lane_count(), 3, "hub-local pairs must not share a lane");
        // The study pairs all cross the shared backbone: one lane, so
        // run_sharded degenerates to the bit-for-bit legacy run.
        let (mut d, a, b) = base_driver(11);
        d.schedule_transfer(SimTime::ZERO, a, b, job(64));
        assert_eq!(d.lane_count(), 1);
    }

    #[test]
    fn sharded_single_lane_is_bit_identical_to_serial() {
        let build = |_: ()| {
            let (mut d, a, b) = base_driver(12);
            d.schedule_session(
                SimTime::ZERO,
                a,
                b,
                SessionSpec::sequential(vec![job(128); 4], 2.0).with_concurrency(2),
            );
            d.schedule_transfer(SimTime::from_secs(7), a, b, job(256));
            d
        };
        let serial = build(()).run(SimTime::from_secs(1_000_000));
        let sharded = build(()).run_sharded(SimTime::from_secs(1_000_000), Shards::Auto);
        assert_eq!(serial.log, sharded.log);
        assert_eq!(serial.tstat.transfers, sharded.tstat.transfers);
    }

    /// The core determinism contract: a multi-lane schedule produces
    /// byte-identical outputs at every shard count.
    #[test]
    fn sharded_outputs_identical_across_shard_counts() {
        let run = |shards: Shards| {
            let d = disjoint_pairs_driver(13, None, true);
            assert!(d.lane_count() > 1, "workload must actually shard");
            d.run_sharded(SimTime::from_secs(1_000_000), shards)
        };
        let one = run(Shards::Fixed(1));
        let two = run(Shards::Fixed(2));
        let many = run(Shards::Fixed(16));
        let auto = run(Shards::Auto);
        for other in [&two, &many, &auto] {
            assert_eq!(one.log, other.log);
            assert_eq!(one.tstat.transfers, other.tstat.transfers);
            assert_eq!(one.idc_stats, other.idc_stats);
            assert_eq!(one.open_reservations, other.open_reservations);
            assert_eq!(one.resilience, other.resilience);
        }
        assert_eq!(one.open_reservations, Some(0), "no leaked reservations");
        assert_eq!(one.log.len(), 3 * 4, "every pair's jobs logged");
    }

    #[test]
    fn sharded_traces_and_metrics_identical_across_shard_counts() {
        use gvc_telemetry::RingSink;
        // The reproducible slice of an exposition: wall-clock handler
        // timings vary run to run, everything else must not.
        let canon_metrics = |ctx: &Telemetry| -> String {
            ctx.registry
                .render()
                .lines()
                .filter(|l| !l.contains("sim_event_handle_seconds"))
                .map(|l| format!("{l}\n"))
                .collect()
        };
        // Same filter as the CLI determinism suite: kernel.event
        // records carry wall_us profiling samples.
        let run = |shards: Shards| -> (String, String, Dataset) {
            let ring = Arc::new(RingSink::new(65536));
            let ctx = Telemetry::with_sink(ring.clone());
            let d = disjoint_pairs_driver(14, Some(&ctx), true);
            let out = d.run_sharded(SimTime::from_secs(1_000_000), shards);
            let trace: String = ring
                .events()
                .iter()
                .filter(|e| e.kind != "kernel.event")
                .map(|e| format!("{}\n", e.to_json()))
                .collect();
            (trace, canon_metrics(&ctx), out.log)
        };
        let (trace1, metrics1, log1) = run(Shards::Fixed(1));
        let (trace2, metrics2, log2) = run(Shards::Fixed(2));
        let (trace_n, metrics_n, log_n) = run(Shards::Auto);
        assert_eq!(trace1, trace2, "trace bytes differ between shard counts 1 and 2");
        assert_eq!(trace1, trace_n, "trace bytes differ between shard counts 1 and auto");
        assert_eq!(metrics1, metrics2);
        assert_eq!(metrics1, metrics_n);
        assert_eq!(log1, log2);
        assert_eq!(log1, log_n);
        assert!(trace1.contains("\"name\":\"driver.lane\""), "lane spans emitted");
        assert!(trace1.contains("\"name\":\"driver.run\""), "coordinator span emitted");
    }

    #[test]
    fn sharded_trace_survives_offline_checks_and_merged_metrics_add_up() {
        use gvc_telemetry::{check, CheckConfig, RingSink, TraceModel};
        let ring = Arc::new(RingSink::new(65536));
        let ctx = Telemetry::with_sink(ring.clone());
        let d = disjoint_pairs_driver(15, Some(&ctx), true);
        let out = d.run_sharded(SimTime::from_secs(1_000_000), Shards::Auto);
        assert_eq!(out.log.len(), 12);
        let text: String = ring.events().iter().map(|e| format!("{}\n", e.to_json())).collect();
        let model = TraceModel::from_text(&text).expect("parse merged trace");
        let report = check(&model, &CheckConfig::default());
        assert!(report.clean(), "merged trace violations: {:?}", report.violations);
        // Lane registries folded into the coordinator's: lifecycle
        // counters cover every session and transfer.
        let reg = &ctx.registry;
        assert_eq!(reg.counter("gridftp_sessions_started_total", &[]).get(), 6);
        assert_eq!(reg.counter("gridftp_sessions_completed_total", &[]).get(), 6);
        assert_eq!(reg.counter("gridftp_transfers_completed_total", &[]).get(), 12);
        assert_eq!(reg.counter("idc_admitted_total", &[]).get(), 1);
    }

    #[test]
    fn sharded_faults_and_snmp_match_across_shard_counts() {
        use gvc_faults::FaultPlan;
        let t = study_topology();
        let watch_a = t.path(Site::Nersc, Site::Slac).links[2];
        let watch_b = t.path(Site::Ornl, Site::Nics).links[2];
        let run = |shards: Shards| {
            let mut d = disjoint_pairs_driver(16, None, true).with_faults(FaultPlan {
                fail_first_provisions: 1,
                link_flaps: vec![gvc_faults::LinkFlapSpec {
                    link: "nash-cr->nics-pe".into(),
                    at_s: 5.0,
                    duration_s: 60.0,
                    residual_frac: 0.25,
                }],
                ..FaultPlan::default()
            });
            d.sim_mut().monitor_link(watch_a);
            d.sim_mut().monitor_link(watch_b);
            d.run_sharded(SimTime::from_secs(1_000_000), shards)
        };
        let one = run(Shards::Fixed(1));
        let many = run(Shards::Auto);
        assert_eq!(one.log, many.log);
        assert_eq!(one.resilience, many.resilience);
        let r = one.resilience.expect("resilience report");
        assert!(r.faults_injected >= 2, "provision fault + link flap: {r:?}");
        for watch in [watch_a, watch_b] {
            let (s1, s2) = (
                one.sim.snmp().series(watch).expect("series"),
                many.sim.snmp().series(watch).expect("series"),
            );
            assert_eq!(s1, s2, "SNMP series differ for link {watch:?}");
            assert!(s1.total_bytes() > 0, "monitored link saw traffic");
        }
    }

    /// The flight-recorder arm of the determinism contract: the
    /// merged timeline (driver, kernel, IDC, fault, and derived SNMP
    /// series alike) is byte-identical at every shard count — and,
    /// because this test also runs under `--no-default-features`, in
    /// the sequential build.
    #[test]
    fn sharded_timeline_bytes_identical_across_shard_counts() {
        use gvc_faults::FaultPlan;
        use gvc_telemetry::DEFAULT_WIDTH_US;
        let t = study_topology();
        let watch = t.path(Site::Nersc, Site::Slac).links[2];
        let run = |shards: Shards| -> String {
            let tl = TimelineHandle::new(DEFAULT_WIDTH_US);
            let ctx = Telemetry::metrics_only().with_timeline(tl.clone());
            let mut d = disjoint_pairs_driver(18, Some(&ctx), true)
                .with_faults(FaultPlan { fail_first_provisions: 1, ..FaultPlan::default() });
            d.sim_mut().monitor_link(watch);
            let out = d.run_sharded(SimTime::from_secs(1_000_000), shards);
            out.sim.record_timeline(&tl);
            tl.to_json()
        };
        let one = run(Shards::Fixed(1));
        let two = run(Shards::Fixed(2));
        let auto = run(Shards::Auto);
        assert_eq!(one, two, "timeline bytes differ between shard counts 1 and 2");
        assert_eq!(one, auto, "timeline bytes differ between shard counts 1 and auto");
        for name in [
            series::KERNEL_SCHEDULED,
            series::KERNEL_DISPATCHED,
            series::DRIVER_SESSION_STARTS,
            series::DRIVER_SESSION_COMPLETIONS,
            series::DRIVER_TRANSFERS,
            series::DRIVER_VC_SETUP,
            series::FAULT_INJECTED,
            series::OSCARS_OPEN_RESERVATIONS,
            series::NET_LINK_UTIL,
        ] {
            assert!(one.contains(&format!("\"{name}")), "series {name} missing:\n{one}");
        }
    }

    #[test]
    fn sharded_background_and_resize_stay_on_their_lanes() {
        let t = study_topology();
        let (nersc, slac) = (t.dtn(Site::Nersc), t.dtn(Site::Slac));
        let (ornl, nics) = (t.dtn(Site::Ornl), t.dtn(Site::Nics));
        let run = |shards: Option<Shards>| {
            let mut d = Driver::new(NetworkSim::new(t.graph.clone(), 0), 17);
            let a = d.register_cluster("nersc", nersc, ServerCaps::default(), 2);
            let b = d.register_cluster("slac", slac, ServerCaps::default(), 2);
            let c = d.register_cluster("ornl", ornl, ServerCaps::default(), 2);
            let e = d.register_cluster("nics", nics, ServerCaps::default(), 2);
            d.schedule_session(
                SimTime::ZERO,
                a,
                b,
                SessionSpec::sequential(vec![job(512); 2], 0.0),
            );
            d.schedule_session(
                SimTime::ZERO,
                c,
                e,
                SessionSpec::sequential(vec![job(512); 2], 0.0),
            );
            d.schedule_resize(SimTime::from_secs(1), c, 1);
            let bg = generate_background(
                &t.graph,
                &BackgroundConfig::default(),
                SimTime::from_secs(60),
                17,
            );
            d.schedule_background(bg);
            match shards {
                Some(s) => d.run_sharded(SimTime::from_secs(1_000_000), s),
                None => d.run(SimTime::from_secs(1_000_000)),
            }
        };
        let one = run(Some(Shards::Fixed(1)));
        let many = run(Some(Shards::Fixed(8)));
        assert_eq!(one.log, many.log);
        assert_eq!(one.tstat.transfers, many.tstat.transfers);
        assert_eq!(one.log.len(), 4);
        // Background flows land somewhere; the resize slows the ORNL
        // pair's second transfer in both modes alike.
        let serial = run(None);
        assert_eq!(serial.log.len(), 4, "serial baseline logs the same transfers");
    }

    proptest! {
        /// Property form of the determinism contract: random session
        /// shapes and fault plans over disjoint pairs produce
        /// identical logs, tstat, and resilience at shard counts
        /// 1, 2, and N — with the parallel feature on or off.
        #[test]
        fn prop_sharded_equivalence_across_shard_counts(
            seed in 0u64..500,
            jobs_a in 1usize..4,
            jobs_b in 1usize..4,
            conc in 1u32..3,
            gap_s in 0.0f64..3.0,
            fail_first in 0u32..3,
            with_vc in proptest::bool::ANY,
        ) {
            use gvc_faults::FaultPlan;
            let run = |shards: Shards| {
                let t = study_topology();
                let tl = TimelineHandle::new(gvc_telemetry::DEFAULT_WIDTH_US);
                let ctx = Telemetry::metrics_only().with_timeline(tl.clone());
                let mut d = Driver::new(NetworkSim::new(t.graph.clone(), 0), seed)
                    .with_telemetry(&ctx);
                if with_vc {
                    d = d.with_idc(Idc::new(t.graph.clone(), SetupDelayModel::one_minute()));
                }
                d = d.with_faults(FaultPlan {
                    fail_first_provisions: fail_first,
                    ..FaultPlan::default()
                });
                let a = d.register_cluster("nersc", t.dtn(Site::Nersc), ServerCaps::default(), 2);
                let b = d.register_cluster("slac", t.dtn(Site::Slac), ServerCaps::default(), 2);
                let c = d.register_cluster("ornl", t.dtn(Site::Ornl), ServerCaps::default(), 2);
                let e = d.register_cluster("nics", t.dtn(Site::Nics), ServerCaps::default(), 2);
                let mut spec_a =
                    SessionSpec::sequential(vec![job(64); jobs_a], gap_s).with_concurrency(conc);
                if with_vc {
                    spec_a = spec_a.with_vc(vc_spec());
                }
                d.schedule_session(SimTime::ZERO, a, b, spec_a);
                d.schedule_session(
                    SimTime::from_secs(1),
                    c,
                    e,
                    SessionSpec::sequential(vec![job(64); jobs_b], gap_s),
                );
                let out = d.run_sharded(SimTime::from_secs(1_000_000), shards);
                out.sim.record_timeline(&tl);
                (out, tl.to_json())
            };
            let (one, tl_one) = run(Shards::Fixed(1));
            let (two, tl_two) = run(Shards::Fixed(2));
            let (many, tl_many) = run(Shards::Fixed(9));
            prop_assert_eq!(&one.log, &two.log);
            prop_assert_eq!(&one.log, &many.log);
            prop_assert_eq!(&one.tstat.transfers, &two.tstat.transfers);
            prop_assert_eq!(&one.tstat.transfers, &many.tstat.transfers);
            prop_assert_eq!(one.resilience, two.resilience);
            prop_assert_eq!(one.resilience, many.resilience);
            prop_assert_eq!(one.idc_stats, many.idc_stats);
            prop_assert_eq!(one.open_reservations, many.open_reservations);
            prop_assert_eq!(&tl_one, &tl_two);
            prop_assert_eq!(&tl_one, &tl_many);
        }
    }
}
