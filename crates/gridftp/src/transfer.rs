//! One file movement: from job description to fluid flow and log
//! record.

use crate::server::ServerCluster;
use gvc_logs::{EndpointKind, TransferType};
use gvc_net::tcp::TcpModel;
use gvc_net::FlowSpec;
use gvc_stats::dist::{Distribution, TruncNormal};
use gvc_topology::{Graph, Path};
use rand::rngs::SmallRng;
use rand::Rng;

/// A single GridFTP file transfer to execute.
#[derive(Debug, Clone)]
pub struct TransferJob {
    /// Size of the file, bytes.
    pub size_bytes: u64,
    /// Parallel TCP streams.
    pub streams: u32,
    /// Stripes (servers per end).
    pub stripes: u32,
    /// Per-stream TCP buffer, bytes.
    pub tcp_buffer_bytes: u64,
    /// GridFTP block size, bytes.
    pub block_size_bytes: u64,
    /// Source endpoint kind.
    pub src_kind: EndpointKind,
    /// Destination endpoint kind.
    pub dst_kind: EndpointKind,
    /// Direction recorded in the *logging* server's log. The study's
    /// logs come from one side; `Retr` means the logging server is the
    /// source.
    pub logged_as: TransferType,
}

impl Default for TransferJob {
    fn default() -> TransferJob {
        TransferJob {
            size_bytes: 1 << 30,
            streams: 8,
            stripes: 1,
            tcp_buffer_bytes: 4 << 20,
            block_size_bytes: 256 << 10,
            src_kind: EndpointKind::Disk,
            dst_kind: EndpointKind::Disk,
            logged_as: TransferType::Retr,
        }
    }
}

/// Per-transfer server-side rate noise: competition for CPU, memory
/// bus, file-system state and other unmodelled node resources. The
/// paper found the coefficient of variation *highest* for mem-to-mem
/// transfers (Table VI) — variance does not come from the disks alone.
#[derive(Debug, Clone, Copy)]
pub struct ServerNoise {
    /// Mean multiplicative factor (≤ 1; mean efficiency).
    pub mean: f64,
    /// Standard deviation of the factor.
    pub sd: f64,
}

impl Default for ServerNoise {
    fn default() -> ServerNoise {
        ServerNoise { mean: 0.82, sd: 0.22 }
    }
}

impl ServerNoise {
    /// Draws one transfer's efficiency factor in `(0.05, 1.0]`.
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        TruncNormal::new(self.mean, self.sd, 0.05, 1.0).sample(rng)
    }
}

/// Mid-transfer failure and restart (§II: GridFTP offers "recovery
/// from failures during transfers" via restart markers). A failed
/// transfer reconnects and resumes from its last marker, so the
/// payload is not re-sent — but the stall and the re-sent tail show up
/// as extra duration in the usage log.
#[derive(Debug, Clone, Copy)]
pub struct FailureModel {
    /// Per-transfer probability of a failure event.
    pub probability: f64,
    /// Reconnect/stall time, seconds (uniform in this range).
    pub min_recovery_s: f64,
    /// Upper bound of the reconnect/stall time.
    pub max_recovery_s: f64,
    /// Restart-marker interval, seconds of progress: on average half
    /// an interval of progress is re-sent.
    pub marker_interval_s: f64,
}

impl Default for FailureModel {
    fn default() -> FailureModel {
        FailureModel {
            probability: 0.003,
            min_recovery_s: 2.0,
            max_recovery_s: 30.0,
            marker_interval_s: 5.0,
        }
    }
}

impl FailureModel {
    /// Samples the extra duration one failure event costs (0 when the
    /// transfer does not fail).
    pub fn sample_penalty_s(&self, rng: &mut SmallRng) -> f64 {
        if rng.gen::<f64>() >= self.probability {
            return 0.0;
        }
        self.sample_forced_penalty_s(rng)
    }

    /// Samples the cost of a failure known to have happened (e.g. an
    /// injected server restart), skipping the probability gate.
    pub fn sample_forced_penalty_s(&self, rng: &mut SmallRng) -> f64 {
        let recovery = self.min_recovery_s
            + rng.gen::<f64>() * (self.max_recovery_s - self.min_recovery_s).max(0.0);
        // Progress since the last marker is re-sent: uniformly up to
        // one interval.
        let resend = rng.gen::<f64>() * self.marker_interval_s;
        recovery + resend
    }
}

/// Everything needed to turn a [`TransferJob`] into a [`FlowSpec`] and
/// later into a logged record.
pub struct PreparedTransfer {
    /// The flow to inject.
    pub spec: FlowSpec,
    /// Steady-state cap used for the slow-start penalty calculation.
    pub steady_cap_bps: f64,
    /// Extra logged time: slow-start ramp + control-channel overhead
    /// (+ failure recovery when the transfer fails mid-flight).
    pub overhead_s: f64,
    /// Whether this transfer drew a rare TCP loss event.
    pub lossy: bool,
    /// Whether this transfer failed and restarted mid-flight.
    pub failed: bool,
    /// The job (for the log record).
    pub job: TransferJob,
}

/// Prepares a job for execution between two clusters over `path`.
///
/// The flow's rate cap is the minimum of the TCP window cap, the two
/// clusters' per-transfer (stripe-scaled, endpoint-kind-aware) caps,
/// and the path line rate — scaled by a per-transfer server-noise
/// factor, and by the loss penalty if this transfer is one of the rare
/// ones to see a loss event.
///
/// The failure draw comes from `fail_rng`, a stream keyed per
/// transfer rather than shared across the run: whether *this*
/// transfer fails must not depend on how many draws other sessions
/// consumed first, or turning one session's shape changes another's
/// failure outcomes.
#[allow(clippy::too_many_arguments)]
pub fn prepare_transfer(
    graph: &Graph,
    path: &Path,
    src: &ServerCluster,
    dst: &ServerCluster,
    job: TransferJob,
    tcp: &TcpModel,
    noise: ServerNoise,
    failures: FailureModel,
    control_overhead_s: f64,
    rng: &mut SmallRng,
    fail_rng: &mut SmallRng,
) -> PreparedTransfer {
    let rtt = path.rtt_s(graph).max(1e-4);
    let window_cap = tcp.window_cap_bps(job.streams, job.tcp_buffer_bytes as f64, rtt);
    let src_cap = src.per_transfer_cap_bps(job.stripes, job.src_kind == EndpointKind::Disk, true);
    let dst_cap = dst.per_transfer_cap_bps(job.stripes, job.dst_kind == EndpointKind::Disk, false);
    let line = path.bottleneck_bps(graph);

    let mut cap = window_cap.min(src_cap).min(dst_cap).min(line);
    cap *= noise.sample(rng);
    let lossy = rng.gen::<f64>() < tcp.loss_probability;
    if lossy {
        cap *= tcp.loss_penalty_factor(job.streams);
    }
    let cap = cap.max(1e3); // never fully stall
    let failure_penalty = failures.sample_penalty_s(fail_rng);

    let mut resources = vec![src.aggregate_resource(), dst.aggregate_resource()];
    if job.src_kind == EndpointKind::Disk {
        resources.push(src.disk_read_resource());
    }
    if job.dst_kind == EndpointKind::Disk {
        resources.push(dst.disk_write_resource());
    }

    let spec = FlowSpec::best_effort(path.links.clone(), job.size_bytes as f64)
        .with_cap(cap)
        .with_resources(resources);

    let ss = tcp.ramp_penalty_s(job.size_bytes as f64, cap, rtt, job.streams);
    PreparedTransfer {
        spec,
        steady_cap_bps: cap,
        overhead_s: ss + control_overhead_s + failure_penalty,
        lossy,
        failed: failure_penalty > 0.0,
        job,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerCaps;
    use gvc_net::NetworkSim;
    use gvc_stats::rng::component_rng;
    use gvc_topology::{study_topology, Site};

    struct Fixture {
        sim: NetworkSim,
        path: Path,
        src: ServerCluster,
        dst: ServerCluster,
    }

    fn fixture() -> Fixture {
        let t = study_topology();
        let path = t.path(Site::Nersc, Site::Ornl);
        let (nersc, ornl) = (t.dtn(Site::Nersc), t.dtn(Site::Ornl));
        let mut sim = NetworkSim::new(t.graph, 0);
        let src =
            ServerCluster::register(&mut sim, "dtn.nersc.gov", nersc, ServerCaps::default(), 1);
        let dst = ServerCluster::register(&mut sim, "dtn.ornl.gov", ornl, ServerCaps::default(), 1);
        Fixture { sim, path, src, dst }
    }

    fn quiet_noise() -> ServerNoise {
        ServerNoise { mean: 1.0, sd: 0.0 }
    }

    fn no_failures() -> FailureModel {
        FailureModel { probability: 0.0, ..FailureModel::default() }
    }

    fn no_loss_tcp() -> TcpModel {
        TcpModel { loss_probability: 0.0, ..TcpModel::default() }
    }

    #[test]
    fn window_cap_binds_single_stream() {
        let f = fixture();
        let mut rng = component_rng(1, "t");
        let job = TransferJob {
            streams: 1,
            src_kind: EndpointKind::Memory,
            dst_kind: EndpointKind::Memory,
            ..TransferJob::default()
        };
        let p = prepare_transfer(
            f.sim.graph(),
            &f.path,
            &f.src,
            &f.dst,
            job,
            &no_loss_tcp(),
            quiet_noise(),
            no_failures(),
            0.0,
            &mut rng,
            &mut component_rng(1, "fail"),
        );
        let rtt = f.path.rtt_s(f.sim.graph());
        let expected = (4u64 << 20) as f64 * 8.0 / rtt;
        assert!((p.steady_cap_bps - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn eight_streams_hit_server_cap_instead() {
        let f = fixture();
        let mut rng = component_rng(1, "t");
        let job = TransferJob {
            streams: 8,
            src_kind: EndpointKind::Memory,
            dst_kind: EndpointKind::Memory,
            ..TransferJob::default()
        };
        let p = prepare_transfer(
            f.sim.graph(),
            &f.path,
            &f.src,
            &f.dst,
            job,
            &no_loss_tcp(),
            quiet_noise(),
            no_failures(),
            0.0,
            &mut rng,
            &mut component_rng(1, "fail"),
        );
        // 8 x 4 MiB over ~70 ms RTT far exceeds the 2.4 Gbps node cap.
        assert!((p.steady_cap_bps - 2.4e9).abs() < 1e3, "{}", p.steady_cap_bps);
    }

    #[test]
    fn disk_destination_caps_lower_than_memory() {
        let f = fixture();
        let mut rng1 = component_rng(1, "t");
        let mut rng2 = component_rng(1, "t");
        let mk = |dst_kind| TransferJob {
            streams: 8,
            src_kind: EndpointKind::Memory,
            dst_kind,
            ..TransferJob::default()
        };
        let mem = prepare_transfer(
            f.sim.graph(),
            &f.path,
            &f.src,
            &f.dst,
            mk(EndpointKind::Memory),
            &no_loss_tcp(),
            quiet_noise(),
            no_failures(),
            0.0,
            &mut rng1,
            &mut component_rng(1, "fail"),
        );
        let disk = prepare_transfer(
            f.sim.graph(),
            &f.path,
            &f.src,
            &f.dst,
            mk(EndpointKind::Disk),
            &no_loss_tcp(),
            quiet_noise(),
            no_failures(),
            0.0,
            &mut rng2,
            &mut component_rng(1, "fail"),
        );
        assert!(disk.steady_cap_bps < mem.steady_cap_bps);
        assert_eq!(disk.spec.resources.len(), 3); // agg x2 + disk write
        assert_eq!(mem.spec.resources.len(), 2);
    }

    #[test]
    fn stripes_scale_the_cap() {
        let t = study_topology();
        let path = t.path(Site::Ncar, Site::Nics);
        let (a, b) = (t.dtn(Site::Ncar), t.dtn(Site::Nics));
        let mut sim = NetworkSim::new(t.graph, 0);
        let src = ServerCluster::register(&mut sim, "frost", a, ServerCaps::default(), 3);
        let dst = ServerCluster::register(&mut sim, "nics", b, ServerCaps::default(), 3);
        let mk = |stripes| TransferJob {
            streams: 8,
            stripes,
            src_kind: EndpointKind::Disk,
            dst_kind: EndpointKind::Disk,
            ..TransferJob::default()
        };
        let mut rng1 = component_rng(1, "t");
        let mut rng2 = component_rng(1, "t");
        let one = prepare_transfer(
            sim.graph(),
            &path,
            &src,
            &dst,
            mk(1),
            &no_loss_tcp(),
            quiet_noise(),
            no_failures(),
            0.0,
            &mut rng1,
            &mut component_rng(1, "fail"),
        );
        let three = prepare_transfer(
            sim.graph(),
            &path,
            &src,
            &dst,
            mk(3),
            &no_loss_tcp(),
            quiet_noise(),
            no_failures(),
            0.0,
            &mut rng2,
            &mut component_rng(1, "fail"),
        );
        assert!(three.steady_cap_bps > 2.0 * one.steady_cap_bps);
    }

    #[test]
    fn overhead_includes_slow_start_and_control() {
        let f = fixture();
        let mut rng = component_rng(1, "t");
        let job = TransferJob {
            size_bytes: 50 << 20,
            streams: 1,
            src_kind: EndpointKind::Memory,
            dst_kind: EndpointKind::Memory,
            ..TransferJob::default()
        };
        let p = prepare_transfer(
            f.sim.graph(),
            &f.path,
            &f.src,
            &f.dst,
            job,
            &no_loss_tcp(),
            quiet_noise(),
            no_failures(),
            0.5,
            &mut rng,
            &mut component_rng(1, "fail"),
        );
        assert!(p.overhead_s > 0.5, "control overhead present");
    }

    #[test]
    fn certain_failure_adds_recovery_overhead() {
        let f = fixture();
        let always = FailureModel {
            probability: 1.0,
            min_recovery_s: 5.0,
            max_recovery_s: 5.0,
            marker_interval_s: 0.0,
        };
        let mut rng1 = component_rng(2, "t");
        let mut rng2 = component_rng(2, "t");
        let job = TransferJob::default;
        let ok = prepare_transfer(
            f.sim.graph(),
            &f.path,
            &f.src,
            &f.dst,
            job(),
            &no_loss_tcp(),
            quiet_noise(),
            no_failures(),
            0.0,
            &mut rng1,
            &mut component_rng(1, "fail"),
        );
        let failed = prepare_transfer(
            f.sim.graph(),
            &f.path,
            &f.src,
            &f.dst,
            job(),
            &no_loss_tcp(),
            quiet_noise(),
            always,
            0.0,
            &mut rng2,
            &mut component_rng(1, "fail"),
        );
        assert!(failed.failed);
        assert!(!ok.failed);
        assert!((failed.overhead_s - ok.overhead_s - 5.0).abs() < 1e-9);
    }

    #[test]
    fn failure_penalty_bounds() {
        let m = FailureModel {
            probability: 1.0,
            min_recovery_s: 2.0,
            max_recovery_s: 30.0,
            marker_interval_s: 5.0,
        };
        let mut rng = component_rng(3, "t");
        for _ in 0..200 {
            let p = m.sample_penalty_s(&mut rng);
            assert!((2.0..=35.0).contains(&p), "{p}");
        }
        let never = FailureModel { probability: 0.0, ..m };
        assert_eq!(never.sample_penalty_s(&mut rng), 0.0);
    }

    #[test]
    fn forced_penalty_skips_the_probability_gate() {
        // Probability zero, yet the forced variant (injected server
        // restart) still charges recovery + re-send time.
        let m = FailureModel {
            probability: 0.0,
            min_recovery_s: 4.0,
            max_recovery_s: 10.0,
            marker_interval_s: 5.0,
        };
        let mut rng = component_rng(4, "t");
        for _ in 0..100 {
            let p = m.sample_forced_penalty_s(&mut rng);
            assert!((4.0..=15.0).contains(&p), "{p}");
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let n = ServerNoise::default();
        let mut r1 = component_rng(9, "x");
        let mut r2 = component_rng(9, "x");
        let a: Vec<f64> = (0..10).map(|_| n.sample(&mut r1)).collect();
        let b: Vec<f64> = (0..10).map(|_| n.sample(&mut r2)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (0.05..=1.0).contains(&v)));
    }
}
