//! SNMP recorder: per-interface byte counters fed by the fluid
//! simulator.
//!
//! Only *monitored* links record counters (the paper had SNMP for 5 of
//! the 7 routers on the NERSC–ORNL path); everything crossing a
//! monitored link — GridFTP flows and background cross-traffic alike —
//! deposits bytes into its 30-second bins, which is what makes the
//! Table XI "total bytes" correlations meaningful.

use gvc_logs::SnmpSeries;
use gvc_topology::LinkId;
use std::collections::HashMap;

/// Byte counters for a set of monitored interfaces.
#[derive(Debug, Clone, Default)]
pub struct SnmpRecorder {
    series: HashMap<LinkId, SnmpSeries>,
}

impl SnmpRecorder {
    /// No interfaces monitored.
    pub fn new() -> SnmpRecorder {
        SnmpRecorder::default()
    }

    /// Starts monitoring `link` with 30-second bins from `origin_us`
    /// (unix microseconds). Re-registering an interface resets it.
    pub fn monitor(&mut self, link: LinkId, name: &str, origin_us: i64) {
        self.series.insert(link, SnmpSeries::thirty_second(name, origin_us));
    }

    /// Starts monitoring with a custom bin width.
    pub fn monitor_with_width(&mut self, link: LinkId, name: &str, origin_us: i64, width_us: i64) {
        self.series.insert(link, SnmpSeries::new(name, origin_us, width_us));
    }

    /// True when `link` is monitored.
    pub fn is_monitored(&self, link: LinkId) -> bool {
        self.series.contains_key(&link)
    }

    /// Deposits `bytes` spread over `[start_us, end_us)` unix
    /// microseconds onto `link`. Returns the bytes actually recorded
    /// (0 when the link is unmonitored).
    pub fn deposit(&mut self, link: LinkId, start_us: i64, end_us: i64, bytes: u64) -> u64 {
        if let Some(s) = self.series.get_mut(&link) {
            s.add_interval(start_us, end_us, bytes);
            bytes
        } else {
            0
        }
    }

    /// The recorded series for `link`.
    pub fn series(&self, link: LinkId) -> Option<&SnmpSeries> {
        self.series.get(&link)
    }

    /// All monitored links in deterministic (id) order.
    pub fn monitored_links(&self) -> Vec<LinkId> {
        let mut v: Vec<LinkId> = self.series.keys().copied().collect();
        v.sort();
        v
    }

    /// Folds another recorder's counters into this one: interfaces
    /// monitored by both add bin-by-bin, interfaces only monitored
    /// there are adopted wholesale. Sharded runs deposit each lane's
    /// bytes into a private recorder and fold them back in lane
    /// order; bin addition is integer, so the result is independent
    /// of fold order anyway.
    pub fn absorb(&mut self, other: &SnmpRecorder) {
        for link in other.monitored_links() {
            let Some(theirs) = other.series(link) else {
                continue;
            };
            if let Some(mine) = self.series.get_mut(&link) {
                mine.absorb(theirs);
            } else {
                self.series.insert(link, theirs.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmonitored_deposits_dropped() {
        let mut r = SnmpRecorder::new();
        r.deposit(LinkId(0), 0, 10, 100);
        assert!(r.series(LinkId(0)).is_none());
        assert!(!r.is_monitored(LinkId(0)));
    }

    #[test]
    fn monitored_deposits_recorded() {
        let mut r = SnmpRecorder::new();
        r.monitor(LinkId(3), "sunn->denv", 0);
        r.deposit(LinkId(3), 0, 60_000_000, 600);
        let s = r.series(LinkId(3)).unwrap();
        assert_eq!(s.total_bytes(), 600);
        assert_eq!(s.bytes_in_bin(0), 300);
        assert_eq!(s.bytes_in_bin(1), 300);
    }

    #[test]
    fn absorb_merges_shared_and_adopts_new_interfaces() {
        let mut a = SnmpRecorder::new();
        a.monitor(LinkId(1), "x->y", 0);
        a.deposit(LinkId(1), 0, 30_000_000, 300);
        let mut b = SnmpRecorder::new();
        b.monitor(LinkId(1), "x->y", 0);
        b.monitor(LinkId(4), "y->z", 0);
        b.deposit(LinkId(1), 0, 30_000_000, 100);
        b.deposit(LinkId(4), 0, 30_000_000, 50);
        a.absorb(&b);
        assert_eq!(a.series(LinkId(1)).unwrap().total_bytes(), 400);
        assert_eq!(a.series(LinkId(4)).unwrap().total_bytes(), 50);
        assert_eq!(a.monitored_links(), vec![LinkId(1), LinkId(4)]);
    }

    #[test]
    fn monitored_links_sorted() {
        let mut r = SnmpRecorder::new();
        r.monitor(LinkId(9), "b", 0);
        r.monitor(LinkId(2), "a", 0);
        assert_eq!(r.monitored_links(), vec![LinkId(2), LinkId(9)]);
    }
}
