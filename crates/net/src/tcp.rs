//! TCP throughput caps and the slow-start penalty.
//!
//! Two TCP effects drive the paper's Figs. 3–5:
//!
//! 1. **Window cap.** A transfer with `n` parallel streams, TCP buffer
//!    `B` bytes per stream, over RTT `τ` cannot exceed `n·B·8/τ` bps
//!    regardless of link capacity. On the 80 ms SLAC–BNL path this is
//!    what bounds 1-stream transfers.
//! 2. **Slow start.** Each stream's congestion window starts at one
//!    MSS and doubles per RTT, so small files finish before reaching
//!    the steady rate — and `n` streams ramp `n×` faster, which is why
//!    "the aggregate throughput of 8 TCP-stream transfers is higher
//!    than that of 1 TCP-stream transfers for small files, but not for
//!    large files" (finding iii). Because losses are rare on these
//!    paths (finding iii again), the steady state is window- or
//!    share-limited rather than loss-limited; loss is modelled as a
//!    rare per-transfer event that halves one stream's window.

/// TCP model parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpModel {
    /// Maximum segment size, bytes (1460 for Ethernet).
    pub mss_bytes: f64,
    /// Initial congestion window per stream, segments.
    pub init_cwnd_segments: f64,
    /// Per-transfer probability that at least one loss event occurs.
    pub loss_probability: f64,
    /// Window warm-up length in RTTs for a single stream: the time a
    /// connection takes to actually reach its steady window, dominated
    /// in practice by receiver-window autotuning and conservative
    /// congestion-avoidance growth rather than pure exponential slow
    /// start. `n` parallel streams each need 1/n of the window, so the
    /// aggregate warms up `n`× faster — the §VII-B mechanism that lets
    /// 8-stream transfers beat 1-stream transfers for small files and
    /// tie for large ones (Figs. 3–4).
    pub warmup_rtts: f64,
}

impl Default for TcpModel {
    fn default() -> TcpModel {
        TcpModel {
            mss_bytes: 1460.0,
            init_cwnd_segments: 1.0,
            // "packet losses are rare if any" — a fraction of a percent
            // of transfers see one.
            loss_probability: 0.002,
            // ~12 s to full window on an 80 ms path for one stream,
            // matching the paper's 1-stream convergence in the
            // hundreds-of-MB range at ~200 Mbps.
            warmup_rtts: 150.0,
        }
    }
}

impl TcpModel {
    /// The aggregate window-limited rate cap in bps for `n_streams`
    /// parallel connections with `buf_bytes` TCP buffer each over
    /// `rtt_s` seconds RTT.
    pub fn window_cap_bps(&self, n_streams: u32, buf_bytes: f64, rtt_s: f64) -> f64 {
        assert!(rtt_s > 0.0, "RTT must be positive");
        f64::from(n_streams.max(1)) * buf_bytes * 8.0 / rtt_s
    }

    /// Time (seconds) and payload (bytes) consumed ramping from the
    /// initial window to `target_bps` aggregate, doubling each RTT.
    ///
    /// Returns `(ramp_time_s, ramp_bytes)`. If the initial window
    /// already sustains `target_bps`, both are zero.
    pub fn slow_start_ramp(&self, target_bps: f64, rtt_s: f64, n_streams: u32) -> (f64, f64) {
        assert!(rtt_s > 0.0, "RTT must be positive");
        let n = f64::from(n_streams.max(1));
        let w0 = n * self.init_cwnd_segments * self.mss_bytes; // bytes/RTT
        let target_per_rtt = target_bps * rtt_s / 8.0; // bytes/RTT
        if w0 >= target_per_rtt || target_per_rtt <= 0.0 {
            return (0.0, 0.0);
        }
        // Rounds until w0 * 2^k >= target: k = ceil(log2(target/w0)).
        let k = (target_per_rtt / w0).log2().ceil().max(0.0);
        // Bytes sent over k doubling rounds: w0 (2^k − 1).
        let bytes = w0 * ((2f64).powf(k) - 1.0);
        (k * rtt_s, bytes)
    }

    /// Extra transfer time attributable to slow start, relative to
    /// running at `target_bps` from t = 0, for a transfer of
    /// `size_bytes` (seconds). This is how the fluid simulator applies
    /// slow start: the flow runs at its steady cap and the analytic
    /// penalty is added to the logged duration.
    pub fn slow_start_penalty_s(
        &self,
        size_bytes: f64,
        target_bps: f64,
        rtt_s: f64,
        n_streams: u32,
    ) -> f64 {
        if target_bps <= 0.0 || size_bytes <= 0.0 {
            return 0.0;
        }
        let (ramp_t, ramp_b) = self.slow_start_ramp(target_bps, rtt_s, n_streams);
        if ramp_b >= size_bytes {
            // The file completes inside the ramp: find the doubling
            // round where cumulative bytes reach the file size.
            let n = f64::from(n_streams.max(1));
            let w0 = n * self.init_cwnd_segments * self.mss_bytes;
            // Smallest k with w0 (2^k − 1) >= size.
            let k = ((size_bytes / w0) + 1.0).log2().ceil().max(1.0);
            let t = k * rtt_s;
            return (t - size_bytes * 8.0 / target_bps).max(0.0);
        }
        // Time the ramp bytes *would* have taken at the steady rate.
        let ideal_t = ramp_b * 8.0 / target_bps;
        (ramp_t - ideal_t).max(0.0)
    }

    /// Extra transfer time from the linear window warm-up: the flow's
    /// rate ramps 0 → `target_bps` over `warmup_rtts × rtt / n`
    /// seconds, so relative to running at `target_bps` from t = 0 the
    /// transfer loses up to half the warm-up. Files that complete
    /// inside the ramp lose less (their duration is the root of the
    /// ramp integral), which produces the proportional-to-size rise at
    /// the left edge of Fig. 3.
    pub fn warmup_penalty_s(
        &self,
        size_bytes: f64,
        target_bps: f64,
        rtt_s: f64,
        n_streams: u32,
    ) -> f64 {
        if target_bps <= 0.0 || size_bytes <= 0.0 || rtt_s <= 0.0 {
            return 0.0;
        }
        let warmup = self.warmup_rtts * rtt_s / f64::from(n_streams.max(1));
        if warmup <= 0.0 {
            return 0.0;
        }
        let ideal_s = size_bytes * 8.0 / target_bps;
        // Bytes movable during the full linear ramp.
        let ramp_bytes = target_bps * warmup / 16.0;
        if size_bytes <= ramp_bytes {
            // Completes inside the ramp: S = cap·t²/(2·warmup·8).
            let t = (2.0 * size_bytes * 8.0 * warmup / target_bps).sqrt();
            (t - ideal_s).max(0.0)
        } else {
            warmup / 2.0
        }
    }

    /// Total ramp-up penalty: the slow-start rounds plus the window
    /// warm-up (the two phases overlap, so take the larger).
    pub fn ramp_penalty_s(
        &self,
        size_bytes: f64,
        target_bps: f64,
        rtt_s: f64,
        n_streams: u32,
    ) -> f64 {
        let ss = self.slow_start_penalty_s(size_bytes, target_bps, rtt_s, n_streams);
        let wu = self.warmup_penalty_s(size_bytes, target_bps, rtt_s, n_streams);
        ss.max(wu)
    }

    /// Multiplicative rate penalty applied to a transfer that suffers
    /// one loss event: one of its `n` streams halves its window for
    /// roughly half the transfer, so the aggregate factor is
    /// `1 − 1/(4n)`. With 8 streams the hit is ~3 %; with one stream
    /// 25 % — exactly why rare loss leaves the Fig. 4 medians equal.
    pub fn loss_penalty_factor(&self, n_streams: u32) -> f64 {
        1.0 - 1.0 / (4.0 * f64::from(n_streams.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> TcpModel {
        TcpModel::default()
    }

    #[test]
    fn window_cap_scales_with_streams_and_rtt() {
        let m = m();
        let one = m.window_cap_bps(1, 4.0 * 1024.0 * 1024.0, 0.080);
        let eight = m.window_cap_bps(8, 4.0 * 1024.0 * 1024.0, 0.080);
        assert!((eight / one - 8.0).abs() < 1e-9);
        // 4 MiB buffer over 80 ms: ~419 Mbps per stream.
        assert!((one - 4.0 * 1024.0 * 1024.0 * 8.0 / 0.080).abs() < 1.0);
        // Shorter RTT, higher cap.
        assert!(m.window_cap_bps(1, 4e6, 0.040) > m.window_cap_bps(1, 4e6, 0.080));
    }

    #[test]
    fn zero_streams_treated_as_one() {
        let m = m();
        assert_eq!(m.window_cap_bps(0, 1e6, 0.1), m.window_cap_bps(1, 1e6, 0.1));
    }

    #[test]
    fn ramp_zero_when_target_below_initial_window() {
        let m = m();
        let (t, b) = m.slow_start_ramp(10.0, 0.080, 1);
        assert_eq!((t, b), (0.0, 0.0));
    }

    #[test]
    fn ramp_time_logarithmic_in_target() {
        let m = m();
        let (t1, _) = m.slow_start_ramp(1e9, 0.080, 1);
        let (t2, _) = m.slow_start_ramp(2e9, 0.080, 1);
        assert!((t2 - t1 - 0.080).abs() < 1e-9, "doubling target adds one RTT");
    }

    #[test]
    fn more_streams_ramp_faster() {
        let m = m();
        let (t1, _) = m.slow_start_ramp(1e9, 0.080, 1);
        let (t8, _) = m.slow_start_ramp(1e9, 0.080, 8);
        assert!((t1 - t8 - 3.0 * 0.080).abs() < 1e-9, "8 streams saves log2(8)=3 RTTs");
    }

    #[test]
    fn penalty_larger_for_fewer_streams() {
        let m = m();
        let p1 = m.slow_start_penalty_s(100e6, 1e9, 0.080, 1);
        let p8 = m.slow_start_penalty_s(100e6, 1e9, 0.080, 8);
        assert!(p1 > p8, "p1={p1} p8={p8}");
        assert!(p1 > 0.0);
    }

    #[test]
    fn penalty_negligible_relative_to_large_files() {
        let m = m();
        // A 32 GB transfer at 1 Gbps lasts 256 s; penalty must be tiny
        // in comparison (this is why stream count stops mattering).
        let p = m.slow_start_penalty_s(32e9, 1e9, 0.080, 1);
        assert!(p < 3.0, "penalty {p}");
        let duration = 32e9 * 8.0 / 1e9;
        assert!(p / duration < 0.01);
    }

    #[test]
    fn penalty_dominates_small_files_single_stream() {
        let m = m();
        // A 1 MB transfer at 1 Gbps would ideally take 8 ms; slow
        // start makes it take several RTTs more.
        let p = m.slow_start_penalty_s(1e6, 1e9, 0.080, 1);
        let ideal = 1e6 * 8.0 / 1e9;
        assert!(p > ideal, "p={p} ideal={ideal}");
    }

    #[test]
    fn penalty_zero_for_degenerate_inputs() {
        let m = m();
        assert_eq!(m.slow_start_penalty_s(0.0, 1e9, 0.08, 1), 0.0);
        assert_eq!(m.slow_start_penalty_s(1e6, 0.0, 0.08, 1), 0.0);
    }

    #[test]
    fn loss_penalty_shrinks_with_streams() {
        let m = m();
        assert!((m.loss_penalty_factor(1) - 0.75).abs() < 1e-12);
        assert!((m.loss_penalty_factor(8) - (1.0 - 1.0 / 32.0)).abs() < 1e-12);
        assert!(m.loss_penalty_factor(8) > m.loss_penalty_factor(1));
    }
}

#[cfg(test)]
mod warmup_tests {
    use super::*;

    #[test]
    fn warmup_scales_inversely_with_streams() {
        let m = TcpModel::default();
        // Large file: full warm-up penalty = warmup/2.
        let p1 = m.warmup_penalty_s(50e9, 200e6, 0.080, 1);
        let p8 = m.warmup_penalty_s(50e9, 200e6, 0.080, 8);
        assert!((p1 / p8 - 8.0).abs() < 1e-9, "p1={p1} p8={p8}");
        assert!((p1 - 150.0 * 0.080 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn small_files_lose_less_than_full_warmup() {
        let m = TcpModel::default();
        let full = m.warmup_penalty_s(50e9, 200e6, 0.080, 1);
        let small = m.warmup_penalty_s(1e6, 200e6, 0.080, 1);
        assert!(small < full);
        assert!(small > 0.0);
    }

    #[test]
    fn warmup_creates_the_fig3_separation() {
        // 100 MB at a 215 Mbps cap over 80 ms: the 8-stream effective
        // throughput must clearly beat 1-stream; by 4 GB they tie.
        let m = TcpModel::default();
        let tput = |size: f64, n: u32| {
            let cap = 215e6;
            let d = size * 8.0 / cap + m.ramp_penalty_s(size, cap, 0.080, n) + 0.2;
            size * 8.0 / d
        };
        let ratio_small = tput(100e6, 8) / tput(100e6, 1);
        let ratio_large = tput(4e9, 8) / tput(4e9, 1);
        assert!(ratio_small > 1.8, "small-file ratio {ratio_small}");
        assert!(ratio_large < 1.15, "large-file ratio {ratio_large}");
    }

    #[test]
    fn degenerate_inputs_zero() {
        let m = TcpModel::default();
        assert_eq!(m.warmup_penalty_s(0.0, 1e9, 0.08, 1), 0.0);
        assert_eq!(m.warmup_penalty_s(1e6, 0.0, 0.08, 1), 0.0);
        assert_eq!(m.warmup_penalty_s(1e6, 1e9, 0.0, 1), 0.0);
    }
}
