//! Queueing-jitter proxy for the virtual-queue isolation ablation.
//!
//! The paper's third argument for circuits (§I): configuring packet
//! classifiers and schedulers to isolate α-flow packets into their own
//! virtual queues "will prevent packets of general-purpose flows from
//! getting stuck behind a large-sized burst of packets from an α flow.
//! The result is a reduction in delay variance (jitter) for the
//! general-purpose flows."
//!
//! We quantify that with an M/G/1-style delay model of one output
//! interface: the mean queueing wait is
//! `W = ρ·S·(1+CV²)/(2(1−ρ))` (Pollaczek–Khinchine with mean service
//! time `S`), and the burst contribution of α flows enters through an
//! effective service-burst size. With isolation, the general-purpose
//! queue sees only general-purpose load `ρ_gp` and MTU-sized bursts;
//! sharing the queue with α flows both raises the utilization to
//! `ρ_gp + ρ_α` and inflates the burst size to the α block size.

/// An output-interface jitter model.
#[derive(Debug, Clone, Copy)]
pub struct JitterModel {
    /// Line rate, bps.
    pub line_rate_bps: f64,
    /// MTU for general-purpose packets, bytes.
    pub mtu_bytes: f64,
    /// Burst size of an α flow (a GridFTP block flushed back-to-back),
    /// bytes.
    pub alpha_burst_bytes: f64,
}

impl Default for JitterModel {
    fn default() -> JitterModel {
        JitterModel { line_rate_bps: 10e9, mtu_bytes: 1500.0, alpha_burst_bytes: 256.0 * 1024.0 }
    }
}

impl JitterModel {
    /// Transmission time of `bytes` at line rate, seconds.
    fn tx_time(&self, bytes: f64) -> f64 {
        bytes * 8.0 / self.line_rate_bps
    }

    /// Mean queueing wait (seconds) for general-purpose packets when
    /// sharing the queue with α traffic: utilization is the sum and
    /// the burst mix includes α blocks.
    ///
    /// # Panics
    /// Panics when total utilization ≥ 1 or either load is negative.
    pub fn shared_queue_wait_s(&self, gp_util: f64, alpha_util: f64) -> f64 {
        assert!(gp_util >= 0.0 && alpha_util >= 0.0, "loads must be non-negative");
        let rho = gp_util + alpha_util;
        assert!(rho < 1.0, "utilization must be < 1, got {rho}");
        if rho == 0.0 {
            return 0.0;
        }
        // Weighted second moment of the service (burst) size mix.
        let s_gp = self.tx_time(self.mtu_bytes);
        let s_a = self.tx_time(self.alpha_burst_bytes);
        let w_gp = gp_util / rho;
        let w_a = alpha_util / rho;
        let m1 = w_gp * s_gp + w_a * s_a;
        let m2 = w_gp * s_gp * s_gp + w_a * s_a * s_a;
        // Pollaczek–Khinchine: W = λ m2 / (2 (1 − ρ)), λ = ρ / m1.
        (rho / m1) * m2 / (2.0 * (1.0 - rho))
    }

    /// Mean queueing wait (seconds) for general-purpose packets when α
    /// flows are isolated into their own virtual queue: only `gp_util`
    /// and MTU bursts remain. (The α queue is serviced separately; a
    /// weighted scheduler guarantees the GP queue its share.)
    ///
    /// # Panics
    /// Panics when `gp_util` ≥ 1 or negative.
    pub fn isolated_queue_wait_s(&self, gp_util: f64) -> f64 {
        assert!((0.0..1.0).contains(&gp_util), "utilization must be in [0,1)");
        if gp_util == 0.0 {
            return 0.0;
        }
        let s = self.tx_time(self.mtu_bytes);
        (gp_util / s) * s * s / (2.0 * (1.0 - gp_util))
    }

    /// The jitter-reduction factor isolation buys:
    /// `shared / isolated` (> 1 whenever α traffic is present).
    pub fn isolation_gain(&self, gp_util: f64, alpha_util: f64) -> f64 {
        let iso = self.isolated_queue_wait_s(gp_util);
        if iso == 0.0 {
            return f64::INFINITY;
        }
        self.shared_queue_wait_s(gp_util, alpha_util) / iso
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_zero_wait() {
        let m = JitterModel::default();
        assert_eq!(m.shared_queue_wait_s(0.0, 0.0), 0.0);
        assert_eq!(m.isolated_queue_wait_s(0.0), 0.0);
    }

    #[test]
    fn wait_grows_with_utilization() {
        let m = JitterModel::default();
        let w1 = m.isolated_queue_wait_s(0.2);
        let w2 = m.isolated_queue_wait_s(0.6);
        let w3 = m.isolated_queue_wait_s(0.9);
        assert!(w1 < w2 && w2 < w3);
    }

    #[test]
    fn alpha_bursts_inflate_gp_wait() {
        let m = JitterModel::default();
        let shared = m.shared_queue_wait_s(0.05, 0.40);
        let isolated = m.isolated_queue_wait_s(0.05);
        assert!(shared > 10.0 * isolated, "shared={shared} isolated={isolated}");
    }

    #[test]
    fn gain_increases_with_alpha_load() {
        let m = JitterModel::default();
        let g1 = m.isolation_gain(0.05, 0.1);
        let g2 = m.isolation_gain(0.05, 0.4);
        assert!(g2 > g1);
        assert!(g1 > 1.0);
    }

    #[test]
    fn no_alpha_traffic_no_gain() {
        let m = JitterModel::default();
        let g = m.isolation_gain(0.3, 0.0);
        assert!((g - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "utilization must be < 1")]
    fn overload_panics() {
        let m = JitterModel::default();
        m.shared_queue_wait_s(0.6, 0.6);
    }

    #[test]
    fn mm1_limit_matches_closed_form() {
        // With alpha burst == MTU the mix collapses to deterministic
        // service: W = rho * S / (2 (1 - rho)) (M/D/1).
        let m = JitterModel { alpha_burst_bytes: 1500.0, ..JitterModel::default() };
        let s = 1500.0 * 8.0 / 10e9;
        let rho: f64 = 0.5;
        let expected = rho * s / (2.0 * (1.0 - rho));
        assert!((m.shared_queue_wait_s(0.25, 0.25) - expected).abs() < 1e-15);
    }
}
