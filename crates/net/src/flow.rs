//! Flow and resource identities for the fluid simulator.

use gvc_engine::SimTime;
use gvc_topology::LinkId;

/// Handle to an active (or completed) flow in a [`crate::NetworkSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Handle to a server-side capacity resource (NIC, disk array, CPU
/// aggregate) registered with a [`crate::NetworkSim`]. Resources are
/// capacity constraints exactly like links; they are what makes
/// concurrent transfers at one data-transfer node compete (§VII-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

/// A flow to inject into the simulator.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Network links traversed, in order.
    pub route: Vec<LinkId>,
    /// Server resources consumed at the endpoints.
    pub resources: Vec<ResourceId>,
    /// Payload to move, bytes.
    pub size_bytes: f64,
    /// Guaranteed minimum rate (virtual-circuit reservation), bps.
    pub min_rate_bps: f64,
    /// Maximum useful rate (TCP window cap, application limit), bps.
    pub max_rate_bps: f64,
    /// Caller-defined tag for correlating completions back to
    /// transfers/sessions.
    pub tag: u64,
}

impl FlowSpec {
    /// A best-effort flow with no guarantee and no cap.
    pub fn best_effort(route: Vec<LinkId>, size_bytes: f64) -> FlowSpec {
        FlowSpec {
            route,
            resources: Vec::new(),
            size_bytes,
            min_rate_bps: 0.0,
            max_rate_bps: f64::INFINITY,
            tag: 0,
        }
    }

    /// Sets the rate cap, returning `self` (builder style).
    pub fn with_cap(mut self, max_rate_bps: f64) -> FlowSpec {
        self.max_rate_bps = max_rate_bps;
        self
    }

    /// Sets a circuit guarantee, returning `self`.
    pub fn with_guarantee(mut self, min_rate_bps: f64) -> FlowSpec {
        self.min_rate_bps = min_rate_bps;
        self
    }

    /// Adds endpoint resources, returning `self`.
    pub fn with_resources(mut self, resources: Vec<ResourceId>) -> FlowSpec {
        self.resources = resources;
        self
    }

    /// Sets the correlation tag, returning `self`.
    pub fn with_tag(mut self, tag: u64) -> FlowSpec {
        self.tag = tag;
        self
    }
}

/// Emitted when a flow finishes moving its payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowCompletion {
    /// The finished flow.
    pub id: FlowId,
    /// Its caller-defined tag.
    pub tag: u64,
    /// Injection time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// Bytes moved (the spec's `size_bytes`).
    pub bytes: f64,
    /// Highest instantaneous rate the flow held (bps) — peak-to-mean
    /// is the burstiness measure of the Lan & Heidemann taxonomy the
    /// paper cites in §III.
    pub peak_rate_bps: f64,
}

impl FlowCompletion {
    /// Elapsed transfer time in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }

    /// Mean throughput in bits per second.
    pub fn throughput_bps(&self) -> f64 {
        let d = self.duration_s();
        if d <= 0.0 {
            0.0
        } else {
            self.bytes * 8.0 / d
        }
    }

    /// Peak-to-mean rate ratio (≥ 1 for any flow that ran; 0 for
    /// degenerate ones).
    pub fn burstiness(&self) -> f64 {
        let mean = self.throughput_bps();
        if mean <= 0.0 {
            0.0
        } else {
            self.peak_rate_bps / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let f = FlowSpec::best_effort(vec![], 100.0)
            .with_cap(5.0)
            .with_guarantee(1.0)
            .with_tag(7)
            .with_resources(vec![ResourceId(0)]);
        assert_eq!(f.max_rate_bps, 5.0);
        assert_eq!(f.min_rate_bps, 1.0);
        assert_eq!(f.tag, 7);
        assert_eq!(f.resources, vec![ResourceId(0)]);
    }

    #[test]
    fn completion_metrics() {
        let c = FlowCompletion {
            id: FlowId(1),
            tag: 0,
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(18),
            bytes: 1e9,
            peak_rate_bps: 1.5e9,
        };
        assert!((c.duration_s() - 8.0).abs() < 1e-12);
        assert!((c.throughput_bps() - 1e9).abs() < 1.0);
        assert!((c.burstiness() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_completion_throughput_zero() {
        let c = FlowCompletion {
            id: FlowId(1),
            tag: 0,
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(10),
            bytes: 1e9,
            peak_rate_bps: 1e9,
        };
        assert_eq!(c.throughput_bps(), 0.0);
        assert_eq!(c.burstiness(), 0.0);
    }
}
