//! The event-driven fluid simulator.
//!
//! Flows hold piecewise-constant rates computed by the max-min solver;
//! rates are recomputed whenever the active set changes (arrival or
//! departure), which is exact for the fluid model. Between changes the
//! simulator integrates per-flow progress and deposits bytes into the
//! SNMP counters of monitored interfaces.
//!
//! The driver (session scripts in `gvc-gridftp`, background traffic,
//! OSCARS provisioning) interleaves with the simulator through
//! [`NetworkSim::run_until`]: advance to `t`, harvesting any flow
//! completions on the way, then inject the next external event.

use crate::fairshare::{max_min_allocation, CapacityConstraint, FlowDemand};
use crate::flow::{FlowCompletion, FlowId, FlowSpec, ResourceId};
use crate::snmp_rec::SnmpRecorder;
use gvc_engine::{SimSpan, SimTime};
use gvc_telemetry::timeline::series;
use gvc_telemetry::{Counter, Gauge, Registry, TimelineHandle, TraceEvent, Tracer};
use gvc_topology::{Graph, LinkId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Fluid-simulator telemetry, shared with a [`Registry`]. Attach via
/// [`NetworkSim::set_telemetry`].
#[derive(Clone)]
pub struct NetTelemetry {
    /// `net_fairshare_recomputations_total`: max-min solver runs.
    pub recomputations: Arc<Counter>,
    /// `net_flows_started_total`: flows injected.
    pub flows_started: Arc<Counter>,
    /// `net_flows_completed_total`: flows finished (not aborted).
    pub flows_completed: Arc<Counter>,
    /// `net_flows_active`: currently active flows.
    pub flows_active: Arc<Gauge>,
    /// `net_snmp_deposited_bytes_total`: bytes deposited into monitored
    /// SNMP interface counters.
    pub snmp_bytes: Arc<Counter>,
    /// Trace handle for `net.*` events.
    pub tracer: Tracer,
}

impl NetTelemetry {
    /// Registers the simulator metrics in `registry`, tracing into
    /// `tracer`.
    pub fn register(registry: &Registry, tracer: Tracer) -> NetTelemetry {
        NetTelemetry {
            recomputations: registry.counter("net_fairshare_recomputations_total", &[]),
            flows_started: registry.counter("net_flows_started_total", &[]),
            flows_completed: registry.counter("net_flows_completed_total", &[]),
            flows_active: registry.gauge("net_flows_active", &[]),
            snmp_bytes: registry.counter("net_snmp_deposited_bytes_total", &[]),
            tracer,
        }
    }
}

/// A recorded rate timeline for one traced flow: `(instant, bps)`
/// breakpoints, one per fair-share recomputation that changed the
/// flow's rate. Piecewise-constant between breakpoints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowTrace {
    /// `(time, rate_bps)` breakpoints in time order.
    pub points: Vec<(SimTime, f64)>,
}

impl FlowTrace {
    /// The rate in force at instant `t` (0 before the first point).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.points.iter().take_while(|(at, _)| *at <= t).last().map_or(0.0, |&(_, r)| r)
    }

    /// Number of rate changes recorded.
    pub fn changes(&self) -> usize {
        self.points.len()
    }
}

/// Bytes below which a flow counts as finished (guards float error).
const DONE_EPS_BYTES: f64 = 0.5;

struct FlowState {
    spec: FlowSpec,
    remaining_bytes: f64,
    rate_bps: f64,
    peak_rate_bps: f64,
    started: SimTime,
}

/// The fluid network simulator over a [`Graph`].
///
/// ```
/// use gvc_net::{FlowSpec, NetworkSim};
/// use gvc_engine::SimTime;
/// use gvc_topology::{Graph, NodeKind};
///
/// let mut g = Graph::new();
/// let a = g.add_node("a", NodeKind::Host);
/// let b = g.add_node("b", NodeKind::Host);
/// let (link, _) = g.add_duplex_link(a, b, 8e9, 0.01);
///
/// let mut sim = NetworkSim::new(g, 0);
/// sim.add_flow(FlowSpec::best_effort(vec![link], 1e9)); // 1 GB
/// let done = sim.run_until(SimTime::from_secs(10));
/// assert_eq!(done.len(), 1);
/// assert!((done[0].throughput_bps() - 8e9).abs() < 1e3);
/// ```
pub struct NetworkSim {
    graph: Graph,
    resources: Vec<f64>,
    flows: BTreeMap<FlowId, FlowState>,
    next_id: u64,
    now: SimTime,
    rates_dirty: bool,
    snmp: SnmpRecorder,
    /// Background-tagged share of the same monitored interfaces:
    /// flows carrying [`NetworkSim::set_background_tag`]'s tag
    /// deposit here *in addition to* the main recorder, so the
    /// timeline can report the cross-traffic share per window.
    bg_snmp: SnmpRecorder,
    /// The tag marking background cross-traffic, if any.
    background_tag: Option<u64>,
    /// Unix microseconds corresponding to `SimTime::ZERO` (for SNMP
    /// bin timestamps).
    epoch_unix_us: i64,
    /// Rate timelines for traced tags.
    traces: HashMap<u64, FlowTrace>,
    traced_tags: std::collections::HashSet<u64>,
    telemetry: Option<NetTelemetry>,
}

impl NetworkSim {
    /// A simulator over `graph` whose `SimTime::ZERO` maps to
    /// `epoch_unix_us` (unix microseconds, UTC).
    pub fn new(graph: Graph, epoch_unix_us: i64) -> NetworkSim {
        NetworkSim {
            graph,
            resources: Vec::new(),
            flows: BTreeMap::new(),
            next_id: 0,
            now: SimTime::ZERO,
            rates_dirty: false,
            snmp: SnmpRecorder::new(),
            bg_snmp: SnmpRecorder::new(),
            background_tag: None,
            epoch_unix_us,
            traces: HashMap::new(),
            traced_tags: std::collections::HashSet::new(),
            telemetry: None,
        }
    }

    /// Attaches fluid-simulator telemetry.
    pub fn set_telemetry(&mut self, telemetry: NetTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Starts recording the rate timeline of flows carrying `tag`
    /// (call before injecting them).
    pub fn trace_tag(&mut self, tag: u64) {
        self.traced_tags.insert(tag);
    }

    /// The recorded timeline for `tag`, if traced.
    pub fn trace(&self, tag: u64) -> Option<&FlowTrace> {
        self.traces.get(&tag)
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Unix microseconds for a sim instant.
    pub fn to_unix_us(&self, t: SimTime) -> i64 {
        self.epoch_unix_us + t.micros() as i64
    }

    /// Registers a server-side capacity resource (bps).
    ///
    /// # Panics
    /// Panics on non-positive capacity.
    pub fn add_resource(&mut self, capacity_bps: f64) -> ResourceId {
        assert!(capacity_bps > 0.0, "resource capacity must be positive");
        self.resources.push(capacity_bps);
        ResourceId((self.resources.len() - 1) as u32)
    }

    /// Changes a resource's capacity (e.g. the NCAR frost cluster
    /// shrinking from 3 servers to 1 across 2009–2011).
    pub fn set_resource_capacity(&mut self, id: ResourceId, capacity_bps: f64) {
        assert!(capacity_bps > 0.0, "resource capacity must be positive");
        self.resources[id.0 as usize] = capacity_bps;
        self.rates_dirty = true;
    }

    /// Overrides a link's capacity mid-run (fault injection: link
    /// flaps and restoration). Zero models a hard outage — flows on
    /// the link stall until capacity returns. Returns `false` on an
    /// unknown link or invalid capacity, leaving rates untouched.
    pub fn set_link_capacity(&mut self, link: LinkId, capacity_bps: f64) -> bool {
        let ok = self.graph.set_link_capacity(link, capacity_bps);
        if ok {
            self.rates_dirty = true;
            if let Some(t) = &self.telemetry {
                t.tracer.emit_with(|| {
                    TraceEvent::new(self.now.micros() as i64, "net.link_capacity")
                        .field("link", u64::from(link.0))
                        .field("capacity_bps", capacity_bps)
                });
            }
        }
        ok
    }

    /// Looks up a directed link by its endpoint names (`src`, `dst`).
    pub fn link_by_names(&self, src: &str, dst: &str) -> Option<LinkId> {
        let s = self.graph.node_by_name(src)?;
        let d = self.graph.node_by_name(dst)?;
        self.graph.out_links(s).iter().copied().find(|&l| self.graph.link(l).dst == d)
    }

    /// Starts SNMP monitoring of `link` (30-second bins, labelled by
    /// endpoint names).
    pub fn monitor_link(&mut self, link: LinkId) {
        let l = self.graph.link(link);
        let name = format!("{}->{}", self.graph.node(l.src).name, self.graph.node(l.dst).name);
        self.snmp.monitor(link, &name, self.epoch_unix_us);
        self.bg_snmp.monitor(link, &name, self.epoch_unix_us);
    }

    /// Access to recorded SNMP counters.
    pub fn snmp(&self) -> &SnmpRecorder {
        &self.snmp
    }

    /// Access to the background-only SNMP counters.
    pub fn bg_snmp(&self) -> &SnmpRecorder {
        &self.bg_snmp
    }

    /// Marks `tag` as background cross-traffic: flows carrying it
    /// additionally deposit into the background-only counters of
    /// monitored interfaces.
    pub fn set_background_tag(&mut self, tag: u64) {
        self.background_tag = Some(tag);
    }

    /// Folds another recorder's SNMP counters into this sim's (see
    /// [`SnmpRecorder::absorb`]). Sharded runs use this to merge each
    /// lane's counters back into the coordinator's sim.
    pub fn absorb_snmp(&mut self, other: &SnmpRecorder) {
        self.snmp.absorb(other);
    }

    /// Folds another recorder's background-only counters in (the
    /// sharded-merge twin of [`NetworkSim::absorb_snmp`]).
    pub fn absorb_bg_snmp(&mut self, other: &SnmpRecorder) {
        self.bg_snmp.absorb(other);
    }

    /// Derives the per-link timeline series from the (merged) SNMP
    /// counters: `net.link_util[<iface>]` and `net.bg_util[<iface>]`
    /// as utilization fractions of link capacity per timeline window,
    /// each counter bin distributed over the windows it overlaps.
    ///
    /// Called exactly once after a run completes (after sharded lanes
    /// are absorbed), so the series inherit the integer-bin shard
    /// invariance of the recorder instead of depending on float
    /// integration order. Utilization is relative to the link's
    /// capacity at derivation time.
    pub fn record_timeline(&self, tl: &TimelineHandle) {
        let width_s = tl.width_us() as f64 / 1e6;
        for (rec, base) in
            [(&self.snmp, series::NET_LINK_UTIL), (&self.bg_snmp, series::NET_BG_UTIL)]
        {
            for link in rec.monitored_links() {
                let Some(s) = rec.series(link) else { continue };
                let cap = self.graph.link(link).capacity_bps;
                if cap <= 0.0 {
                    continue;
                }
                let name = format!("{base}[{}]", s.interface);
                for i in 0..s.len() {
                    let bytes = s.bytes_in_bin(i);
                    if bytes == 0 {
                        continue;
                    }
                    let sim_start = (s.bin_start(i) - self.epoch_unix_us).max(0) as u64;
                    let sim_end = sim_start + s.bin_width_us.max(1) as u64;
                    let util = bytes as f64 * 8.0 / (cap * width_s);
                    tl.add_span(&name, sim_start, sim_end, util);
                }
            }
        }
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Injects `spec` at the current time.
    ///
    /// # Panics
    /// Panics on a non-positive payload or an unknown resource id.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(spec.size_bytes > 0.0, "flow payload must be positive");
        for r in &spec.resources {
            assert!((r.0 as usize) < self.resources.len(), "unknown resource {r:?}");
        }
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            FlowState {
                remaining_bytes: spec.size_bytes,
                spec,
                rate_bps: 0.0,
                peak_rate_bps: 0.0,
                started: self.now,
            },
        );
        self.rates_dirty = true;
        if let Some(t) = &self.telemetry {
            t.flows_started.inc();
            t.flows_active.set(self.flows.len() as i64);
        }
        id
    }

    /// Aborts a flow, returning the bytes it had moved. `None` when
    /// the id is unknown (already completed).
    pub fn remove_flow(&mut self, id: FlowId) -> Option<f64> {
        let st = self.flows.remove(&id)?;
        self.rates_dirty = true;
        if let Some(t) = &self.telemetry {
            t.flows_active.set(self.flows.len() as i64);
        }
        Some(st.spec.size_bytes - st.remaining_bytes)
    }

    /// Current rate of a flow, bps.
    pub fn flow_rate(&mut self, id: FlowId) -> Option<f64> {
        self.recompute_if_dirty();
        self.flows.get(&id).map(|f| f.rate_bps)
    }

    /// Updates a flow's circuit guarantee in place (used when an
    /// OSCARS circuit is provisioned under an already-running
    /// transfer).
    pub fn set_flow_guarantee(&mut self, id: FlowId, min_rate_bps: f64) -> bool {
        match self.flows.get_mut(&id) {
            Some(f) => {
                f.spec.min_rate_bps = min_rate_bps;
                self.rates_dirty = true;
                true
            }
            None => false,
        }
    }

    fn recompute_if_dirty(&mut self) {
        if !self.rates_dirty {
            return;
        }
        if let Some(t) = &self.telemetry {
            t.recomputations.inc();
            let n_flows = self.flows.len();
            t.tracer.emit_with(|| {
                TraceEvent::new(self.now.micros() as i64, "net.fairshare").field("flows", n_flows)
            });
        }
        let n_links = self.graph.link_count();
        let mut constraints: Vec<CapacityConstraint> = self
            .graph
            .links()
            .iter()
            .map(|l| CapacityConstraint { capacity_bps: l.capacity_bps })
            .collect();
        constraints.extend(self.resources.iter().map(|&c| CapacityConstraint { capacity_bps: c }));

        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let demands: Vec<FlowDemand> = ids
            .iter()
            .map(|id| {
                let f = &self.flows[id];
                let mut cs: Vec<usize> = f.spec.route.iter().map(|l| l.0 as usize).collect();
                cs.extend(f.spec.resources.iter().map(|r| n_links + r.0 as usize));
                FlowDemand {
                    constraints: cs,
                    min_rate_bps: f.spec.min_rate_bps,
                    max_rate_bps: f.spec.max_rate_bps,
                }
            })
            .collect();
        let alloc = max_min_allocation(&constraints, &demands);
        let now = self.now;
        for (id, rate) in ids.into_iter().zip(alloc) {
            let Some(f) = self.flows.get_mut(&id) else { continue };
            let changed = (f.rate_bps - rate).abs() > 1e-6;
            f.rate_bps = rate;
            f.peak_rate_bps = f.peak_rate_bps.max(rate);
            if changed && self.traced_tags.contains(&f.spec.tag) {
                self.traces.entry(f.spec.tag).or_default().points.push((now, rate));
            }
        }
        self.rates_dirty = false;
    }

    /// Earliest completion instant under current rates, if any flow is
    /// progressing. Drivers use this to interleave their own event
    /// queues with the simulator without ever running it backwards.
    pub fn peek_completion(&mut self) -> Option<SimTime> {
        self.next_completion_time()
    }

    /// Earliest completion instant under current rates, if any flow is
    /// progressing.
    fn next_completion_time(&mut self) -> Option<SimTime> {
        self.recompute_if_dirty();
        self.flows
            .values()
            .filter(|f| f.rate_bps > 0.0)
            .map(|f| {
                let secs = f.remaining_bytes * 8.0 / f.rate_bps;
                // Round *up* to ≥ 1 µs: rounding down (or to nearest)
                // can predict an instant 1 µs before the true finish,
                // so integrating exactly to the prediction would leave
                // a sliver un-harvested; rounding up guarantees the
                // flow crosses its finish line by the predicted time.
                let span = SimSpan((secs * 1e6).ceil() as i64).max(SimSpan(1));
                self.now + span
            })
            .min()
    }

    /// Integrates progress and SNMP deposits from `now` to `t`
    /// (no completion may lie inside the interval).
    fn integrate_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        let dt = (t - self.now).as_secs_f64();
        if dt <= 0.0 {
            self.now = t;
            return;
        }
        let start_us = self.to_unix_us(self.now);
        let end_us = self.to_unix_us(t);
        let mut deposited: u64 = 0;
        for f in self.flows.values_mut() {
            if f.rate_bps <= 0.0 {
                continue;
            }
            let bytes = (f.rate_bps * dt / 8.0).min(f.remaining_bytes);
            f.remaining_bytes -= bytes;
            let is_background = self.background_tag == Some(f.spec.tag);
            for &l in &f.spec.route {
                deposited += self.snmp.deposit(l, start_us, end_us, bytes.round() as u64);
                if is_background {
                    self.bg_snmp.deposit(l, start_us, end_us, bytes.round() as u64);
                }
            }
        }
        if let Some(tel) = &self.telemetry {
            if deposited > 0 {
                tel.snmp_bytes.add(deposited);
                tel.tracer.emit_with(|| {
                    TraceEvent::new(t.micros() as i64, "net.snmp_deposit")
                        .field("bytes", deposited)
                        .field("span_s", dt)
                });
            }
        }
        self.now = t;
    }

    /// Advances the clock to `t`, processing flow completions on the
    /// way. Returns completions in time order.
    ///
    /// # Panics
    /// Panics when `t` is in the past.
    pub fn run_until(&mut self, t: SimTime) -> Vec<FlowCompletion> {
        assert!(t >= self.now, "cannot run backwards");
        let mut out = Vec::new();
        loop {
            match self.next_completion_time() {
                Some(tc) if tc <= t => {
                    self.integrate_to(tc);
                    // Harvest every flow that finished at tc.
                    let done: Vec<FlowId> = self
                        .flows
                        .iter()
                        .filter(|(_, f)| f.remaining_bytes <= DONE_EPS_BYTES)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in done {
                        let Some(f) = self.flows.remove(&id) else { continue };
                        out.push(FlowCompletion {
                            id,
                            tag: f.spec.tag,
                            start: f.started,
                            end: tc,
                            bytes: f.spec.size_bytes,
                            peak_rate_bps: f.peak_rate_bps,
                        });
                        self.rates_dirty = true;
                        if let Some(tel) = &self.telemetry {
                            tel.flows_completed.inc();
                            tel.flows_active.set(self.flows.len() as i64);
                        }
                    }
                }
                _ => {
                    self.integrate_to(t);
                    return out;
                }
            }
        }
    }

    /// Runs until every flow completes (or stalls), with a hard time
    /// limit as a safety net. Returns all completions.
    pub fn drain(&mut self, limit: SimTime) -> Vec<FlowCompletion> {
        let mut out = Vec::new();
        while !self.flows.is_empty() {
            let before = out.len();
            let target = match self.next_completion_time() {
                Some(tc) if tc <= limit => tc,
                _ => break,
            };
            out.extend(self.run_until(target));
            if out.len() == before {
                break; // stalled
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_topology::NodeKind;

    /// Two hosts over one 8 Gbps link pair.
    fn sim_one_link() -> (NetworkSim, LinkId) {
        let mut g = Graph::new();
        let a = g.add_node("a", NodeKind::Host);
        let b = g.add_node("b", NodeKind::Host);
        let (f, _) = g.add_duplex_link(a, b, 8e9, 0.010);
        (NetworkSim::new(g, 0), f)
    }

    #[test]
    fn single_flow_runs_at_link_rate() {
        let (mut sim, l) = sim_one_link();
        // 8 Gbit payload = 1e9 bytes at 8 Gbps -> 1 second.
        let id = sim.add_flow(FlowSpec::best_effort(vec![l], 1e9));
        let done = sim.run_until(SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert!((done[0].end.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((done[0].throughput_bps() - 8e9).abs() < 1e3);
        assert_eq!(sim.active_flows(), 0);
    }

    #[test]
    fn two_flows_share_fairly_then_speed_up() {
        let (mut sim, l) = sim_one_link();
        // Both 1e9 bytes: share 4 Gbps each for 2 s -> both done at 2 s.
        sim.add_flow(FlowSpec::best_effort(vec![l], 1e9).with_tag(1));
        sim.add_flow(FlowSpec::best_effort(vec![l], 1e9).with_tag(2));
        let done = sim.run_until(SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        for c in &done {
            assert!((c.end.as_secs_f64() - 2.0).abs() < 1e-6, "{c:?}");
        }
    }

    #[test]
    fn departure_releases_bandwidth() {
        let (mut sim, l) = sim_one_link();
        // Short flow (0.5e9) and long flow (1.5e9): share 4 Gbps,
        // short finishes at t=1; long then runs at 8 Gbps, has 1e9
        // left -> finishes at t=2.
        sim.add_flow(FlowSpec::best_effort(vec![l], 0.5e9).with_tag(1));
        sim.add_flow(FlowSpec::best_effort(vec![l], 1.5e9).with_tag(2));
        let done = sim.run_until(SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        assert!((done[0].end.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(done[0].tag, 1);
        assert!((done[1].end.as_secs_f64() - 2.0).abs() < 1e-6);
        assert_eq!(done[1].tag, 2);
    }

    #[test]
    fn late_arrival_resplits() {
        let (mut sim, l) = sim_one_link();
        sim.add_flow(FlowSpec::best_effort(vec![l], 2e9).with_tag(1));
        // Advance 1 s alone (1e9 done), then a competitor arrives.
        let none = sim.run_until(SimTime::from_secs(1));
        assert!(none.is_empty());
        sim.add_flow(FlowSpec::best_effort(vec![l], 0.5e9).with_tag(2));
        let done = sim.run_until(SimTime::from_secs(10));
        // Flow 2: 0.5e9 at 4 Gbps -> done at t=2. Flow 1 then has
        // 0.5e9 left at 8 Gbps -> done at 2.5.
        assert!((done[0].end.as_secs_f64() - 2.0).abs() < 1e-6);
        assert!((done[1].end.as_secs_f64() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn rate_cap_respected() {
        let (mut sim, l) = sim_one_link();
        let id = sim.add_flow(FlowSpec::best_effort(vec![l], 1e9).with_cap(1e9));
        assert!((sim.flow_rate(id).unwrap() - 1e9).abs() < 1e3);
        let done = sim.run_until(SimTime::from_secs(20));
        assert!((done[0].end.as_secs_f64() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn guarantee_shields_circuit_flow() {
        let (mut sim, l) = sim_one_link();
        // Circuit flow guaranteed 6 Gbps (and capped there); nine
        // best-effort competitors. Without the guarantee it would get
        // 0.8 Gbps.
        let vc =
            sim.add_flow(FlowSpec::best_effort(vec![l], 6e9).with_guarantee(6e9).with_cap(6e9));
        for _ in 0..9 {
            sim.add_flow(FlowSpec::best_effort(vec![l], 1e12));
        }
        assert!((sim.flow_rate(vc).unwrap() - 6e9).abs() < 1e3);
    }

    #[test]
    fn server_resource_couples_flows_on_disjoint_links() {
        let mut g = Graph::new();
        let a = g.add_node("a", NodeKind::Host);
        let b = g.add_node("b", NodeKind::Host);
        let c = g.add_node("c", NodeKind::Host);
        let (ab, _) = g.add_duplex_link(a, b, 10e9, 0.01);
        let (ac, _) = g.add_duplex_link(a, c, 10e9, 0.01);
        let mut sim = NetworkSim::new(g, 0);
        let server = sim.add_resource(2e9);
        let f1 = sim.add_flow(FlowSpec::best_effort(vec![ab], 1e9).with_resources(vec![server]));
        let f2 = sim.add_flow(FlowSpec::best_effort(vec![ac], 1e9).with_resources(vec![server]));
        assert!((sim.flow_rate(f1).unwrap() - 1e9).abs() < 1e3);
        assert!((sim.flow_rate(f2).unwrap() - 1e9).abs() < 1e3);
    }

    #[test]
    fn snmp_counters_record_flow_bytes() {
        let (mut sim, l) = sim_one_link();
        sim.monitor_link(l);
        sim.add_flow(FlowSpec::best_effort(vec![l], 1e9));
        sim.run_until(SimTime::from_secs(5));
        let s = sim.snmp().series(l).unwrap();
        assert!((s.total_bytes() as f64 - 1e9).abs() < 2.0);
        // The 1 s transfer lands in the first 30 s bin.
        assert!((s.bytes_in_bin(0) as f64 - 1e9).abs() < 2.0);
    }

    #[test]
    fn background_share_and_timeline_derivation() {
        use gvc_telemetry::TimelineHandle;
        let (mut sim, l) = sim_one_link();
        sim.monitor_link(l);
        sim.set_background_tag(99);
        // Foreground and background flows, 1e9 bytes each, share the
        // link and finish inside the first 30 s bin.
        sim.add_flow(FlowSpec::best_effort(vec![l], 1e9).with_tag(1));
        sim.add_flow(FlowSpec::best_effort(vec![l], 1e9).with_tag(99));
        sim.drain(SimTime::from_secs(100));
        let total = sim.snmp().series(l).unwrap().total_bytes();
        let bg = sim.bg_snmp().series(l).unwrap().total_bytes();
        assert!((total as f64 - 2e9).abs() < 4.0, "total {total}");
        assert!((bg as f64 - 1e9).abs() < 2.0, "bg {bg}");

        let tl = TimelineHandle::new(30_000_000);
        sim.record_timeline(&tl);
        let doc = gvc_telemetry::TimelineDoc::parse(&tl.to_json()).expect("parse");
        let util = |name: &str| {
            doc.series
                .iter()
                .find(|s| s.name == name)
                .and_then(|s| s.windows.first())
                .and_then(|w| w.get("value"))
                .expect("window value")
        };
        // 2e9 B over a 30 s window of an 8 Gbps link: 1/15 utilization;
        // the background share is half of that.
        assert!((util("net.link_util[a->b]") - 1.0 / 15.0).abs() < 1e-6);
        assert!((util("net.bg_util[a->b]") - 1.0 / 30.0).abs() < 1e-6);
    }

    #[test]
    fn remove_flow_reports_progress() {
        let (mut sim, l) = sim_one_link();
        let id = sim.add_flow(FlowSpec::best_effort(vec![l], 8e9));
        sim.run_until(SimTime::from_secs(1)); // 1e9 bytes moved
        let moved = sim.remove_flow(id).unwrap();
        assert!((moved - 1e9).abs() < 2.0);
        assert!(sim.remove_flow(id).is_none());
        assert_eq!(sim.active_flows(), 0);
    }

    #[test]
    fn drain_completes_everything() {
        let (mut sim, l) = sim_one_link();
        for i in 1..=5 {
            sim.add_flow(FlowSpec::best_effort(vec![l], i as f64 * 1e8));
        }
        let done = sim.drain(SimTime::from_secs(100));
        assert_eq!(done.len(), 5);
        assert!(done.windows(2).all(|w| w[0].end <= w[1].end));
    }

    #[test]
    fn simultaneous_completions_both_reported() {
        let (mut sim, l) = sim_one_link();
        sim.add_flow(FlowSpec::best_effort(vec![l], 1e9).with_tag(1));
        sim.add_flow(FlowSpec::best_effort(vec![l], 1e9).with_tag(2));
        let done = sim.run_until(SimTime::from_secs(3));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].end, done[1].end);
    }

    #[test]
    fn traced_flow_records_rate_breakpoints() {
        let (mut sim, l) = sim_one_link();
        sim.trace_tag(7);
        sim.add_flow(FlowSpec::best_effort(vec![l], 2e9).with_tag(7));
        sim.run_until(SimTime::from_secs(1));
        sim.add_flow(FlowSpec::best_effort(vec![l], 0.5e9).with_tag(0));
        sim.drain(SimTime::from_secs(100));
        let trace = sim.trace(7).expect("traced");
        // Alone (8G), shared (4G), alone again (8G).
        assert_eq!(trace.changes(), 3, "{:?}", trace.points);
        assert!((trace.rate_at(SimTime::from_secs_f64(0.5)) - 8e9).abs() < 1e3);
        assert!((trace.rate_at(SimTime::from_secs_f64(1.5)) - 4e9).abs() < 1e3);
        assert_eq!(trace.rate_at(SimTime::ZERO.max(SimTime(0))), 8e9);
        // Untraced tag has no trace.
        assert!(sim.trace(0).is_none());
    }

    #[test]
    fn rate_at_before_first_point_is_zero() {
        let t = FlowTrace { points: vec![(SimTime::from_secs(5), 1e9)] };
        assert_eq!(t.rate_at(SimTime::from_secs(4)), 0.0);
        assert_eq!(t.rate_at(SimTime::from_secs(5)), 1e9);
    }

    #[test]
    fn peak_rate_tracked_across_rate_changes() {
        let (mut sim, l) = sim_one_link();
        // Flow A runs alone at 8 Gbps for 1 s, then shares at 4 Gbps.
        sim.add_flow(FlowSpec::best_effort(vec![l], 2e9).with_tag(1));
        sim.run_until(SimTime::from_secs(1));
        sim.add_flow(FlowSpec::best_effort(vec![l], 10e9).with_tag(2));
        let done = sim.run_until(SimTime::from_secs(100));
        let a = done.iter().find(|c| c.tag == 1).expect("flow A done");
        assert!((a.peak_rate_bps - 8e9).abs() < 1e3, "{}", a.peak_rate_bps);
        assert!(a.throughput_bps() < 8e9);
        assert!(a.burstiness() > 1.0);
        // Flow B never ran alone until A finished; its peak is 8 Gbps
        // too (after A departed).
        let b = done.iter().find(|c| c.tag == 2).expect("flow B done");
        assert!((b.peak_rate_bps - 8e9).abs() < 1e3);
    }

    #[test]
    fn telemetry_counts_recomputes_flows_and_snmp() {
        use gvc_telemetry::{Registry, RingSink, Tracer};
        use std::sync::Arc;
        let (mut sim, l) = sim_one_link();
        let reg = Registry::new();
        let ring = Arc::new(RingSink::new(256));
        sim.set_telemetry(NetTelemetry::register(&reg, Tracer::to_sink(ring.clone())));
        sim.monitor_link(l);

        sim.add_flow(FlowSpec::best_effort(vec![l], 1e9).with_tag(1));
        sim.run_until(SimTime::from_secs(1)); // shares alone, 1e9 done
        sim.add_flow(FlowSpec::best_effort(vec![l], 0.5e9).with_tag(2));
        sim.drain(SimTime::from_secs(100));

        assert_eq!(reg.counter("net_flows_started_total", &[]).get(), 2);
        assert_eq!(reg.counter("net_flows_completed_total", &[]).get(), 2);
        assert_eq!(reg.gauge("net_flows_active", &[]).get(), 0);
        assert!(reg.counter("net_fairshare_recomputations_total", &[]).get() >= 3);
        let snmp = reg.counter("net_snmp_deposited_bytes_total", &[]).get();
        assert!((snmp as f64 - 1.5e9).abs() < 4.0, "snmp bytes {snmp}");

        let kinds: std::collections::HashSet<&str> = ring.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains("net.fairshare"));
        assert!(kinds.contains("net.snmp_deposit"));
    }

    #[test]
    fn link_flap_slows_then_restores() {
        let (mut sim, l) = sim_one_link();
        // 2e9 bytes at 8 Gbps would take 2 s. Flap the link to 10 %
        // capacity over [1, 3): 1e9 done by t=1, then 0.8 Gbps for
        // 2 s moves 0.2e9, then 8 Gbps again for the last 0.8e9
        // (0.8 s) -> done at t=3.8.
        let id = sim.add_flow(FlowSpec::best_effort(vec![l], 2e9));
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.set_link_capacity(l, 0.8e9));
        assert!((sim.flow_rate(id).unwrap() - 0.8e9).abs() < 1e3);
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.set_link_capacity(l, 8e9));
        let done = sim.run_until(SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
        assert!((done[0].end.as_secs_f64() - 3.8).abs() < 1e-5, "{:?}", done[0]);
    }

    #[test]
    fn zero_capacity_stalls_flow() {
        let (mut sim, l) = sim_one_link();
        let id = sim.add_flow(FlowSpec::best_effort(vec![l], 1e9));
        assert!(sim.set_link_capacity(l, 0.0));
        assert_eq!(sim.flow_rate(id), Some(0.0));
        let done = sim.run_until(SimTime::from_secs(5));
        assert!(done.is_empty());
        // Restore and the flow completes.
        assert!(sim.set_link_capacity(l, 8e9));
        let done = sim.run_until(SimTime::from_secs(10));
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn set_link_capacity_rejects_bad_input() {
        let (mut sim, _) = sim_one_link();
        assert!(!sim.set_link_capacity(LinkId(99), 1e9));
        let (mut sim, l) = sim_one_link();
        assert!(!sim.set_link_capacity(l, -1.0));
        assert!(!sim.set_link_capacity(l, f64::NAN));
        assert_eq!(sim.graph().link(l).capacity_bps, 8e9);
    }

    #[test]
    fn link_by_names_resolves_directions() {
        let (sim, l) = sim_one_link();
        assert_eq!(sim.link_by_names("a", "b"), Some(l));
        assert!(sim.link_by_names("b", "a").is_some());
        assert_ne!(sim.link_by_names("b", "a"), Some(l));
        assert_eq!(sim.link_by_names("a", "zzz"), None);
    }

    #[test]
    fn epoch_mapping() {
        let (sim, _) = sim_one_link();
        assert_eq!(sim.to_unix_us(SimTime::ZERO), 0);
        let mut g = Graph::new();
        g.add_node("x", NodeKind::Host);
        let sim2 = NetworkSim::new(g, 1_000_000);
        assert_eq!(sim2.to_unix_us(SimTime::from_secs(1)), 2_000_000);
    }

    #[test]
    #[should_panic(expected = "payload must be positive")]
    fn zero_payload_panics() {
        let (mut sim, l) = sim_one_link();
        sim.add_flow(FlowSpec::best_effort(vec![l], 0.0));
    }
}
