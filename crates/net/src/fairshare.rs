//! Max-min fair bandwidth allocation by progressive filling.
//!
//! Each flow crosses a set of capacity constraints (network links and
//! server resources, treated uniformly). Allocation starts at each
//! flow's guaranteed minimum (its virtual-circuit reservation, 0 for
//! best-effort flows) and grows uniformly across all unfrozen flows
//! until either a constraint saturates (its flows freeze at the fair
//! share) or a flow reaches its own maximum (it freezes at its cap).
//! The result is the classic max-min fair allocation with floors and
//! ceilings.

/// Index of a capacity constraint in the solver's constraint table.
pub type ConstraintIx = usize;

/// One capacity constraint (a link direction or a server resource).
#[derive(Debug, Clone, Copy)]
pub struct CapacityConstraint {
    /// Capacity in bits per second.
    pub capacity_bps: f64,
}

/// One flow's demand for the solver.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// Constraints the flow crosses (indices into the constraint
    /// table). Duplicate entries are permitted and count once.
    pub constraints: Vec<ConstraintIx>,
    /// Guaranteed minimum rate (virtual-circuit reservation), bps.
    pub min_rate_bps: f64,
    /// Maximum useful rate (TCP window cap etc.), bps. Use
    /// `f64::INFINITY` for unconstrained.
    pub max_rate_bps: f64,
}

/// Tolerance for saturation tests. Absolute, in the allocation's rate
/// unit; tiny relative to any real capacity.
const EPS: f64 = 1e-9;

/// Computes the max-min fair allocation. Returns one rate per flow, in
/// input order.
///
/// Guarantees that exceed a constraint's capacity are scaled down
/// proportionally on that constraint (over-admission is the admission
/// controller's bug, but the solver stays well-defined). Flows with an
/// empty constraint list receive their `max_rate_bps` (or 0 if
/// infinite).
pub fn max_min_allocation(constraints: &[CapacityConstraint], flows: &[FlowDemand]) -> Vec<f64> {
    let mut alloc: Vec<f64> = flows.iter().map(|f| f.min_rate_bps.min(f.max_rate_bps)).collect();

    // De-duplicate each flow's constraint list once up front.
    let flow_constraints: Vec<Vec<ConstraintIx>> = flows
        .iter()
        .map(|f| {
            let mut v = f.constraints.clone();
            v.sort_unstable();
            v.dedup();
            for &c in &v {
                assert!(c < constraints.len(), "constraint index out of range");
            }
            v
        })
        .collect();

    // Scale guarantees down where over-admitted.
    for (ci, c) in constraints.iter().enumerate() {
        let committed: f64 = flows
            .iter()
            .enumerate()
            .filter(|(fi, _)| flow_constraints[*fi].contains(&ci))
            .map(|(fi, _)| alloc[fi])
            .sum();
        if committed > c.capacity_bps {
            let scale = c.capacity_bps / committed;
            for (fi, _) in flows.iter().enumerate() {
                if flow_constraints[fi].contains(&ci) {
                    alloc[fi] *= scale;
                }
            }
        }
    }

    let mut remaining: Vec<f64> = constraints.iter().map(|c| c.capacity_bps).collect();
    for (fi, _) in flows.iter().enumerate() {
        for &c in &flow_constraints[fi] {
            remaining[c] -= alloc[fi];
        }
    }
    for r in &mut remaining {
        *r = r.max(0.0);
    }

    // Active = can still grow: below max and on no saturated constraint.
    let mut active: Vec<bool> = flows
        .iter()
        .enumerate()
        .map(|(fi, f)| !flow_constraints[fi].is_empty() && alloc[fi] + EPS < f.max_rate_bps)
        .collect();
    // Flows with no constraints get their cap immediately (nothing to
    // share against); infinite caps degrade to zero extra.
    for (fi, f) in flows.iter().enumerate() {
        if flow_constraints[fi].is_empty() && f.max_rate_bps.is_finite() {
            alloc[fi] = f.max_rate_bps;
        }
    }

    loop {
        // Count active flows per constraint.
        let mut counts = vec![0usize; constraints.len()];
        for (fi, _) in flows.iter().enumerate() {
            if active[fi] {
                for &c in &flow_constraints[fi] {
                    counts[c] += 1;
                }
            }
        }

        // Freeze flows on already-saturated constraints.
        let mut changed = false;
        for (fi, _) in flows.iter().enumerate() {
            if active[fi]
                && flow_constraints[fi].iter().any(|&c| remaining[c] <= EPS && counts[c] > 0)
            {
                // Saturated constraint with active flows: no growth room.
                if flow_constraints[fi].iter().any(|&c| remaining[c] <= EPS) {
                    active[fi] = false;
                    changed = true;
                }
            }
        }
        if changed {
            continue;
        }

        if !active.iter().any(|&a| a) {
            break;
        }

        // Largest uniform increment before a constraint saturates or a
        // flow hits its cap.
        let mut delta = f64::INFINITY;
        for (ci, _) in constraints.iter().enumerate() {
            if counts[ci] > 0 {
                delta = delta.min(remaining[ci] / counts[ci] as f64);
            }
        }
        for (fi, f) in flows.iter().enumerate() {
            if active[fi] {
                delta = delta.min(f.max_rate_bps - alloc[fi]);
            }
        }
        if !delta.is_finite() || delta <= 0.0 {
            break;
        }

        for (fi, f) in flows.iter().enumerate() {
            if active[fi] {
                alloc[fi] += delta;
                for &c in &flow_constraints[fi] {
                    remaining[c] -= delta;
                }
                if alloc[fi] + EPS >= f.max_rate_bps {
                    active[fi] = false;
                }
            }
        }
        for r in &mut remaining {
            *r = r.max(0.0);
        }
        for (fi, _) in flows.iter().enumerate() {
            if active[fi] && flow_constraints[fi].iter().any(|&c| remaining[c] <= EPS) {
                active[fi] = false;
            }
        }
    }

    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn caps(v: &[f64]) -> Vec<CapacityConstraint> {
        v.iter().map(|&c| CapacityConstraint { capacity_bps: c }).collect()
    }

    fn flow(cs: &[usize], min: f64, max: f64) -> FlowDemand {
        FlowDemand { constraints: cs.to_vec(), min_rate_bps: min, max_rate_bps: max }
    }

    #[test]
    fn equal_split_single_link() {
        let a = max_min_allocation(
            &caps(&[10e9]),
            &[flow(&[0], 0.0, f64::INFINITY), flow(&[0], 0.0, f64::INFINITY)],
        );
        assert!((a[0] - 5e9).abs() < 1e3);
        assert!((a[1] - 5e9).abs() < 1e3);
    }

    #[test]
    fn capped_flow_frees_capacity() {
        let a = max_min_allocation(
            &caps(&[10e9]),
            &[flow(&[0], 0.0, 2e9), flow(&[0], 0.0, f64::INFINITY)],
        );
        assert!((a[0] - 2e9).abs() < 1e3);
        assert!((a[1] - 8e9).abs() < 1e3);
    }

    #[test]
    fn classic_three_flow_two_link() {
        // Link0: f0, f2. Link1: f1, f2. caps 10, 4.
        // f2 bottlenecked on link1 at 2, f1 gets 2, f0 gets 8.
        let a = max_min_allocation(
            &caps(&[10.0, 4.0]),
            &[
                flow(&[0], 0.0, f64::INFINITY),
                flow(&[1], 0.0, f64::INFINITY),
                flow(&[0, 1], 0.0, f64::INFINITY),
            ],
        );
        assert!((a[2] - 2.0).abs() < 1e-6, "{a:?}");
        assert!((a[1] - 2.0).abs() < 1e-6, "{a:?}");
        assert!((a[0] - 8.0).abs() < 1e-6, "{a:?}");
    }

    #[test]
    fn guaranteed_minimum_respected() {
        // Circuit flow guaranteed 6 of 10; one best-effort competitor.
        let a = max_min_allocation(
            &caps(&[10.0]),
            &[flow(&[0], 6.0, 6.0), flow(&[0], 0.0, f64::INFINITY)],
        );
        assert!((a[0] - 6.0).abs() < 1e-6);
        assert!((a[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn circuit_can_scavenge_above_guarantee() {
        // Guarantee 2, cap inf: alone on the link it takes everything.
        let a = max_min_allocation(&caps(&[10.0]), &[flow(&[0], 2.0, f64::INFINITY)]);
        assert!((a[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn over_admitted_guarantees_scale_down() {
        let a = max_min_allocation(&caps(&[10.0]), &[flow(&[0], 8.0, 8.0), flow(&[0], 8.0, 8.0)]);
        assert!((a[0] - 5.0).abs() < 1e-6);
        assert!((a[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn empty_constraint_list_gets_cap() {
        let a = max_min_allocation(&caps(&[]), &[flow(&[], 0.0, 7.0)]);
        assert_eq!(a, vec![7.0]);
    }

    #[test]
    fn duplicate_constraints_count_once() {
        let a = max_min_allocation(&caps(&[10.0]), &[flow(&[0, 0, 0], 0.0, f64::INFINITY)]);
        assert!((a[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn no_flows_is_empty() {
        assert!(max_min_allocation(&caps(&[1.0]), &[]).is_empty());
    }

    #[test]
    fn server_resource_models_eq2_sharing() {
        // Eq. 2's premise: a server cap R shared by concurrent
        // transfers. Three transfers through one server resource
        // (R = 2.19 Gbps) on otherwise-idle 10 G links.
        let a = max_min_allocation(
            &caps(&[2.19e9, 10e9, 10e9, 10e9]),
            &[
                flow(&[0, 1], 0.0, f64::INFINITY),
                flow(&[0, 2], 0.0, f64::INFINITY),
                flow(&[0, 3], 0.0, f64::INFINITY),
            ],
        );
        for r in a {
            assert!((r - 0.73e9).abs() < 1e3);
        }
    }

    proptest! {
        /// Feasibility: no constraint is ever over-allocated, and every
        /// flow is within [scaled-min, max].
        #[test]
        fn prop_feasible(
            ncons in 1usize..6,
            flows in proptest::collection::vec(
                (proptest::collection::vec(0usize..6, 0..4), 0.0f64..5.0, 0.1f64..50.0),
                1..12,
            ),
        ) {
            let constraints = caps(&vec![10.0; ncons]);
            let demands: Vec<FlowDemand> = flows
                .iter()
                .map(|(cs, min, max)| {
                    let cs: Vec<usize> = cs.iter().map(|&c| c % ncons).collect();
                    flow(&cs, min.min(*max), *max)
                })
                .collect();
            let alloc = max_min_allocation(&constraints, &demands);
            // Per-constraint feasibility.
            for ci in 0..ncons {
                let used: f64 = demands
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.constraints.contains(&ci))
                    .map(|(fi, _)| alloc[fi])
                    .sum();
                prop_assert!(used <= 10.0 + 1e-3, "constraint {ci} used {used}");
            }
            // Per-flow bounds.
            for (fi, d) in demands.iter().enumerate() {
                prop_assert!(alloc[fi] <= d.max_rate_bps + 1e-6);
                prop_assert!(alloc[fi] >= -1e-9);
            }
        }

        /// Pareto efficiency: any flow below its cap must cross at
        /// least one (numerically) saturated constraint.
        #[test]
        fn prop_pareto(
            flows in proptest::collection::vec(
                proptest::collection::vec(0usize..3, 1..3),
                1..8,
            ),
        ) {
            let constraints = caps(&[9.0, 9.0, 9.0]);
            let demands: Vec<FlowDemand> = flows
                .iter()
                .map(|cs| flow(cs, 0.0, f64::INFINITY))
                .collect();
            let alloc = max_min_allocation(&constraints, &demands);
            let mut used = [0.0f64; 3];
            for (fi, d) in demands.iter().enumerate() {
                let mut cs = d.constraints.clone();
                cs.sort_unstable();
                cs.dedup();
                for c in cs {
                    used[c] += alloc[fi];
                }
            }
            for (fi, d) in demands.iter().enumerate() {
                // Every flow here has infinite cap, so it must be
                // bottlenecked by a saturated constraint.
                let sat = d.constraints.iter().any(|&c| used[c] >= 9.0 - 1e-3);
                prop_assert!(sat, "flow {fi} rate {} not bottlenecked: used={used:?}", alloc[fi]);
            }
        }
    }
}
