//! Background (general-purpose) cross traffic.
//!
//! §VII-C found backbone links "relatively lightly loaded" with science
//! flows dominating the byte counts: the non-GridFTP traffic share is
//! small. The generator produces Poisson arrivals of modest best-effort
//! flows between router pairs so that (a) SNMP counters contain
//! *something* besides the measured transfers and (b) the Table XII
//! "other flows" correlation has a real signal to be near zero about.

use crate::flow::FlowSpec;
use gvc_engine::SimTime;
use gvc_stats::dist::{Distribution, Exponential, LogNormal};
use gvc_stats::rng::component_rng;
use gvc_topology::{Graph, NodeId, NodeKind};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for one background-traffic population.
#[derive(Debug, Clone)]
pub struct BackgroundConfig {
    /// Mean inter-arrival time between flows, seconds.
    pub mean_interarrival_s: f64,
    /// Median flow size, bytes.
    pub median_size_bytes: f64,
    /// Mean flow size, bytes (must exceed the median; sizes are
    /// lognormal, i.e. right-skewed like real traffic).
    pub mean_size_bytes: f64,
    /// Per-flow rate cap, bps (general-purpose flows are not α flows).
    pub rate_cap_bps: f64,
    /// Tag stamped on generated flows so analyses can separate them.
    pub tag: u64,
    /// Router-name suffixes excluded as endpoints. Cross traffic
    /// transits the *provider*; campus-internal switches (`-sw`) never
    /// source or sink it.
    pub exclude_suffixes: &'static [&'static str],
}

impl Default for BackgroundConfig {
    fn default() -> BackgroundConfig {
        BackgroundConfig {
            mean_interarrival_s: 2.0,
            median_size_bytes: 4e6,
            mean_size_bytes: 40e6,
            rate_cap_bps: 300e6,
            tag: u64::MAX,
            exclude_suffixes: &["-sw"],
        }
    }
}

/// A pre-generated background flow arrival.
#[derive(Debug, Clone)]
pub struct BackgroundArrival {
    /// Injection instant.
    pub at: SimTime,
    /// The flow to inject.
    pub spec: FlowSpec,
}

/// Generates Poisson background arrivals between random router pairs
/// over `[0, horizon]`, deterministic in `seed`.
pub fn generate_background(
    graph: &Graph,
    cfg: &BackgroundConfig,
    horizon: SimTime,
    seed: u64,
) -> Vec<BackgroundArrival> {
    let routers: Vec<NodeId> = graph
        .iter_nodes()
        .filter(|(_, n)| {
            n.kind == NodeKind::Router && !cfg.exclude_suffixes.iter().any(|s| n.name.ends_with(s))
        })
        .map(|(id, _)| id)
        .collect();
    if routers.len() < 2 {
        return Vec::new();
    }
    let mut rng = component_rng(seed, "background");
    let inter = Exponential::with_mean(cfg.mean_interarrival_s);
    // A calibration with mean <= median cannot be log-normal; treat it
    // as "no background traffic" rather than panic on bad config.
    let Some(size) = LogNormal::from_median_mean(cfg.median_size_bytes, cfg.mean_size_bytes) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += inter.sample(&mut rng);
        let at = SimTime::from_secs_f64(t);
        if at > horizon {
            break;
        }
        // Random distinct router pair with a route between them.
        let pair: Vec<NodeId> = routers.choose_multiple(&mut rng, 2).copied().collect();
        let &[src, dst] = pair.as_slice() else {
            continue;
        };
        let Some(path) = gvc_topology::shortest_path(graph, src, dst) else {
            continue;
        };
        if path.links.is_empty() {
            continue;
        }
        let bytes = size.sample(&mut rng).max(1.0);
        // Mild rate diversity: 10–100 % of the cap.
        let cap = cfg.rate_cap_bps * (0.1 + 0.9 * rng.gen::<f64>());
        out.push(BackgroundArrival {
            at,
            spec: FlowSpec::best_effort(path.links, bytes).with_cap(cap).with_tag(cfg.tag),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_topology::study_topology;

    #[test]
    fn deterministic_in_seed() {
        let t = study_topology();
        let cfg = BackgroundConfig::default();
        let a = generate_background(&t.graph, &cfg, SimTime::from_secs(600), 1);
        let b = generate_background(&t.graph, &cfg, SimTime::from_secs(600), 1);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.spec.size_bytes, y.spec.size_bytes);
            assert_eq!(x.spec.route, y.spec.route);
        }
        let c = generate_background(&t.graph, &cfg, SimTime::from_secs(600), 2);
        assert_ne!(
            a.iter().map(|x| x.at).collect::<Vec<_>>(),
            c.iter().map(|x| x.at).collect::<Vec<_>>()
        );
    }

    #[test]
    fn arrivals_within_horizon_and_ordered() {
        let t = study_topology();
        let horizon = SimTime::from_secs(300);
        let arr = generate_background(&t.graph, &BackgroundConfig::default(), horizon, 7);
        assert!(arr.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(arr.iter().all(|a| a.at <= horizon));
    }

    #[test]
    fn arrival_rate_matches_config() {
        let t = study_topology();
        let cfg = BackgroundConfig { mean_interarrival_s: 1.0, ..BackgroundConfig::default() };
        let arr = generate_background(&t.graph, &cfg, SimTime::from_secs(2000), 11);
        // Expect ~2000 arrivals, allow 10 %.
        assert!((arr.len() as f64 - 2000.0).abs() < 200.0, "{}", arr.len());
    }

    #[test]
    fn flows_are_capped_and_tagged() {
        let t = study_topology();
        let cfg = BackgroundConfig::default();
        let arr = generate_background(&t.graph, &cfg, SimTime::from_secs(120), 3);
        for a in &arr {
            assert!(a.spec.max_rate_bps <= cfg.rate_cap_bps + 1.0);
            assert!(a.spec.max_rate_bps > 0.0);
            assert_eq!(a.spec.tag, cfg.tag);
            assert_eq!(a.spec.min_rate_bps, 0.0);
            assert!(!a.spec.route.is_empty());
        }
    }

    #[test]
    fn campus_switches_never_carry_background() {
        let t = study_topology();
        let arr =
            generate_background(&t.graph, &BackgroundConfig::default(), SimTime::from_secs(600), 5);
        for a in &arr {
            for &l in &a.spec.route {
                let link = t.graph.link(l);
                for n in [link.src, link.dst] {
                    assert!(
                        !t.graph.node(n).name.ends_with("-sw"),
                        "background crossed campus switch {}",
                        t.graph.node(n).name
                    );
                }
            }
        }
    }

    #[test]
    fn no_routers_no_traffic() {
        let g = Graph::new();
        let arr = generate_background(&g, &BackgroundConfig::default(), SimTime::from_secs(60), 1);
        assert!(arr.is_empty());
    }
}
