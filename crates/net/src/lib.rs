//! Flow-level wide-area network simulator.
//!
//! The study's transfers are α flows: long-lived, high-rate TCP
//! aggregates whose behaviour is captured well by a *fluid* model —
//! each active flow holds a piecewise-constant rate, recomputed by a
//! max-min fair-share solver whenever the set of flows changes. This is
//! the standard abstraction for TCP fair sharing on shared links and is
//! what lets a multi-year log window simulate in seconds.
//!
//! The pieces:
//!
//! * [`fairshare`] — progressive-filling max-min allocation with
//!   per-flow minimum guarantees (virtual circuits) and maximums
//!   (TCP window / server caps);
//! * [`tcp`] — the throughput caps and slow-start penalty that make
//!   stream count matter for small files (Figs. 3–4) and not large;
//! * [`flow`] / [`sim`] — the event-driven fluid simulator with
//!   *resources* (server NIC/disk/CPU capacity) treated as first-class
//!   capacity constraints alongside links, so Eq. 2's server sharing
//!   falls out of the same solver;
//! * [`snmp_rec`] — per-interface 30-second byte counters (§VII-C);
//! * [`background`] — Poisson on-off cross traffic for the link-load
//!   analysis;
//! * [`jitter`] — the analytic queueing-jitter proxy behind the
//!   virtual-queue isolation ablation (the paper's positive #3);
//! * [`queue_sim`] — a packet-level single-interface simulator that
//!   validates the analytic model and measures tail (p99) jitter under
//!   shared-FIFO vs isolated disciplines.

pub mod background;
pub mod fairshare;
pub mod flow;
pub mod jitter;
pub mod queue_sim;
pub mod sim;
pub mod snmp_rec;
pub mod tcp;

pub use fairshare::{max_min_allocation, CapacityConstraint, FlowDemand};
pub use flow::{FlowCompletion, FlowId, FlowSpec, ResourceId};
pub use sim::{FlowTrace, NetTelemetry, NetworkSim};
pub use tcp::TcpModel;
