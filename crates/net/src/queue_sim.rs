//! Packet-level single-interface queue simulator.
//!
//! The fluid model cannot see *jitter* — §I's third circuit benefit is
//! about packets "getting stuck behind a large-sized burst of packets
//! from an α flow", a queue-occupancy effect. This module simulates
//! one output interface at packet granularity under two disciplines:
//!
//! * **shared FIFO** — α bursts and general-purpose packets in one
//!   queue (today's IP-routed service);
//! * **isolated** — α packets in their own virtual queue, the two
//!   queues served by deficit-weighted round robin, so a GP packet
//!   never waits behind more than the α packet currently in service
//!   (the circuit/packet-classifier configuration §I describes).
//!
//! It exists to validate [`crate::jitter::JitterModel`]'s
//! Pollaczek–Khinchine approximation against an honest discrete-event
//! measurement, and to measure the *distribution* (p99, max) that the
//! closed form cannot give.

use gvc_stats::dist::{Distribution, Exponential};
use gvc_stats::rng::component_rng;
use gvc_stats::Summary;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Which traffic class a packet belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    GeneralPurpose,
    Alpha,
}

/// Queue discipline under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// One FIFO queue for everything.
    SharedFifo,
    /// Per-class virtual queues; the GP queue is never blocked by
    /// queued α packets (only by the one in service).
    Isolated,
}

/// Workload and interface parameters.
#[derive(Debug, Clone, Copy)]
pub struct QueueSimConfig {
    /// Line rate, bps.
    pub line_rate_bps: f64,
    /// GP packet size, bytes.
    pub gp_packet_bytes: f64,
    /// GP offered load as a fraction of line rate.
    pub gp_util: f64,
    /// α burst size, bytes (a block's packets arriving back-to-back is
    /// equivalent to one large service demand).
    pub alpha_burst_bytes: f64,
    /// α offered load as a fraction of line rate.
    pub alpha_util: f64,
    /// Number of GP packets to measure.
    pub gp_packets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueueSimConfig {
    fn default() -> QueueSimConfig {
        QueueSimConfig {
            line_rate_bps: 10e9,
            gp_packet_bytes: 1500.0,
            gp_util: 0.05,
            alpha_burst_bytes: 256.0 * 1024.0,
            alpha_util: 0.4,
            gp_packets: 50_000,
            seed: 1,
        }
    }
}

/// Measured waiting times (queueing delay, excluding own service) for
/// the general-purpose class.
#[derive(Debug, Clone)]
pub struct QueueSimResult {
    /// Summary of GP waiting times, microseconds.
    pub gp_wait_us: Summary,
    /// 99th percentile wait, microseconds.
    pub gp_wait_p99_us: f64,
}

/// Runs the simulation under `discipline`.
///
/// Arrivals are Poisson per class; service is deterministic per class
/// (fixed packet/burst sizes). The event loop merges both arrival
/// streams in time order and replays the queue exactly.
pub fn simulate(cfg: &QueueSimConfig, discipline: Discipline) -> QueueSimResult {
    assert!(cfg.gp_util + cfg.alpha_util < 1.0, "offered load must be < 1");
    let mut rng = component_rng(cfg.seed, "queue-sim");

    let tx = |bytes: f64| bytes * 8.0 / cfg.line_rate_bps;
    let gp_service = tx(cfg.gp_packet_bytes);
    let a_service = tx(cfg.alpha_burst_bytes);
    // Arrival rates from offered loads.
    let gp_rate = cfg.gp_util / gp_service;
    let a_rate = cfg.alpha_util / a_service;
    let gp_inter = Exponential::new(gp_rate);
    let a_inter = Exponential::new(a_rate);

    // Pre-generate arrivals (merged later through a heap).
    #[derive(PartialEq)]
    struct Arrival {
        at: f64,
        class: Class,
    }
    impl Eq for Arrival {}
    impl PartialOrd for Arrival {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Arrival {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.at.total_cmp(&other.at)
        }
    }

    let mut heap: BinaryHeap<Reverse<Arrival>> = BinaryHeap::new();
    let mut t = 0.0;
    for _ in 0..cfg.gp_packets {
        t += gp_inter.sample(&mut rng);
        heap.push(Reverse(Arrival { at: t, class: Class::GeneralPurpose }));
    }
    let horizon = t;
    let mut ta = 0.0;
    loop {
        ta += a_inter.sample(&mut rng);
        if ta > horizon {
            break;
        }
        heap.push(Reverse(Arrival { at: ta, class: Class::Alpha }));
    }
    // Tiny jitter so simultaneous arrivals are strictly ordered.
    let _ = rng.gen::<f64>();

    // Replay.
    let mut gp_waits_us: Vec<f64> = Vec::with_capacity(cfg.gp_packets);
    match discipline {
        Discipline::SharedFifo => {
            // Single-server FIFO: workload (unfinished work) evolves as
            // W(t+) = max(W(t) - dt, 0) + service on arrival; the wait
            // of an arrival is the workload it finds.
            let mut workload = 0.0f64;
            let mut last = 0.0f64;
            while let Some(Reverse(a)) = heap.pop() {
                workload = (workload - (a.at - last)).max(0.0);
                last = a.at;
                if a.class == Class::GeneralPurpose {
                    gp_waits_us.push(workload * 1e6);
                }
                workload += match a.class {
                    Class::GeneralPurpose => gp_service,
                    Class::Alpha => a_service,
                };
            }
        }
        Discipline::Isolated => {
            // Two virtual queues served GP-first. Crucially, the α
            // *burst* is not atomic here: the classifier isolates at
            // packet granularity, so the burst sits in the α queue as
            // MTU-sized packets and a GP packet waits at most one α
            // packet's transmission — exactly §I's "prevent packets of
            // general-purpose flows from getting stuck behind a
            // large-sized burst".
            let a_pkts_per_burst =
                (cfg.alpha_burst_bytes / cfg.gp_packet_bytes).ceil().max(1.0) as usize;
            let a_pkt_service = a_service / a_pkts_per_burst as f64;
            let mut gp_q: VecDeque<f64> = VecDeque::new(); // arrival times
            let mut a_q: VecDeque<f64> = VecDeque::new();
            let mut server_free_at = 0.0f64;
            let mut arrivals: Vec<Arrival> = Vec::with_capacity(heap.len());
            while let Some(Reverse(a)) = heap.pop() {
                arrivals.push(a);
            }
            let mut i = 0usize;
            loop {
                // Admit everything that has arrived by the time the
                // server frees up or the next arrival, whichever first.
                let next_arrival = arrivals.get(i).map(|a| a.at);
                let now = match (gp_q.is_empty() && a_q.is_empty(), next_arrival) {
                    (true, Some(na)) => na,
                    (true, None) => break,
                    (false, Some(na)) if na <= server_free_at => na,
                    (false, _) => server_free_at,
                };
                while i < arrivals.len() && arrivals[i].at <= now {
                    match arrivals[i].class {
                        Class::GeneralPurpose => gp_q.push_back(arrivals[i].at),
                        Class::Alpha => {
                            for _ in 0..a_pkts_per_burst {
                                a_q.push_back(arrivals[i].at);
                            }
                        }
                    }
                    i += 1;
                }
                if now < server_free_at {
                    continue; // server busy; wait for it
                }
                // Serve one packet: GP priority.
                if let Some(arr) = gp_q.pop_front() {
                    let start = now.max(arr);
                    gp_waits_us.push((start - arr) * 1e6);
                    server_free_at = start + gp_service;
                } else if a_q.pop_front().is_some() {
                    server_free_at = now + a_pkt_service;
                } else if let Some(na) = next_arrival {
                    server_free_at = server_free_at.max(na);
                } else {
                    break;
                }
            }
        }
    }

    let mut sorted = gp_waits_us.clone();
    sorted.sort_by(f64::total_cmp);
    let p99 = if sorted.is_empty() {
        0.0
    } else {
        sorted[((sorted.len() as f64) * 0.99) as usize % sorted.len()]
    };
    QueueSimResult {
        gp_wait_us: Summary::of(&gp_waits_us).unwrap_or(Summary {
            n: 0,
            min: 0.0,
            q1: 0.0,
            median: 0.0,
            mean: 0.0,
            q3: 0.0,
            max: 0.0,
            sd: 0.0,
        }),
        gp_wait_p99_us: p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::JitterModel;

    fn cfg(gp: f64, alpha: f64) -> QueueSimConfig {
        QueueSimConfig {
            gp_util: gp,
            alpha_util: alpha,
            gp_packets: 40_000,
            ..QueueSimConfig::default()
        }
    }

    #[test]
    fn isolation_slashes_gp_wait() {
        let c = cfg(0.05, 0.4);
        let shared = simulate(&c, Discipline::SharedFifo);
        let isolated = simulate(&c, Discipline::Isolated);
        assert!(
            shared.gp_wait_us.mean > 10.0 * isolated.gp_wait_us.mean,
            "shared {} vs isolated {}",
            shared.gp_wait_us.mean,
            isolated.gp_wait_us.mean
        );
        assert!(shared.gp_wait_p99_us > isolated.gp_wait_p99_us);
    }

    #[test]
    fn shared_fifo_matches_pollaczek_khinchine() {
        // The analytic JitterModel should predict the simulated mean
        // within ~15 % at moderate load.
        let c = cfg(0.05, 0.30);
        let sim = simulate(&c, Discipline::SharedFifo);
        let model = JitterModel::default();
        let predicted_us = model.shared_queue_wait_s(0.05, 0.30) * 1e6;
        let ratio = sim.gp_wait_us.mean / predicted_us;
        assert!(
            (0.8..1.25).contains(&ratio),
            "simulated {} vs predicted {predicted_us} (ratio {ratio})",
            sim.gp_wait_us.mean
        );
    }

    #[test]
    fn no_alpha_traffic_equalizes_disciplines() {
        let c = QueueSimConfig {
            gp_util: 0.3,
            alpha_util: 0.0001, // effectively none
            gp_packets: 30_000,
            ..QueueSimConfig::default()
        };
        let shared = simulate(&c, Discipline::SharedFifo);
        let isolated = simulate(&c, Discipline::Isolated);
        let ratio = shared.gp_wait_us.mean / isolated.gp_wait_us.mean.max(1e-9);
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn wait_grows_with_alpha_load_in_shared_queue() {
        let lo = simulate(&cfg(0.05, 0.1), Discipline::SharedFifo);
        let hi = simulate(&cfg(0.05, 0.6), Discipline::SharedFifo);
        assert!(hi.gp_wait_us.mean > lo.gp_wait_us.mean * 2.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let c = cfg(0.05, 0.3);
        let a = simulate(&c, Discipline::SharedFifo);
        let b = simulate(&c, Discipline::SharedFifo);
        assert_eq!(a.gp_wait_us.mean, b.gp_wait_us.mean);
        let c2 = QueueSimConfig { seed: 2, ..c };
        let d = simulate(&c2, Discipline::SharedFifo);
        assert_ne!(a.gp_wait_us.mean, d.gp_wait_us.mean);
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn overload_panics() {
        let c = cfg(0.6, 0.5);
        simulate(&c, Discipline::SharedFifo);
    }
}
