//! Simulation time as integer microseconds.
//!
//! Instants ([`SimTime`]) and durations ([`SimSpan`]) are distinct
//! types so the compiler rejects category errors like adding two
//! instants. Microsecond resolution comfortably covers the study's
//! scales: 50 ms circuit setup at the fine end, multi-year log windows
//! (≈ 10¹⁴ µs) at the coarse end, both far inside `u64`/`i64` range.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulation time (microseconds since simulation epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A signed span of simulation time in microseconds.
///
/// Signed because the paper's session-grouping gap can be *negative*
/// (§V: "the gap … could be negative as multiple transfers can be
/// started concurrently").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(pub i64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// From fractional seconds (rounded to the nearest microsecond).
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s.is_finite() && s >= 0.0, "SimTime must be finite and non-negative");
        SimTime((s * 1e6).round() as u64)
    }

    /// From whole milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    /// Microseconds since epoch.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whole seconds since epoch (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Saturating instant + span (clamps at the epoch for negative
    /// overshoot).
    pub fn offset(self, span: SimSpan) -> SimTime {
        if span.0 >= 0 {
            SimTime(self.0.saturating_add(span.0 as u64))
        } else {
            SimTime(self.0.saturating_sub(span.0.unsigned_abs()))
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimSpan {
    /// Zero-length span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// From whole seconds.
    pub fn from_secs(s: i64) -> SimSpan {
        SimSpan(s * 1_000_000)
    }

    /// From fractional seconds (rounded to the nearest microsecond).
    ///
    /// # Panics
    /// Panics on non-finite input.
    pub fn from_secs_f64(s: f64) -> SimSpan {
        assert!(s.is_finite(), "SimSpan must be finite");
        SimSpan((s * 1e6).round() as i64)
    }

    /// From whole milliseconds.
    pub fn from_millis(ms: i64) -> SimSpan {
        SimSpan(ms * 1000)
    }

    /// From whole minutes — the natural unit for the paper's gap
    /// parameter `g` and VC setup delay.
    pub fn from_mins(m: i64) -> SimSpan {
        SimSpan(m * 60_000_000)
    }

    /// Microseconds (signed).
    pub fn micros(self) -> i64 {
        self.0
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when negative (concurrent-start session gaps).
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value.
    pub fn abs(self) -> SimSpan {
        SimSpan(self.0.abs())
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        self.offset(rhs)
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimSpan) -> SimTime {
        self.offset(SimSpan(-rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimSpan;
    fn sub(self, rhs: SimTime) -> SimSpan {
        SimSpan(self.0 as i64 - rhs.0 as i64)
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 + rhs.0)
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 - rhs.0)
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: i64) -> SimSpan {
        SimSpan(self.0 * rhs)
    }
}

impl Div<i64> for SimSpan {
    type Output = SimSpan;
    fn div(self, rhs: i64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime(1_500_000));
        assert_eq!(SimSpan::from_mins(1), SimSpan::from_secs(60));
        assert_eq!(SimSpan::from_millis(50), SimSpan(50_000));
    }

    #[test]
    fn instant_minus_instant_is_signed() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(12);
        assert_eq!(b - a, SimSpan::from_secs(2));
        assert_eq!(a - b, SimSpan::from_secs(-2));
        assert!((a - b).is_negative());
    }

    #[test]
    fn add_negative_span_saturates_at_epoch() {
        let t = SimTime::from_secs(1);
        assert_eq!(t + SimSpan::from_secs(-5), SimTime::ZERO);
    }

    #[test]
    fn offset_round_trip() {
        let t = SimTime::from_secs(100);
        let s = SimSpan::from_secs(-30);
        assert_eq!((t + s) - t, s);
    }

    #[test]
    fn span_arithmetic() {
        let a = SimSpan::from_secs(5);
        let b = SimSpan::from_secs(3);
        assert_eq!(a + b, SimSpan::from_secs(8));
        assert_eq!(a - b, SimSpan::from_secs(2));
        assert_eq!(a * 2, SimSpan::from_secs(10));
        assert_eq!(a / 5, SimSpan::from_secs(1));
        assert_eq!(SimSpan::from_secs(-5).abs(), a);
    }

    #[test]
    fn float_conversion_round_trip() {
        let t = SimTime::from_secs_f64(123.456789);
        assert!((t.as_secs_f64() - 123.456789).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn negative_time_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_secs(1).max(SimTime::from_secs(2)), SimTime::from_secs(2));
        assert_eq!(SimTime::from_secs(1).min(SimTime::from_secs(2)), SimTime::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
        assert_eq!(SimSpan::from_secs(-2).to_string(), "-2.000000s");
    }
}
