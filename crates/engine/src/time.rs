//! Simulation time as integer microseconds.
//!
//! Instants ([`SimTime`]) and durations ([`SimSpan`]) are distinct
//! types so the compiler rejects category errors like adding two
//! instants. Microsecond resolution comfortably covers the study's
//! scales: 50 ms circuit setup at the fine end, multi-year log windows
//! (≈ 10¹⁴ µs) at the coarse end, both far inside `u64`/`i64` range.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulation time (microseconds since simulation epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A signed span of simulation time in microseconds.
///
/// Signed because the paper's session-grouping gap can be *negative*
/// (§V: "the gap … could be negative as multiple transfers can be
/// started concurrently").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(pub i64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// From fractional seconds (rounded to the nearest microsecond).
    ///
    /// # Panics
    /// Panics on negative, non-finite, or out-of-range input (values
    /// whose microsecond count exceeds `u64`). The old behavior of
    /// silently saturating huge finite inputs via an `as` cast hid
    /// configuration typos like `1e40` seconds as "the far future".
    pub fn from_secs_f64(s: f64) -> SimTime {
        match SimTime::try_from_secs_f64(s) {
            Some(t) => t,
            None => {
                // gvc-lint: allow(no-panic-in-lib) — documented contract: reject bad float input loudly
                panic!("SimTime must be finite, non-negative, and within u64 microseconds: got {s}")
            }
        }
    }

    /// Checked [`SimTime::from_secs_f64`]: `None` instead of panicking
    /// on negative, non-finite, or out-of-range input.
    pub fn try_from_secs_f64(s: f64) -> Option<SimTime> {
        if !s.is_finite() || s < 0.0 {
            return None;
        }
        let us = (s * 1e6).round();
        // Strict: `u64::MAX as f64` is 2^64, one past the last
        // representable microsecond, and `as` would saturate there.
        if us >= u64::MAX as f64 {
            return None;
        }
        Some(SimTime(us as u64))
    }

    /// From whole milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    /// Microseconds since epoch.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whole seconds since epoch (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Saturating instant + span (clamps at the epoch for negative
    /// overshoot).
    pub fn offset(self, span: SimSpan) -> SimTime {
        if span.0 >= 0 {
            SimTime(self.0.saturating_add(span.0 as u64))
        } else {
            SimTime(self.0.saturating_sub(span.0.unsigned_abs()))
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimSpan {
    /// Zero-length span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// From whole seconds.
    pub fn from_secs(s: i64) -> SimSpan {
        SimSpan(s * 1_000_000)
    }

    /// From fractional seconds (rounded to the nearest microsecond).
    ///
    /// # Panics
    /// Panics on non-finite or out-of-range input (values whose
    /// microsecond count exceeds `i64`); bare `as` casts used to
    /// saturate those silently.
    pub fn from_secs_f64(s: f64) -> SimSpan {
        match SimSpan::try_from_secs_f64(s) {
            Some(d) => d,
            // gvc-lint: allow(no-panic-in-lib) — documented contract: reject bad float input loudly
            None => panic!("SimSpan must be finite and within i64 microseconds: got {s}"),
        }
    }

    /// Checked [`SimSpan::from_secs_f64`]: `None` instead of panicking
    /// on non-finite or out-of-range input.
    pub fn try_from_secs_f64(s: f64) -> Option<SimSpan> {
        if !s.is_finite() {
            return None;
        }
        let us = (s * 1e6).round();
        // Strict on the positive side: `i64::MAX as f64` is 2^63, one
        // past the last representable microsecond. `i64::MIN as f64`
        // is exactly representable, so `>=` is the right bound there.
        if us >= i64::MAX as f64 || us < i64::MIN as f64 {
            return None;
        }
        Some(SimSpan(us as i64))
    }

    /// From whole milliseconds.
    pub fn from_millis(ms: i64) -> SimSpan {
        SimSpan(ms * 1000)
    }

    /// From whole minutes — the natural unit for the paper's gap
    /// parameter `g` and VC setup delay.
    pub fn from_mins(m: i64) -> SimSpan {
        SimSpan(m * 60_000_000)
    }

    /// Microseconds (signed).
    pub fn micros(self) -> i64 {
        self.0
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when negative (concurrent-start session gaps).
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value.
    pub fn abs(self) -> SimSpan {
        SimSpan(self.0.abs())
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        self.offset(rhs)
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimSpan) -> SimTime {
        self.offset(SimSpan(-rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimSpan;
    fn sub(self, rhs: SimTime) -> SimSpan {
        // Saturating: instants live in u64 microseconds, so a naive
        // `as i64` difference wraps for timestamps past i64::MAX µs.
        if self.0 >= rhs.0 {
            SimSpan(i64::try_from(self.0 - rhs.0).unwrap_or(i64::MAX))
        } else {
            // -(2^63) is exactly i64::MIN, so saturating the failed
            // conversion there is also the exact answer at the edge.
            SimSpan(i64::try_from(rhs.0 - self.0).map_or(i64::MIN, i64::wrapping_neg))
        }
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 + rhs.0)
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 - rhs.0)
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: i64) -> SimSpan {
        SimSpan(self.0 * rhs)
    }
}

impl Div<i64> for SimSpan {
    type Output = SimSpan;
    fn div(self, rhs: i64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime(1_500_000));
        assert_eq!(SimSpan::from_mins(1), SimSpan::from_secs(60));
        assert_eq!(SimSpan::from_millis(50), SimSpan(50_000));
    }

    #[test]
    fn instant_minus_instant_is_signed() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(12);
        assert_eq!(b - a, SimSpan::from_secs(2));
        assert_eq!(a - b, SimSpan::from_secs(-2));
        assert!((a - b).is_negative());
    }

    #[test]
    fn add_negative_span_saturates_at_epoch() {
        let t = SimTime::from_secs(1);
        assert_eq!(t + SimSpan::from_secs(-5), SimTime::ZERO);
    }

    #[test]
    fn offset_round_trip() {
        let t = SimTime::from_secs(100);
        let s = SimSpan::from_secs(-30);
        assert_eq!((t + s) - t, s);
    }

    #[test]
    fn span_arithmetic() {
        let a = SimSpan::from_secs(5);
        let b = SimSpan::from_secs(3);
        assert_eq!(a + b, SimSpan::from_secs(8));
        assert_eq!(a - b, SimSpan::from_secs(2));
        assert_eq!(a * 2, SimSpan::from_secs(10));
        assert_eq!(a / 5, SimSpan::from_secs(1));
        assert_eq!(SimSpan::from_secs(-5).abs(), a);
    }

    #[test]
    fn float_conversion_round_trip() {
        let t = SimTime::from_secs_f64(123.456789);
        assert!((t.as_secs_f64() - 123.456789).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn negative_time_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "within u64 microseconds")]
    fn huge_finite_time_panics_instead_of_saturating() {
        // Pre-fix this silently saturated to SimTime(u64::MAX).
        let _ = SimTime::from_secs_f64(1e40);
    }

    #[test]
    #[should_panic(expected = "within i64 microseconds")]
    fn huge_finite_span_panics_instead_of_saturating() {
        let _ = SimSpan::from_secs_f64(-1e40);
    }

    #[test]
    #[should_panic]
    fn non_finite_span_panics() {
        let _ = SimSpan::from_secs_f64(f64::NAN);
    }

    #[test]
    fn try_constructors_reject_instead_of_panicking() {
        assert!(SimTime::try_from_secs_f64(f64::NAN).is_none());
        assert!(SimTime::try_from_secs_f64(f64::INFINITY).is_none());
        assert!(SimTime::try_from_secs_f64(-0.5).is_none());
        assert!(SimTime::try_from_secs_f64(1e40).is_none());
        assert_eq!(SimTime::try_from_secs_f64(1.5), Some(SimTime(1_500_000)));
        assert!(SimSpan::try_from_secs_f64(f64::NEG_INFINITY).is_none());
        assert!(SimSpan::try_from_secs_f64(1e40).is_none());
        assert_eq!(SimSpan::try_from_secs_f64(-1.5), Some(SimSpan(-1_500_000)));
    }

    #[test]
    fn instant_difference_saturates_at_i64_range() {
        // Pre-fix both wrapped: MAX - ZERO was -1, ZERO - MAX was +1.
        assert_eq!(SimTime::MAX - SimTime::ZERO, SimSpan(i64::MAX));
        assert_eq!(SimTime::ZERO - SimTime::MAX, SimSpan(i64::MIN));
        // The exact edge: a difference of 2^63 µs is exactly i64::MIN
        // when negated, not a saturation artifact.
        let edge = SimTime(1u64 << 63);
        assert_eq!(SimTime::ZERO - edge, SimSpan(i64::MIN));
        assert_eq!(edge - SimTime(1), SimSpan(i64::MAX));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_secs(1).max(SimTime::from_secs(2)), SimTime::from_secs(2));
        assert_eq!(SimTime::from_secs(1).min(SimTime::from_secs(2)), SimTime::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
        assert_eq!(SimSpan::from_secs(-2).to_string(), "-2.000000s");
    }
}
