//! Lane partitioning for sharded (parallel) simulation.
//!
//! The kernel stays a single serial [`crate::EventQueue`] per *lane*;
//! what this module provides is the deterministic machinery for
//! splitting one simulation into independent lanes and merging their
//! outputs back:
//!
//! * [`ResourcePartition`] — a union-find over opaque resource keys.
//!   Every scheduled item (a session, a background flow, a cluster
//!   resize, a link flap) declares the resources it touches; items
//!   whose resource sets are transitively connected land in the same
//!   lane. Two items in different lanes therefore *cannot* interact
//!   through any shared resource, which is the whole determinism
//!   argument: each lane is a closed simulation, and a closed
//!   simulation run on one thread is bit-for-bit reproducible.
//! * [`merge_ordered`] — a k-way merge of per-lane `(time, seq)`-keyed
//!   streams for consumers that need one globally ordered stream.
//!
//! Crucially the partition is *maximal* and depends only on the
//! workload, never on the shard count: `--shards N` only sizes the
//! worker pool that executes lanes. That is what makes outputs
//! byte-identical whether 1 or N workers run.

use std::collections::BTreeMap;

/// Union-find over dense indices with path compression.
///
/// Deterministic by construction: the representative of a set is
/// always the smallest index that was unioned into it first via the
/// rank-free "smaller root wins" rule below.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets `0..n`.
    pub fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect() }
    }

    /// Appends one more singleton set, returning its index.
    pub fn push(&mut self) -> usize {
        let idx = self.parent.len();
        self.parent.push(idx);
        idx
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The set representative of `x`, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets of `a` and `b`; the smaller root becomes the
    /// representative, keeping representatives stable and independent
    /// of union order.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
    }
}

/// Builds the maximal independent-lane partition for a set of
/// scheduled items, keyed by the opaque resources each item touches.
///
/// `K` is any ordered resource key (the GridFTP driver uses an enum
/// over link ids, cluster ids, and the IDC singleton). Items that
/// share *any* key — directly or transitively through other items —
/// are placed in the same lane.
#[derive(Debug)]
pub struct ResourcePartition<K: Ord> {
    /// First item index seen for each resource key.
    owners: BTreeMap<K, usize>,
    /// Union-find over item indices.
    uf: UnionFind,
}

impl<K: Ord> Default for ResourcePartition<K> {
    fn default() -> Self {
        ResourcePartition::new()
    }
}

impl<K: Ord> ResourcePartition<K> {
    /// An empty partition.
    pub fn new() -> ResourcePartition<K> {
        ResourcePartition { owners: BTreeMap::new(), uf: UnionFind::new(0) }
    }

    /// Registers item `idx` (dense, 0-based) as touching `keys`.
    /// Items must be added with strictly increasing `idx` starting at
    /// the current item count.
    ///
    /// # Panics
    /// Panics when `idx` is out of order.
    pub fn add_item(&mut self, idx: usize, keys: impl IntoIterator<Item = K>) {
        assert_eq!(idx, self.uf.push(), "items must be added densely in order");
        for key in keys {
            // First toucher owns the key; later touchers union in.
            let owner = *self.owners.entry(key).or_insert(idx);
            if owner != idx {
                self.uf.union(owner, idx);
            }
        }
    }

    /// Resolves the partition: `lanes[k]` holds the item indices of
    /// lane `k`, each lane sorted ascending, lanes ordered by their
    /// smallest member. The result depends only on the `add_item`
    /// calls, never on worker counts or thread schedules.
    pub fn lanes(mut self) -> Vec<Vec<usize>> {
        let n = self.uf.len();
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            by_root.entry(self.uf.find(i)).or_default().push(i);
        }
        // BTreeMap iteration is ascending by root, and the root is the
        // smallest member of its lane, so lane order is canonical.
        by_root.into_values().collect()
    }
}

/// Merges per-lane streams of `(time_us, seq, item)` entries into one
/// stream ordered by `(time_us, seq)`. Each lane's stream must itself
/// be sorted by that key; ties across lanes break toward the earlier
/// lane, so the result is a pure function of the lane contents —
/// independent of how the lanes were executed.
pub fn merge_ordered<T>(lanes: Vec<Vec<(i64, u64, T)>>) -> Vec<(i64, u64, T)> {
    let total: usize = lanes.iter().map(Vec::len).sum();
    let mut iters: Vec<_> = lanes.into_iter().map(|l| l.into_iter().peekable()).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, (i64, u64))> = None;
        for (lane, it) in iters.iter_mut().enumerate() {
            if let Some((t, s, _)) = it.peek() {
                let key = (*t, *s);
                // Strict `<`: on a cross-lane tie the earlier lane wins.
                if best.is_none_or(|(_, b)| key < b) {
                    best = Some((lane, key));
                }
            }
        }
        let Some((lane, _)) = best else {
            break;
        };
        if let Some(entry) = iters[lane].next() {
            out.push(entry);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_smallest_root_wins() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(1, 3);
        assert_eq!(uf.find(5), 2);
        assert_eq!(uf.find(4), 2);
        assert_eq!(uf.find(3), 1);
        assert_eq!(uf.find(0), 0);
        assert_eq!(uf.len(), 6);
        assert!(!uf.is_empty());
    }

    #[test]
    fn partition_groups_by_shared_resources() {
        let mut p = ResourcePartition::new();
        p.add_item(0, ["link-a", "link-b"]);
        p.add_item(1, ["link-c"]);
        p.add_item(2, ["link-b", "link-d"]); // joins item 0 via link-b
        p.add_item(3, ["link-e"]);
        p.add_item(4, ["link-d", "link-c"]); // bridges items 2 and 1
        assert_eq!(p.lanes(), vec![vec![0, 1, 2, 4], vec![3]]);
    }

    #[test]
    fn partition_is_independent_of_key_insertion_order() {
        let mut a = ResourcePartition::new();
        a.add_item(0, ["x", "y"]);
        a.add_item(1, ["y", "z"]);
        let mut b = ResourcePartition::new();
        b.add_item(0, ["y", "x"]);
        b.add_item(1, ["z", "y"]);
        assert_eq!(a.lanes(), b.lanes());
    }

    #[test]
    fn disjoint_items_each_get_a_lane() {
        let mut p = ResourcePartition::new();
        for i in 0..4 {
            p.add_item(i, [i]);
        }
        assert_eq!(p.lanes(), vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn empty_partition_has_no_lanes() {
        let p: ResourcePartition<u32> = ResourcePartition::new();
        assert!(p.lanes().is_empty());
    }

    #[test]
    fn merge_is_ordered_and_tie_breaks_toward_earlier_lane() {
        let lanes = vec![
            vec![(5, 1, "a0"), (9, 0, "a1")],
            vec![(5, 0, "b0"), (5, 1, "b1"), (12, 3, "b2")],
            vec![],
        ];
        let merged: Vec<&str> = merge_ordered(lanes).into_iter().map(|(_, _, v)| v).collect();
        // (5,0)b0 < (5,1): tie between a0 and b1 → earlier lane (a0).
        assert_eq!(merged, vec!["b0", "a0", "b1", "a1", "b2"]);
    }
}
