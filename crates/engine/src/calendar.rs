//! Civil date/time conversion for simulation timestamps.
//!
//! Two of the paper's analyses need wall-clock structure on top of raw
//! simulation time: Table VIII groups NCAR transfers by calendar *year*
//! (2009/2010/2011, tracking the frost cluster shrinking from 3 to 1
//! servers), and Fig. 6 groups NERSC–ORNL test transfers by *time of
//! day* (the 2 AM and 8 AM cron runs). The simulation epoch is mapped
//! to a real UTC instant and converted with the standard
//! days-from-civil / civil-from-days algorithms (Howard Hinnant's
//! `chrono`-compatible formulation), so leap years are handled exactly.

use crate::time::SimTime;

/// Unix timestamp (seconds) of 2009-01-01T00:00:00Z, the default
/// simulation epoch: the NCAR–NICS dataset spans 2009–2011.
pub const EPOCH_2009_UTC: i64 = 1_230_768_000;

/// A broken-down UTC date and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CivilDateTime {
    /// Calendar year, e.g. 2010.
    pub year: i32,
    /// Month 1–12.
    pub month: u32,
    /// Day of month 1–31.
    pub day: u32,
    /// Hour 0–23.
    pub hour: u32,
    /// Minute 0–59.
    pub minute: u32,
    /// Second 0–59.
    pub second: u32,
}

/// Days since 1970-01-01 for a civil date (valid for all practical
/// years; proleptic Gregorian).
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    debug_assert!((1..=12).contains(&month));
    debug_assert!((1..=31).contains(&day));
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((month + 9) % 12); // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of
/// [`days_from_civil`]).
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

impl CivilDateTime {
    /// Converts a unix timestamp (seconds, UTC) to civil time.
    pub fn from_unix(ts: i64) -> CivilDateTime {
        let days = ts.div_euclid(86_400);
        let secs = ts.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        CivilDateTime {
            year,
            month,
            day,
            hour: (secs / 3600) as u32,
            minute: (secs % 3600 / 60) as u32,
            second: (secs % 60) as u32,
        }
    }

    /// Converts civil time back to a unix timestamp (seconds, UTC).
    pub fn to_unix(self) -> i64 {
        days_from_civil(self.year, self.month, self.day) * 86_400
            + i64::from(self.hour) * 3600
            + i64::from(self.minute) * 60
            + i64::from(self.second)
    }

    /// Converts a simulation instant under the given epoch.
    pub fn from_sim(t: SimTime, epoch_unix: i64) -> CivilDateTime {
        CivilDateTime::from_unix(epoch_unix + t.as_secs() as i64)
    }

    /// Fractional hour of day (Fig. 6's x-axis), e.g. 02:30:00 → 2.5.
    pub fn hour_of_day(self) -> f64 {
        f64::from(self.hour) + f64::from(self.minute) / 60.0 + f64::from(self.second) / 3600.0
    }

    /// ISO 8601 rendering (`2010-09-14T02:00:00Z`), the format the log
    /// writer uses for start times.
    pub fn iso8601(self) -> String {
        format!(
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }

    /// Parses the ISO 8601 rendering produced by [`Self::iso8601`].
    pub fn parse_iso8601(s: &str) -> Option<CivilDateTime> {
        let b = s.as_bytes();
        const SEPS: [(usize, u8); 6] =
            [(4, b'-'), (7, b'-'), (10, b'T'), (13, b':'), (16, b':'), (19, b'Z')];
        if b.len() != 20 || SEPS.iter().any(|&(i, ch)| b.get(i) != Some(&ch)) {
            return None;
        }
        let num = |r: std::ops::Range<usize>| s.get(r).and_then(|t| t.parse::<u32>().ok());
        let dt = CivilDateTime {
            year: num(0..4)? as i32,
            month: num(5..7)?,
            day: num(8..10)?,
            hour: num(11..13)?,
            minute: num(14..16)?,
            second: num(17..19)?,
        };
        if !(1..=12).contains(&dt.month)
            || !(1..=31).contains(&dt.day)
            || dt.hour > 23
            || dt.minute > 59
            || dt.second > 59
        {
            return None;
        }
        Some(dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_2009_is_jan_first() {
        let dt = CivilDateTime::from_unix(EPOCH_2009_UTC);
        assert_eq!((dt.year, dt.month, dt.day), (2009, 1, 1));
        assert_eq!((dt.hour, dt.minute, dt.second), (0, 0, 0));
    }

    #[test]
    fn unix_epoch_origin() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // 2012-04-02 (the SLAC 2–3 AM burst day) = unix 1333324800
        assert_eq!(days_from_civil(2012, 4, 2) * 86_400, 1_333_324_800);
        let dt = CivilDateTime::from_unix(1_333_324_800 + 2 * 3600 + 30 * 60);
        assert_eq!((dt.year, dt.month, dt.day, dt.hour, dt.minute), (2012, 4, 2, 2, 30));
    }

    #[test]
    fn leap_year_handling() {
        // 2012 is a leap year: Feb 29 exists.
        let feb29 = days_from_civil(2012, 2, 29);
        assert_eq!(civil_from_days(feb29), (2012, 2, 29));
        assert_eq!(civil_from_days(feb29 + 1), (2012, 3, 1));
        // 2100 is not a leap year.
        let feb28_2100 = days_from_civil(2100, 2, 28);
        assert_eq!(civil_from_days(feb28_2100 + 1), (2100, 3, 1));
    }

    #[test]
    fn sim_time_mapping() {
        let t = SimTime::from_secs(86_400 + 2 * 3600); // day 2, 02:00
        let dt = CivilDateTime::from_sim(t, EPOCH_2009_UTC);
        assert_eq!((dt.year, dt.month, dt.day, dt.hour), (2009, 1, 2, 2));
        assert!((dt.hour_of_day() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn iso8601_round_trip() {
        let dt = CivilDateTime { year: 2010, month: 9, day: 14, hour: 2, minute: 0, second: 59 };
        let s = dt.iso8601();
        assert_eq!(s, "2010-09-14T02:00:59Z");
        assert_eq!(CivilDateTime::parse_iso8601(&s), Some(dt));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CivilDateTime::parse_iso8601("not a date!").is_none());
        assert!(CivilDateTime::parse_iso8601("2010-13-01T00:00:00Z").is_none());
        assert!(CivilDateTime::parse_iso8601("2010-01-01T25:00:00Z").is_none());
        assert!(CivilDateTime::parse_iso8601("2010-01-01 00:00:00Z").is_none());
        assert!(CivilDateTime::parse_iso8601("").is_none());
    }

    proptest! {
        /// days_from_civil and civil_from_days are inverses over a wide
        /// span of days.
        #[test]
        fn prop_day_round_trip(z in -200_000i64..200_000) {
            let (y, m, d) = civil_from_days(z);
            prop_assert_eq!(days_from_civil(y, m, d), z);
        }

        /// Unix second round trip through CivilDateTime.
        #[test]
        fn prop_unix_round_trip(ts in 0i64..2_000_000_000) {
            let dt = CivilDateTime::from_unix(ts);
            prop_assert_eq!(dt.to_unix(), ts);
        }

        /// ISO rendering always parses back to the same value.
        #[test]
        fn prop_iso_round_trip(ts in 0i64..2_000_000_000) {
            let dt = CivilDateTime::from_unix(ts);
            prop_assert_eq!(CivilDateTime::parse_iso8601(&dt.iso8601()), Some(dt));
        }
    }
}
