//! Discrete-event simulation kernel.
//!
//! The network, circuit, and GridFTP models are all driven from one
//! event loop: flow arrivals/departures, SNMP 30-second sampling ticks,
//! OSCARS provisioning batches, and session-script steps are events on
//! a shared queue. The kernel provides:
//!
//! * [`SimTime`] / [`SimSpan`] — instants and durations in integer
//!   microseconds, so event ordering is exact and runs are bit-for-bit
//!   reproducible (no floating-point clock drift);
//! * [`EventQueue`] — a binary-heap calendar with deterministic FIFO
//!   tie-breaking among simultaneous events;
//! * [`calendar`] — civil date/time conversion, because the paper's
//!   analyses group transfers by wall-clock year (Table VIII) and by
//!   time of day (Fig. 6).

pub mod calendar;
pub mod queue;
pub mod shard;
pub mod time;

pub use calendar::{CivilDateTime, EPOCH_2009_UTC};
pub use queue::{EventQueue, QueueTelemetry};
pub use shard::{merge_ordered, ResourcePartition, UnionFind};
pub use time::{SimSpan, SimTime};
