//! The event calendar.
//!
//! A min-heap keyed on `(time, sequence)` where `sequence` is a
//! monotone counter assigned at scheduling time, so simultaneous events
//! pop in the order they were scheduled. That FIFO guarantee is what
//! makes whole-simulation runs deterministic: the paper's SLAC–BNL
//! sessions start many transfers at the same instant (negative session
//! gaps), and their relative order must not depend on heap internals.

use crate::time::{SimSpan, SimTime};
use gvc_telemetry::timeline::series;
use gvc_telemetry::{Counter, Gauge, Registry, SpanId, TimelineHandle, Tracer};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Kernel calendar metrics, shared with a [`Registry`]. Attach one via
/// [`EventQueue::set_telemetry`]; a queue without telemetry pays one
/// `Option` check per operation.
#[derive(Clone)]
pub struct QueueTelemetry {
    /// `sim_events_scheduled_total`: pushes onto the calendar.
    pub scheduled: Arc<Counter>,
    /// `sim_events_dispatched_total`: pops off the calendar.
    pub dispatched: Arc<Counter>,
    /// `sim_event_queue_depth_hwm`: high-water mark of pending events.
    pub depth_hwm: Arc<Gauge>,
    /// Span handle for `kernel.queue_wait` spans (schedule → pop).
    /// Disabled by default; see [`QueueTelemetry::with_tracer`].
    pub tracer: Tracer,
    /// Sim-time flight recorder feeding the `kernel.scheduled` /
    /// `kernel.dispatched` windowed series (`None` unless
    /// [`QueueTelemetry::with_timeline`] attached one).
    pub timeline: Option<TimelineHandle>,
}

impl QueueTelemetry {
    /// Registers the kernel metrics in `registry` (spans disabled).
    pub fn register(registry: &Registry) -> QueueTelemetry {
        QueueTelemetry {
            scheduled: registry.counter("sim_events_scheduled_total", &[]),
            dispatched: registry.counter("sim_events_dispatched_total", &[]),
            depth_hwm: registry.gauge("sim_event_queue_depth_hwm", &[]),
            tracer: Tracer::disabled(),
            timeline: None,
        }
    }

    /// Attaches the run's tracer so every calendar entry opens a
    /// `kernel.queue_wait` span at schedule time and closes it when
    /// it pops — the time an event sat on the calendar.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> QueueTelemetry {
        self.tracer = tracer;
        self
    }

    /// Attaches a sim-time flight recorder. Windowed schedule and
    /// dispatch counts are shard-invariant: each calendar entry is
    /// scheduled and popped in exactly one lane, so the lane-merged
    /// per-window sums equal the unsharded run's.
    #[must_use]
    pub fn with_timeline(mut self, timeline: Option<TimelineHandle>) -> QueueTelemetry {
        self.timeline = timeline;
        self
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
    span: SpanId,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// The queue owns the simulation clock: [`EventQueue::pop`] advances
/// `now` to the popped event's timestamp. Scheduling in the past is a
/// logic error and panics (events may be scheduled *at* `now`).
///
/// ```
/// use gvc_engine::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    /// Lifetime pop count, kept unconditionally (no telemetry needed)
    /// so host-perf phase throughput can be derived after a run.
    popped: u64,
    telemetry: Option<QueueTelemetry>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at the epoch.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            telemetry: None,
        }
    }

    /// Attaches kernel metrics (push/pop counts, depth high-water
    /// mark). Counting starts from the moment of attachment.
    pub fn set_telemetry(&mut self, telemetry: QueueTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={now}",
            at = at,
            now = self.now
        );
        let span = match &self.telemetry {
            Some(t) => {
                t.tracer.span_enter(SpanId::NONE, self.now.micros() as i64, "kernel.queue_wait")
            }
            None => SpanId::NONE,
        };
        self.heap.push(Entry { at, seq: self.seq, event, span });
        self.seq += 1;
        if let Some(t) = &self.telemetry {
            t.scheduled.inc();
            t.depth_hwm.set_max(self.heap.len() as i64);
            if let Some(tl) = &t.timeline {
                tl.add(series::KERNEL_SCHEDULED, self.now.micros(), 1.0);
            }
        }
    }

    /// Schedules `event` after `delay` (clamped to `now` for negative
    /// delays).
    pub fn schedule_in(&mut self, delay: SimSpan, event: E) {
        let at = (self.now + delay).max(self.now);
        self.schedule(at, event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now);
            self.now = e.at;
            self.popped += 1;
            if let Some(t) = &self.telemetry {
                t.dispatched.inc();
                t.tracer.span_exit(e.span, e.at.micros() as i64);
                if let Some(tl) = &t.timeline {
                    tl.add(series::KERNEL_DISPATCHED, e.at.micros(), 1.0);
                }
            }
            (e.at, e.event)
        })
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Total events popped over the queue's lifetime (independent of
    /// telemetry attachment).
    pub fn dispatched(&self) -> u64 {
        self.popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the clock.
    ///
    /// Pending entries' open `kernel.queue_wait` spans are closed at
    /// the current clock with a `cancelled` marker — dropping them
    /// unpaired left traces that `gvc trace check` rejects.
    pub fn clear(&mut self) {
        if let Some(t) = &self.telemetry {
            let now_us = self.now.micros() as i64;
            // Close in schedule order so the cancellation tail of the
            // trace is deterministic and readable.
            let mut dropped: Vec<(u64, SpanId)> =
                self.heap.drain().map(|e| (e.seq, e.span)).collect();
            dropped.sort_unstable_by_key(|&(seq, _)| seq);
            for (_, span) in dropped {
                t.tracer.span_exit_with(span, now_us, |ev| ev.field("cancelled", true));
            }
        } else {
            self.heap.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.pop();
        q.schedule(q.now(), 2);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn schedule_in_negative_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 0);
        q.pop();
        q.schedule_in(SimSpan::from_secs(-10), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn dispatched_counts_without_telemetry() {
        let mut q = EventQueue::new();
        assert_eq!(q.dispatched(), 0);
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        q.pop();
        q.pop();
        q.pop();
        assert_eq!(q.dispatched(), 2);
    }

    #[test]
    fn telemetry_counts_pushes_pops_and_depth() {
        let reg = Registry::new();
        let mut q = EventQueue::new();
        q.set_telemetry(QueueTelemetry::register(&reg));
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(3), ());
        q.pop();
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(reg.counter("sim_events_scheduled_total", &[]).get(), 4);
        assert_eq!(reg.counter("sim_events_dispatched_total", &[]).get(), 1);
        assert_eq!(reg.gauge("sim_event_queue_depth_hwm", &[]).get(), 3);
    }

    #[test]
    fn queue_wait_spans_pair_schedule_with_pop() {
        use gvc_telemetry::RingSink;
        let reg = Registry::new();
        let ring = Arc::new(RingSink::new(16));
        let mut q = EventQueue::new();
        q.set_telemetry(QueueTelemetry::register(&reg).with_tracer(Tracer::to_sink(ring.clone())));
        q.schedule(SimTime::from_secs(2), "a");
        q.schedule(SimTime::from_secs(1), "b");
        q.pop();
        q.pop();
        let evs = ring.events();
        let kinds: Vec<&str> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["span.start", "span.start", "span.end", "span.end"]);
        // "b" pops first (t=1s) but was scheduled second (span 2).
        assert!(evs[2].to_json().contains("\"span\":2"), "{}", evs[2].to_json());
        assert_eq!(evs[2].t_us, 1_000_000);
        assert!(evs[3].to_json().contains("\"span\":1"));
        assert_eq!(evs[3].t_us, 2_000_000);
        assert!(evs[0].to_json().contains("\"name\":\"kernel.queue_wait\""));
    }

    #[test]
    fn clear_closes_pending_queue_wait_spans() {
        use gvc_telemetry::RingSink;
        let reg = Registry::new();
        let ring = Arc::new(RingSink::new(16));
        let mut q = EventQueue::new();
        q.set_telemetry(QueueTelemetry::register(&reg).with_tracer(Tracer::to_sink(ring.clone())));
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.pop();
        q.clear();
        let evs = ring.events();
        // Two starts, one pop exit, one cancellation exit — pre-fix
        // the second span leaked open and this read 3 events.
        let kinds: Vec<&str> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["span.start", "span.start", "span.end", "span.end"]);
        let cancelled = evs[3].to_json();
        assert!(cancelled.contains("\"span\":2"), "{cancelled}");
        assert!(cancelled.contains("\"cancelled\":true"), "{cancelled}");
        // Cancellation closes at the clock (1s after the pop), not at
        // the event's scheduled future time.
        assert_eq!(evs[3].t_us, 1_000_000);
        assert!(q.is_empty());
    }

    proptest! {
        /// Any batch of scheduled events pops in nondecreasing time
        /// order, and equal-time events pop in insertion order.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_secs(t), (t, i));
            }
            let mut last: Option<(u64, usize)> = None;
            while let Some((at, (t, i))) = q.pop() {
                prop_assert_eq!(at, SimTime::from_secs(t));
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li);
                    }
                }
                last = Some((t, i));
            }
        }
    }
}
