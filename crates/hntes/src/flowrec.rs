//! Router flow records.
//!
//! A provider's visibility is not GridFTP logs — it is per-flow
//! accounting exported by its own routers (NetFlow/IPFIX style):
//! endpoints, byte count, first/last packet times. The HNTES
//! controller works exclusively from these, which is what makes it
//! deployable without end-system cooperation (§IV's point).

use gvc_topology::NodeId;

/// One exported flow record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRecord {
    /// Ingress node (where the flow enters the provider).
    pub ingress: NodeId,
    /// Egress node (where it leaves).
    pub egress: NodeId,
    /// Total bytes carried.
    pub bytes: u64,
    /// First-packet time, unix µs.
    pub start_unix_us: i64,
    /// Last-packet time, unix µs.
    pub end_unix_us: i64,
}

impl FlowRecord {
    /// Flow duration in seconds (0 for degenerate records).
    pub fn duration_s(&self) -> f64 {
        ((self.end_unix_us - self.start_unix_us).max(0)) as f64 / 1e6
    }

    /// Mean rate in bits per second (0 for degenerate records).
    pub fn rate_bps(&self) -> f64 {
        let d = self.duration_s();
        if d <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / d
        }
    }

    /// The ingress-egress pair this record belongs to — HNTES installs
    /// redirection per pair, not per flow ("preconfigured between
    /// ingress-egress router pairs").
    pub fn pair(&self) -> (NodeId, NodeId) {
        (self.ingress, self.egress)
    }
}

/// Derives provider flow records from a GridFTP usage log, resolving
/// the logged server/remote host names to provider-edge nodes with
/// `edge_of` (returning `None` drops the record — traffic not crossing
/// this provider). STOR records flow remote → server, RETR records
/// server → remote.
pub fn from_transfer_log<F>(ds: &gvc_logs::Dataset, mut edge_of: F) -> Vec<FlowRecord>
where
    F: FnMut(&str) -> Option<NodeId>,
{
    ds.records()
        .iter()
        .filter_map(|r| {
            let remote = r.remote.as_deref()?;
            let server = edge_of(&r.server)?;
            let peer = edge_of(remote)?;
            let (ingress, egress) = match r.transfer_type {
                gvc_logs::TransferType::Retr => (server, peer),
                gvc_logs::TransferType::Store => (peer, server),
            };
            Some(FlowRecord {
                ingress,
                egress,
                bytes: r.size_bytes,
                start_unix_us: r.start_unix_us,
                end_unix_us: r.end_unix_us(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bytes: u64, dur_s: f64) -> FlowRecord {
        FlowRecord {
            ingress: NodeId(0),
            egress: NodeId(1),
            bytes,
            start_unix_us: 1_000_000,
            end_unix_us: 1_000_000 + (dur_s * 1e6) as i64,
        }
    }

    #[test]
    fn rate_and_duration() {
        let r = rec(125_000_000, 1.0); // 1 Gbps
        assert!((r.duration_s() - 1.0).abs() < 1e-9);
        assert!((r.rate_bps() - 1e9).abs() < 1.0);
    }

    #[test]
    fn degenerate_duration_rate_zero() {
        let mut r = rec(100, 0.0);
        assert_eq!(r.rate_bps(), 0.0);
        r.end_unix_us = r.start_unix_us - 5;
        assert_eq!(r.duration_s(), 0.0);
        assert_eq!(r.rate_bps(), 0.0);
    }

    #[test]
    fn pair_key() {
        let r = rec(1, 1.0);
        assert_eq!(r.pair(), (NodeId(0), NodeId(1)));
    }

    #[test]
    fn from_transfer_log_maps_directions() {
        use gvc_logs::{Dataset, TransferRecord, TransferType};
        let retr =
            TransferRecord::simple(TransferType::Retr, 100, 0, 1_000_000, "srv", Some("peer"));
        let stor =
            TransferRecord::simple(TransferType::Store, 200, 5, 1_000_000, "srv", Some("peer"));
        let anon = TransferRecord::simple(TransferType::Retr, 300, 9, 1_000_000, "srv", None);
        let foreign =
            TransferRecord::simple(TransferType::Retr, 400, 11, 1_000_000, "srv", Some("offnet"));
        let ds = Dataset::from_records(vec![retr, stor, anon, foreign]);
        let flows = from_transfer_log(&ds, |name| match name {
            "srv" => Some(NodeId(1)),
            "peer" => Some(NodeId(2)),
            _ => None,
        });
        assert_eq!(flows.len(), 2, "anonymized and off-net records dropped");
        assert_eq!(flows[0].pair(), (NodeId(1), NodeId(2))); // RETR: srv -> peer
        assert_eq!(flows[1].pair(), (NodeId(2), NodeId(1))); // STOR: peer -> srv
        assert_eq!(flows[0].bytes, 100);
        assert_eq!(flows[1].bytes, 200);
    }
}
