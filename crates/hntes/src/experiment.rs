//! The capture-rate experiment: how much α traffic does offline
//! pair-learning actually steer onto circuits?
//!
//! Day-by-day replay: each day's flow records are first run through
//! the rules learned from *previous* days (that is the deployable
//! setting — you can only redirect what you predicted), then fed to
//! the controller as that day's observations. Reported per day and in
//! aggregate: the fraction of α bytes redirected, the fraction of α
//! flows missed, and the β bytes falsely steered.

use crate::classifier::AlphaClassifier;
use crate::controller::HntesController;
use crate::flowrec::FlowRecord;

/// Aggregate results of a capture replay.
#[derive(Debug, Clone)]
pub struct CaptureReport {
    /// Days replayed.
    pub days: usize,
    /// Total α bytes across the replay.
    pub alpha_bytes: u64,
    /// α bytes redirected onto circuits.
    pub captured_bytes: u64,
    /// β bytes falsely redirected.
    pub false_bytes: u64,
    /// α flows missed entirely (no rule yet).
    pub missed_flows: usize,
    /// Per-day capture fractions (day 0 is always 0 — nothing learned
    /// yet).
    pub daily_capture: Vec<f64>,
    /// Rules installed at the end.
    pub final_rules: usize,
}

impl CaptureReport {
    /// Overall α-byte capture fraction.
    pub fn capture_fraction(&self) -> f64 {
        if self.alpha_bytes == 0 {
            0.0
        } else {
            self.captured_bytes as f64 / self.alpha_bytes as f64
        }
    }

    /// β bytes misdirected per α byte captured (the collateral cost).
    pub fn false_ratio(&self) -> f64 {
        if self.captured_bytes == 0 {
            0.0
        } else {
            self.false_bytes as f64 / self.captured_bytes as f64
        }
    }
}

/// Replays `days` of flow records through an HNTES controller.
///
/// `day_records[d]` are the records whose flows *started* on day `d`;
/// each day is applied against the rules standing at its start, then
/// observed.
pub fn capture_experiment(
    classifier: AlphaClassifier,
    day_records: &[Vec<FlowRecord>],
) -> CaptureReport {
    let mut controller = HntesController::new(classifier);
    let mut alpha_bytes = 0u64;
    let mut captured_bytes = 0u64;
    let mut false_bytes = 0u64;
    let mut missed_flows = 0usize;
    let mut daily_capture = Vec::with_capacity(day_records.len());

    for (day, records) in day_records.iter().enumerate() {
        let (redirected, missed, false_pos) = controller.apply(records);
        let day_alpha: u64 =
            records.iter().filter(|r| classifier.is_alpha(r)).map(|r| r.bytes).sum();
        let day_captured: u64 =
            redirected.iter().filter(|r| classifier.is_alpha(r)).map(|r| r.bytes).sum();
        alpha_bytes += day_alpha;
        captured_bytes += day_captured;
        false_bytes += false_pos.iter().map(|r| r.bytes).sum::<u64>();
        missed_flows += missed.len();
        daily_capture.push(if day_alpha == 0 {
            0.0
        } else {
            day_captured as f64 / day_alpha as f64
        });

        // Learn from today for tomorrow.
        let now = records
            .iter()
            .map(|r| r.end_unix_us)
            .max()
            .unwrap_or((day as i64 + 1) * 86_400_000_000);
        controller.observe_interval(records, now);
    }

    CaptureReport {
        days: day_records.len(),
        alpha_bytes,
        captured_bytes,
        false_bytes,
        missed_flows,
        daily_capture,
        final_rules: controller.rule_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_topology::NodeId;

    fn alpha(ing: u32, eg: u32, day: i64) -> FlowRecord {
        FlowRecord {
            ingress: NodeId(ing),
            egress: NodeId(eg),
            bytes: 20_000_000_000,
            start_unix_us: day * 86_400_000_000,
            end_unix_us: day * 86_400_000_000 + 60_000_000,
        }
    }

    fn beta(ing: u32, eg: u32, day: i64) -> FlowRecord {
        FlowRecord {
            ingress: NodeId(ing),
            egress: NodeId(eg),
            bytes: 10_000_000,
            start_unix_us: day * 86_400_000_000,
            end_unix_us: day * 86_400_000_000 + 5_000_000,
        }
    }

    #[test]
    fn repetitive_traffic_is_captured_after_day_one() {
        // The same science pair every day: day 0 missed, days 1+ hit.
        let days: Vec<Vec<FlowRecord>> =
            (0..5).map(|d| vec![alpha(1, 2, d), beta(3, 4, d)]).collect();
        let r = capture_experiment(AlphaClassifier::default(), &days);
        assert_eq!(r.days, 5);
        assert_eq!(r.daily_capture[0], 0.0);
        for d in 1..5 {
            assert_eq!(r.daily_capture[d], 1.0, "day {d}");
        }
        assert!((r.capture_fraction() - 0.8).abs() < 1e-9);
        assert_eq!(r.missed_flows, 1);
        assert_eq!(r.final_rules, 1);
        assert_eq!(r.false_bytes, 0);
    }

    #[test]
    fn nonrepetitive_traffic_is_never_captured() {
        // A fresh pair every day: pair-learning captures nothing.
        let days: Vec<Vec<FlowRecord>> =
            (0..4).map(|d| vec![alpha(d as u32, 100 + d as u32, d)]).collect();
        let r = capture_experiment(AlphaClassifier::default(), &days);
        assert_eq!(r.capture_fraction(), 0.0);
        assert_eq!(r.missed_flows, 4);
        assert_eq!(r.final_rules, 4);
    }

    #[test]
    fn beta_on_learned_pair_counts_as_false_redirect() {
        let days = vec![
            vec![alpha(1, 2, 0)],
            vec![beta(1, 2, 1)], // same pair, general-purpose
        ];
        let r = capture_experiment(AlphaClassifier::default(), &days);
        assert_eq!(r.false_bytes, 10_000_000);
        assert_eq!(r.captured_bytes, 0);
        assert_eq!(r.false_ratio(), 0.0, "no capture, ratio defined as 0");
    }

    #[test]
    fn empty_replay() {
        let r = capture_experiment(AlphaClassifier::default(), &[]);
        assert_eq!(r.days, 0);
        assert_eq!(r.capture_fraction(), 0.0);
    }

    #[test]
    fn mixed_pairs_partial_capture() {
        // Pair (1,2) repeats; pair (9,9) appears once on the last day.
        let days = vec![vec![alpha(1, 2, 0)], vec![alpha(1, 2, 1), alpha(9, 9, 1)]];
        let r = capture_experiment(AlphaClassifier::default(), &days);
        // 3 alpha flows x 20 GB; captured: day1 pair (1,2) only.
        assert_eq!(r.alpha_bytes, 60_000_000_000);
        assert_eq!(r.captured_bytes, 20_000_000_000);
        assert_eq!(r.missed_flows, 2);
    }
}
