//! The HNTES controller: offline learning of α ingress-egress pairs.
//!
//! §IV: flow redirection cannot wait for a flow to prove itself —
//! by the time a flow is measurably α, much of it has already crossed
//! the IP path. The deployable trick (used by the authors' HNTES
//! system) is *offline* identification: α flows observed during one
//! measurement interval install firewall-filter rules for their
//! ingress-egress pair, so that *future* flows of the same pair are
//! redirected onto a pre-provisioned intra-domain LSP from their first
//! packet. Science traffic is strongly repetitive across days, so
//! pair-level rules capture most α bytes.

use crate::classifier::AlphaClassifier;
use crate::flowrec::FlowRecord;
use gvc_topology::NodeId;
use std::collections::{HashMap, HashSet};

/// One installed redirection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RedirectRule {
    /// Ingress router/edge of the pair.
    pub ingress: NodeId,
    /// Egress router/edge of the pair.
    pub egress: NodeId,
}

/// The controller state: learned rules plus bookkeeping about when
/// each pair was last seen carrying α traffic (rules age out).
#[derive(Debug, Clone)]
pub struct HntesController {
    classifier: AlphaClassifier,
    rules: HashMap<RedirectRule, i64>,
    /// Rules expire after this many µs without fresh α evidence
    /// (0 disables expiry).
    pub rule_ttl_us: i64,
}

impl HntesController {
    /// A controller with the given classifier and a 7-day rule TTL.
    pub fn new(classifier: AlphaClassifier) -> HntesController {
        HntesController { classifier, rules: HashMap::new(), rule_ttl_us: 7 * 86_400 * 1_000_000 }
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The installed rules, deterministic order.
    pub fn rules(&self) -> Vec<RedirectRule> {
        let mut v: Vec<RedirectRule> = self.rules.keys().copied().collect();
        v.sort_by_key(|r| (r.ingress, r.egress));
        v
    }

    /// Processes one measurement interval's flow records: α flows
    /// install (or refresh) their pair's rule; stale rules age out.
    /// Returns the number of rules installed or refreshed.
    pub fn observe_interval(&mut self, records: &[FlowRecord], now_unix_us: i64) -> usize {
        let mut touched = 0;
        for r in records {
            if self.classifier.is_alpha(r) {
                let rule = RedirectRule { ingress: r.ingress, egress: r.egress };
                self.rules.insert(rule, now_unix_us);
                touched += 1;
            }
        }
        if self.rule_ttl_us > 0 {
            self.rules.retain(|_, last| now_unix_us - *last <= self.rule_ttl_us);
        }
        touched
    }

    /// Would a new flow on this pair be redirected right now?
    pub fn redirects(&self, ingress: NodeId, egress: NodeId) -> bool {
        self.rules.contains_key(&RedirectRule { ingress, egress })
    }

    /// Applies the current rules to a future interval's records:
    /// returns `(redirected, missed_alpha, false_redirects)` where
    /// `redirected` are records steered onto circuits, `missed_alpha`
    /// are α flows still on the IP path, and `false_redirects` are β
    /// flows needlessly steered (pair-level rules are coarse).
    pub fn apply<'a>(
        &self,
        records: &'a [FlowRecord],
    ) -> (Vec<&'a FlowRecord>, Vec<&'a FlowRecord>, Vec<&'a FlowRecord>) {
        let mut redirected = Vec::new();
        let mut missed = Vec::new();
        let mut false_pos = Vec::new();
        for r in records {
            let is_alpha = self.classifier.is_alpha(r);
            if self.redirects(r.ingress, r.egress) {
                redirected.push(r);
                if !is_alpha {
                    false_pos.push(r);
                }
            } else if is_alpha {
                missed.push(r);
            }
        }
        (redirected, missed, false_pos)
    }

    /// The pairs currently installed, as a set (for provisioning the
    /// matching LSP mesh).
    pub fn pair_set(&self) -> HashSet<(NodeId, NodeId)> {
        self.rules.keys().map(|r| (r.ingress, r.egress)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ing: u32, eg: u32, bytes: u64, dur_s: f64, start_s: i64) -> FlowRecord {
        FlowRecord {
            ingress: NodeId(ing),
            egress: NodeId(eg),
            bytes,
            start_unix_us: start_s * 1_000_000,
            end_unix_us: start_s * 1_000_000 + (dur_s * 1e6) as i64,
        }
    }

    fn alpha(ing: u32, eg: u32, start_s: i64) -> FlowRecord {
        rec(ing, eg, 20_000_000_000, 60.0, start_s)
    }

    fn beta(ing: u32, eg: u32, start_s: i64) -> FlowRecord {
        rec(ing, eg, 5_000_000, 2.0, start_s)
    }

    #[test]
    fn alpha_observation_installs_rule() {
        let mut c = HntesController::new(AlphaClassifier::default());
        assert_eq!(c.rule_count(), 0);
        c.observe_interval(&[alpha(1, 2, 0), beta(3, 4, 0)], 0);
        assert_eq!(c.rule_count(), 1);
        assert!(c.redirects(NodeId(1), NodeId(2)));
        assert!(!c.redirects(NodeId(3), NodeId(4)));
        assert!(!c.redirects(NodeId(2), NodeId(1)), "rules are directional");
    }

    #[test]
    fn rules_age_out_without_fresh_evidence() {
        let mut c = HntesController::new(AlphaClassifier::default());
        c.rule_ttl_us = 1_000_000; // 1 s TTL
        c.observe_interval(&[alpha(1, 2, 0)], 0);
        assert_eq!(c.rule_count(), 1);
        // Next interval, no alpha traffic, 2 s later: rule expires.
        c.observe_interval(&[beta(1, 2, 2)], 2_000_000);
        assert_eq!(c.rule_count(), 0);
    }

    #[test]
    fn refresh_keeps_rule_alive() {
        let mut c = HntesController::new(AlphaClassifier::default());
        c.rule_ttl_us = 1_500_000;
        c.observe_interval(&[alpha(1, 2, 0)], 0);
        c.observe_interval(&[alpha(1, 2, 1)], 1_000_000);
        c.observe_interval(&[beta(9, 9, 2)], 2_000_000);
        assert!(c.redirects(NodeId(1), NodeId(2)));
    }

    #[test]
    fn apply_partitions_future_traffic() {
        let mut c = HntesController::new(AlphaClassifier::default());
        c.observe_interval(&[alpha(1, 2, 0)], 0);
        let future = vec![
            alpha(1, 2, 100), // captured
            beta(1, 2, 100),  // false redirect (same pair)
            alpha(5, 6, 100), // missed (new pair)
            beta(7, 8, 100),  // correctly left alone
        ];
        let (redirected, missed, false_pos) = c.apply(&future);
        assert_eq!(redirected.len(), 2);
        assert_eq!(missed.len(), 1);
        assert_eq!(false_pos.len(), 1);
    }

    #[test]
    fn pair_set_matches_rules() {
        let mut c = HntesController::new(AlphaClassifier::default());
        c.observe_interval(&[alpha(1, 2, 0), alpha(3, 4, 0), alpha(1, 2, 0)], 0);
        let pairs = c.pair_set();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(NodeId(1), NodeId(2))));
        assert_eq!(c.rules().len(), 2);
    }
}
