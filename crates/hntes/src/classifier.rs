//! α-flow classification.
//!
//! The paper's §I defines α flows after Sarvotham et al.: large
//! transfers over high-bottleneck-bandwidth paths that dominate
//! general-purpose traffic. Operationally (and in the HNTES follow-on
//! work) a flow record is classified α when it is both *large* (bytes
//! threshold — Lan & Heidemann's "elephant") and *fast* (rate
//! threshold — their "cheetah"); either test alone admits too much:
//! a huge-but-slow backup is no burst risk, and a fast-but-tiny web
//! object is gone before a circuit could help.

use crate::flowrec::FlowRecord;

/// Classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// Large and fast: circuit-worthy science traffic.
    Alpha,
    /// Everything else (general-purpose / background).
    Beta,
}

/// Threshold classifier over flow records.
///
/// ```
/// use gvc_hntes::{AlphaClassifier, FlowRecord};
/// use gvc_topology::NodeId;
///
/// let c = AlphaClassifier::default();
/// let science = FlowRecord {
///     ingress: NodeId(0), egress: NodeId(1),
///     bytes: 20_000_000_000, start_unix_us: 0, end_unix_us: 80_000_000,
/// };
/// assert!(c.is_alpha(&science)); // 20 GB at 2 Gbps
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AlphaClassifier {
    /// Minimum flow size, bytes.
    pub min_bytes: u64,
    /// Minimum mean rate, bits per second.
    pub min_rate_bps: f64,
}

impl Default for AlphaClassifier {
    fn default() -> AlphaClassifier {
        AlphaClassifier {
            // 1 GB and 200 Mbps: comfortably above general-purpose
            // flows, comfortably below the study's science transfers.
            min_bytes: 1_000_000_000,
            min_rate_bps: 200e6,
        }
    }
}

impl AlphaClassifier {
    /// Classifies one record.
    pub fn classify(&self, r: &FlowRecord) -> FlowClass {
        if r.bytes >= self.min_bytes && r.rate_bps() >= self.min_rate_bps {
            FlowClass::Alpha
        } else {
            FlowClass::Beta
        }
    }

    /// True when the record is α.
    pub fn is_alpha(&self, r: &FlowRecord) -> bool {
        self.classify(r) == FlowClass::Alpha
    }

    /// Splits records into (α, β) partitions.
    pub fn partition<'a>(
        &self,
        records: &'a [FlowRecord],
    ) -> (Vec<&'a FlowRecord>, Vec<&'a FlowRecord>) {
        records.iter().partition(|r| self.is_alpha(r))
    }

    /// Fraction of total bytes carried by α flows — the paper's
    /// finding (iv) quantity seen from the provider side.
    pub fn alpha_byte_fraction(&self, records: &[FlowRecord]) -> f64 {
        let total: u64 = records.iter().map(|r| r.bytes).sum();
        if total == 0 {
            return 0.0;
        }
        let alpha: u64 = records.iter().filter(|r| self.is_alpha(r)).map(|r| r.bytes).sum();
        alpha as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_topology::NodeId;

    fn rec(bytes: u64, dur_s: f64) -> FlowRecord {
        FlowRecord {
            ingress: NodeId(0),
            egress: NodeId(1),
            bytes,
            start_unix_us: 0,
            end_unix_us: (dur_s * 1e6) as i64,
        }
    }

    #[test]
    fn both_thresholds_required() {
        let c = AlphaClassifier::default();
        // Large and fast: 10 GB in 40 s = 2 Gbps.
        assert!(c.is_alpha(&rec(10_000_000_000, 40.0)));
        // Large but slow: 10 GB in 10 000 s = 8 Mbps.
        assert!(!c.is_alpha(&rec(10_000_000_000, 10_000.0)));
        // Fast but small: 100 MB in 0.4 s = 2 Gbps.
        assert!(!c.is_alpha(&rec(100_000_000, 0.4)));
        // Neither.
        assert!(!c.is_alpha(&rec(1_000_000, 10.0)));
    }

    #[test]
    fn boundary_inclusive() {
        let c = AlphaClassifier { min_bytes: 1000, min_rate_bps: 8000.0 };
        // Exactly 1000 bytes in exactly 1 s = 8000 bps.
        assert!(c.is_alpha(&rec(1000, 1.0)));
    }

    #[test]
    fn partition_and_byte_fraction() {
        let c = AlphaClassifier::default();
        let records = vec![
            rec(20_000_000_000, 80.0), // alpha, 20 GB
            rec(5_000_000, 1.0),       // beta
            rec(15_000_000_000, 60.0), // alpha, 15 GB
            rec(80_000_000, 100.0),    // beta
        ];
        let (a, b) = c.partition(&records);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        let frac = c.alpha_byte_fraction(&records);
        let expect = 35_000_000_000.0 / 35_085_000_000.0;
        assert!((frac - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_records() {
        let c = AlphaClassifier::default();
        assert_eq!(c.alpha_byte_fraction(&[]), 0.0);
    }
}
