//! Hybrid network traffic engineering (HNTES-style).
//!
//! §IV of the paper sketches how a provider can get the isolation and
//! path-control benefits of circuits *without* waiting for users to
//! request them: "With automatic α flow identification, packets from
//! α flows can be redirected to intra-domain VCs, such as MPLS label
//! switched paths, that have been preconfigured between
//! ingress-egress router pairs." This crate builds that system (the
//! authors' own follow-on project, HNTES):
//!
//! * [`flowrec`] — router flow records (the NetFlow-like export a
//!   provider actually sees, source/destination + bytes + duration);
//! * [`classifier`] — α-flow identification by size and rate
//!   thresholds, after Sarvotham et al.'s α/β decomposition and the
//!   Lan & Heidemann elephant/cheetah taxonomy cited by the paper;
//! * [`controller`] — the offline-learning controller: α flows
//!   observed in one measurement interval install redirection rules
//!   (ingress-egress pairs → pre-provisioned LSP) that capture the
//!   *next* interval's α traffic;
//! * [`experiment`] — the capture-rate harness: what fraction of
//!   α bytes does threshold-based offline identification redirect,
//!   and how many general-purpose flows does it misdirect?
//! * [`taxonomy`] — the Lan & Heidemann elephant/tortoise/cheetah/
//!   porcupine classification (§III), applied to fluid-simulator
//!   completions via their tracked peak rates.

pub mod classifier;
pub mod controller;
pub mod experiment;
pub mod flowrec;
pub mod taxonomy;

pub use classifier::{AlphaClassifier, FlowClass};
pub use controller::{HntesController, RedirectRule};
pub use experiment::{capture_experiment, CaptureReport};
pub use flowrec::FlowRecord;
pub use taxonomy::{classify, FlowDims, FlowTags, TaxonomyReport};
