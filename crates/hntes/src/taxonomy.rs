//! The Lan & Heidemann four-dimensional flow taxonomy.
//!
//! §III of the paper: "Lan and Heidemann classify flows on four
//! dimensions: size (bytes), duration, throughput, and burstiness, and
//! report that 68% of porcupine (high burstiness) flows in an analyzed
//! data set were also elephant (large sized) flows." The taxonomy
//! names one animal per heavy tail:
//!
//! | dimension | heavy | light |
//! |---|---|---|
//! | size | **elephant** | mouse |
//! | duration | **tortoise** | dragonfly |
//! | rate | **cheetah** | snail |
//! | burstiness | **porcupine** | stingray |
//!
//! Thresholds follow the original methodology: a flow is heavy on a
//! dimension when it exceeds `mean + k·σ` of that dimension over the
//! population (k = 3 in the original; configurable here because
//! synthetic populations are smaller).

/// One flow's four measured dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDims {
    /// Size, bytes.
    pub bytes: f64,
    /// Duration, seconds.
    pub duration_s: f64,
    /// Mean rate, bps.
    pub rate_bps: f64,
    /// Peak-to-mean ratio.
    pub burstiness: f64,
}

impl FlowDims {
    /// Builds dimensions from a fluid-simulator completion.
    pub fn from_completion(c: &gvc_net::FlowCompletion) -> FlowDims {
        FlowDims {
            bytes: c.bytes,
            duration_s: c.duration_s(),
            rate_bps: c.throughput_bps(),
            burstiness: c.burstiness(),
        }
    }
}

/// Heavy-tail membership of one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowTags {
    /// Heavy in size.
    pub elephant: bool,
    /// Heavy in duration.
    pub tortoise: bool,
    /// Heavy in rate.
    pub cheetah: bool,
    /// Heavy in burstiness.
    pub porcupine: bool,
}

/// Thresholds and the classified population.
#[derive(Debug, Clone)]
pub struct TaxonomyReport {
    /// Per-flow tags, input order.
    pub tags: Vec<FlowTags>,
    /// `mean + k·σ` thresholds per dimension
    /// (bytes, duration, rate, burstiness).
    pub thresholds: (f64, f64, f64, f64),
}

impl TaxonomyReport {
    fn count<F: Fn(&FlowTags) -> bool>(&self, f: F) -> usize {
        self.tags.iter().filter(|t| f(t)).count()
    }

    /// Number of elephants.
    pub fn elephants(&self) -> usize {
        self.count(|t| t.elephant)
    }

    /// Number of porcupines.
    pub fn porcupines(&self) -> usize {
        self.count(|t| t.porcupine)
    }

    /// Number of cheetahs.
    pub fn cheetahs(&self) -> usize {
        self.count(|t| t.cheetah)
    }

    /// Number of tortoises.
    pub fn tortoises(&self) -> usize {
        self.count(|t| t.tortoise)
    }

    /// The Lan & Heidemann headline: the fraction of porcupines that
    /// are also elephants (their data: 68 %). `None` without
    /// porcupines.
    pub fn porcupine_elephant_overlap(&self) -> Option<f64> {
        let p = self.porcupines();
        if p == 0 {
            return None;
        }
        Some(self.count(|t| t.porcupine && t.elephant) as f64 / p as f64)
    }
}

fn mean_sd(xs: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let n = xs.clone().count();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = xs.clone().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let ss: f64 = xs.map(|x| (x - mean) * (x - mean)).sum();
    (mean, (ss / (n - 1) as f64).sqrt())
}

/// Classifies a population with `mean + k·σ` thresholds per dimension.
pub fn classify(flows: &[FlowDims], k: f64) -> TaxonomyReport {
    let thr = |get: fn(&FlowDims) -> f64| -> f64 {
        let (m, s) = mean_sd(flows.iter().map(get));
        m + k * s
    };
    let t_bytes = thr(|f| f.bytes);
    let t_dur = thr(|f| f.duration_s);
    let t_rate = thr(|f| f.rate_bps);
    let t_burst = thr(|f| f.burstiness);
    let tags = flows
        .iter()
        .map(|f| FlowTags {
            elephant: f.bytes > t_bytes,
            tortoise: f.duration_s > t_dur,
            cheetah: f.rate_bps > t_rate,
            porcupine: f.burstiness > t_burst,
        })
        .collect();
    TaxonomyReport { tags, thresholds: (t_bytes, t_dur, t_rate, t_burst) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mouse() -> FlowDims {
        FlowDims { bytes: 1e6, duration_s: 1.0, rate_bps: 8e6, burstiness: 1.1 }
    }

    /// A population of mice plus one outlier per dimension.
    fn population() -> Vec<FlowDims> {
        let mut v = vec![mouse(); 40];
        v.push(FlowDims { bytes: 5e10, ..mouse() }); // elephant
        v.push(FlowDims { duration_s: 5_000.0, ..mouse() }); // tortoise
        v.push(FlowDims { rate_bps: 3e9, ..mouse() }); // cheetah
        v.push(FlowDims { burstiness: 40.0, ..mouse() }); // porcupine
        v
    }

    #[test]
    fn outliers_are_tagged_on_their_dimension_only() {
        let pop = population();
        let r = classify(&pop, 3.0);
        assert_eq!(r.elephants(), 1);
        assert_eq!(r.tortoises(), 1);
        assert_eq!(r.cheetahs(), 1);
        assert_eq!(r.porcupines(), 1);
        // The elephant outlier is not a cheetah etc.
        let elephant = r.tags.iter().find(|t| t.elephant).expect("tagged");
        assert!(!elephant.cheetah && !elephant.porcupine && !elephant.tortoise);
    }

    #[test]
    fn porcupine_elephant_overlap_detected() {
        let mut pop = vec![mouse(); 50];
        // Three flows both huge and bursty, one bursty-only.
        for _ in 0..3 {
            pop.push(FlowDims { bytes: 5e10, burstiness: 30.0, ..mouse() });
        }
        pop.push(FlowDims { burstiness: 30.0, ..mouse() });
        let r = classify(&pop, 3.0);
        assert_eq!(r.porcupines(), 4);
        let overlap = r.porcupine_elephant_overlap().expect("porcupines exist");
        assert!((overlap - 0.75).abs() < 1e-9);
    }

    #[test]
    fn homogeneous_population_has_no_heavy_tail() {
        let pop = vec![mouse(); 20];
        let r = classify(&pop, 3.0);
        assert_eq!(r.elephants() + r.tortoises() + r.cheetahs() + r.porcupines(), 0);
        assert!(r.porcupine_elephant_overlap().is_none());
    }

    #[test]
    fn empty_population() {
        let r = classify(&[], 3.0);
        assert!(r.tags.is_empty());
    }

    #[test]
    fn from_completion_maps_fields() {
        use gvc_engine::SimTime;
        use gvc_net::{FlowCompletion, FlowId};
        let c = FlowCompletion {
            id: FlowId(0),
            tag: 0,
            start: SimTime::from_secs(0),
            end: SimTime::from_secs(10),
            bytes: 1e9,
            peak_rate_bps: 1.6e9,
        };
        let d = FlowDims::from_completion(&c);
        assert_eq!(d.bytes, 1e9);
        assert!((d.duration_s - 10.0).abs() < 1e-12);
        assert!((d.rate_bps - 8e8).abs() < 1.0);
        assert!((d.burstiness - 2.0).abs() < 1e-9);
    }
}
