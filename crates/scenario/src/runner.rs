//! Executes a parsed scenario against the full simulation stack.
//!
//! Paper profiles delegate to the `gvc-workload` generators (which
//! register their own clusters on the study topology); synthetic
//! profiles build the spec's topology, register its clusters, and
//! drive the sharded kernel with faults and telemetry attached. Either
//! way the outcome is deterministic per seed — byte-identical at every
//! shard count — so its canonical serialization can be held as a
//! golden.

use std::sync::Arc;

use gvc_core::{feasibility_report, FeasibilityReport, ResilienceSummary};
use gvc_engine::SimTime;
use gvc_faults::FaultPlan;
use gvc_gridftp::driver::{Driver, Shards};
use gvc_gridftp::ServerCaps;
use gvc_net::NetworkSim;
use gvc_oscars::{Idc, InterDomainController, SetupDelayModel};
use gvc_telemetry::{BufferSink, CheckConfig, Telemetry, TimelineHandle, DEFAULT_WIDTH_US};
use gvc_workload::{builtin_generator, EPOCH_FEB_2012_US};

use crate::spec::{PaperProfile, ScenarioSpec, WorkloadSpec};
use crate::topo::build;
use crate::workload::synth_sessions;
use crate::{golden, ScenarioError};

/// Drain-out slack past the workload horizon so in-flight sessions
/// finish before the kernel stops (one simulated week).
const DRAIN_SLACK_S: f64 = 604_800.0;

/// Everything one scenario run produces.
pub struct ScenarioOutcome {
    /// The full feasibility analysis.
    pub report: FeasibilityReport,
    /// Canonical golden JSON of `report`.
    pub report_json: String,
    /// Headline stats, one `key value` per line (the second golden).
    pub stats_text: String,
    /// Canonical sim-time flight-recorder JSON (the third golden);
    /// `None` for paper profiles, which sample a calibrated generator
    /// instead of driving the simulation.
    pub timeline_json: Option<String>,
    /// Expectation-bound and trace-check violations (empty = pass).
    pub violations: Vec<String>,
}

fn fmt_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Runs a scenario at the given shard setting.
pub fn run_scenario(spec: &ScenarioSpec, shards: Shards) -> Result<ScenarioOutcome, ScenarioError> {
    match &spec.workload {
        WorkloadSpec::Paper { profile, scale } => run_paper(spec, *profile, *scale),
        WorkloadSpec::Synthetic(_) => run_synthetic(spec, shards),
    }
}

fn run_paper(
    spec: &ScenarioSpec,
    profile: PaperProfile,
    scale: f64,
) -> Result<ScenarioOutcome, ScenarioError> {
    let name = match profile {
        PaperProfile::NcarNics => "ncar",
        PaperProfile::SlacBnl => "slac",
        PaperProfile::NerscAnl => "anl",
        PaperProfile::NerscOrnl => "ornl",
    };
    let Some(generator) = builtin_generator(name) else {
        return Err(ScenarioError::Run(format!("generator {name:?} not registered")));
    };
    let log = (generator.generate)(spec.seed, scale);
    let report = feasibility_report(&log);
    let mut stats = String::new();
    stats.push_str(&format!("scenario {}\n", spec.name));
    stats.push_str(&format!("transfers {}\n", report.n_transfers));
    stats.push_str(&format!("degenerate {}\n", report.degenerate_records));
    push_headline(&mut stats, &report);
    let violations = eval_expect(spec, &report, None);
    let report_json = golden::report_json(&report);
    Ok(ScenarioOutcome { report, report_json, stats_text: stats, timeline_json: None, violations })
}

fn push_headline(stats: &mut String, report: &FeasibilityReport) {
    match report.headline() {
        Some((ps, pt)) => {
            stats.push_str(&format!("headline_pct_sessions {}\n", fmt_num(ps)));
            stats.push_str(&format!("headline_pct_transfers {}\n", fmt_num(pt)));
        }
        None => stats.push_str("headline none\n"),
    }
}

fn run_synthetic(spec: &ScenarioSpec, shards: Shards) -> Result<ScenarioOutcome, ScenarioError> {
    let WorkloadSpec::Synthetic(wl) = &spec.workload else {
        return Err(ScenarioError::Run("synthetic runner wants a synthetic workload".into()));
    };
    let built = build(spec)?;

    let sink = Arc::new(BufferSink::new());
    // The flight recorder aggregates purely in sim time, so its JSON
    // is as deterministic as the report and rides along as a third
    // golden for synthetic scenarios.
    let timeline = TimelineHandle::new(DEFAULT_WIDTH_US);
    let telemetry = Telemetry::with_sink(sink.clone()).with_timeline(timeline.clone());

    let idc = Idc::new(built.graph.clone(), SetupDelayModel::one_minute());
    let sim = NetworkSim::new(built.graph, EPOCH_FEB_2012_US);
    let mut driver = Driver::new(sim, spec.seed).with_idc(idc).with_telemetry(&telemetry);
    if let Some(plan) = &spec.fault_plan {
        let plan =
            FaultPlan::parse(plan).map_err(|e| ScenarioError::Run(format!("fault plan: {e}")))?;
        driver = driver.with_faults(plan);
    }

    let mut cluster_ids = std::collections::BTreeMap::new();
    for c in &spec.clusters {
        let Some(&node) = built.attach.get(&c.name) else {
            return Err(ScenarioError::Run(format!("cluster {:?} has no attachment", c.name)));
        };
        let caps = ServerCaps {
            nic_bps: c.nic_gbps * 1e9,
            disk_read_bps: c.disk_read_gbps * 1e9,
            disk_write_bps: c.disk_write_gbps * 1e9,
            node_cap_bps: c.node_cap_gbps * 1e9,
            ..ServerCaps::default()
        };
        let id = driver.register_cluster(&c.name, node, caps, c.servers);
        cluster_ids.insert(c.name.clone(), id);
    }
    let (Some(&src), Some(&dst)) = (cluster_ids.get(&wl.src), cluster_ids.get(&wl.dst)) else {
        return Err(ScenarioError::Run("workload src/dst cluster not registered".into()));
    };

    for s in synth_sessions(spec.seed, wl)? {
        driver.schedule_session(SimTime::from_secs_f64(s.at_s), src, dst, s.spec);
    }

    let limit = SimTime::from_secs_f64(wl.horizon_s + DRAIN_SLACK_S);
    let result = driver.run_sharded(limit, shards);
    result.sim.record_timeline(&timeline);

    let mut report = feasibility_report(&result.log);
    if let Some(r) = &result.resilience {
        report = report.with_resilience(ResilienceSummary {
            vc_requested: r.vc_requested,
            vc_established: r.vc_established,
            faults_injected: r.faults_injected,
            retries: r.retries,
            fallbacks: r.fallbacks,
            mean_recovery_latency_s: r.mean_recovery_latency_s,
        });
    }

    let mut stats = String::new();
    stats.push_str(&format!("scenario {}\n", spec.name));
    stats.push_str(&format!("transfers {}\n", report.n_transfers));
    stats.push_str(&format!("degenerate {}\n", report.degenerate_records));
    push_headline(&mut stats, &report);
    if let Some(idc) = &result.idc_stats {
        stats.push_str(&format!("idc_admitted {}\n", idc.admitted));
        stats.push_str(&format!("idc_blocked {}\n", idc.blocked));
    }
    if let Some(r) = &result.resilience {
        stats.push_str(&format!("resilience_requested {}\n", r.vc_requested));
        stats.push_str(&format!("resilience_established {}\n", r.vc_established));
        stats.push_str(&format!("resilience_faults {}\n", r.faults_injected));
        stats.push_str(&format!("resilience_retries {}\n", r.retries));
        stats.push_str(&format!("resilience_fallbacks {}\n", r.fallbacks));
        stats.push_str(&format!("resilience_preemptions {}\n", r.preemptions));
    }
    if let Some(open) = result.open_reservations {
        stats.push_str(&format!("open_reservations {open}\n"));
    }

    // Chain topologies additionally exercise the interdomain
    // controller over per-domain IDC views of the same network: a
    // short deterministic storyline of end-to-end circuits, torn down
    // cleanly (leaks show up in the golden as open_after > 0).
    if !built.chain_domains.is_empty() {
        let mut controller = InterDomainController::new(built.chain_domains);
        let rate = wl.vc_rate_gbps * 1e9;
        let mut established = 0u32;
        let mut blocked = 0u32;
        for k in 0..3u32 {
            let now = SimTime::from_secs_f64(f64::from(k) * 3_600.0);
            let start = SimTime::from_secs_f64(f64::from(k) * 3_600.0 + 120.0);
            let end = SimTime::from_secs_f64(f64::from(k) * 3_600.0 + 1_920.0);
            match controller.create_circuit("src-dtn", "dst-dtn", rate, start, end, now) {
                Ok(circuit) => {
                    established += 1;
                    controller.teardown(&circuit, end);
                }
                Err(_) => blocked += 1,
            }
        }
        stats.push_str(&format!("interdomain_requested {}\n", established + blocked));
        stats.push_str(&format!("interdomain_established {established}\n"));
        stats.push_str(&format!("interdomain_blocked {blocked}\n"));
        stats.push_str(&format!("interdomain_open_after {}\n", controller.open_reservations()));
    }

    // Trace bound: only checked when the spec sets a budget, so
    // benign heavy-setup scenarios don't trip the default.
    let mut trace_violations = Vec::new();
    if let Some(max_share) = spec.expect.max_setup_share {
        let events = sink.take();
        let mut text = String::new();
        for e in &events {
            text.push_str(&e.to_json());
            text.push('\n');
        }
        let model = gvc_telemetry::TraceModel::from_text(&text)
            .map_err(|e| ScenarioError::Run(format!("trace parse: {e}")))?;
        let check = gvc_telemetry::check(&model, &CheckConfig { max_setup_share: max_share });
        for v in check.violations {
            trace_violations.push(format!("trace: {v}"));
        }
    }

    let mut violations =
        eval_expect(spec, &report, result.resilience.as_ref().map(|r| r.preemptions));
    if let Some(open) = result.open_reservations {
        if let Some(want) = spec.expect.open_reservations {
            if open as u64 != want {
                violations.push(format!("open_reservations: expected {want}, got {open}"));
            }
        }
    } else if spec.expect.open_reservations.is_some() {
        violations.push("open_reservations expected but run reported none".to_string());
    }
    violations.extend(trace_violations);

    let report_json = golden::report_json(&report);
    Ok(ScenarioOutcome {
        report,
        report_json,
        stats_text: stats,
        timeline_json: Some(timeline.to_json()),
        violations,
    })
}

/// Evaluates the expectation bounds common to both runner paths.
/// `open_reservations` is handled by the synthetic path (the paper
/// generators have no IDC attached).
fn eval_expect(
    spec: &ScenarioSpec,
    report: &FeasibilityReport,
    preemptions: Option<u64>,
) -> Vec<String> {
    let e = &spec.expect;
    let mut out = Vec::new();
    let n = report.n_transfers as u64;
    if let Some(min) = e.min_transfers {
        if n < min {
            out.push(format!("min_transfers: expected >= {min}, got {n}"));
        }
    }
    if let Some(max) = e.max_transfers {
        if n > max {
            out.push(format!("max_transfers: expected <= {max}, got {n}"));
        }
    }
    if let Some(min_pct) = e.min_suitable_sessions_pct {
        match report.headline() {
            Some((ps, _)) if ps >= min_pct => {}
            Some((ps, _)) => out.push(format!(
                "min_suitable_sessions_pct: expected >= {min_pct}, got {}",
                fmt_num(ps)
            )),
            None => out.push("min_suitable_sessions_pct: no headline cell".to_string()),
        }
    }
    let storyline: [(&str, Option<u64>, Option<u64>); 6] = [
        ("vc_requested", e.vc_requested, report.resilience.map(|r| r.vc_requested)),
        ("vc_established", e.vc_established, report.resilience.map(|r| r.vc_established)),
        ("faults_injected", e.faults_injected, report.resilience.map(|r| r.faults_injected)),
        ("retries", e.retries, report.resilience.map(|r| r.retries)),
        ("fallbacks", e.fallbacks, report.resilience.map(|r| r.fallbacks)),
        ("preemptions", e.preemptions, preemptions),
    ];
    for (name, want, got) in storyline {
        let Some(want) = want else { continue };
        match got {
            Some(got) if got == want => {}
            Some(got) => out.push(format!("{name}: expected {want}, got {got}")),
            None => out.push(format!("{name}: expected {want}, but run has no resilience data")),
        }
    }
    out
}
