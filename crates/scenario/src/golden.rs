//! Canonical golden serialization and line-level diffs.
//!
//! Goldens must be byte-identical across reruns, shard counts, and
//! feature sets, so the report JSON here is hand-rendered with a fixed
//! key order and **excludes** the manifest's wall-clock start and
//! crate version (the only nondeterministic / release-varying fields
//! in a [`FeasibilityReport`]). Pretty multi-line output keeps
//! `line_diff` failures readable.

use gvc_core::gap_sensitivity::GapRow;
use gvc_core::tables::SessionTable;
use gvc_core::{FeasibilityReport, ResilienceSummary, VcSuitability};
use gvc_stats::Summary;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest round-trip decimal for finite values; `null` otherwise
/// (JSON has no inf/nan).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn summary_json(s: &Summary, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"n\": {},\n{indent}  \"min\": {},\n{indent}  \"q1\": {},\n\
         {indent}  \"median\": {},\n{indent}  \"mean\": {},\n{indent}  \"q3\": {},\n\
         {indent}  \"max\": {},\n{indent}  \"sd\": {}\n{indent}}}",
        s.n,
        num(s.min),
        num(s.q1),
        num(s.median),
        num(s.mean),
        num(s.q3),
        num(s.max),
        num(s.sd)
    )
}

fn session_table_json(t: &SessionTable, indent: &str) -> String {
    let deeper = format!("{indent}  ");
    format!(
        "{{\n{indent}  \"session_size_mb\": {},\n{indent}  \"session_duration_s\": {},\n\
         {indent}  \"transfer_throughput_mbps\": {}\n{indent}}}",
        summary_json(&t.session_size_mb, &deeper),
        summary_json(&t.session_duration_s, &deeper),
        summary_json(&t.transfer_throughput_mbps, &deeper)
    )
}

fn gap_row_json(r: &GapRow, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"gap_s\": {},\n{indent}  \"sessions\": {},\n\
         {indent}  \"single_transfer\": {},\n{indent}  \"multi_transfer\": {},\n\
         {indent}  \"pct_with_1_or_2\": {},\n{indent}  \"max_transfers\": {},\n\
         {indent}  \"with_100_plus\": {}\n{indent}}}",
        num(r.gap_s),
        r.sessions,
        r.single_transfer,
        r.multi_transfer,
        num(r.pct_with_1_or_2),
        r.max_transfers,
        r.with_100_plus
    )
}

fn suitability_json(c: &VcSuitability, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"setup_delay_s\": {},\n{indent}  \"gap_s\": {},\n\
         {indent}  \"q3_throughput_mbps\": {},\n{indent}  \"suitable_sessions\": {},\n\
         {indent}  \"total_sessions\": {},\n{indent}  \"suitable_transfers\": {},\n\
         {indent}  \"total_transfers\": {}\n{indent}}}",
        num(c.setup_delay_s),
        num(c.gap_s),
        num(c.q3_throughput_mbps),
        c.suitable_sessions,
        c.total_sessions,
        c.suitable_transfers,
        c.total_transfers
    )
}

fn resilience_json(r: &ResilienceSummary, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"vc_requested\": {},\n{indent}  \"vc_established\": {},\n\
         {indent}  \"faults_injected\": {},\n{indent}  \"retries\": {},\n\
         {indent}  \"fallbacks\": {},\n{indent}  \"mean_recovery_latency_s\": {}\n{indent}}}",
        r.vc_requested,
        r.vc_established,
        r.faults_injected,
        r.retries,
        r.fallbacks,
        num(r.mean_recovery_latency_s)
    )
}

/// Canonical report JSON: fixed key order, 2-space indent, trailing
/// newline; manifest wall-clock and version excluded.
pub fn report_json(r: &FeasibilityReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"manifest\": {\n");
    s.push_str(&format!("    \"tool\": \"{}\",\n", esc(&r.manifest.tool)));
    s.push_str(&format!("    \"seed\": {},\n", r.manifest.seed));
    s.push_str(&format!("    \"config_digest\": {},\n", r.manifest.config_digest));
    s.push_str(&format!("    \"config\": \"{}\"\n", esc(&r.manifest.config)));
    s.push_str("  },\n");
    s.push_str(&format!("  \"n_transfers\": {},\n", r.n_transfers));
    s.push_str(&format!("  \"degenerate_records\": {},\n", r.degenerate_records));
    match &r.session_table_g1 {
        Some(t) => {
            s.push_str(&format!("  \"session_table_g1\": {},\n", session_table_json(t, "  ")));
        }
        None => s.push_str("  \"session_table_g1\": null,\n"),
    }
    s.push_str("  \"gap_rows\": [");
    for (i, row) in r.gap_rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        s.push_str(&gap_row_json(row, "    "));
    }
    s.push_str(if r.gap_rows.is_empty() { "],\n" } else { "\n  ],\n" });
    s.push_str("  \"suitability\": [");
    for (i, cell) in r.suitability.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        s.push_str(&suitability_json(cell, "    "));
    }
    s.push_str(if r.suitability.is_empty() { "],\n" } else { "\n  ],\n" });
    match &r.resilience {
        Some(res) => s.push_str(&format!("  \"resilience\": {}\n", resilience_json(res, "  "))),
        None => s.push_str("  \"resilience\": null\n"),
    }
    s.push_str("}\n");
    s
}

/// `None` when the texts are byte-identical; otherwise a readable
/// line-level diff (first 10 differing lines, `-` expected /
/// `+` actual).
pub fn line_diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0usize;
    let mut differing = 0usize;
    let n = exp.len().max(act.len());
    for i in 0..n {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e == a {
            continue;
        }
        differing += 1;
        if shown < 10 {
            out.push_str(&format!("  line {}:\n", i + 1));
            if let Some(e) = e {
                out.push_str(&format!("    - {e}\n"));
            }
            if let Some(a) = a {
                out.push_str(&format!("    + {a}\n"));
            }
            shown += 1;
        }
    }
    if differing == 0 {
        // Same lines, different bytes (trailing newline / CR).
        out.push_str("  texts differ only in line endings or a trailing newline\n");
        differing = 1;
    }
    let mut head =
        format!("{differing} line(s) differ (expected {} lines, got {})\n", exp.len(), act.len());
    if differing > shown && shown == 10 {
        out.push_str(&format!("  … {} more differing line(s)\n", differing - shown));
    }
    head.push_str(&out);
    Some(head)
}
