//! Corpus discovery and golden-file layout.
//!
//! A corpus is a directory of `*.scn` specs plus a `goldens/` subtree:
//!
//! ```text
//! scenarios/
//!   paper-ncar-nics.scn
//!   goldens/
//!     paper-ncar-nics/
//!       report.json   — canonical FeasibilityReport (byte-exact)
//!       stats.txt     — headline stats (byte-exact)
//!       timeline.json — sim-time flight recorder (byte-exact;
//!                       synthetic scenarios only)
//! ```
//!
//! Discovery sorts by file name, so iteration order is deterministic
//! across platforms; a spec's `name` must match its file stem, so CLI
//! lookups, golden paths, and spec contents can never drift apart.

use std::fs;
use std::path::{Path, PathBuf};

use crate::spec::ScenarioSpec;
use crate::ScenarioError;

/// One discovered spec.
pub struct CorpusEntry {
    /// The scenario name (== file stem).
    pub name: String,
    /// The spec file path.
    pub path: PathBuf,
    /// The parsed spec.
    pub spec: ScenarioSpec,
}

/// A scenario's committed goldens.
pub struct Goldens {
    /// Canonical report JSON.
    pub report_json: String,
    /// Headline stats text.
    pub stats_text: String,
    /// Sim-time flight-recorder JSON; `None` for scenarios recorded
    /// without a timeline (paper profiles never produce one).
    pub timeline_json: Option<String>,
}

fn io_err<T>(path: &Path, e: &std::io::Error) -> Result<T, ScenarioError> {
    Err(ScenarioError::Io { path: path.display().to_string(), message: e.to_string() })
}

/// Discovers and parses every `*.scn` under `dir`, sorted by name.
pub fn discover(dir: &Path) -> Result<Vec<CorpusEntry>, ScenarioError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => return io_err(dir, &e),
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = match entry {
            Ok(e) => e,
            Err(e) => return io_err(dir, &e),
        };
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "scn") {
            paths.push(path);
        }
    }
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        out.push(load(&path)?);
    }
    Ok(out)
}

/// Loads and parses one spec file, checking the name/stem invariant.
pub fn load(path: &Path) -> Result<CorpusEntry, ScenarioError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return io_err(path, &e),
    };
    let spec = ScenarioSpec::parse(&text)?;
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
    if spec.name != stem {
        return Err(ScenarioError::Run(format!(
            "{}: scenario name {:?} must match the file stem {stem:?}",
            path.display(),
            spec.name
        )));
    }
    Ok(CorpusEntry { name: spec.name.clone(), path: path.to_path_buf(), spec })
}

/// The golden directory for a scenario.
pub fn golden_dir(corpus_dir: &Path, name: &str) -> PathBuf {
    corpus_dir.join("goldens").join(name)
}

/// Reads a scenario's committed goldens.
pub fn read_goldens(corpus_dir: &Path, name: &str) -> Result<Goldens, ScenarioError> {
    let dir = golden_dir(corpus_dir, name);
    let report_path = dir.join("report.json");
    let stats_path = dir.join("stats.txt");
    let report_json = match fs::read_to_string(&report_path) {
        Ok(t) => t,
        Err(e) => return io_err(&report_path, &e),
    };
    let stats_text = match fs::read_to_string(&stats_path) {
        Ok(t) => t,
        Err(e) => return io_err(&stats_path, &e),
    };
    // The timeline golden is optional: absent for paper profiles and
    // for corpora recorded before the flight recorder existed.
    let timeline_path = dir.join("timeline.json");
    let timeline_json = match fs::read_to_string(&timeline_path) {
        Ok(t) => Some(t),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return io_err(&timeline_path, &e),
    };
    Ok(Goldens { report_json, stats_text, timeline_json })
}

/// Writes (or overwrites) a scenario's goldens. A `None` timeline
/// removes any stale `timeline.json` so the golden set always mirrors
/// the outcome exactly.
pub fn write_goldens(
    corpus_dir: &Path,
    name: &str,
    report_json: &str,
    stats_text: &str,
    timeline_json: Option<&str>,
) -> Result<PathBuf, ScenarioError> {
    let dir = golden_dir(corpus_dir, name);
    if let Err(e) = fs::create_dir_all(&dir) {
        return io_err(&dir, &e);
    }
    let report_path = dir.join("report.json");
    if let Err(e) = fs::write(&report_path, report_json) {
        return io_err(&report_path, &e);
    }
    let stats_path = dir.join("stats.txt");
    if let Err(e) = fs::write(&stats_path, stats_text) {
        return io_err(&stats_path, &e);
    }
    let timeline_path = dir.join("timeline.json");
    match timeline_json {
        Some(text) => {
            if let Err(e) = fs::write(&timeline_path, text) {
                return io_err(&timeline_path, &e);
            }
        }
        None => {
            if let Err(e) = fs::remove_file(&timeline_path) {
                if e.kind() != std::io::ErrorKind::NotFound {
                    return io_err(&timeline_path, &e);
                }
            }
        }
    }
    Ok(dir)
}
