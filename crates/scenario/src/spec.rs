//! The declarative scenario spec format (`*.scn`).
//!
//! A spec is a line-oriented, dependency-free text format: `[section]`
//! headers followed by `key = value` lines, `#`-prefixed comment
//! lines, and blank lines. Sections:
//!
//! * `[scenario]` — name, description, seed (exactly once);
//! * `[topology]` — `kind = study | graph | chain` plus chain knobs
//!   (exactly once);
//! * `[node]` / `[link]` — repeated, `kind = graph` only;
//! * `[cluster]` — repeated, endpoint clusters for synthetic
//!   workloads;
//! * `[workload]` — a paper profile (`paper-ncar|slac|anl|ornl`) or a
//!   synthetic mix (`steady | bursty | flash-crowd`) with its knobs
//!   (exactly once);
//! * `[faults]` — optional, a `gvc-faults` plan string;
//! * `[expect]` — optional bounds checked on every run.
//!
//! Parsing is total: malformed input produces a typed [`SpecError`]
//! with a 1-based line number, never a panic. [`ScenarioSpec::parse`]
//! normalizes every optional knob to its default, so
//! `parse(to_spec_string(parse(text)))` is the identity on the
//! resulting struct (the proptest suite holds this as a law).

use std::fmt;

use gvc_faults::FaultPlan;

/// A parse or validation failure, pinned to a spec line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec: {}", self.message)
        } else {
            write!(f, "spec line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError { line, message: message.into() })
}

/// A full scenario: everything `gvc scenario run` needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Corpus-unique name; also the golden directory name.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Master seed; every RNG stream derives from it.
    pub seed: u64,
    /// The network under test.
    pub topology: TopologySpec,
    /// Endpoint clusters (synthetic workloads only).
    pub clusters: Vec<ClusterSpec>,
    /// The transfer mix.
    pub workload: WorkloadSpec,
    /// Optional fault plan (the `gvc-faults` grammar).
    pub fault_plan: Option<String>,
    /// Bounds checked on every run.
    pub expect: ExpectSpec,
}

/// The network under test.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// The paper's ESnet study topology (`gvc-topology`).
    Study,
    /// A declarative node/link graph.
    Graph {
        /// Nodes, in spec order.
        nodes: Vec<NodeSpec>,
        /// Duplex links, in spec order.
        links: Vec<LinkSpec>,
    },
    /// A linear multi-domain chain with one DTN host at each end
    /// (`src-dtn`, `dst-dtn`) for interdomain scenarios.
    Chain {
        /// Number of domains (≥ 2).
        domains: u32,
        /// Backbone hubs per domain (≥ 1).
        hubs_per_domain: u32,
        /// Capacity of every chain link.
        link_gbps: f64,
        /// One-way delay of every chain link.
        hop_delay_ms: f64,
    },
}

/// One graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Unique node name.
    pub name: String,
    /// `host` (DTN endpoint) or `router`.
    pub host: bool,
}

/// One duplex graph link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Endpoint node name.
    pub from: String,
    /// Endpoint node name.
    pub to: String,
    /// Capacity in Gb/s.
    pub gbps: f64,
    /// One-way delay in milliseconds.
    pub delay_ms: f64,
}

/// A GridFTP server pool attached to one node.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster name, referenced by `[workload] src/dst`.
    pub name: String,
    /// Where the pool attaches.
    pub attach: AttachSpec,
    /// Server count (≥ 1).
    pub servers: u32,
    /// Per-server NIC rate.
    pub nic_gbps: f64,
    /// Aggregate disk read rate.
    pub disk_read_gbps: f64,
    /// Aggregate disk write rate.
    pub disk_write_gbps: f64,
    /// Per-node cap across servers.
    pub node_cap_gbps: f64,
}

/// Cluster attachment point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttachSpec {
    /// A study-topology site DTN (`kind = study` only).
    Site(String),
    /// A named node (`kind = graph | chain`).
    Node(String),
}

/// The transfer mix.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// One of the paper's four path generators (study topology only;
    /// the generator registers its own clusters).
    Paper {
        /// Which generator.
        profile: PaperProfile,
        /// Fraction of the paper's workload volume.
        scale: f64,
    },
    /// A synthetic mix between two `[cluster]`s.
    Synthetic(SyntheticWorkload),
}

/// The paper's four source–destination paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperProfile {
    /// NCAR → NICS (Table III/VII–IX shape).
    NcarNics,
    /// SLAC → BNL.
    SlacBnl,
    /// NERSC → ANL production sessions.
    NerscAnl,
    /// NERSC → ORNL instrumented path.
    NerscOrnl,
}

impl PaperProfile {
    /// The `profile =` token.
    pub fn token(self) -> &'static str {
        match self {
            PaperProfile::NcarNics => "paper-ncar",
            PaperProfile::SlacBnl => "paper-slac",
            PaperProfile::NerscAnl => "paper-anl",
            PaperProfile::NerscOrnl => "paper-ornl",
        }
    }
}

/// Arrival shape of a synthetic mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProfile {
    /// NorduGrid-style Poisson arrivals at a steady mean rate.
    Steady,
    /// PAMELA-style periodic downlink bursts: every `burst_period_s`,
    /// `burst_sessions` sessions land inside `burst_window_s`.
    Bursty,
    /// One flash crowd: all sessions land inside `burst_window_s` of
    /// `flash_at_s`.
    FlashCrowd,
}

impl ArrivalProfile {
    /// The `profile =` token.
    pub fn token(self) -> &'static str {
        match self {
            ArrivalProfile::Steady => "steady",
            ArrivalProfile::Bursty => "bursty",
            ArrivalProfile::FlashCrowd => "flash-crowd",
        }
    }
}

/// A synthetic workload, fully concrete (defaults applied at parse).
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorkload {
    /// Arrival shape.
    pub profile: ArrivalProfile,
    /// Source cluster name.
    pub src: String,
    /// Destination cluster name.
    pub dst: String,
    /// Session budget (steady/flash-crowd; bursty derives its count
    /// from the burst knobs).
    pub sessions: u32,
    /// Simulated horizon; arrivals past it are dropped.
    pub horizon_s: f64,
    /// Steady: mean inter-arrival time.
    pub mean_interarrival_s: f64,
    /// Bursty: orbital period between downlink passes.
    pub burst_period_s: f64,
    /// Bursty: sessions per pass.
    pub burst_sessions: u32,
    /// Bursty/flash-crowd: arrival window width.
    pub burst_window_s: f64,
    /// Flash-crowd: window start.
    pub flash_at_s: f64,
    /// Transfers per session.
    pub transfers_per_session: u32,
    /// Inter-transfer think time.
    pub gap_s: f64,
    /// Lognormal file-size median.
    pub median_size_mb: f64,
    /// Lognormal file-size mean (must exceed the median).
    pub mean_size_mb: f64,
    /// Fraction of sessions that request a virtual circuit.
    pub vc_fraction: f64,
    /// Requested circuit rate.
    pub vc_rate_gbps: f64,
    /// Concurrent transfers within a session (≥ 1).
    pub concurrency: u32,
}

impl Default for SyntheticWorkload {
    fn default() -> SyntheticWorkload {
        SyntheticWorkload {
            profile: ArrivalProfile::Steady,
            src: String::new(),
            dst: String::new(),
            sessions: 20,
            horizon_s: 86_400.0,
            mean_interarrival_s: 600.0,
            burst_period_s: 5_700.0,
            burst_sessions: 5,
            burst_window_s: 300.0,
            flash_at_s: 3_600.0,
            transfers_per_session: 6,
            gap_s: 5.0,
            median_size_mb: 256.0,
            mean_size_mb: 1_024.0,
            vc_fraction: 0.5,
            vc_rate_gbps: 1.0,
            concurrency: 1,
        }
    }
}

/// Optional bounds checked against every run's outputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExpectSpec {
    /// Lower bound on logged transfers.
    pub min_transfers: Option<u64>,
    /// Upper bound on logged transfers.
    pub max_transfers: Option<u64>,
    /// Lower bound on the headline (60 s setup, 60 s gap) suitable
    /// session percentage.
    pub min_suitable_sessions_pct: Option<f64>,
    /// Upper bound on the trace check's setup share.
    pub max_setup_share: Option<f64>,
    /// Exact resilience storyline (fault scenarios).
    pub vc_requested: Option<u64>,
    /// Exact circuits established.
    pub vc_established: Option<u64>,
    /// Exact faults injected.
    pub faults_injected: Option<u64>,
    /// Exact retry count.
    pub retries: Option<u64>,
    /// Exact IP-fallback count.
    pub fallbacks: Option<u64>,
    /// Exact preemption count.
    pub preemptions: Option<u64>,
    /// Exact leaked-reservation count (0 asserts clean teardown).
    pub open_reservations: Option<u64>,
}

impl ExpectSpec {
    fn is_empty(&self) -> bool {
        *self == ExpectSpec::default()
    }
}

// ---------------------------------------------------------------- parsing

/// One raw `key = value` entry with its line number and a
/// consumed-flag so unknown keys can be reported.
struct Entry {
    line: usize,
    key: String,
    value: String,
    used: bool,
}

/// One raw `[section]` with its entries.
struct Section {
    line: usize,
    name: String,
    entries: Vec<Entry>,
}

impl Section {
    fn take(&mut self, key: &str) -> Option<(usize, String)> {
        for e in &mut self.entries {
            if !e.used && e.key == key {
                e.used = true;
                return Some((e.line, e.value.clone()));
            }
        }
        None
    }

    fn req(&mut self, key: &str) -> Result<(usize, String), SpecError> {
        match self.take(key) {
            Some(kv) => Ok(kv),
            None => err(self.line, format!("[{}] is missing required key `{key}`", self.name)),
        }
    }

    fn finish(&self) -> Result<(), SpecError> {
        for e in &self.entries {
            if !e.used {
                return err(e.line, format!("unknown key `{}` in [{}]", e.key, self.name));
            }
        }
        Ok(())
    }
}

fn parse_u64(line: usize, key: &str, v: &str) -> Result<u64, SpecError> {
    match v.parse::<u64>() {
        Ok(n) => Ok(n),
        Err(_) => err(line, format!("`{key}` wants a non-negative integer, got {v:?}")),
    }
}

fn parse_u32(line: usize, key: &str, v: &str) -> Result<u32, SpecError> {
    match v.parse::<u32>() {
        Ok(n) => Ok(n),
        Err(_) => err(line, format!("`{key}` wants a non-negative integer, got {v:?}")),
    }
}

fn parse_f64(line: usize, key: &str, v: &str) -> Result<f64, SpecError> {
    match v.parse::<f64>() {
        Ok(x) if x.is_finite() => Ok(x),
        _ => err(line, format!("`{key}` wants a finite number, got {v:?}")),
    }
}

fn parse_pos_f64(line: usize, key: &str, v: &str) -> Result<f64, SpecError> {
    let x = parse_f64(line, key, v)?;
    if x > 0.0 {
        Ok(x)
    } else {
        err(line, format!("`{key}` must be positive, got {v}"))
    }
}

/// Names usable as scenario/cluster/node identifiers: lowercase
/// letters and digits separated by single `-`/`_`/`.`, starting with
/// an alphanumeric. Keeps golden directory names and fault-plan link
/// references unambiguous.
fn check_name(line: usize, key: &str, v: &str) -> Result<String, SpecError> {
    let ok = !v.is_empty()
        && v.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-_.".contains(c))
        && v.starts_with(|c: char| c.is_ascii_lowercase() || c.is_ascii_digit())
        && v.ends_with(|c: char| c.is_ascii_lowercase() || c.is_ascii_digit());
    if ok {
        Ok(v.to_owned())
    } else {
        err(
            line,
            format!(
                "`{key}` wants a name of lowercase letters, digits, and interior `-_.`, \
                 got {v:?}"
            ),
        )
    }
}

fn split_sections(text: &str) -> Result<Vec<Section>, SpecError> {
    let mut sections: Vec<Section> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(inner) = trimmed.strip_prefix('[') {
            let Some(name) = inner.strip_suffix(']') else {
                return err(line, format!("malformed section header {trimmed:?}"));
            };
            let name = name.trim();
            if name.is_empty() {
                return err(line, "empty section header");
            }
            sections.push(Section { line, name: name.to_owned(), entries: Vec::new() });
            continue;
        }
        let Some((key, value)) = trimmed.split_once('=') else {
            return err(line, format!("expected `key = value` or `[section]`, got {trimmed:?}"));
        };
        let key = key.trim().to_owned();
        let value = value.trim().to_owned();
        if key.is_empty() {
            return err(line, "empty key");
        }
        let Some(section) = sections.last_mut() else {
            return err(line, format!("`{key}` appears before any [section] header"));
        };
        if section.entries.iter().any(|e| e.key == key) {
            return err(line, format!("duplicate key `{key}` in [{}]", section.name));
        }
        section.entries.push(Entry { line, key, value, used: false });
    }
    Ok(sections)
}

impl ScenarioSpec {
    /// Parses and validates a spec. Every failure is a typed
    /// [`SpecError`]; this function never panics.
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecError> {
        let sections = split_sections(text)?;

        let mut scenario: Option<Section> = None;
        let mut topology: Option<Section> = None;
        let mut workload: Option<Section> = None;
        let mut faults: Option<Section> = None;
        let mut expect: Option<Section> = None;
        let mut nodes: Vec<Section> = Vec::new();
        let mut links: Vec<Section> = Vec::new();
        let mut clusters: Vec<Section> = Vec::new();

        for s in sections {
            let slot = match s.name.as_str() {
                "scenario" => &mut scenario,
                "topology" => &mut topology,
                "workload" => &mut workload,
                "faults" => &mut faults,
                "expect" => &mut expect,
                "node" => {
                    nodes.push(s);
                    continue;
                }
                "link" => {
                    links.push(s);
                    continue;
                }
                "cluster" => {
                    clusters.push(s);
                    continue;
                }
                other => return err(s.line, format!("unknown section [{other}]")),
            };
            if slot.is_some() {
                return err(s.line, format!("duplicate section [{}]", s.name));
            }
            *slot = Some(s);
        }

        let Some(mut scn) = scenario else {
            return err(0, "missing [scenario] section");
        };
        let (nl, name) = scn.req("name")?;
        let name = check_name(nl, "name", &name)?;
        let description = scn.take("description").map(|(_, v)| v).unwrap_or_default();
        let (sl, seed) = scn.req("seed")?;
        let seed = parse_u64(sl, "seed", &seed)?;
        scn.finish()?;

        let Some(mut topo) = topology else {
            return err(0, "missing [topology] section");
        };
        let (kl, kind) = topo.req("kind")?;
        let topology = match kind.as_str() {
            "study" => TopologySpec::Study,
            "graph" => {
                let mut ns = Vec::new();
                for mut s in std::mem::take(&mut nodes) {
                    let (l, n) = s.req("name")?;
                    let node_name = check_name(l, "name", &n)?;
                    let (l, k) = s.req("kind")?;
                    let host = match k.as_str() {
                        "host" => true,
                        "router" => false,
                        other => {
                            return err(l, format!("node kind wants host|router, got {other:?}"))
                        }
                    };
                    s.finish()?;
                    ns.push(NodeSpec { name: node_name, host });
                }
                let mut ls = Vec::new();
                for mut s in std::mem::take(&mut links) {
                    let (l, f) = s.req("from")?;
                    let from = check_name(l, "from", &f)?;
                    let (l, t) = s.req("to")?;
                    let to = check_name(l, "to", &t)?;
                    let (l, g) = s.req("gbps")?;
                    let gbps = parse_pos_f64(l, "gbps", &g)?;
                    let (l, d) = s.req("delay_ms")?;
                    let delay_ms = parse_pos_f64(l, "delay_ms", &d)?;
                    s.finish()?;
                    ls.push(LinkSpec { from, to, gbps, delay_ms });
                }
                TopologySpec::Graph { nodes: ns, links: ls }
            }
            "chain" => {
                let (l, d) = topo.req("domains")?;
                let domains = parse_u32(l, "domains", &d)?;
                if domains < 2 {
                    return err(l, "chain wants at least 2 domains");
                }
                let (l, h) = topo.req("hubs_per_domain")?;
                let hubs_per_domain = parse_u32(l, "hubs_per_domain", &h)?;
                if hubs_per_domain < 1 {
                    return err(l, "chain wants at least 1 hub per domain");
                }
                let (l, g) = topo.req("link_gbps")?;
                let link_gbps = parse_pos_f64(l, "link_gbps", &g)?;
                let (l, dm) = topo.req("hop_delay_ms")?;
                let hop_delay_ms = parse_pos_f64(l, "hop_delay_ms", &dm)?;
                TopologySpec::Chain { domains, hubs_per_domain, link_gbps, hop_delay_ms }
            }
            other => {
                return err(kl, format!("topology kind wants study|graph|chain, got {other:?}"))
            }
        };
        topo.finish()?;
        if !matches!(topology, TopologySpec::Graph { .. }) {
            if let Some(s) = nodes.first().or(links.first()) {
                return err(s.line, format!("[{}] sections want topology kind = graph", s.name));
            }
        }

        let mut cluster_specs = Vec::new();
        for mut s in clusters {
            let line = s.line;
            let (l, n) = s.req("name")?;
            let cname = check_name(l, "name", &n)?;
            let attach = match (s.take("site"), s.take("node")) {
                (Some((l, v)), None) => AttachSpec::Site(check_name(l, "site", &v)?),
                (None, Some((l, v))) => AttachSpec::Node(check_name(l, "node", &v)?),
                (Some(_), Some((l, _))) => {
                    return err(l, "cluster wants `site` or `node`, not both")
                }
                (None, None) => return err(line, "cluster wants a `site` or `node` attachment"),
            };
            let (l, v) = s.req("servers")?;
            let servers = parse_u32(l, "servers", &v)?;
            if servers == 0 {
                return err(l, "`servers` must be at least 1");
            }
            let opt_caps = |s: &mut Section, key: &str, default: f64| match s.take(key) {
                Some((l, v)) => parse_pos_f64(l, key, &v),
                None => Ok(default),
            };
            let nic_gbps = opt_caps(&mut s, "nic_gbps", 10.0)?;
            let disk_read_gbps = opt_caps(&mut s, "disk_read_gbps", 2.8)?;
            let disk_write_gbps = opt_caps(&mut s, "disk_write_gbps", 2.2)?;
            let node_cap_gbps = opt_caps(&mut s, "node_cap_gbps", 2.4)?;
            s.finish()?;
            cluster_specs.push(ClusterSpec {
                name: cname,
                attach,
                servers,
                nic_gbps,
                disk_read_gbps,
                disk_write_gbps,
                node_cap_gbps,
            });
        }

        let Some(mut wl) = workload else {
            return err(0, "missing [workload] section");
        };
        let (pl, profile) = wl.req("profile")?;
        let workload = match profile.as_str() {
            "paper-ncar" | "paper-slac" | "paper-anl" | "paper-ornl" => {
                let profile = match profile.as_str() {
                    "paper-ncar" => PaperProfile::NcarNics,
                    "paper-slac" => PaperProfile::SlacBnl,
                    "paper-anl" => PaperProfile::NerscAnl,
                    _ => PaperProfile::NerscOrnl,
                };
                let scale = match wl.take("scale") {
                    Some((l, v)) => {
                        let x = parse_pos_f64(l, "scale", &v)?;
                        if x > 10.0 {
                            return err(l, "`scale` must be at most 10");
                        }
                        x
                    }
                    None => 1.0,
                };
                WorkloadSpec::Paper { profile, scale }
            }
            "steady" | "bursty" | "flash-crowd" => {
                let arrival = match profile.as_str() {
                    "steady" => ArrivalProfile::Steady,
                    "bursty" => ArrivalProfile::Bursty,
                    _ => ArrivalProfile::FlashCrowd,
                };
                let d = SyntheticWorkload::default();
                let (l, src) = wl.req("src")?;
                let src = check_name(l, "src", &src)?;
                let (l, dst) = wl.req("dst")?;
                let dst = check_name(l, "dst", &dst)?;
                let opt_u32 = |wl: &mut Section, key: &str, default: u32| match wl.take(key) {
                    Some((l, v)) => parse_u32(l, key, &v),
                    None => Ok(default),
                };
                let opt_f64 = |wl: &mut Section, key: &str, default: f64| match wl.take(key) {
                    Some((l, v)) => parse_pos_f64(l, key, &v),
                    None => Ok(default),
                };
                let sessions = opt_u32(&mut wl, "sessions", d.sessions)?;
                let horizon_s = opt_f64(&mut wl, "horizon_s", d.horizon_s)?;
                let mean_interarrival_s =
                    opt_f64(&mut wl, "mean_interarrival_s", d.mean_interarrival_s)?;
                let burst_period_s = opt_f64(&mut wl, "burst_period_s", d.burst_period_s)?;
                let burst_sessions = opt_u32(&mut wl, "burst_sessions", d.burst_sessions)?;
                let burst_window_s = opt_f64(&mut wl, "burst_window_s", d.burst_window_s)?;
                let flash_at_s = opt_f64(&mut wl, "flash_at_s", d.flash_at_s)?;
                let transfers_per_session =
                    opt_u32(&mut wl, "transfers_per_session", d.transfers_per_session)?;
                let gap_s = opt_f64(&mut wl, "gap_s", d.gap_s)?;
                let median_size_mb = opt_f64(&mut wl, "median_size_mb", d.median_size_mb)?;
                let mean_size_mb = opt_f64(&mut wl, "mean_size_mb", d.mean_size_mb)?;
                let vc_fraction = match wl.take("vc_fraction") {
                    Some((l, v)) => {
                        let x = parse_f64(l, "vc_fraction", &v)?;
                        if !(0.0..=1.0).contains(&x) {
                            return err(l, "`vc_fraction` must be within [0, 1]");
                        }
                        x
                    }
                    None => d.vc_fraction,
                };
                let vc_rate_gbps = opt_f64(&mut wl, "vc_rate_gbps", d.vc_rate_gbps)?;
                let concurrency = opt_u32(&mut wl, "concurrency", d.concurrency)?;
                if sessions == 0 {
                    return err(wl.line, "`sessions` must be at least 1");
                }
                if burst_sessions == 0 {
                    return err(wl.line, "`burst_sessions` must be at least 1");
                }
                if transfers_per_session == 0 {
                    return err(wl.line, "`transfers_per_session` must be at least 1");
                }
                if concurrency == 0 {
                    return err(wl.line, "`concurrency` must be at least 1");
                }
                if mean_size_mb <= median_size_mb {
                    return err(wl.line, "`mean_size_mb` must exceed `median_size_mb`");
                }
                WorkloadSpec::Synthetic(SyntheticWorkload {
                    profile: arrival,
                    src,
                    dst,
                    sessions,
                    horizon_s,
                    mean_interarrival_s,
                    burst_period_s,
                    burst_sessions,
                    burst_window_s,
                    flash_at_s,
                    transfers_per_session,
                    gap_s,
                    median_size_mb,
                    mean_size_mb,
                    vc_fraction,
                    vc_rate_gbps,
                    concurrency,
                })
            }
            other => {
                return err(
                    pl,
                    format!(
                        "workload profile wants paper-ncar|paper-slac|paper-anl|paper-ornl|\
                         steady|bursty|flash-crowd, got {other:?}"
                    ),
                )
            }
        };
        wl.finish()?;

        let fault_plan = match faults {
            Some(mut s) => {
                let (l, plan) = s.req("plan")?;
                s.finish()?;
                if let Err(e) = FaultPlan::parse(&plan) {
                    return err(l, format!("bad fault plan: {e}"));
                }
                Some(plan)
            }
            None => None,
        };

        let expect = match expect {
            Some(mut s) => {
                let opt_u64 = |s: &mut Section, key: &str| match s.take(key) {
                    Some((l, v)) => parse_u64(l, key, &v).map(Some),
                    None => Ok(None),
                };
                let min_transfers = opt_u64(&mut s, "min_transfers")?;
                let max_transfers = opt_u64(&mut s, "max_transfers")?;
                let min_suitable_sessions_pct = match s.take("min_suitable_sessions_pct") {
                    Some((l, v)) => {
                        let x = parse_f64(l, "min_suitable_sessions_pct", &v)?;
                        if !(0.0..=100.0).contains(&x) {
                            return err(l, "`min_suitable_sessions_pct` must be within [0, 100]");
                        }
                        Some(x)
                    }
                    None => None,
                };
                let max_setup_share = match s.take("max_setup_share") {
                    Some((l, v)) => {
                        let x = parse_f64(l, "max_setup_share", &v)?;
                        if !(0.0..=1.0).contains(&x) {
                            return err(l, "`max_setup_share` must be within [0, 1]");
                        }
                        Some(x)
                    }
                    None => None,
                };
                let vc_requested = opt_u64(&mut s, "vc_requested")?;
                let vc_established = opt_u64(&mut s, "vc_established")?;
                let faults_injected = opt_u64(&mut s, "faults_injected")?;
                let retries = opt_u64(&mut s, "retries")?;
                let fallbacks = opt_u64(&mut s, "fallbacks")?;
                let preemptions = opt_u64(&mut s, "preemptions")?;
                let open_reservations = opt_u64(&mut s, "open_reservations")?;
                s.finish()?;
                ExpectSpec {
                    min_transfers,
                    max_transfers,
                    min_suitable_sessions_pct,
                    max_setup_share,
                    vc_requested,
                    vc_established,
                    faults_injected,
                    retries,
                    fallbacks,
                    preemptions,
                    open_reservations,
                }
            }
            None => ExpectSpec::default(),
        };

        let spec = ScenarioSpec {
            name,
            description,
            seed,
            topology,
            clusters: cluster_specs,
            workload,
            fault_plan,
            expect,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-section semantic checks (structure already parsed).
    fn validate(&self) -> Result<(), SpecError> {
        match &self.workload {
            WorkloadSpec::Paper { .. } => {
                if !matches!(self.topology, TopologySpec::Study) {
                    return err(0, "paper profiles want topology kind = study");
                }
                if !self.clusters.is_empty() {
                    return err(
                        0,
                        "paper profiles register their own clusters; remove [cluster] sections",
                    );
                }
            }
            WorkloadSpec::Synthetic(s) => {
                for role in [("src", &s.src), ("dst", &s.dst)] {
                    if !self.clusters.iter().any(|c| c.name == *role.1) {
                        return err(
                            0,
                            format!("workload {} = {:?} names no [cluster]", role.0, role.1),
                        );
                    }
                }
                if s.src == s.dst {
                    return err(0, "workload src and dst must be distinct clusters");
                }
            }
        }
        let mut seen = Vec::new();
        for c in &self.clusters {
            if seen.contains(&&c.name) {
                return err(0, format!("duplicate cluster name {:?}", c.name));
            }
            seen.push(&c.name);
            match (&self.topology, &c.attach) {
                (TopologySpec::Study, AttachSpec::Node(n)) => {
                    return err(
                        0,
                        format!(
                            "cluster {:?}: study topology wants `site`, not node {n:?}",
                            c.name
                        ),
                    );
                }
                (_, AttachSpec::Site(site)) if !matches!(self.topology, TopologySpec::Study) => {
                    return err(
                        0,
                        format!(
                            "cluster {:?}: `site` {site:?} wants topology kind = study",
                            c.name
                        ),
                    );
                }
                _ => {}
            }
        }
        if let TopologySpec::Graph { nodes, links } = &self.topology {
            let mut names = Vec::new();
            for n in nodes {
                if names.contains(&&n.name) {
                    return err(0, format!("duplicate node name {:?}", n.name));
                }
                names.push(&n.name);
            }
            if links.is_empty() {
                return err(0, "graph topology wants at least one [link]");
            }
            for l in links {
                for end in [&l.from, &l.to] {
                    if !names.contains(&end) {
                        return err(0, format!("link references unknown node {end:?}"));
                    }
                }
                if l.from == l.to {
                    return err(0, format!("link {:?} -> {:?} is a self-loop", l.from, l.to));
                }
            }
        }
        Ok(())
    }

    /// Serializes back to spec text. `parse(to_spec_string(spec))`
    /// reproduces `spec` exactly (all defaults are written out).
    pub fn to_spec_string(&self) -> String {
        use std::fmt::Write as _;
        // Writing to a String cannot fail; ignore the Infallible results.
        let mut s = String::new();
        let _ = writeln!(s, "[scenario]");
        let _ = writeln!(s, "name = {}", self.name);
        if !self.description.is_empty() {
            let _ = writeln!(s, "description = {}", self.description);
        }
        let _ = writeln!(s, "seed = {}", self.seed);
        let _ = writeln!(s, "\n[topology]");
        match &self.topology {
            TopologySpec::Study => {
                let _ = writeln!(s, "kind = study");
            }
            TopologySpec::Chain { domains, hubs_per_domain, link_gbps, hop_delay_ms } => {
                let _ = writeln!(s, "kind = chain");
                let _ = writeln!(s, "domains = {domains}");
                let _ = writeln!(s, "hubs_per_domain = {hubs_per_domain}");
                let _ = writeln!(s, "link_gbps = {link_gbps}");
                let _ = writeln!(s, "hop_delay_ms = {hop_delay_ms}");
            }
            TopologySpec::Graph { nodes, links } => {
                let _ = writeln!(s, "kind = graph");
                for n in nodes {
                    let _ = writeln!(s, "\n[node]");
                    let _ = writeln!(s, "name = {}", n.name);
                    let _ = writeln!(s, "kind = {}", if n.host { "host" } else { "router" });
                }
                for l in links {
                    let _ = writeln!(s, "\n[link]");
                    let _ = writeln!(s, "from = {}", l.from);
                    let _ = writeln!(s, "to = {}", l.to);
                    let _ = writeln!(s, "gbps = {}", l.gbps);
                    let _ = writeln!(s, "delay_ms = {}", l.delay_ms);
                }
            }
        }
        for c in &self.clusters {
            let _ = writeln!(s, "\n[cluster]");
            let _ = writeln!(s, "name = {}", c.name);
            match &c.attach {
                AttachSpec::Site(site) => {
                    let _ = writeln!(s, "site = {site}");
                }
                AttachSpec::Node(node) => {
                    let _ = writeln!(s, "node = {node}");
                }
            }
            let _ = writeln!(s, "servers = {}", c.servers);
            let _ = writeln!(s, "nic_gbps = {}", c.nic_gbps);
            let _ = writeln!(s, "disk_read_gbps = {}", c.disk_read_gbps);
            let _ = writeln!(s, "disk_write_gbps = {}", c.disk_write_gbps);
            let _ = writeln!(s, "node_cap_gbps = {}", c.node_cap_gbps);
        }
        let _ = writeln!(s, "\n[workload]");
        match &self.workload {
            WorkloadSpec::Paper { profile, scale } => {
                let _ = writeln!(s, "profile = {}", profile.token());
                let _ = writeln!(s, "scale = {scale}");
            }
            WorkloadSpec::Synthetic(wl) => {
                let _ = writeln!(s, "profile = {}", wl.profile.token());
                let _ = writeln!(s, "src = {}", wl.src);
                let _ = writeln!(s, "dst = {}", wl.dst);
                let _ = writeln!(s, "sessions = {}", wl.sessions);
                let _ = writeln!(s, "horizon_s = {}", wl.horizon_s);
                let _ = writeln!(s, "mean_interarrival_s = {}", wl.mean_interarrival_s);
                let _ = writeln!(s, "burst_period_s = {}", wl.burst_period_s);
                let _ = writeln!(s, "burst_sessions = {}", wl.burst_sessions);
                let _ = writeln!(s, "burst_window_s = {}", wl.burst_window_s);
                let _ = writeln!(s, "flash_at_s = {}", wl.flash_at_s);
                let _ = writeln!(s, "transfers_per_session = {}", wl.transfers_per_session);
                let _ = writeln!(s, "gap_s = {}", wl.gap_s);
                let _ = writeln!(s, "median_size_mb = {}", wl.median_size_mb);
                let _ = writeln!(s, "mean_size_mb = {}", wl.mean_size_mb);
                let _ = writeln!(s, "vc_fraction = {}", wl.vc_fraction);
                let _ = writeln!(s, "vc_rate_gbps = {}", wl.vc_rate_gbps);
                let _ = writeln!(s, "concurrency = {}", wl.concurrency);
            }
        }
        if let Some(plan) = &self.fault_plan {
            let _ = writeln!(s, "\n[faults]");
            let _ = writeln!(s, "plan = {plan}");
        }
        if !self.expect.is_empty() {
            let _ = writeln!(s, "\n[expect]");
            let e = &self.expect;
            let counts = [("min_transfers", e.min_transfers), ("max_transfers", e.max_transfers)];
            for (key, v) in counts {
                if let Some(v) = v {
                    let _ = writeln!(s, "{key} = {v}");
                }
            }
            if let Some(v) = e.min_suitable_sessions_pct {
                let _ = writeln!(s, "min_suitable_sessions_pct = {v}");
            }
            if let Some(v) = e.max_setup_share {
                let _ = writeln!(s, "max_setup_share = {v}");
            }
            let storyline = [
                ("vc_requested", e.vc_requested),
                ("vc_established", e.vc_established),
                ("faults_injected", e.faults_injected),
                ("retries", e.retries),
                ("fallbacks", e.fallbacks),
                ("preemptions", e.preemptions),
                ("open_reservations", e.open_reservations),
            ];
            for (key, v) in storyline {
                if let Some(v) = v {
                    let _ = writeln!(s, "{key} = {v}");
                }
            }
        }
        s
    }
}
