//! Builds runnable topologies out of [`TopologySpec`]s.
//!
//! Every build returns one flat [`Graph`] the driver and net sim run
//! over, plus the resolved cluster attachment nodes. Chain topologies
//! additionally yield per-domain [`Domain`]s so the runner can probe
//! the interdomain controller over the same network.

use std::collections::{BTreeMap, HashMap};

use gvc_oscars::{Domain, Idc, SetupDelayModel};
use gvc_topology::{study_topology, Graph, NodeId, NodeKind, Site};

use crate::spec::{AttachSpec, ScenarioSpec, TopologySpec};
use crate::ScenarioError;

/// A spec's topology, resolved and ready to simulate.
pub struct BuiltTopology {
    /// The flat graph the driver runs over.
    pub graph: Graph,
    /// Cluster name → attachment node.
    pub attach: BTreeMap<String, NodeId>,
    /// Chain topologies: per-domain IDC views for the interdomain
    /// probe (`src-dtn` lives in the first domain, `dst-dtn` in the
    /// last).
    pub chain_domains: Vec<Domain>,
}

fn run_err<T>(message: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError::Run(message.into()))
}

fn site_from_name(name: &str) -> Option<Site> {
    Site::ALL.into_iter().find(|s| s.name() == name)
}

/// Hub node name within the flat chain graph.
fn hub_name(domain: u32, hub: u32) -> String {
    format!("d{domain}-h{hub}")
}

/// Resolves a spec's topology and cluster attachments.
pub fn build(spec: &ScenarioSpec) -> Result<BuiltTopology, ScenarioError> {
    let (graph, chain_domains) = match &spec.topology {
        TopologySpec::Study => (study_topology().graph, Vec::new()),
        TopologySpec::Graph { nodes, links } => {
            let mut g = Graph::new();
            for n in nodes {
                let kind = if n.host { NodeKind::Host } else { NodeKind::Router };
                g.add_node(&n.name, kind);
            }
            for l in links {
                let (Some(a), Some(b)) = (g.node_by_name(&l.from), g.node_by_name(&l.to)) else {
                    return run_err(format!("link {} -> {} references unknown node", l.from, l.to));
                };
                g.add_duplex_link(a, b, l.gbps * 1e9, l.delay_ms / 1e3);
            }
            (g, Vec::new())
        }
        TopologySpec::Chain { domains, hubs_per_domain, link_gbps, hop_delay_ms } => {
            build_chain(*domains, *hubs_per_domain, *link_gbps, *hop_delay_ms)
        }
    };

    let mut attach = BTreeMap::new();
    for c in &spec.clusters {
        let node = match &c.attach {
            AttachSpec::Site(site) => match site_from_name(site) {
                Some(s) => study_topology().dtn(s),
                None => {
                    let names: Vec<&str> = Site::ALL.iter().map(|s| s.name()).collect();
                    return run_err(format!(
                        "cluster {:?}: unknown site {site:?} (want one of {})",
                        c.name,
                        names.join("|")
                    ));
                }
            },
            AttachSpec::Node(name) => match graph.node_by_name(name) {
                Some(n) => n,
                None => {
                    return run_err(format!(
                        "cluster {:?}: node {name:?} not present in topology",
                        c.name
                    ))
                }
            },
        };
        if attach.values().any(|&n| n == node) {
            return run_err(format!("cluster {:?} shares an attachment node", c.name));
        }
        attach.insert(c.name.clone(), node);
    }
    Ok(BuiltTopology { graph, attach, chain_domains })
}

/// The flat chain graph plus per-domain IDC views.
///
/// Layout: `src-dtn — d0-h0 — … — d0-hK — d1-h0 — … — dN-hK — dst-dtn`.
/// Gateway label `gw<i>` joins domain `i` to `i+1`; in both domains it
/// maps to the hub on their shared link.
fn build_chain(
    domains: u32,
    hubs_per_domain: u32,
    link_gbps: f64,
    hop_delay_ms: f64,
) -> (Graph, Vec<Domain>) {
    let bps = link_gbps * 1e9;
    let delay_s = hop_delay_ms / 1e3;

    // Flat graph for the driver/net sim.
    let mut g = Graph::new();
    let src = g.add_node("src-dtn", NodeKind::Host);
    let mut prev: Option<NodeId> = None;
    let mut last = src;
    for d in 0..domains {
        for h in 0..hubs_per_domain {
            let n = g.add_node(&hub_name(d, h), NodeKind::Router);
            if let Some(p) = prev {
                g.add_duplex_link(p, n, bps, delay_s);
            }
            prev = Some(n);
            last = n;
        }
    }
    g.add_duplex_link(src, g.node_by_name(&hub_name(0, 0)).unwrap_or(last), bps, delay_s);
    let dst = g.add_node("dst-dtn", NodeKind::Host);
    g.add_duplex_link(last, dst, bps, delay_s);

    // Per-domain graphs: each domain owns its hubs; the first also
    // owns `src-dtn`, the last `dst-dtn`. A neighbour link's far hub
    // is mirrored into both domains under the shared gateway label.
    let mut parts = Vec::new();
    for d in 0..domains {
        let mut dg = Graph::new();
        let mut gateways = HashMap::new();
        let mut endpoints = HashMap::new();
        let mut dprev: Option<NodeId> = None;
        let mut first = None;
        let mut dlast = None;
        for h in 0..hubs_per_domain {
            let n = dg.add_node(&hub_name(d, h), NodeKind::Router);
            if let Some(p) = dprev {
                dg.add_duplex_link(p, n, bps, delay_s);
            }
            dprev = Some(n);
            if first.is_none() {
                first = Some(n);
            }
            dlast = Some(n);
        }
        let (Some(first), Some(dlast)) = (first, dlast) else {
            continue;
        };
        if d == 0 {
            let s = dg.add_node("src-dtn", NodeKind::Host);
            dg.add_duplex_link(s, first, bps, delay_s);
            endpoints.insert("src-dtn".to_string(), s);
        } else {
            gateways.insert(format!("gw{}", d - 1), first);
        }
        if d + 1 == domains {
            let t = dg.add_node("dst-dtn", NodeKind::Host);
            dg.add_duplex_link(dlast, t, bps, delay_s);
            endpoints.insert("dst-dtn".to_string(), t);
        } else {
            gateways.insert(format!("gw{d}"), dlast);
        }
        parts.push(Domain {
            name: format!("domain{d}"),
            idc: Idc::new(dg, SetupDelayModel::one_minute()),
            gateways,
            endpoints,
        });
    }
    (g, parts)
}
