//! Deterministic synthetic session schedules.
//!
//! Three arrival shapes, all driven by `component_rng` streams off the
//! spec's master seed so a scenario replays byte-identically:
//!
//! * **steady** — Poisson arrivals at a fixed mean rate, the
//!   NorduGrid production profile (PAPERS.md): independent users
//!   submitting jobs around the clock;
//! * **bursty** — periodic downlink passes, the PAMELA satellite
//!   profile: every orbital period, a batch of sessions lands inside a
//!   short ground-contact window;
//! * **flash-crowd** — one thundering herd inside a single window.

use gvc_gridftp::{SessionSpec, TransferJob, VcRequestSpec};
use gvc_stats::dist::{Distribution, Exponential, LogNormal, UniformRange};
use gvc_stats::rng::component_rng;
use rand::Rng;

use crate::spec::{ArrivalProfile, SyntheticWorkload};
use crate::ScenarioError;

/// One session and when it arrives.
pub struct ScheduledSession {
    /// Arrival time, seconds from epoch.
    pub at_s: f64,
    /// The session body.
    pub spec: SessionSpec,
}

/// Builds the full schedule for a synthetic workload.
pub fn synth_sessions(
    seed: u64,
    wl: &SyntheticWorkload,
) -> Result<Vec<ScheduledSession>, ScenarioError> {
    let mut arrivals_rng = component_rng(seed, "scenario.arrivals");
    let mut arrivals: Vec<f64> = Vec::new();
    match wl.profile {
        ArrivalProfile::Steady => {
            let gap = Exponential::with_mean(wl.mean_interarrival_s);
            let mut t = 0.0;
            while arrivals.len() < wl.sessions as usize {
                t += gap.sample(&mut arrivals_rng);
                if t > wl.horizon_s {
                    break;
                }
                arrivals.push(t);
            }
        }
        ArrivalProfile::Bursty => {
            let window = UniformRange::new(0.0, wl.burst_window_s);
            let mut pass = 0.0;
            while pass < wl.horizon_s {
                for _ in 0..wl.burst_sessions {
                    let at = pass + window.sample(&mut arrivals_rng);
                    if at <= wl.horizon_s {
                        arrivals.push(at);
                    }
                }
                pass += wl.burst_period_s;
            }
        }
        ArrivalProfile::FlashCrowd => {
            let window = UniformRange::new(0.0, wl.burst_window_s);
            for _ in 0..wl.sessions {
                arrivals.push(wl.flash_at_s + window.sample(&mut arrivals_rng));
            }
        }
    }
    arrivals.sort_by(f64::total_cmp);

    let Some(sizes) = LogNormal::from_median_mean(wl.median_size_mb * 1e6, wl.mean_size_mb * 1e6)
    else {
        // Unreachable after spec validation (mean > median), but the
        // runner never panics on a bad calibration either way.
        return Err(ScenarioError::Run(
            "size distribution wants mean_size_mb > median_size_mb".into(),
        ));
    };

    let mut body_rng = component_rng(seed, "scenario.sessions");
    let mut out = Vec::with_capacity(arrivals.len());
    for at_s in arrivals {
        let jobs: Vec<TransferJob> = (0..wl.transfers_per_session)
            .map(|_| {
                let size = sizes.sample(&mut body_rng).clamp(1e6, 1e12) as u64;
                TransferJob { size_bytes: size, ..TransferJob::default() }
            })
            .collect();
        let total_bytes: u64 = jobs.iter().map(|j| j.size_bytes).sum();
        let mut spec = SessionSpec::sequential(jobs, wl.gap_s).with_concurrency(wl.concurrency);
        if body_rng.gen::<f64>() < wl.vc_fraction {
            let rate_bps = wl.vc_rate_gbps * 1e9;
            // Generous deterministic reservation window: 3x the
            // at-rate transfer time plus an hour of think/setup slack.
            let max_duration_s = 3.0 * (total_bytes as f64 * 8.0) / rate_bps + 3_600.0;
            spec = spec.with_vc(VcRequestSpec { rate_bps, max_duration_s, wait_for_circuit: true });
        }
        out.push(ScheduledSession { at_s, spec });
    }
    Ok(out)
}
