//! gvc-scenario: declarative scenarios with golden-output gating.
//!
//! ROADMAP item 5: the repo simulates the paper's four ESnet paths; a
//! production system must eat any topology and workload thrown at it
//! and prove, on every PR, that it still produces the same answers.
//! This crate turns that claim into a gate:
//!
//! * [`spec`] — the `*.scn` text format: topology (study | declarative
//!   graph | multi-domain chain), workload (the paper's four path
//!   generators, NorduGrid-style steady Poisson arrivals,
//!   PAMELA-style periodic downlink bursts, flash crowds), an optional
//!   `gvc-faults` plan, a seed, and expectation bounds;
//! * [`topo`] — resolves a spec's topology into the flat [`gvc_topology`]
//!   graph the driver runs over (chains also yield per-domain IDC
//!   views for the interdomain probe);
//! * [`workload`] — deterministic synthetic session schedules from the
//!   spec's seed;
//! * [`runner`] — drives the full driver/faults/telemetry stack and
//!   evaluates expectation bounds;
//! * [`golden`] — canonical report JSON (wall-clock-free, so reruns
//!   are byte-identical per seed at every shard count) and line-level
//!   diffs;
//! * [`corpus`] — discovery and golden-file layout for a `scenarios/`
//!   tree.
//!
//! The CLI surfaces all of it as `gvc scenario run|record|diff|list`;
//! CI runs the committed corpus as a blocking matrix job.

use std::fmt;

pub mod corpus;
pub mod golden;
pub mod runner;
pub mod spec;
pub mod topo;
pub mod workload;

pub use corpus::{discover, CorpusEntry, Goldens};
pub use golden::{line_diff, report_json};
pub use runner::{run_scenario, ScenarioOutcome};
pub use spec::{ScenarioSpec, SpecError};

/// Any scenario failure: parse, I/O, or run-time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The spec text failed to parse or validate.
    Spec(SpecError),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error.
        message: String,
    },
    /// The spec parsed but could not be executed.
    Run(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Spec(e) => write!(f, "{e}"),
            ScenarioError::Io { path, message } => write!(f, "{path}: {message}"),
            ScenarioError::Run(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<SpecError> for ScenarioError {
    fn from(e: SpecError) -> ScenarioError {
        ScenarioError::Spec(e)
    }
}
