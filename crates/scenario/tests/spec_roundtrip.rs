//! Property tests for the scenario spec format: `parse` and
//! `to_spec_string` are mutual inverses over valid specs, and the
//! parser is total — malformed input yields a typed [`SpecError`]
//! with a useful line number, never a panic.

use gvc_scenario::spec::{
    ArrivalProfile, AttachSpec, ClusterSpec, ExpectSpec, LinkSpec, NodeSpec, PaperProfile,
    ScenarioSpec, SyntheticWorkload, TopologySpec, WorkloadSpec,
};
use gvc_scenario::SpecError;
use proptest::prelude::*;

/// Builds a cluster at the given attach point with drawn capacities.
fn cluster(name: &str, attach: AttachSpec, servers: u32, nic: f64) -> ClusterSpec {
    ClusterSpec {
        name: name.to_string(),
        attach,
        servers,
        nic_gbps: nic,
        disk_read_gbps: 2.8,
        disk_write_gbps: 2.2,
        node_cap_gbps: 2.4,
    }
}

/// Assembles a valid spec from primitive draws. `shape` picks one of
/// four topology/workload combinations; the numeric draws feed the
/// knobs so float round-tripping is exercised on arbitrary doubles.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    shape: u32,
    seed: u64,
    scale_raw: f64,
    sessions: u32,
    horizon_s: f64,
    median_mb: f64,
    mean_extra_mb: f64,
    vc_fraction: f64,
    concurrency: u32,
    with_faults: bool,
    expect_mask: u32,
    expect_val: u64,
) -> ScenarioSpec {
    let paper = shape == 0;
    let (topology, clusters, workload) = match shape {
        0 => {
            let profiles = [
                PaperProfile::NcarNics,
                PaperProfile::SlacBnl,
                PaperProfile::NerscAnl,
                PaperProfile::NerscOrnl,
            ];
            let profile = profiles[(seed % 4) as usize];
            (TopologySpec::Study, Vec::new(), WorkloadSpec::Paper { profile, scale: scale_raw })
        }
        1 => (
            TopologySpec::Study,
            vec![
                cluster("west", AttachSpec::Site("nersc".to_string()), 2, 10.0),
                cluster("east", AttachSpec::Site("ornl".to_string()), 3, 10.0),
            ],
            WorkloadSpec::Synthetic(SyntheticWorkload {
                profile: ArrivalProfile::Steady,
                src: "west".to_string(),
                dst: "east".to_string(),
                sessions,
                horizon_s,
                median_size_mb: median_mb,
                mean_size_mb: median_mb + mean_extra_mb,
                vc_fraction,
                concurrency,
                ..SyntheticWorkload::default()
            }),
        ),
        2 => (
            TopologySpec::Graph {
                nodes: vec![
                    NodeSpec { name: "a-dtn".to_string(), host: true },
                    NodeSpec { name: "core".to_string(), host: false },
                    NodeSpec { name: "b-dtn".to_string(), host: true },
                ],
                links: vec![
                    LinkSpec {
                        from: "a-dtn".to_string(),
                        to: "core".to_string(),
                        gbps: scale_raw + 0.5,
                        delay_ms: vc_fraction + 0.1,
                    },
                    LinkSpec {
                        from: "core".to_string(),
                        to: "b-dtn".to_string(),
                        gbps: 10.0,
                        delay_ms: 2.0,
                    },
                ],
            },
            vec![
                cluster("a", AttachSpec::Node("a-dtn".to_string()), 1, 10.0),
                cluster("b", AttachSpec::Node("b-dtn".to_string()), 2, 10.0),
            ],
            WorkloadSpec::Synthetic(SyntheticWorkload {
                profile: ArrivalProfile::Bursty,
                src: "a".to_string(),
                dst: "b".to_string(),
                sessions,
                horizon_s,
                median_size_mb: median_mb,
                mean_size_mb: median_mb + mean_extra_mb,
                vc_fraction,
                concurrency,
                ..SyntheticWorkload::default()
            }),
        ),
        _ => (
            TopologySpec::Chain {
                domains: 2 + sessions % 3,
                hubs_per_domain: 1 + concurrency % 3,
                link_gbps: scale_raw + 1.0,
                hop_delay_ms: vc_fraction * 10.0 + 0.5,
            },
            vec![
                cluster("src", AttachSpec::Node("src-dtn".to_string()), 2, 10.0),
                cluster("dst", AttachSpec::Node("dst-dtn".to_string()), 2, 10.0),
            ],
            WorkloadSpec::Synthetic(SyntheticWorkload {
                profile: ArrivalProfile::FlashCrowd,
                src: "src".to_string(),
                dst: "dst".to_string(),
                sessions,
                horizon_s,
                median_size_mb: median_mb,
                mean_size_mb: median_mb + mean_extra_mb,
                vc_fraction,
                concurrency,
                ..SyntheticWorkload::default()
            }),
        ),
    };
    let expect = ExpectSpec {
        min_transfers: (expect_mask & 1 != 0).then_some(expect_val),
        max_transfers: (expect_mask & 2 != 0).then_some(expect_val + 10),
        min_suitable_sessions_pct: (expect_mask & 4 != 0).then_some(vc_fraction * 100.0),
        max_setup_share: (expect_mask & 8 != 0).then_some(vc_fraction),
        vc_requested: (expect_mask & 16 != 0).then_some(expect_val % 50),
        vc_established: (expect_mask & 32 != 0).then_some(expect_val % 40),
        faults_injected: (expect_mask & 64 != 0).then_some(expect_val % 30),
        retries: (expect_mask & 128 != 0).then_some(expect_val % 20),
        fallbacks: (expect_mask & 256 != 0).then_some(expect_val % 10),
        preemptions: (expect_mask & 512 != 0).then_some(expect_val % 5),
        open_reservations: (expect_mask & 1024 != 0).then_some(0),
    };
    ScenarioSpec {
        name: format!("gen-{}", seed % 10_000),
        description: format!("generated shape-{shape} spec"),
        seed,
        topology,
        clusters,
        workload,
        fault_plan: (with_faults && !paper)
            .then(|| format!("seed={},fail-first=1,provision-p=0.25", seed % 97)),
        expect,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `parse(to_spec_string(s)) == s` for any valid spec: the
    /// serializer writes every concrete field and the parser
    /// reconstructs them exactly (floats via shortest round-trip).
    #[test]
    fn serialize_parse_identity(
        shape in 0u32..4,
        seed in 0u64..1_000_000_000,
        scale_raw in 0.01f64..9.9,
        sessions in 1u32..60,
        horizon_s in 600.0f64..500_000.0,
        median_mb in 1.0f64..2_000.0,
        mean_extra_mb in 0.5f64..4_000.0,
        vc_fraction in 0.0f64..1.0,
        concurrency in 1u32..9,
        with_faults in proptest::bool::ANY,
        expect_mask in 0u32..2048,
        expect_val in 0u64..100_000,
    ) {
        let spec = build_spec(
            shape, seed, scale_raw, sessions, horizon_s, median_mb,
            mean_extra_mb, vc_fraction, concurrency, with_faults,
            expect_mask, expect_val,
        );
        let text = spec.to_spec_string();
        let reparsed = ScenarioSpec::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- spec ---\n{text}")))?;
        prop_assert_eq!(&reparsed, &spec);
        // A second round through the serializer is byte-stable.
        prop_assert_eq!(reparsed.to_spec_string(), text);
    }

    /// The parser is total over adversarial line soup: any mix of
    /// plausible and broken fragments returns `Ok` or a typed error,
    /// never a panic.
    #[test]
    fn parser_never_panics_on_line_soup(
        picks in proptest::collection::vec(0u64..FRAGMENTS_LEN, 0..40),
    ) {
        let text: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i as usize])
            .collect::<Vec<_>>()
            .join("\n");
        match ScenarioSpec::parse(&text) {
            Ok(spec) => prop_assert!(!spec.name.is_empty()),
            Err(e) => prop_assert!(!e.message.is_empty()),
        }
    }
}

const FRAGMENTS_LEN: u64 = FRAGMENTS.len() as u64;

/// Line fragments mixing valid grammar, near-misses, and junk.
static FRAGMENTS: &[&str] = &[
    "[scenario]",
    "[topology]",
    "[workload]",
    "[cluster]",
    "[node]",
    "[link]",
    "[faults]",
    "[expect]",
    "[bogus section]",
    "name = x",
    "name = UPPER CASE",
    "description = a generated line",
    "seed = 42",
    "seed = -1",
    "seed = nine",
    "kind = study",
    "kind = graph",
    "kind = chain",
    "kind = torus",
    "profile = steady",
    "profile = paper-ncar",
    "scale = 0.5",
    "scale = 99",
    "src = a",
    "dst = a",
    "sessions = 0",
    "sessions = 10",
    "site = nersc",
    "site = atlantis",
    "node = core",
    "servers = 3",
    "gbps = 10",
    "gbps = -2",
    "delay_ms = 1.5",
    "from = a",
    "to = a",
    "plan = seed=1,provision-p=0.5",
    "plan = gibberish",
    "min_transfers = 5",
    "max_setup_share = 2.0",
    "vc_fraction = 0.25",
    "mean_size_mb = 1",
    "median_size_mb = 100",
    "concurrency = 0",
    "# a comment",
    "",
    "no equals sign here",
    "= dangling",
    "key = = double",
    "[unclosed",
    "]",
];

#[test]
fn malformed_specs_yield_typed_errors_with_line_numbers() {
    // (input, expected error line, substring of the message); line 0
    // marks whole-file diagnostics.
    let cases: &[(&str, usize, &str)] = &[
        ("", 0, "missing [scenario] section"),
        ("[scenario]\nname = a\n", 1, "missing required key `seed`"),
        ("just some prose\n", 1, "expected `key = value` or `[section]`"),
        ("[scenario]\nname = Bad Name\n", 2, "lowercase"),
        ("[scenario]\nname = a\nname = b\n", 3, "duplicate key `name`"),
        ("[scenario]\nname = a\nseed = twelve\n", 3, "non-negative integer"),
        (
            "[scenario]\nname = a\nseed = 1\ndescription = d\nflavor = mint\n",
            5,
            "unknown key `flavor`",
        ),
        ("[mystery]\n", 1, "unknown section [mystery]"),
        ("[scenario]\n[scenario]\n", 2, "duplicate section [scenario]"),
        ("[scenario]\nname = a\nseed = 1\ndescription = d\n", 0, "missing [topology] section"),
    ];
    for (input, want_line, want_msg) in cases {
        let err = ScenarioSpec::parse(input).expect_err(input);
        assert_eq!(err.line, *want_line, "line for input {input:?}: {err}");
        assert!(
            err.to_string().contains(want_msg),
            "error {err:?} for input {input:?} should mention {want_msg:?}"
        );
    }
}

#[test]
fn semantic_validation_rejects_inconsistent_specs() {
    let base = "[scenario]\nname = t\ndescription = d\nseed = 1\n";
    // Two hosts bridged by a router, with clusters on both ends —
    // valid except for the one mutation under test.
    let graph =
        "[topology]\nkind = graph\n[node]\nname = a\nkind = host\n[node]\nname = b\nkind = host\n";
    let graph_clusters = "[cluster]\nname = ca\nnode = a\nservers = 1\n[cluster]\nname = cb\nnode = b\nservers = 1\n";
    let graph_wl = "[workload]\nprofile = steady\nsrc = ca\ndst = cb\n";
    let reject: &[(String, &str)] = &[
        // Paper workloads pair with the study topology and own their clusters.
        (
            format!("{graph}[link]\nfrom = a\nto = b\ngbps = 10\ndelay_ms = 1\n[workload]\nprofile = paper-ncar\n"),
            "paper profiles want topology kind = study",
        ),
        (
            "[topology]\nkind = study\n[cluster]\nname = c\nsite = nersc\nservers = 2\n[workload]\nprofile = paper-slac\n".to_string(),
            "paper profiles register their own clusters",
        ),
        // Synthetic endpoints must be distinct, defined clusters.
        (
            "[topology]\nkind = study\n[cluster]\nname = c\nsite = nersc\nservers = 2\n[workload]\nprofile = steady\nsrc = c\ndst = c\n".to_string(),
            "src and dst must be distinct",
        ),
        (
            "[topology]\nkind = study\n[cluster]\nname = c\nsite = nersc\nservers = 2\n[workload]\nprofile = steady\nsrc = c\ndst = ghost\n".to_string(),
            "\"ghost\" names no [cluster]",
        ),
        // Study clusters attach by site; graph clusters by node.
        (
            "[topology]\nkind = study\n[cluster]\nname = c\nnode = nersc-dtn\nservers = 2\n[cluster]\nname = e\nsite = ornl\nservers = 2\n[workload]\nprofile = steady\nsrc = c\ndst = e\n".to_string(),
            "study topology wants `site`",
        ),
        // A graph needs links, known endpoints, and no self-loops.
        (
            format!("{graph}{graph_clusters}{graph_wl}"),
            "link",
        ),
        (
            format!("{graph}[link]\nfrom = a\nto = a\ngbps = 10\ndelay_ms = 1\n{graph_clusters}{graph_wl}"),
            "self-loop",
        ),
        (
            format!("{graph}[link]\nfrom = a\nto = ghost\ngbps = 10\ndelay_ms = 1\n{graph_clusters}{graph_wl}"),
            "unknown node",
        ),
        // Bounded numerics.
        (
            "[topology]\nkind = study\n[workload]\nprofile = paper-ncar\nscale = 0\n".to_string(),
            "`scale` must be positive",
        ),
        (
            "[topology]\nkind = study\n[workload]\nprofile = paper-ncar\nscale = 11\n".to_string(),
            "`scale` must be at most 10",
        ),
        (
            "[topology]\nkind = study\n[workload]\nprofile = paper-anl\n[expect]\nmax_setup_share = 1.5\n".to_string(),
            "must be within [0, 1]",
        ),
        // Fault plans are validated at parse time.
        (
            "[topology]\nkind = study\n[workload]\nprofile = paper-anl\n[faults]\nplan = not-a-plan\n".to_string(),
            "bad fault plan",
        ),
    ];
    for (tail, want) in reject {
        let input = format!("{base}{tail}");
        let err = ScenarioSpec::parse(&input).expect_err(&input);
        assert!(
            err.to_string().contains(want),
            "error {err:?} for spec tail {tail:?} should mention {want:?}"
        );
    }
}

#[test]
fn spec_error_display_prefixes_the_line() {
    let e = SpecError { line: 7, message: "boom".to_string() };
    assert_eq!(e.to_string(), "spec line 7: boom");
}
