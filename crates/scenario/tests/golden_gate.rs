//! The golden gate itself: every committed scenario golden matches a
//! fresh run byte-for-byte at several shard counts, and the diff
//! machinery that reports drift does so with line-level precision.

use std::fs;
use std::path::{Path, PathBuf};

use gvc_gridftp::driver::Shards;
use gvc_scenario::spec::WorkloadSpec;
use gvc_scenario::{discover, line_diff, run_scenario};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

// --- diff semantics -------------------------------------------------

#[test]
fn identical_texts_produce_no_diff() {
    assert_eq!(line_diff("a\nb\n", "a\nb\n"), None);
    assert_eq!(line_diff("", ""), None);
}

#[test]
fn perturbed_report_fails_with_line_level_diff() {
    let expected = "{\n  \"n_transfers\": 29,\n  \"degenerate_records\": 0\n}\n";
    let actual = "{\n  \"n_transfers\": 30,\n  \"degenerate_records\": 0\n}\n";
    let diff = line_diff(expected, actual).expect("perturbation must be reported");
    assert!(diff.starts_with("1 line(s) differ (expected 4 lines, got 4)"), "{diff}");
    assert!(diff.contains("line 2:"), "{diff}");
    assert!(diff.contains("    - "), "{diff}");
    assert!(diff.contains("    + "), "{diff}");
    assert!(diff.contains("29"), "{diff}");
    assert!(diff.contains("30"), "{diff}");
}

#[test]
fn added_and_removed_lines_are_reported_with_counts() {
    let diff = line_diff("a\nb\n", "a\n").expect("dropped line must be reported");
    assert!(diff.starts_with("1 line(s) differ (expected 2 lines, got 1)"), "{diff}");
    assert!(diff.contains("    - b"), "{diff}");
    assert!(!diff.contains("    + b"), "{diff}");
}

#[test]
fn trailing_newline_drift_is_still_a_failure() {
    let diff = line_diff("a\nb\n", "a\nb").expect("byte drift must be reported");
    assert!(diff.contains("line endings or a trailing newline"), "{diff}");
}

#[test]
fn long_diffs_are_elided_after_ten_lines() {
    let expected: String = (0..30).map(|i| format!("row {i}\n")).collect();
    let actual: String = (0..30).map(|i| format!("row {}\n", i + 100)).collect();
    let diff = line_diff(&expected, &actual).expect("every line differs");
    assert!(diff.starts_with("30 line(s) differ"), "{diff}");
    assert!(diff.contains("… 20 more differing line(s)"), "{diff}");
}

// --- the corpus gate ------------------------------------------------

/// Every committed golden is reproduced byte-exactly by a fresh run,
/// and the report is invariant across shard counts — including the
/// sequential `Shards::Fixed(1)` path that `--no-default-features`
/// builds always take.
#[test]
fn corpus_goldens_match_at_every_shard_count() {
    let dir = corpus_dir();
    let entries = discover(&dir).expect("scenario corpus must be discoverable");
    assert!(entries.len() >= 8, "corpus shrank to {} specs", entries.len());
    for entry in entries {
        let golden_dir = dir.join("goldens").join(&entry.name);
        let want_report = fs::read_to_string(golden_dir.join("report.json"))
            .unwrap_or_else(|e| panic!("{}: missing golden report.json: {e}", entry.name));
        let want_stats = fs::read_to_string(golden_dir.join("stats.txt"))
            .unwrap_or_else(|e| panic!("{}: missing golden stats.txt: {e}", entry.name));
        let baseline = run_scenario(&entry.spec, Shards::Fixed(1))
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", entry.name));
        if let Some(diff) = line_diff(&want_report, &baseline.report_json) {
            panic!("{}: report.json drifted from golden:\n{diff}", entry.name);
        }
        if let Some(diff) = line_diff(&want_stats, &baseline.stats_text) {
            panic!("{}: stats.txt drifted from golden:\n{diff}", entry.name);
        }
        assert!(
            baseline.violations.is_empty(),
            "{}: bound violations: {:?}",
            entry.name,
            baseline.violations
        );
        // Paper-profile scenarios never touch the sharded driver (the
        // calibrated generators sample directly), so re-running them
        // at other shard counts proves nothing — skip the variants.
        if matches!(entry.spec.workload, WorkloadSpec::Paper { .. }) {
            assert!(
                baseline.timeline_json.is_none(),
                "{}: paper profiles must not produce a timeline",
                entry.name
            );
            continue;
        }
        // Synthetic scenarios also commit the sim-time flight
        // recorder as a third golden.
        let want_timeline = fs::read_to_string(golden_dir.join("timeline.json"))
            .unwrap_or_else(|e| panic!("{}: missing golden timeline.json: {e}", entry.name));
        let baseline_timeline = baseline
            .timeline_json
            .as_deref()
            .unwrap_or_else(|| panic!("{}: synthetic run produced no timeline", entry.name));
        if let Some(diff) = line_diff(&want_timeline, baseline_timeline) {
            panic!("{}: timeline.json drifted from golden:\n{diff}", entry.name);
        }
        for shards in [Shards::Fixed(2), Shards::Fixed(5), Shards::Auto] {
            let run = run_scenario(&entry.spec, shards)
                .unwrap_or_else(|e| panic!("{}: run failed at {shards:?}: {e}", entry.name));
            if let Some(diff) = line_diff(&baseline.report_json, &run.report_json) {
                panic!("{}: report not shard-invariant at {shards:?}:\n{diff}", entry.name);
            }
            if let Some(diff) = line_diff(&baseline.stats_text, &run.stats_text) {
                panic!("{}: stats not shard-invariant at {shards:?}:\n{diff}", entry.name);
            }
            if let Some(diff) =
                line_diff(baseline_timeline, run.timeline_json.as_deref().unwrap_or(""))
            {
                panic!("{}: timeline not shard-invariant at {shards:?}:\n{diff}", entry.name);
            }
        }
    }
}

/// A perturbed golden is caught: flipping one byte of a recorded
/// report produces a failing, line-addressed diff against a fresh run.
#[test]
fn corpus_catches_a_perturbed_golden() {
    let dir = corpus_dir();
    let entries = discover(&dir).expect("scenario corpus must be discoverable");
    let entry = entries
        .iter()
        .find(|e| e.name == "metro-ring")
        .expect("metro-ring must stay in the corpus");
    let golden =
        fs::read_to_string(dir.join("goldens/metro-ring/report.json")).expect("golden report.json");
    let run = run_scenario(&entry.spec, Shards::Auto).expect("run");
    assert_eq!(line_diff(&golden, &run.report_json), None, "golden must match before perturbing");
    let perturbed = golden.replacen("\"n_transfers\":", "\"n_transfers\":  ", 1);
    assert_ne!(perturbed, golden, "perturbation must change the text");
    let diff = line_diff(&perturbed, &run.report_json).expect("perturbed golden must fail");
    assert!(diff.contains("n_transfers"), "diff should point at the changed line:\n{diff}");
}
