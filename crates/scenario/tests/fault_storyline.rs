//! Fault-plan scenarios tell exact stories: the maintenance-window
//! golden pins the full recovery ledger (retries, fallbacks, and zero
//! leaked reservations), and the interdomain chain proves multi-domain
//! teardown leaves nothing open.

use std::fs;
use std::path::{Path, PathBuf};

use gvc_gridftp::driver::Shards;
use gvc_scenario::{discover, run_scenario, CorpusEntry};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn entry(name: &str) -> CorpusEntry {
    discover(&corpus_dir())
        .expect("scenario corpus must be discoverable")
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("{name} must stay in the corpus"))
}

/// One stat line of the form `key value`.
fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(key).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or_else(|| panic!("stats must carry `{key}`:\n{stats}"))
}

#[test]
fn maintenance_window_storyline_is_exact() {
    let entry = entry("maintenance-window");
    assert!(entry.spec.fault_plan.is_some(), "maintenance-window must carry a fault plan");
    let outcome = run_scenario(&entry.spec, Shards::Auto).expect("run");
    assert!(outcome.violations.is_empty(), "storyline bounds must hold: {:?}", outcome.violations);

    // The spec's [expect] section pins the whole recovery ledger; the
    // run's report must agree field-for-field.
    let r = outcome.report.resilience.expect("fault scenario must report resilience");
    let expect = &entry.spec.expect;
    assert_eq!(Some(r.vc_requested), expect.vc_requested);
    assert_eq!(Some(r.vc_established), expect.vc_established);
    assert_eq!(Some(r.faults_injected), expect.faults_injected);
    assert_eq!(Some(r.retries), expect.retries);
    assert_eq!(Some(r.fallbacks), expect.fallbacks);

    // The story has real adversity in it: flaky provisioning forced
    // retries, some sessions fell back to IP, and some circuits never
    // came up — but every reservation was torn down.
    assert!(r.faults_injected > 0, "the maintenance window must inject faults");
    assert!(r.retries > 0, "flaky provisioning must force retries");
    assert!(r.fallbacks > 0, "exhausted sessions must fall back to IP");
    assert!(r.vc_established < r.vc_requested, "some circuits must fail outright");
    assert!(r.vc_established > 0, "recovery must still land most circuits");
    assert_eq!(stat(&outcome.stats_text, "resilience_preemptions"), 0);
    assert_eq!(
        stat(&outcome.stats_text, "open_reservations"),
        0,
        "a completed run must leak no reservations"
    );

    // And the committed golden carries the same ledger, so drift in
    // fault injection or recovery fails CI with a diff, not silently.
    let golden = fs::read_to_string(corpus_dir().join("goldens/maintenance-window/stats.txt"))
        .expect("maintenance-window stats golden");
    assert_eq!(stat(&golden, "resilience_retries"), r.retries);
    assert_eq!(stat(&golden, "resilience_fallbacks"), r.fallbacks);
    assert_eq!(stat(&golden, "resilience_faults"), r.faults_injected);
    assert_eq!(stat(&golden, "open_reservations"), 0);
}

/// The same fault plan replayed at a different shard count tells the
/// same story — fault injection rides the deterministic event order.
#[test]
fn maintenance_window_storyline_is_shard_invariant() {
    let entry = entry("maintenance-window");
    let a = run_scenario(&entry.spec, Shards::Fixed(1)).expect("run");
    let b = run_scenario(&entry.spec, Shards::Fixed(4)).expect("run");
    assert_eq!(a.stats_text, b.stats_text);
    assert_eq!(a.report_json, b.report_json);
}

#[test]
fn interdomain_chain_closes_every_reservation() {
    let entry = entry("interdomain-chain");
    let outcome = run_scenario(&entry.spec, Shards::Auto).expect("run");
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    assert_eq!(
        stat(&outcome.stats_text, "interdomain_requested"),
        stat(&outcome.stats_text, "interdomain_established"),
        "the scripted chain probe must establish every circuit"
    );
    assert_eq!(stat(&outcome.stats_text, "interdomain_blocked"), 0);
    assert_eq!(
        stat(&outcome.stats_text, "interdomain_open_after"),
        0,
        "multi-domain teardown must close every per-domain reservation"
    );
    assert_eq!(stat(&outcome.stats_text, "open_reservations"), 0);
}
