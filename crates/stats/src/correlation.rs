//! Correlation estimators.
//!
//! Tables XI and XII of the paper correlate per-transfer GridFTP byte
//! counts against SNMP byte counts (total and other-flow) router by
//! router and quartile by quartile; Fig. 8 correlates the Eq. 2
//! predicted throughput against actual throughput (ρ = 0.62). Both are
//! plain Pearson correlations; Spearman is provided as a robustness
//! check used by the extended analyses.

/// Sample covariance with the n − 1 denominator.
/// Returns `None` when the slices differ in length or have < 2 points.
pub fn covariance(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let s: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    Some(s / (n - 1.0))
}

/// Pearson product-moment correlation coefficient.
///
/// Returns `None` when inputs are mismatched, shorter than 2, or either
/// series is constant (zero variance).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson on midrank-transformed data, so
/// ties are handled correctly.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = midranks(x);
    let ry = midranks(y);
    pearson(&rx, &ry)
}

/// Midranks of `data`: ties get the average of the ranks they span.
fn midranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].total_cmp(&data[b]));
    let mut ranks = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Ranks are 1-based; the tied block [i, j] shares the mean rank.
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = mean_rank;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_is_none() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn mismatched_or_short_is_none() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(covariance(&[1.0], &[1.0]).is_none());
        assert!(spearman(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn covariance_known_value() {
        // cov(c(1,2,3,4), c(2,3,5,8)) in R = 3.333333...
        let c = covariance(&[1.0, 2.0, 3.0, 4.0], &[2.0, 3.0, 5.0, 8.0]).unwrap();
        assert!((c - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn midranks_average_ties() {
        let r = midranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
