//! Tukey boxplot summaries (Fig. 1 of the paper shows boxplots of the
//! four ANL→NERSC transfer categories).

use crate::quantile::quantile_sorted;

/// The five boxplot statistics plus outliers, with whiskers at the most
/// extreme data points within 1.5 × IQR of the box (R's `boxplot`
/// default).
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// First quartile (box bottom).
    pub q1: f64,
    /// Median (box line).
    pub median: f64,
    /// Third quartile (box top).
    pub q3: f64,
    /// Lower whisker: smallest observation ≥ q1 − 1.5·IQR.
    pub lo_whisker: f64,
    /// Upper whisker: largest observation ≤ q3 + 1.5·IQR.
    pub hi_whisker: f64,
    /// Observations outside the whiskers, ascending.
    pub outliers: Vec<f64>,
}

impl BoxplotSummary {
    /// Computes the boxplot statistics of `data`. `None` when empty.
    pub fn of(data: &[f64]) -> Option<BoxplotSummary> {
        if data.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q1 = quantile_sorted(&sorted, 0.25)?;
        let median = quantile_sorted(&sorted, 0.50)?;
        let q3 = quantile_sorted(&sorted, 0.75)?;
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // The fences bracket the box, so a point inside them exists
        // whenever the input is NaN-free; fall back to the box edge
        // rather than panic when it is not.
        let lo_whisker = sorted.iter().find(|&&x| x >= lo_fence).copied().unwrap_or(q1);
        let hi_whisker = sorted.iter().rev().find(|&&x| x <= hi_fence).copied().unwrap_or(q3);
        let outliers = sorted.iter().copied().filter(|&x| x < lo_fence || x > hi_fence).collect();
        Some(BoxplotSummary { q1, median, q3, lo_whisker, hi_whisker, outliers })
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Renders a fixed-width ASCII boxplot over `[lo, hi]` with `width`
    /// character cells — used by the `repro` binary for Fig. 1.
    pub fn ascii(&self, lo: f64, hi: f64, width: usize) -> String {
        assert!(width >= 5, "ascii boxplot needs width >= 5");
        assert!(hi > lo, "ascii boxplot range must be non-empty");
        let pos = |x: f64| -> usize {
            let t = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
            ((t * (width - 1) as f64).round() as usize).min(width - 1)
        };
        let mut row: Vec<char> = vec![' '; width];
        let (w0, b0, m, b1, w1) = (
            pos(self.lo_whisker),
            pos(self.q1),
            pos(self.median),
            pos(self.q3),
            pos(self.hi_whisker),
        );
        for cell in row.iter_mut().take(b0).skip(w0) {
            *cell = '-';
        }
        for cell in row.iter_mut().take(w1).skip(b1) {
            *cell = '-';
        }
        for cell in row.iter_mut().take(b1 + 1).skip(b0) {
            *cell = '=';
        }
        row[w0] = '|';
        row[w1] = '|';
        row[b0] = '[';
        row[b1] = ']';
        row[m] = '#';
        for &o in &self.outliers {
            let p = pos(o);
            if row[p] == ' ' {
                row[p] = 'o';
            }
        }
        row.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(BoxplotSummary::of(&[]).is_none());
    }

    #[test]
    fn no_outliers_whiskers_are_extremes() {
        let xs: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let b = BoxplotSummary::of(&xs).unwrap();
        assert_eq!(b.lo_whisker, 1.0);
        assert_eq!(b.hi_whisker, 9.0);
        assert!(b.outliers.is_empty());
        assert_eq!(b.median, 5.0);
    }

    #[test]
    fn detects_outlier() {
        let mut xs: Vec<f64> = (1..=20).map(|x| x as f64).collect();
        xs.push(1000.0);
        let b = BoxplotSummary::of(&xs).unwrap();
        assert_eq!(b.outliers, vec![1000.0]);
        assert!(b.hi_whisker <= 20.0);
    }

    #[test]
    fn singleton_degenerate() {
        let b = BoxplotSummary::of(&[3.0]).unwrap();
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 3.0);
        assert_eq!(b.lo_whisker, 3.0);
        assert_eq!(b.hi_whisker, 3.0);
    }

    #[test]
    fn nan_input_does_not_panic() {
        // Regression: the sort comparator and the whisker expects used
        // to panic when NaN slipped in.
        let b = BoxplotSummary::of(&[1.0, 2.0, f64::NAN, 3.0]);
        assert!(b.is_some());
    }

    #[test]
    fn ascii_renders_markers() {
        let xs: Vec<f64> = (0..=10).map(|x| x as f64).collect();
        let b = BoxplotSummary::of(&xs).unwrap();
        let s = b.ascii(0.0, 10.0, 41);
        assert_eq!(s.len(), 41);
        assert!(s.contains('#'));
        assert!(s.contains('['));
        assert!(s.contains(']'));
    }
}
