//! Fixed-width binning and per-bin aggregation.
//!
//! Figures 3–5 of the paper bin SLAC–BNL transfers by file size (1 MB
//! bins below 1 GB, 100 MB bins from 1 GB to 4 GB) and plot the median
//! throughput of the 1-stream and 8-stream groups per bin, along with
//! the per-bin observation counts. [`BinnedSeries`] implements exactly
//! that: values are dropped into fixed-width bins and a statistic is
//! computed per bin.

use crate::quantile::median;

/// Maps `x` to its bin in `nbins` equal bins of `width` starting at
/// `lo`, correcting the raw `(x − lo)/width` truncation against the
/// actual bin edges. `width` is generally inexact in binary
/// (e.g. (1e8 − 1e6)/14), so the division can land a value sitting
/// exactly on a computed edge `lo + width·i` one bin low or high;
/// nudging the index until `lo + width·idx ≤ x < lo + width·(idx+1)`
/// restores the invariant `bin_index(bin_lo(i)) == i` for every bin.
fn edge_corrected_index(lo: f64, width: f64, nbins: usize, x: f64) -> Option<usize> {
    if x < lo {
        return None;
    }
    let mut idx = ((x - lo) / width) as usize;
    if idx > 0 && x < lo + width * idx as f64 {
        idx -= 1;
    } else if x >= lo + width * (idx + 1) as f64 {
        idx += 1;
    }
    if idx < nbins {
        Some(idx)
    } else {
        None
    }
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    /// Observations below `lo` or at/above `hi`.
    pub out_of_range: u64,
}

impl Histogram {
    /// Creates a histogram of `nbins` equal bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram { lo, width: (hi - lo) / nbins as f64, counts: vec![0; nbins], out_of_range: 0 }
    }

    /// Bin index for `x`, or `None` if out of range. A value equal to
    /// [`Histogram::bin_lo`]`(i)` always lands in bin `i`, even when
    /// the bin width is inexact in binary.
    pub fn bin_index(&self, x: f64) -> Option<usize> {
        edge_corrected_index(self.lo, self.width, self.counts.len(), x)
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        match self.bin_index(x) {
            Some(i) => self.counts[i] += 1,
            None => self.out_of_range += 1,
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + self.width * i as f64
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.bin_lo(i) + self.width / 2.0
    }
}

/// Values grouped into fixed-width bins by a key, supporting per-bin
/// statistics — the Fig. 3/4/5 structure.
#[derive(Debug, Clone)]
pub struct BinnedSeries {
    lo: f64,
    width: f64,
    bins: Vec<Vec<f64>>,
}

impl BinnedSeries {
    /// `nbins` equal-width bins covering keys in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> BinnedSeries {
        assert!(nbins > 0, "binned series needs at least one bin");
        assert!(hi > lo, "binned series range must be non-empty");
        BinnedSeries { lo, width: (hi - lo) / nbins as f64, bins: vec![Vec::new(); nbins] }
    }

    /// Inserts `value` under `key`; out-of-range keys are ignored and
    /// reported via the return value.
    pub fn insert(&mut self, key: f64, value: f64) -> bool {
        match edge_corrected_index(self.lo, self.width, self.bins.len(), key) {
            Some(idx) => {
                self.bins[idx].push(value);
                true
            }
            None => false,
        }
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Observation count in bin `i` (Fig. 5's y-axis).
    pub fn count(&self, i: usize) -> usize {
        self.bins[i].len()
    }

    /// Values collected in bin `i`.
    pub fn values(&self, i: usize) -> &[f64] {
        &self.bins[i]
    }

    /// Median of bin `i`, `None` when empty (Figs. 3–4's y-axis).
    pub fn bin_median(&self, i: usize) -> Option<f64> {
        median(&self.bins[i])
    }

    /// Center of bin `i` (the x coordinate when plotting).
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + self.width * (i as f64 + 0.5)
    }

    /// `(center, median, count)` for every non-empty bin, in order.
    pub fn median_series(&self) -> Vec<(f64, f64, usize)> {
        (0..self.bins.len())
            .filter_map(|i| self.bin_median(i).map(|m| (self.bin_center(i), m, self.count(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_counts() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.9, 9.99] {
            h.record(x);
        }
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.out_of_range, 0);
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.0); // hi edge is exclusive
        assert_eq!(h.out_of_range, 2);
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn bin_edges_land_in_their_own_bin() {
        // The Fig. 3 layouts: 1 MB bins and 100 MB bins expressed in
        // bytes. (1e8 − 1e6)/14 is inexact in binary, and pre-fix the
        // raw truncation put the edge of bin 11 into bin 10; the
        // (1.0, 2.0, 49) layout misplaced many edges the same way.
        for (lo, hi, nbins) in [(1e6, 1e8, 14), (1.0, 2.0, 49), (0.0, 10.0, 10)] {
            let h = Histogram::new(lo, hi, nbins);
            for i in 0..nbins {
                assert_eq!(
                    h.bin_index(h.bin_lo(i)),
                    Some(i),
                    "edge of bin {i} in [{lo}, {hi}) x {nbins}"
                );
            }
        }
    }

    #[test]
    fn binned_series_edges_land_in_their_own_bin() {
        let lo = 1e6;
        let hi = 1e8;
        let nbins = 14;
        let width = (hi - lo) / nbins as f64;
        let mut b = BinnedSeries::new(lo, hi, nbins);
        for i in 0..nbins {
            assert!(b.insert(lo + width * i as f64, i as f64));
        }
        for i in 0..nbins {
            assert_eq!(b.count(i), 1, "edge of bin {i} misplaced");
            assert_eq!(b.values(i), &[i as f64]);
        }
    }

    #[test]
    fn binned_series_median_per_bin() {
        let mut b = BinnedSeries::new(0.0, 2.0, 2);
        assert!(b.insert(0.1, 10.0));
        assert!(b.insert(0.2, 30.0));
        assert!(b.insert(1.5, 5.0));
        assert!(!b.insert(2.5, 99.0));
        assert_eq!(b.bin_median(0), Some(20.0));
        assert_eq!(b.bin_median(1), Some(5.0));
        assert_eq!(b.count(0), 2);
    }

    #[test]
    fn median_series_skips_empty_bins() {
        let mut b = BinnedSeries::new(0.0, 3.0, 3);
        b.insert(0.5, 1.0);
        b.insert(2.5, 2.0);
        let s = b.median_series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (0.5, 1.0, 1));
        assert_eq!(s[1], (2.5, 2.0, 1));
    }
}
