//! Ordinary least squares on one predictor.
//!
//! Used by the trend analyses (the Table VIII year-over-year
//! throughput decline, the setup-delay sweeps): a slope with r² says
//! how much of the variance the factor explains, which is the
//! paper's implicit question in every factor section.

/// An OLS fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Sample size.
    pub n: usize,
}

impl LinearFit {
    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y` on `x`. Returns `None` for mismatched/short inputs or a
/// constant `x`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some(LinearFit { slope, intercept, r_squared, n: x.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 29.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_partial_r2() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [0.1, 0.9, 2.2, 2.8, 4.1, 4.9];
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 1.0).abs() < 0.05);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn constant_y_is_perfect_flat_fit() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn degenerate_inputs_none() {
        assert!(linear_fit(&[1.0], &[1.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn uncorrelated_r2_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [5.0, 1.0, 4.0, 2.0, 5.0, 1.0, 4.0, 2.0];
        let f = linear_fit(&x, &y).unwrap();
        assert!(f.r_squared < 0.2, "{}", f.r_squared);
    }
}
