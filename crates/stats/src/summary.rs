//! Descriptive summaries in the shape the paper's tables use:
//! Min / 1st Qu. / Median / Mean / 3rd Qu. / Max, plus standard
//! deviation and coefficient of variation (Tables VI–IX report those
//! two as extra columns).

use crate::quantile::quantile_sorted;
use std::fmt;

/// A six-number descriptive summary plus dispersion measures, computed
/// once over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Smallest observation.
    pub min: f64,
    /// First quartile (R type-7).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Third quartile (R type-7).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample standard deviation (n − 1 denominator), 0 for n < 2.
    pub sd: f64,
}

impl Summary {
    /// Computes a summary of `data`. Returns `None` on an empty slice.
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let sd = if n < 2 {
            0.0
        } else {
            let ss: f64 = sorted.iter().map(|x| (x - mean) * (x - mean)).sum();
            (ss / (n - 1) as f64).sqrt()
        };
        Some(Summary {
            n,
            min: sorted.first().copied()?,
            q1: quantile_sorted(&sorted, 0.25)?,
            median: quantile_sorted(&sorted, 0.50)?,
            mean,
            q3: quantile_sorted(&sorted, 0.75)?,
            max: sorted.last().copied()?,
            sd,
        })
    }

    /// Inter-quartile range, the dispersion measure the paper quotes for
    /// the NERSC–ORNL transfers ("the inter-quartile range was 695 Mbps").
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Coefficient of variation, `sd / mean`, as a fraction (Table VI
    /// reports it as a percentage). Returns `None` when the mean is 0.
    pub fn cv(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.sd / self.mean)
        }
    }

    /// Renders the six paper columns, scaled by `scale` (e.g. 1e-6 to
    /// print bits as Mb), with `prec` decimal places.
    pub fn paper_row(&self, scale: f64, prec: usize) -> String {
        format!(
            "{:>10.p$} {:>10.p$} {:>10.p$} {:>10.p$} {:>10.p$} {:>10.p$}",
            self.min * scale,
            self.q1 * scale,
            self.median * scale,
            self.mean * scale,
            self.q3 * scale,
            self.max * scale,
            p = prec
        )
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.4} q1={:.4} med={:.4} mean={:.4} q3={:.4} max={:.4} sd={:.4}",
            self.n, self.min, self.q1, self.median, self.mean, self.q3, self.max, self.sd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn singleton() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn known_values() {
        // R: x <- c(2, 4, 4, 4, 5, 5, 7, 9); sd(x) = 2.13809...
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.mean, 5.0);
        assert!((s.sd - 2.138_089_935).abs() < 1e-8);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn cv_matches_table_vi_semantics() {
        let xs = [100.0, 200.0, 300.0];
        let s = Summary::of(&xs).unwrap();
        let cv = s.cv().unwrap();
        assert!((cv - s.sd / 200.0).abs() < 1e-12);
    }

    #[test]
    fn cv_none_on_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert!(s.cv().is_none());
    }

    #[test]
    fn iqr_positive_and_consistent() {
        let xs: Vec<f64> = (0..100).map(|x| x as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert!((s.iqr() - 49.5).abs() < 1e-12);
    }

    #[test]
    fn nan_input_does_not_panic() {
        // Regression: Summary::of used to panic sorting NaN input.
        let s = Summary::of(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert!(s.max.is_nan());
    }

    #[test]
    fn paper_row_formats_scaled() {
        let s = Summary::of(&[1_000_000.0, 2_000_000.0]).unwrap();
        let row = s.paper_row(1e-6, 1);
        assert!(row.contains("1.0"));
        assert!(row.contains("2.0"));
    }
}
