//! Statistics substrate for the GridFTP virtual-circuit study.
//!
//! The SC 2012 paper reports every result as R-style descriptive
//! statistics: five-number summaries with means (Tables I–IX, XIII),
//! Pearson correlations (Tables XI, XII, Fig. 8), file-size binning with
//! per-bin medians (Figs. 3–5), and boxplots (Fig. 1). This crate
//! implements those estimators exactly (quantiles use R's default
//! type-7 interpolation) so the analysis layer reproduces the paper's
//! table semantics, plus the seeded sampling distributions the workload
//! generators use to synthesize datasets with the paper's marginals.
//!
//! Everything here is deterministic given a seed: the sampling side is
//! built on [`rand::rngs::SmallRng`] streams derived by
//! [`rng::child_seed`] so that adding a new consumer never perturbs an
//! existing one.

pub mod boxplot;
pub mod correlation;
pub mod dist;
pub mod ecdf;
pub mod hist;
pub mod quantile;
pub mod regression;
pub mod rng;
pub mod summary;

pub use boxplot::BoxplotSummary;
pub use correlation::{covariance, pearson, spearman};
pub use dist::{
    Distribution, Empirical, Exponential, LogNormal, Mixture, Pareto, TruncNormal, UniformRange,
};
pub use ecdf::Ecdf;
pub use hist::{BinnedSeries, Histogram};
pub use quantile::{median, quantile, quartiles};
pub use regression::{linear_fit, LinearFit};
pub use rng::{child_seed, seeded_rng};
pub use summary::Summary;
