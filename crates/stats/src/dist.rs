//! Sampling distributions for workload synthesis.
//!
//! The approved dependency list includes `rand` but not `rand_distr`,
//! so the handful of continuous distributions the workload generators
//! need — lognormal (file/session sizes are "skewed right" per §VI-A),
//! exponential (inter-arrival gaps), Pareto (heavy-tailed session
//! lengths, Table III's 30 153-transfer session), truncated normal
//! (test-transfer throughput spread), empirical resampling and finite
//! mixtures — are implemented here from uniform draws.

use rand::Rng;

/// A sampling distribution over `f64`.
pub trait Distribution {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// # Panics
    /// Panics when `hi < lo`.
    pub fn new(lo: f64, hi: f64) -> UniformRange {
        assert!(hi >= lo, "uniform range must be ordered");
        UniformRange { lo, hi }
    }
}

impl Distribution for UniformRange {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.hi == self.lo {
            return self.lo;
        }
        self.lo + rng.gen::<f64>() * (self.hi - self.lo)
    }
}

/// Standard normal via Box–Muller (one value per draw, simple and
/// branch-free enough for workload generation).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by mapping the uniform draw into (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Lognormal: `exp(mu + sigma * Z)`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Parameterized by the log-space mean and standard deviation.
    ///
    /// # Panics
    /// Panics when `sigma < 0`.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(sigma >= 0.0, "lognormal sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Builds the lognormal whose *median* and *mean* match the given
    /// values (requires `mean > median > 0`). This is how workload
    /// generators are calibrated straight from the paper's tables,
    /// which quote exactly those two statistics.
    pub fn from_median_mean(median: f64, mean: f64) -> Option<LogNormal> {
        if median <= 0.0 || median.is_nan() || mean <= median || mean.is_nan() {
            return None;
        }
        // median = e^mu, mean = e^(mu + sigma^2 / 2)
        let mu = median.ln();
        let sigma = (2.0 * (mean.ln() - mu)).sqrt();
        Some(LogNormal { mu, sigma })
    }

    /// Median of the distribution, `e^mu`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Mean of the distribution, `e^(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl Distribution for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Exponential with the given rate (mean `1 / rate`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// # Panics
    /// Panics when `rate <= 0`.
    pub fn new(rate: f64) -> Exponential {
        assert!(rate > 0.0, "exponential rate must be positive");
        Exponential { rate }
    }

    /// Exponential with the given mean.
    pub fn with_mean(mean: f64) -> Exponential {
        Exponential::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }
}

/// Pareto (type I): support `[xm, ∞)`, shape `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// # Panics
    /// Panics when `xm <= 0` or `alpha <= 0`.
    pub fn new(xm: f64, alpha: f64) -> Pareto {
        assert!(xm > 0.0, "pareto scale must be positive");
        assert!(alpha > 0.0, "pareto shape must be positive");
        Pareto { xm, alpha }
    }
}

impl Distribution for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.xm / u.powf(1.0 / self.alpha)
    }
}

/// Normal truncated to `[lo, hi]` by rejection (falls back to clamping
/// after 64 rejections, which only triggers for pathological bounds).
#[derive(Debug, Clone, Copy)]
pub struct TruncNormal {
    mean: f64,
    sd: f64,
    lo: f64,
    hi: f64,
}

impl TruncNormal {
    /// # Panics
    /// Panics when `sd < 0` or `hi < lo`.
    pub fn new(mean: f64, sd: f64, lo: f64, hi: f64) -> TruncNormal {
        assert!(sd >= 0.0, "truncated normal sd must be non-negative");
        assert!(hi >= lo, "truncated normal bounds must be ordered");
        TruncNormal { mean, sd, lo, hi }
    }
}

impl Distribution for TruncNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        for _ in 0..64 {
            let x = self.mean + self.sd * standard_normal(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        self.mean.clamp(self.lo, self.hi)
    }
}

/// Resamples uniformly from an observed sample (bootstrap draw).
#[derive(Debug, Clone)]
pub struct Empirical {
    sample: Vec<f64>,
}

impl Empirical {
    /// # Panics
    /// Panics on an empty sample.
    pub fn new(sample: Vec<f64>) -> Empirical {
        assert!(!sample.is_empty(), "empirical distribution needs data");
        Empirical { sample }
    }
}

impl Distribution for Empirical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample[rng.gen_range(0..self.sample.len())]
    }
}

/// A finite mixture of component distributions with given weights.
pub struct Mixture<D: Distribution> {
    components: Vec<(f64, D)>,
    total_weight: f64,
}

impl<D: Distribution> Mixture<D> {
    /// # Panics
    /// Panics when empty or any weight is non-positive.
    pub fn new(components: Vec<(f64, D)>) -> Mixture<D> {
        assert!(!components.is_empty(), "mixture needs components");
        let total_weight = components
            .iter()
            .map(|(w, _)| {
                assert!(*w > 0.0, "mixture weights must be positive");
                *w
            })
            .sum();
        Mixture { components, total_weight }
    }
}

impl<D: Distribution> Distribution for Mixture<D> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut pick = rng.gen::<f64>() * self.total_weight;
        for (w, d) in &self.components {
            pick -= w;
            if pick <= 0.0 {
                return d.sample(rng);
            }
        }
        // Float rounding can leave `pick` marginally positive after the
        // loop; the final component takes the remainder. The constructor
        // guarantees at least one component.
        self.components.last().map_or(f64::NAN, |(_, d)| d.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::summary::Summary;

    fn draws<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let xs = draws(&UniformRange::new(2.0, 4.0), 20_000, 1);
        assert!(xs.iter().all(|&x| (2.0..4.0).contains(&x)));
        let s = Summary::of(&xs).unwrap();
        assert!((s.mean - 3.0).abs() < 0.02);
    }

    #[test]
    fn uniform_degenerate_point() {
        let xs = draws(&UniformRange::new(5.0, 5.0), 10, 1);
        assert!(xs.iter().all(|&x| x == 5.0));
    }

    #[test]
    fn exponential_mean() {
        let xs = draws(&Exponential::with_mean(10.0), 50_000, 2);
        let s = Summary::of(&xs).unwrap();
        assert!((s.mean - 10.0).abs() < 0.3);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lognormal_median_mean_calibration() {
        // SLAC–BNL session sizes: median 1195 MB, mean 24 045 MB (Table II).
        let d = LogNormal::from_median_mean(1195.0, 24_045.0).unwrap();
        assert!((d.median() - 1195.0).abs() < 1e-9);
        assert!((d.mean() - 24_045.0).abs() / 24_045.0 < 1e-12);
        let xs = draws(&d, 200_000, 3);
        let s = Summary::of(&xs).unwrap();
        assert!((s.median - 1195.0).abs() / 1195.0 < 0.05);
        // Mean of a heavy-tailed lognormal converges slowly; allow 25 %.
        assert!((s.mean - 24_045.0).abs() / 24_045.0 < 0.25);
    }

    #[test]
    fn lognormal_rejects_bad_calibration() {
        assert!(LogNormal::from_median_mean(10.0, 5.0).is_none());
        assert!(LogNormal::from_median_mean(0.0, 5.0).is_none());
        assert!(LogNormal::from_median_mean(-1.0, 5.0).is_none());
    }

    #[test]
    fn pareto_support() {
        let xs = draws(&Pareto::new(3.0, 2.5), 10_000, 4);
        assert!(xs.iter().all(|&x| x >= 3.0));
        // alpha = 2.5 => mean = alpha*xm/(alpha-1) = 5.0
        let s = Summary::of(&xs).unwrap();
        assert!((s.mean - 5.0).abs() < 0.3);
    }

    #[test]
    fn trunc_normal_respects_bounds() {
        let xs = draws(&TruncNormal::new(0.0, 1.0, -0.5, 0.5), 5_000, 5);
        assert!(xs.iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn empirical_resamples_only_sample_values() {
        let d = Empirical::new(vec![1.0, 2.0, 3.0]);
        let xs = draws(&d, 1000, 6);
        assert!(xs.iter().all(|&x| x == 1.0 || x == 2.0 || x == 3.0));
    }

    #[test]
    fn mixture_weights_respected() {
        let m = Mixture::new(vec![
            (9.0, UniformRange::new(0.0, 1.0)),
            (1.0, UniformRange::new(10.0, 11.0)),
        ]);
        let xs = draws(&m, 20_000, 7);
        let high = xs.iter().filter(|&&x| x >= 10.0).count() as f64 / xs.len() as f64;
        assert!((high - 0.1).abs() < 0.02);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = LogNormal::new(1.0, 0.5);
        assert_eq!(draws(&d, 16, 42), draws(&d, 16, 42));
        assert_ne!(draws(&d, 16, 42), draws(&d, 16, 43));
    }
}
