//! Seeded RNG streams.
//!
//! Every stochastic component in the simulator owns its own RNG stream
//! derived from the scenario seed with [`child_seed`], a SplitMix64
//! mix of (seed, label). Components therefore stay decoupled: adding a
//! new consumer or reordering draws in one component never perturbs the
//! values another component sees, which keeps the regression baselines
//! in `EXPERIMENTS.md` stable.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a parent seed and a component label.
/// Distinct labels give statistically independent streams.
pub fn child_seed(parent: u64, label: &str) -> u64 {
    let mut h = splitmix64(parent);
    for b in label.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    h
}

/// A fast, seedable RNG for simulation use (not cryptographic).
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Convenience: RNG for component `label` under scenario `seed`.
pub fn component_rng(seed: u64, label: &str) -> SmallRng {
    seeded_rng(child_seed(seed, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn child_seeds_differ_by_label() {
        let a = child_seed(42, "alpha");
        let b = child_seed(42, "beta");
        assert_ne!(a, b);
    }

    #[test]
    fn child_seeds_differ_by_parent() {
        assert_ne!(child_seed(1, "x"), child_seed(2, "x"));
    }

    #[test]
    fn child_seed_is_deterministic() {
        assert_eq!(child_seed(7, "net"), child_seed(7, "net"));
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut r1 = component_rng(99, "flows");
        let mut r2 = component_rng(99, "flows");
        for _ in 0..32 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn rng_streams_decorrelated() {
        let mut r1 = component_rng(99, "flows");
        let mut r2 = component_rng(99, "servers");
        let same = (0..64).filter(|_| r1.gen::<u64>() == r2.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn label_prefix_no_collision() {
        // "ab" under one seed must differ from "a" then continuing: the
        // label is mixed byte-by-byte so prefixes do not collide.
        assert_ne!(child_seed(5, "ab"), child_seed(5, "a"));
        assert_ne!(child_seed(5, ""), child_seed(5, "a"));
    }
}
