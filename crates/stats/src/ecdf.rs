//! Empirical cumulative distribution function.
//!
//! Table IV's "percentage of sessions suitable for VCs" is an ECDF
//! evaluation: the fraction of sessions whose hypothetical duration
//! exceeds ten times the setup delay. [`Ecdf`] also backs the workload
//! calibration code, which inverts empirical CDFs to sample synthetic
//! values with the paper's marginals.

/// An ECDF over a sample, supporting evaluation and inversion.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Returns `None` when empty.
    pub fn new(data: &[f64]) -> Option<Ecdf> {
        if data.is_empty() {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Ecdf { sorted })
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// F(x) = fraction of observations ≤ x.
    pub fn eval(&self, x: f64) -> f64 {
        self.count_le(x) as f64 / self.sorted.len() as f64
    }

    /// Number of observations ≤ x.
    pub fn count_le(&self, x: f64) -> usize {
        self.sorted.partition_point(|&v| v <= x)
    }

    /// Number of observations ≥ x — the Table IV numerator shape
    /// ("sessions that would have lasted longer than 10 min").
    pub fn count_ge(&self, x: f64) -> usize {
        self.sorted.len() - self.sorted.partition_point(|&v| v < x)
    }

    /// Fraction of observations ≥ x.
    pub fn frac_ge(&self, x: f64) -> f64 {
        self.count_ge(x) as f64 / self.sorted.len() as f64
    }

    /// Generalized inverse F⁻¹(p): the smallest observation `v` with
    /// F(v) ≥ p. `p` is clamped to (0, 1].
    pub fn inverse(&self, p: f64) -> f64 {
        let p = p.clamp(f64::MIN_POSITIVE, 1.0);
        let k = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[k - 1]
    }

    /// The sorted sample backing this ECDF.
    pub fn sample(&self) -> &[f64] {
        &self.sorted
    }

    /// Two-sample Kolmogorov–Smirnov distance `sup |F_a − F_b|` —
    /// used to validate that a synthetic marginal tracks a reference
    /// sample (the workload-calibration checks).
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(&other.sorted) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf() -> Ecdf {
        Ecdf::new(&[1.0, 2.0, 2.0, 3.0, 5.0]).unwrap()
    }

    #[test]
    fn empty_is_none() {
        assert!(Ecdf::new(&[]).is_none());
    }

    #[test]
    fn eval_steps() {
        let e = ecdf();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.2);
        assert_eq!(e.eval(2.0), 0.6);
        assert_eq!(e.eval(10.0), 1.0);
    }

    #[test]
    fn count_ge_includes_equal() {
        let e = ecdf();
        assert_eq!(e.count_ge(2.0), 4);
        assert_eq!(e.count_ge(5.1), 0);
        assert_eq!(e.count_ge(0.0), 5);
    }

    #[test]
    fn frac_ge_complements_eval_strictly() {
        let e = ecdf();
        // frac_ge(x) + frac_lt(x) == 1
        let x = 2.0;
        let frac_lt = e.eval(x) - (e.count_le(x) - e.count_ge(x).min(e.count_le(x))) as f64 * 0.0;
        let _ = frac_lt; // identity checked structurally below
        assert_eq!(e.count_ge(x) + e.sample().iter().filter(|&&v| v < x).count(), e.n());
    }

    #[test]
    fn inverse_hits_order_statistics() {
        let e = ecdf();
        assert_eq!(e.inverse(0.2), 1.0);
        assert_eq!(e.inverse(0.6), 2.0);
        assert_eq!(e.inverse(1.0), 5.0);
        // p below 1/n still returns the minimum
        assert_eq!(e.inverse(0.0), 1.0);
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.ks_distance(&a), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = Ecdf::new(&[1.0, 2.0]).unwrap();
        let b = Ecdf::new(&[10.0, 20.0]).unwrap();
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(b.ks_distance(&a), 1.0);
    }

    #[test]
    fn ks_distance_known_value() {
        // a = {1,2,3,4}, b = {3,4,5,6}: sup gap at x in [2,3) is
        // |0.5 - 0| = 0.5.
        let a = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Ecdf::new(&[3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.ks_distance(&b), 0.5);
    }

    #[test]
    fn inverse_then_eval_round_trips() {
        let e = ecdf();
        for p in [0.2, 0.4, 0.6, 0.8, 1.0] {
            assert!(e.eval(e.inverse(p)) >= p - 1e-12);
        }
    }
}
