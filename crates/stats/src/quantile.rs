//! Quantile estimation compatible with R's default (`type = 7`).
//!
//! The paper's tables were produced with R's `summary()` /
//! `quantile()`, which interpolate linearly between order statistics:
//! for probability `p` and `n` samples the quantile sits at index
//! `h = (n - 1) p`, interpolated between `x[floor(h)]` and
//! `x[floor(h) + 1]`. Using the same estimator keeps our quartile
//! columns directly comparable to the paper's.

/// Returns the `p`-quantile (`0.0 ..= 1.0`) of `data` using R type-7
/// linear interpolation. `data` need not be sorted.
///
/// Returns `None` for an empty slice or a `p` outside `[0, 1]`.
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(gvc_stats::quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(gvc_stats::quantile(&xs, 0.25), Some(1.75));
/// ```
pub fn quantile(data: &[f64], p: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&p) || p.is_nan() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, p)
}

/// Same as [`quantile`] but assumes `sorted` is already ascending.
/// Useful when many quantiles are taken from the same data. Returns
/// `None` on an empty slice.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    let (&first, &last) = (sorted.first()?, sorted.last()?);
    let n = sorted.len();
    if n == 1 {
        return Some(first);
    }
    let h = (n - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    let (a, b) = (sorted.get(lo).copied().unwrap_or(last), sorted.get(hi).copied().unwrap_or(last));
    Some(a + (b - a) * frac)
}

/// Median (the 0.5 quantile).
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// First quartile, median and third quartile, in one sort.
pub fn quartiles(data: &[f64]) -> Option<(f64, f64, f64)> {
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some((
        quantile_sorted(&sorted, 0.25)?,
        quantile_sorted(&sorted, 0.50)?,
        quantile_sorted(&sorted, 0.75)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
        assert_eq!(quartiles(&[]), None);
    }

    #[test]
    fn out_of_range_p_is_none() {
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
        assert_eq!(quantile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.37), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn extremes_are_min_max() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
    }

    #[test]
    fn matches_r_type7_reference() {
        // R: quantile(c(1,2,3,4,5,6,7,8,9,10), c(.25,.5,.75))
        //    25%  50%  75%
        //   3.25 5.50 7.75
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let (q1, q2, q3) = quartiles(&xs).unwrap();
        assert!((q1 - 3.25).abs() < 1e-12);
        assert!((q2 - 5.50).abs() < 1e-12);
        assert!((q3 - 7.75).abs() < 1e-12);
    }

    #[test]
    fn odd_length_median_is_middle() {
        assert_eq!(median(&[9.0, 1.0, 5.0]), Some(5.0));
    }

    #[test]
    fn unsorted_input_ok() {
        let xs = [10.0, 1.0, 7.0, 3.0];
        assert_eq!(quantile(&xs, 0.5), Some(5.0));
    }

    #[test]
    fn quantile_sorted_empty_is_none() {
        // Regression: used to debug_assert and index out of bounds.
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn nan_input_does_not_panic() {
        // Regression: the sort comparator used to panic on NaN; with
        // total_cmp NaN sorts to the top and the finite quantiles stay
        // meaningful.
        let xs = [2.0, f64::NAN, 1.0];
        let q = quantile(&xs, 0.0);
        assert_eq!(q, Some(1.0));
        assert!(quantile(&xs, 1.0).is_some_and(f64::is_nan));
    }
}
