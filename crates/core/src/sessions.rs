//! Session grouping.
//!
//! §V: "The term session refers to multiple transfers executed in
//! batch mode by an automated script. A configurable parameter, g, is
//! used to set the maximum allowed gap between the end of one transfer
//! and the start of the next transfer within a session. The gap …
//! could be negative as multiple transfers can be started
//! concurrently. Such transfers are part of the same session."
//!
//! Grouping therefore runs per (server, remote) pair over
//! start-ordered transfers, extending the current session while
//! `next.start − session.end ≤ g`, where `session.end` is the latest
//! end seen so far. Transfers with an anonymized remote (the NERSC
//! logs) cannot be grouped and are reported separately.

use gvc_logs::{Dataset, TransferRecord};
use std::collections::BTreeMap;

/// A group of back-to-back transfers between one server pair.
#[derive(Debug, Clone)]
pub struct Session {
    /// The member transfers, in start order.
    pub records: Vec<TransferRecord>,
}

impl Session {
    /// Number of transfers.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty (never produced by grouping).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Session start: first transfer's start (unix µs); 0 when
    /// empty (grouping never produces an empty session).
    pub fn start_unix_us(&self) -> i64 {
        self.records.first().map_or(0, |r| r.start_unix_us)
    }

    /// Session end: latest transfer end (unix µs); 0 when empty.
    pub fn end_unix_us(&self) -> i64 {
        self.records.iter().map(TransferRecord::end_unix_us).max().unwrap_or(0)
    }

    /// Wall-clock duration, seconds (the Table I/II "session
    /// duration").
    pub fn duration_s(&self) -> f64 {
        (self.end_unix_us() - self.start_unix_us()) as f64 / 1e6
    }

    /// Total payload, bytes (the Table I/II "session size").
    pub fn size_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size_bytes).sum()
    }

    /// Effective session throughput, Mbps (size over wall duration) —
    /// e.g. the paper's 12 TB session at 1.06 Gbps.
    ///
    /// `None` for zero-wall-duration sessions: an instantaneous
    /// session has no defined rate, and reporting 0.0 would conflate
    /// it with a session that moved no data. Callers that want a
    /// best-effort rate anyway can fall back to the summed transfer
    /// durations via the member records.
    pub fn effective_throughput_mbps(&self) -> Option<f64> {
        let d = self.duration_s();
        if d <= 0.0 {
            None
        } else {
            Some(self.size_bytes() as f64 * 8.0 / d / 1e6)
        }
    }
}

/// Result of grouping a dataset.
#[derive(Debug, Clone)]
pub struct SessionGrouping {
    /// The sessions, ordered by (pair, start).
    pub sessions: Vec<Session>,
    /// Transfers that could not be grouped (anonymized remote).
    pub ungroupable: usize,
    /// The gap parameter used, seconds.
    pub gap_s: f64,
}

impl SessionGrouping {
    /// Total transfers inside sessions.
    pub fn grouped_transfers(&self) -> usize {
        self.sessions.iter().map(Session::len).sum()
    }

    /// Sessions with exactly one transfer (Table III column).
    pub fn single_transfer_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.len() == 1).count()
    }

    /// Sessions with more than one transfer (Table III column).
    pub fn multi_transfer_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.len() > 1).count()
    }

    /// Fraction of sessions with 1 or 2 transfers (Table III column).
    pub fn frac_with_at_most_two(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions.iter().filter(|s| s.len() <= 2).count() as f64 / self.sessions.len() as f64
    }

    /// Largest transfer count in any session (Table III column; 30 153
    /// in the SLAC data at g = 1 min).
    pub fn max_transfers(&self) -> usize {
        self.sessions.iter().map(Session::len).max().unwrap_or(0)
    }

    /// Sessions with at least `n` transfers (Table III's "≥ 100"
    /// column).
    pub fn sessions_with_at_least(&self, n: usize) -> usize {
        self.sessions.iter().filter(|s| s.len() >= n).count()
    }
}

/// Groups a dataset's transfers into sessions with gap parameter
/// `gap_s` (seconds; the paper's `g` of 0, 1 min, 2 min).
///
/// ```
/// use gvc_core::group_sessions;
/// use gvc_logs::{Dataset, TransferRecord, TransferType};
///
/// // Two transfers 30 s apart: one session at g = 1 min, two at g = 0.
/// let ds = Dataset::from_records(vec![
///     TransferRecord::simple(TransferType::Retr, 1 << 30, 0, 10_000_000, "s", Some("p")),
///     TransferRecord::simple(TransferType::Retr, 1 << 30, 40_000_000, 10_000_000, "s", Some("p")),
/// ]);
/// assert_eq!(group_sessions(&ds, 60.0).sessions.len(), 1);
/// assert_eq!(group_sessions(&ds, 0.0).sessions.len(), 2);
/// ```
pub fn group_sessions(ds: &Dataset, gap_s: f64) -> SessionGrouping {
    let gap_us = (gap_s * 1e6).round() as i64;
    // Partition per (server, remote) pair, preserving start order.
    let mut pairs: BTreeMap<(String, String), Vec<&TransferRecord>> = BTreeMap::new();
    let mut ungroupable = 0usize;
    for r in ds.records() {
        match r.pair_key() {
            Some((s, p)) => pairs.entry((s.to_owned(), p.to_owned())).or_default().push(r),
            None => ungroupable += 1,
        }
    }

    let mut sessions = Vec::new();
    for (_, recs) in pairs {
        let mut current: Vec<TransferRecord> = Vec::new();
        let mut session_end = i64::MIN;
        for r in recs {
            if !current.is_empty() && r.start_unix_us - session_end > gap_us {
                sessions.push(Session { records: std::mem::take(&mut current) });
                session_end = i64::MIN;
            }
            session_end = session_end.max(r.end_unix_us());
            current.push(r.clone());
        }
        if !current.is_empty() {
            sessions.push(Session { records: current });
        }
    }

    SessionGrouping { sessions, ungroupable, gap_s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::{TransferRecord, TransferType};
    use proptest::prelude::*;

    /// start/duration in seconds for readability.
    fn rec(start_s: f64, dur_s: f64, size: u64, remote: Option<&str>) -> TransferRecord {
        TransferRecord::simple(
            TransferType::Retr,
            size,
            (start_s * 1e6) as i64,
            (dur_s * 1e6) as i64,
            "srv",
            remote,
        )
    }

    #[test]
    fn gap_splits_sessions() {
        // Transfers at 0-10, 15-25, 200-210 with g = 60: first two
        // merge, third is separate.
        let ds = Dataset::from_records(vec![
            rec(0.0, 10.0, 100, Some("p")),
            rec(15.0, 10.0, 100, Some("p")),
            rec(200.0, 10.0, 100, Some("p")),
        ]);
        let g = group_sessions(&ds, 60.0);
        assert_eq!(g.sessions.len(), 2);
        assert_eq!(g.sessions[0].len(), 2);
        assert_eq!(g.sessions[1].len(), 1);
        assert_eq!(g.single_transfer_sessions(), 1);
        assert_eq!(g.multi_transfer_sessions(), 1);
    }

    #[test]
    fn g_zero_requires_contiguity() {
        let ds = Dataset::from_records(vec![
            rec(0.0, 10.0, 100, Some("p")),
            rec(10.0, 10.0, 100, Some("p")), // gap exactly 0
            rec(20.5, 10.0, 100, Some("p")), // gap 0.5 s
        ]);
        let g = group_sessions(&ds, 0.0);
        assert_eq!(g.sessions.len(), 2);
        assert_eq!(g.sessions[0].len(), 2);
    }

    #[test]
    fn negative_gaps_merge_concurrent_transfers() {
        // Four transfers started together (overlapping): one session
        // even at g = 0.
        let ds = Dataset::from_records(vec![
            rec(0.0, 40.0, 100, Some("p")),
            rec(0.1, 42.0, 100, Some("p")),
            rec(0.2, 38.0, 100, Some("p")),
            rec(0.3, 41.0, 100, Some("p")),
        ]);
        let g = group_sessions(&ds, 0.0);
        assert_eq!(g.sessions.len(), 1);
        assert_eq!(g.sessions[0].len(), 4);
    }

    #[test]
    fn session_end_is_max_end_not_last_end() {
        // A long transfer followed by a short one that ends earlier;
        // the next transfer's gap is measured from the *latest* end.
        let ds = Dataset::from_records(vec![
            rec(0.0, 100.0, 100, Some("p")), // ends at 100
            rec(1.0, 5.0, 100, Some("p")),   // ends at 6
            rec(130.0, 5.0, 100, Some("p")), // 30 s after 100
        ]);
        let g = group_sessions(&ds, 60.0);
        assert_eq!(g.sessions.len(), 1, "gap measured from max end (100)");
    }

    #[test]
    fn pairs_partition_sessions() {
        let ds = Dataset::from_records(vec![
            rec(0.0, 10.0, 100, Some("a")),
            rec(1.0, 10.0, 100, Some("b")),
        ]);
        let g = group_sessions(&ds, 3600.0);
        assert_eq!(g.sessions.len(), 2);
    }

    #[test]
    fn anonymized_records_reported_ungroupable() {
        let ds =
            Dataset::from_records(vec![rec(0.0, 10.0, 100, None), rec(1.0, 10.0, 100, Some("p"))]);
        let g = group_sessions(&ds, 60.0);
        assert_eq!(g.ungroupable, 1);
        assert_eq!(g.grouped_transfers(), 1);
    }

    #[test]
    fn session_metrics() {
        let ds = Dataset::from_records(vec![
            rec(0.0, 10.0, 1_000_000, Some("p")),
            rec(12.0, 8.0, 2_000_000, Some("p")),
        ]);
        let g = group_sessions(&ds, 60.0);
        let s = &g.sessions[0];
        assert_eq!(s.size_bytes(), 3_000_000);
        assert!((s.duration_s() - 20.0).abs() < 1e-9);
        // 3 MB over 20 s = 1.2 Mbps
        assert!((s.effective_throughput_mbps().unwrap() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_duration_session_has_no_rate() {
        // A single zero-duration transfer: the session is
        // instantaneous, not "zero throughput". Pre-fix this returned
        // 0.0 and polluted session-rate distributions.
        let ds = Dataset::from_records(vec![rec(5.0, 0.0, 1_000_000, Some("p"))]);
        let g = group_sessions(&ds, 60.0);
        assert_eq!(g.sessions.len(), 1);
        assert_eq!(g.sessions[0].effective_throughput_mbps(), None);
    }

    #[test]
    fn table_iii_counters() {
        let mut recs = vec![rec(0.0, 1.0, 1, Some("p"))];
        for i in 0..150 {
            recs.push(rec(1000.0 + i as f64 * 2.0, 1.0, 1, Some("p")));
        }
        let ds = Dataset::from_records(recs);
        let g = group_sessions(&ds, 60.0);
        assert_eq!(g.sessions.len(), 2);
        assert_eq!(g.max_transfers(), 150);
        assert_eq!(g.sessions_with_at_least(100), 1);
        assert!((g.frac_with_at_most_two() - 0.5).abs() < 1e-12);
    }

    proptest! {
        /// Grouping conserves transfers and never exceeds the gap
        /// bound inside a session.
        #[test]
        fn prop_conservation_and_gap(
            starts in proptest::collection::vec(0.0f64..10_000.0, 1..80),
            durs in proptest::collection::vec(0.1f64..300.0, 80),
            g in 0.0f64..300.0,
        ) {
            let recs: Vec<TransferRecord> = starts
                .iter()
                .zip(&durs)
                .map(|(&s, &d)| rec(s, d, 1, Some("p")))
                .collect();
            let n = recs.len();
            let ds = Dataset::from_records(recs);
            let grouping = group_sessions(&ds, g);
            prop_assert_eq!(grouping.grouped_transfers(), n);
            // Inside each session, every transfer (except the first)
            // starts within g of the running max end.
            for s in &grouping.sessions {
                let mut max_end = s.records[0].end_unix_us();
                for r in &s.records[1..] {
                    prop_assert!(
                        (r.start_unix_us - max_end) as f64 / 1e6 <= g + 1e-6,
                        "gap exceeded inside session"
                    );
                    max_end = max_end.max(r.end_unix_us());
                }
            }
            // Across consecutive sessions of the same pair, the gap
            // must exceed g.
            for w in grouping.sessions.windows(2) {
                let (a, b) = (&w[0], &w[1]);
                if a.records[0].pair_key() == b.records[0].pair_key() {
                    prop_assert!(
                        (b.start_unix_us() - a.end_unix_us()) as f64 / 1e6 > g
                    );
                }
            }
        }
    }
}
