//! Incremental session-sweep engine: the full Table III/IV grid in a
//! single pass.
//!
//! [`group_sessions`](crate::sessions::group_sessions) is the
//! reference implementation: it re-partitions the dataset and clones
//! every record into its session for *each* gap value, so a grid over
//! `|gaps|` values costs O(|gaps| · n log n) with String-heavy copies.
//! This module exploits the monotone structure of the gap parameter
//! instead:
//!
//! * Sessions are **index ranges** over one [`Arc`]-shared record
//!   store, sorted by (server pair, start time). No per-session
//!   clones.
//! * For each pair, the candidate session boundary at position `k` has
//!   a fixed **boundary gap** `start[k] − max(end[0..k])`. A boundary
//!   is active at gap parameter `g` iff its boundary gap exceeds `g` —
//!   so the boundary set shrinks monotonically as `g` grows, and the
//!   sessions at a larger `g` are exactly unions of adjacent sessions
//!   at any smaller `g`.
//! * Sorting the boundaries by their gap once (O(n log n)) lets the
//!   engine walk the requested gap values in ascending order, merging
//!   adjacent sessions as their boundaries dissolve and maintaining
//!   every Table III/IV aggregate incrementally: the whole grid costs
//!   one sort plus O(n · |delays|) merge work, independent of
//!   `|gaps|`.
//! * Pairs are independent, so the merge walk runs in parallel across
//!   server pairs under the `parallel` feature (rayon), combining
//!   per-pair partial aggregates at the end.
//!
//! The proptest in this module and the workload-level test in
//! `tests/sweep_equivalence.rs` pin the engine to the reference
//! implementation cell for cell.

use crate::gap_sensitivity::GapRow;
use crate::vc_suitability::VcSuitability;
use gvc_logs::{Dataset, TransferRecord};
use gvc_stats::quantile;
use gvc_telemetry::{Histogram, SpanTimer, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Pair-record slices below this size are swept sequentially even
/// with the `parallel` feature on (thread spawn outweighs the work).
#[cfg(feature = "parallel")]
const PARALLEL_THRESHOLD_RECORDS: usize = 50_000;

/// One session as a half-open index range into the store's record
/// slab. All records of a range belong to the same server pair and
/// are start-ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRange {
    /// First record index (inclusive).
    pub start: u32,
    /// One past the last record index.
    pub end: u32,
}

impl SessionRange {
    /// Number of transfers in the session.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the range is empty (never produced by the engine).
    pub fn is_empty(self) -> bool {
        self.end == self.start
    }
}

/// A borrowed view of one session: the range plus the shared store,
/// giving the same accessors as [`crate::sessions::Session`] without
/// owning the records.
#[derive(Debug, Clone, Copy)]
pub struct SessionView<'a> {
    records: &'a [TransferRecord],
}

impl<'a> SessionView<'a> {
    /// Number of transfers.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty (never produced by the engine).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The member transfers, in start order.
    pub fn records(&self) -> &'a [TransferRecord] {
        self.records
    }

    /// Session start: first transfer's start (unix µs).
    pub fn start_unix_us(&self) -> i64 {
        self.records.first().map_or(0, |r| r.start_unix_us)
    }

    /// Session end: latest transfer end (unix µs).
    pub fn end_unix_us(&self) -> i64 {
        self.records.iter().map(TransferRecord::end_unix_us).max().unwrap_or(0)
    }

    /// Wall-clock duration, seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_unix_us() - self.start_unix_us()) as f64 / 1e6
    }

    /// Total payload, bytes.
    pub fn size_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size_bytes).sum()
    }

    /// Effective session throughput, Mbps; `None` for an
    /// instantaneous (zero-wall-duration) session.
    pub fn effective_throughput_mbps(&self) -> Option<f64> {
        let d = self.duration_s();
        if d <= 0.0 {
            None
        } else {
            Some(self.size_bytes() as f64 * 8.0 / d / 1e6)
        }
    }
}

/// The shared record store behind a sweep: all records of a dataset,
/// re-sorted so that each server pair's transfers are contiguous and
/// start-ordered, with anonymized (ungroupable) records in a tail
/// region. Building it is the only O(n log n) step; every analysis
/// after that works on index ranges.
#[derive(Debug, Clone)]
pub struct SessionStore {
    /// The slab: groupable records (pair-contiguous, start-sorted)
    /// followed by the ungroupable tail.
    records: Arc<[TransferRecord]>,
    /// Half-open index ranges, one per (server, remote) pair, in
    /// first-seen order.
    pairs: Vec<(u32, u32)>,
    /// Length of the groupable prefix.
    groupable: u32,
}

impl SessionStore {
    /// Builds a store from a dataset (records are cloned once).
    pub fn from_dataset(ds: &Dataset) -> SessionStore {
        SessionStore::from_records(ds.records().to_vec())
    }

    /// Builds a store taking ownership of `records` (no clones).
    pub fn from_records(records: Vec<TransferRecord>) -> SessionStore {
        // Pair ids in first-seen order, so layout is deterministic.
        let mut ids: Vec<u32> = Vec::with_capacity(records.len());
        {
            let mut by_key: HashMap<(&str, &str), u32> = HashMap::new();
            for r in &records {
                let id = match r.pair_key() {
                    None => u32::MAX,
                    Some(k) => {
                        let next = by_key.len() as u32;
                        *by_key.entry(k).or_insert(next)
                    }
                };
                ids.push(id);
            }
        }
        let mut order: Vec<u32> = (0..records.len() as u32).collect();
        order.sort_by_key(|&i| {
            let r = &records[i as usize];
            (ids[i as usize], r.start_unix_us, r.duration_us)
        });
        // Gather into the slab without cloning any record.
        let mut slots: Vec<Option<TransferRecord>> = records.into_iter().map(Some).collect();
        // `order` is a permutation of 0..len, so every take succeeds
        // and the slab keeps the full record count.
        let slab: Vec<TransferRecord> = order
            .iter()
            .filter_map(|&i| slots.get_mut(i as usize).and_then(Option::take))
            .collect();
        let mut pairs = Vec::new();
        let mut groupable = slab.len() as u32;
        let mut run_start = 0u32;
        for w in 0..order.len() {
            let id = ids[order[w] as usize];
            if id == u32::MAX {
                groupable = groupable.min(w as u32);
                continue;
            }
            if w + 1 == order.len() || ids[order[w + 1] as usize] != id {
                pairs.push((run_start, w as u32 + 1));
                run_start = w as u32 + 1;
            }
        }
        SessionStore { records: slab.into(), pairs, groupable }
    }

    /// Every record in the store (groupable prefix, then the
    /// ungroupable tail).
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records with an anonymized remote (not sessionizable).
    pub fn ungroupable(&self) -> usize {
        self.records.len() - self.groupable as usize
    }

    /// Number of distinct (server, remote) pairs.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Zero/negative-duration records (no defined throughput).
    pub fn degenerate_records(&self) -> usize {
        self.records.iter().filter(|r| r.is_degenerate()).count()
    }

    /// Per-transfer throughputs over all records with a defined
    /// throughput — the same multiset as the post-degenerate-fix
    /// [`Dataset::throughputs_mbps`], in store order.
    pub fn throughputs_mbps(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| !r.is_degenerate())
            .map(TransferRecord::throughput_mbps)
            .collect()
    }

    /// A borrowed view of the session covering `range`.
    pub fn session(&self, range: SessionRange) -> SessionView<'_> {
        SessionView { records: &self.records[range.start as usize..range.end as usize] }
    }

    /// Sessions at one gap value, as index ranges (pair order, then
    /// start order). Runs in O(n); no records are cloned.
    pub fn sessions_at(&self, gap_s: f64) -> Vec<SessionRange> {
        let gap_us = gap_to_us(gap_s);
        let mut out = Vec::new();
        for &(lo, hi) in &self.pairs {
            let recs = &self.records[lo as usize..hi as usize];
            let Some(first) = recs.first() else { continue };
            let mut session_start = lo;
            let mut max_end = first.end_unix_us();
            for (k, r) in recs.iter().enumerate().skip(1) {
                if r.start_unix_us - max_end > gap_us {
                    out.push(SessionRange { start: session_start, end: lo + k as u32 });
                    session_start = lo + k as u32;
                }
                max_end = max_end.max(r.end_unix_us());
            }
            out.push(SessionRange { start: session_start, end: hi });
        }
        out
    }

    /// Runs the full sweep: Table III rows for every gap and Table IV
    /// cells for every (gap, setup delay) combination, in a single
    /// monotone-merge pass over the store.
    pub fn sweep(
        &self,
        gaps_s: &[f64],
        setup_delays_s: &[f64],
        overhead_factor: f64,
    ) -> SweepResult {
        // q3 of the transfer-throughput distribution (degenerate
        // records excluded) — identical to what `vc_suitability`
        // derives from the dataset.
        let q3_mbps = quantile(&self.throughputs_mbps(), 0.75).unwrap_or(0.0);
        let ctx = SweepCtx {
            store: self,
            // Ascending gap order is what makes merges monotone;
            // remember each gap's slot in the caller's order.
            gap_order: {
                let mut idx: Vec<usize> = (0..gaps_s.len()).collect();
                idx.sort_by(|&a, &b| gaps_s[a].total_cmp(&gaps_s[b]));
                idx.iter().map(|&i| (gap_to_us(gaps_s[i]), i)).collect()
            },
            thresholds_s: setup_delays_s.iter().map(|&d| overhead_factor * d).collect(),
            q3_bps: q3_mbps * 1e6,
        };
        let aggs = sweep_pairs(&ctx, &self.pairs);

        let total_transfers = self.groupable as usize;
        let gap_rows = gaps_s
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let a = &aggs[i];
                GapRow {
                    gap_s: g,
                    sessions: a.sessions,
                    single_transfer: a.singles,
                    multi_transfer: a.sessions - a.singles,
                    pct_with_1_or_2: if a.sessions == 0 {
                        0.0
                    } else {
                        a.le2 as f64 / a.sessions as f64 * 100.0
                    },
                    max_transfers: a.max_transfers,
                    with_100_plus: a.with_100_plus,
                }
            })
            .collect();
        let mut cells = Vec::with_capacity(gaps_s.len() * setup_delays_s.len());
        for (gi, &g) in gaps_s.iter().enumerate() {
            for (di, &d) in setup_delays_s.iter().enumerate() {
                cells.push(VcSuitability {
                    setup_delay_s: d,
                    gap_s: g,
                    q3_throughput_mbps: q3_mbps,
                    suitable_sessions: aggs[gi].suitable_sessions[di],
                    total_sessions: aggs[gi].sessions,
                    suitable_transfers: aggs[gi].suitable_transfers[di],
                    total_transfers,
                });
            }
        }
        SweepResult {
            gap_rows,
            cells,
            q3_throughput_mbps: q3_mbps,
            total_transfers,
            ungroupable: self.ungroupable(),
            degenerate_records: self.degenerate_records(),
        }
    }

    /// [`SessionStore::sweep`] instrumented with the telemetry spine:
    /// a `analysis_sweep_duration_seconds` histogram sample plus
    /// records/sessions/cells counters.
    pub fn sweep_with_telemetry(
        &self,
        gaps_s: &[f64],
        setup_delays_s: &[f64],
        overhead_factor: f64,
        telemetry: &Telemetry,
    ) -> SweepResult {
        let hist =
            telemetry.registry.histogram("analysis_sweep_duration_seconds", &[], Histogram::timing);
        let result = {
            let _timer = SpanTimer::start(&hist);
            let mut perf_phase = telemetry.perf.phase("sweep");
            perf_phase.items(self.len() as u64);
            self.sweep(gaps_s, setup_delays_s, overhead_factor)
        };
        let reg = &telemetry.registry;
        reg.counter("analysis_sweep_records_total", &[]).add(self.len() as u64);
        reg.counter("analysis_sweep_sessions_total", &[])
            .add(result.gap_rows.iter().map(|r| r.sessions as u64).sum());
        reg.counter("analysis_sweep_cells_total", &[]).add(result.cells.len() as u64);
        result
    }
}

/// Output of one sweep: Table III rows and Table IV cells for the
/// whole grid, plus the data-quality counts callers surface in
/// reports.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One Table III row per requested gap, in the caller's order.
    pub gap_rows: Vec<GapRow>,
    /// Table IV cells in `for gap { for delay }` order.
    pub cells: Vec<VcSuitability>,
    /// The q3 transfer throughput used as the hypothetical rate, Mbps.
    pub q3_throughput_mbps: f64,
    /// Transfers inside sessions (the groupable count).
    pub total_transfers: usize,
    /// Records with an anonymized remote (not sessionizable).
    pub ungroupable: usize,
    /// Zero/negative-duration records (excluded from the throughput
    /// distribution).
    pub degenerate_records: usize,
}

impl SweepResult {
    /// The cell for a given gap and setup delay (seconds).
    pub fn cell(&self, gap_s: f64, setup_delay_s: f64) -> Option<&VcSuitability> {
        self.cells.iter().find(|c| c.gap_s == gap_s && c.setup_delay_s == setup_delay_s)
    }
}

/// Sweeps a dataset directly (builds a throwaway store). When several
/// analyses run over the same dataset, build one [`SessionStore`] and
/// reuse it instead.
pub fn sweep_dataset(
    ds: &Dataset,
    gaps_s: &[f64],
    setup_delays_s: &[f64],
    overhead_factor: f64,
) -> SweepResult {
    SessionStore::from_dataset(ds).sweep(gaps_s, setup_delays_s, overhead_factor)
}

/// The same µs conversion `group_sessions` applies, so both paths
/// split on exactly the same boundaries.
fn gap_to_us(gap_s: f64) -> i64 {
    (gap_s * 1e6).round() as i64
}

/// Shared inputs of every per-pair walk.
struct SweepCtx<'a> {
    store: &'a SessionStore,
    /// `(gap_us, output slot)` in ascending gap order.
    gap_order: Vec<(i64, usize)>,
    /// `overhead_factor × delay` per requested delay.
    thresholds_s: Vec<f64>,
    q3_bps: f64,
}

impl SweepCtx<'_> {
    /// The suitability test, spelled exactly like `vc_suitability`'s
    /// so float rounding can never diverge between the two paths.
    fn suitable(&self, size_bytes: u64, threshold_s: f64) -> bool {
        self.q3_bps > 0.0 && size_bytes as f64 * 8.0 / self.q3_bps >= threshold_s
    }
}

/// Aggregates for one gap value (summed over pairs).
#[derive(Debug, Clone)]
struct GapAgg {
    sessions: usize,
    singles: usize,
    /// Sessions with ≤ 2 transfers.
    le2: usize,
    max_transfers: usize,
    with_100_plus: usize,
    /// Per requested delay: suitable sessions / transfers-in-suitable.
    suitable_sessions: Vec<usize>,
    suitable_transfers: Vec<usize>,
}

impl GapAgg {
    fn zero(n_delays: usize) -> GapAgg {
        GapAgg {
            sessions: 0,
            singles: 0,
            le2: 0,
            max_transfers: 0,
            with_100_plus: 0,
            suitable_sessions: vec![0; n_delays],
            suitable_transfers: vec![0; n_delays],
        }
    }

    /// Adds `other` into `self` (cross-pair combination).
    fn absorb(&mut self, other: &GapAgg) {
        self.sessions += other.sessions;
        self.singles += other.singles;
        self.le2 += other.le2;
        self.max_transfers = self.max_transfers.max(other.max_transfers);
        self.with_100_plus += other.with_100_plus;
        for (a, b) in self.suitable_sessions.iter_mut().zip(&other.suitable_sessions) {
            *a += b;
        }
        for (a, b) in self.suitable_transfers.iter_mut().zip(&other.suitable_transfers) {
            *a += b;
        }
    }
}

/// Sweeps a slice of pairs, splitting across threads when the record
/// count justifies it. Returns one aggregate per requested gap
/// (ascending-slot order matching `ctx.gap_order`'s output slots —
/// i.e. indexed by the caller's original gap positions).
fn sweep_pairs(ctx: &SweepCtx<'_>, pairs: &[(u32, u32)]) -> Vec<GapAgg> {
    #[cfg(feature = "parallel")]
    {
        let total: usize = pairs.iter().map(|&(lo, hi)| (hi - lo) as usize).sum();
        if pairs.len() > 1 && total > PARALLEL_THRESHOLD_RECORDS {
            let mid = pairs.len() / 2;
            let (mut a, b) =
                rayon::join(|| sweep_pairs(ctx, &pairs[..mid]), || sweep_pairs(ctx, &pairs[mid..]));
            for (x, y) in a.iter_mut().zip(&b) {
                x.absorb(y);
            }
            return a;
        }
    }
    let n_gaps = ctx.gap_order.len();
    let mut out = vec![GapAgg::zero(ctx.thresholds_s.len()); n_gaps];
    for &(lo, hi) in pairs {
        sweep_pair(ctx, lo, hi, &mut out);
    }
    out
}

/// The monotone-merge walk over one pair's records: start from
/// every-record-is-a-session, dissolve boundaries in ascending
/// boundary-gap order, and snapshot the running aggregate into each
/// requested gap's slot as the walk passes it.
fn sweep_pair(ctx: &SweepCtx<'_>, lo: u32, hi: u32, out: &mut [GapAgg]) {
    let recs = &ctx.store.records[lo as usize..hi as usize];
    let m = recs.len();
    let n_delays = ctx.thresholds_s.len();

    // Prefix payload sums: any range's size in O(1).
    let mut psize = vec![0u64; m + 1];
    for (i, r) in recs.iter().enumerate() {
        psize[i + 1] = psize[i] + r.size_bytes;
    }

    // Boundary gaps: position k splits sessions at parameter g iff
    // start[k] − max(end[0..k]) > g.
    let mut boundaries: Vec<(i64, u32)> = Vec::with_capacity(m.saturating_sub(1));
    let Some(first) = recs.first() else { return };
    let mut max_end = first.end_unix_us();
    for (k, r) in recs.iter().enumerate().skip(1) {
        boundaries.push((r.start_unix_us - max_end, k as u32));
        max_end = max_end.max(r.end_unix_us());
    }
    boundaries.sort_unstable();

    // Doubly linked list over active session starts (positions).
    // next[s] = start of the following session (m = none);
    // prev[s] = start of the preceding session (only valid while s is
    // an active non-zero session start).
    let mut next: Vec<u32> = (1..=m as u32).collect();
    let mut prev: Vec<u32> = (0..m as u32).map(|i| i.wrapping_sub(1)).collect();

    // Initial state: every record its own session.
    let mut agg = GapAgg::zero(n_delays);
    agg.sessions = m;
    agg.singles = m;
    agg.le2 = m;
    agg.max_transfers = 1;
    for r in recs {
        for (d, &thr) in ctx.thresholds_s.iter().enumerate() {
            if ctx.suitable(r.size_bytes, thr) {
                agg.suitable_sessions[d] += 1;
                agg.suitable_transfers[d] += 1;
            }
        }
    }

    let mut bi = 0usize;
    for &(gap_us, slot) in &ctx.gap_order {
        while bi < boundaries.len() && boundaries[bi].0 <= gap_us {
            let p = boundaries[bi].1 as usize;
            bi += 1;
            // Invariant: p is still an active session start — its own
            // boundary dissolves exactly once, and merges elsewhere
            // never promote or demote p.
            let l = prev[p] as usize;
            let r_end = next[p] as usize;
            let (len_l, len_r) = (p - l, r_end - p);
            let len_n = len_l + len_r;
            let (size_l, size_r) = (psize[p] - psize[l], psize[r_end] - psize[p]);
            let size_n = size_l + size_r;

            agg.sessions -= 1;
            agg.singles -= usize::from(len_l == 1) + usize::from(len_r == 1);
            agg.le2 += usize::from(len_n <= 2);
            agg.le2 -= usize::from(len_l <= 2) + usize::from(len_r <= 2);
            agg.with_100_plus += usize::from(len_n >= 100);
            agg.with_100_plus -= usize::from(len_l >= 100) + usize::from(len_r >= 100);
            agg.max_transfers = agg.max_transfers.max(len_n);
            for (d, &thr) in ctx.thresholds_s.iter().enumerate() {
                let (sl, sr) = (ctx.suitable(size_l, thr), ctx.suitable(size_r, thr));
                let sn = ctx.suitable(size_n, thr);
                // Suitability is monotone in size, so sn ≥ sl|sr and
                // the adds happen before the subtracts underflow.
                agg.suitable_sessions[d] += usize::from(sn);
                agg.suitable_sessions[d] -= usize::from(sl) + usize::from(sr);
                agg.suitable_transfers[d] += len_n * usize::from(sn);
                agg.suitable_transfers[d] -= len_l * usize::from(sl) + len_r * usize::from(sr);
            }

            next[l] = r_end as u32;
            if r_end < m {
                prev[r_end] = l as u32;
            }
        }
        out[slot].absorb(&agg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap_sensitivity::GapRow;
    use crate::sessions::group_sessions;
    use crate::vc_suitability::vc_suitability;
    use gvc_logs::{TransferRecord, TransferType};
    use proptest::prelude::*;

    fn rec(start_s: f64, dur_s: f64, size: u64, remote: Option<&str>) -> TransferRecord {
        TransferRecord::simple(
            TransferType::Retr,
            size,
            (start_s * 1e6) as i64,
            (dur_s * 1e6) as i64,
            "srv",
            remote,
        )
    }

    /// Table III rows the slow way: one `group_sessions` per gap.
    fn legacy_rows(ds: &Dataset, gaps: &[f64]) -> Vec<GapRow> {
        gaps.iter()
            .map(|&g| {
                let grouping = group_sessions(ds, g);
                GapRow {
                    gap_s: g,
                    sessions: grouping.sessions.len(),
                    single_transfer: grouping.single_transfer_sessions(),
                    multi_transfer: grouping.multi_transfer_sessions(),
                    pct_with_1_or_2: grouping.frac_with_at_most_two() * 100.0,
                    max_transfers: grouping.max_transfers(),
                    with_100_plus: grouping.sessions_with_at_least(100),
                }
            })
            .collect()
    }

    /// Table IV cells the slow way: regroup per gap, then score.
    fn legacy_cells(ds: &Dataset, gaps: &[f64], delays: &[f64], factor: f64) -> Vec<VcSuitability> {
        let mut out = Vec::new();
        for &g in gaps {
            let grouping = group_sessions(ds, g);
            for &d in delays {
                out.push(vc_suitability(&grouping, ds, d, factor));
            }
        }
        out
    }

    fn mixed_dataset() -> Dataset {
        Dataset::from_records(vec![
            rec(0.0, 10.0, 1_000_000_000, Some("a")),
            rec(15.0, 10.0, 500_000_000, Some("a")),
            rec(200.0, 5.0, 2_000_000, Some("a")),
            rec(0.0, 40.0, 100_000_000, Some("b")),
            rec(0.1, 42.0, 100_000_000, Some("b")),
            rec(400.0, 1.0, 1_000, Some("b")),
            rec(3.0, 9.0, 50_000_000, None), // anonymized
        ])
    }

    #[test]
    fn store_layout_partitions_pairs() {
        let ds = mixed_dataset();
        let store = SessionStore::from_dataset(&ds);
        assert_eq!(store.len(), 7);
        assert_eq!(store.n_pairs(), 2);
        assert_eq!(store.ungroupable(), 1);
        // Pair ranges cover the groupable prefix exactly.
        let covered: usize = store.pairs.iter().map(|&(l, h)| (h - l) as usize).sum();
        assert_eq!(covered, 6);
        for &(l, h) in &store.pairs {
            let recs = &store.records()[l as usize..h as usize];
            let key = recs[0].pair_key();
            assert!(recs.iter().all(|r| r.pair_key() == key));
            assert!(recs.windows(2).all(|w| w[0].start_unix_us <= w[1].start_unix_us));
        }
    }

    #[test]
    fn sessions_at_matches_group_sessions() {
        let ds = mixed_dataset();
        let store = SessionStore::from_dataset(&ds);
        for &g in &[0.0, 30.0, 60.0, 1000.0] {
            let ranges = store.sessions_at(g);
            let legacy = group_sessions(&ds, g);
            assert_eq!(ranges.len(), legacy.sessions.len(), "g={g}");
            // Compare as multisets of (len, size, start).
            let mut a: Vec<_> = ranges
                .iter()
                .map(|&r| {
                    let v = store.session(r);
                    (v.len(), v.size_bytes(), v.start_unix_us())
                })
                .collect();
            let mut b: Vec<_> = legacy
                .sessions
                .iter()
                .map(|s| (s.len(), s.size_bytes(), s.start_unix_us()))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "g={g}");
        }
    }

    #[test]
    fn sweep_matches_legacy_on_mixed_dataset() {
        let ds = mixed_dataset();
        let gaps = [120.0, 0.0, 60.0, 17.5]; // deliberately unsorted
        let delays = [60.0, 0.05, 0.0];
        let result = sweep_dataset(&ds, &gaps, &delays, 10.0);
        assert_eq!(result.gap_rows, legacy_rows(&ds, &gaps));
        assert_eq!(result.cells, legacy_cells(&ds, &gaps, &delays, 10.0));
        assert_eq!(result.ungroupable, 1);
        assert_eq!(result.total_transfers, 6);
    }

    #[test]
    fn sweep_empty_dataset() {
        let result = sweep_dataset(&Dataset::new(), &[0.0, 60.0], &[60.0], 10.0);
        assert_eq!(result.gap_rows.len(), 2);
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.gap_rows[0].sessions, 0);
        assert_eq!(result.cells[0].total_sessions, 0);
        assert_eq!(result.q3_throughput_mbps, 0.0);
    }

    #[test]
    fn sweep_counts_degenerates_without_biasing_q3() {
        // Three healthy 8 Mbps transfers, one zero-duration record.
        let ds = Dataset::from_records(vec![
            rec(0.0, 10.0, 10_000_000, Some("a")),
            rec(1000.0, 10.0, 10_000_000, Some("a")),
            rec(2000.0, 10.0, 10_000_000, Some("a")),
            rec(3000.0, 0.0, 10_000_000, Some("a")),
        ]);
        let result = sweep_dataset(&ds, &[60.0], &[60.0], 10.0);
        assert_eq!(result.degenerate_records, 1);
        assert!((result.q3_throughput_mbps - 8.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_telemetry_counters() {
        let ds = mixed_dataset();
        let telemetry = Telemetry::metrics_only();
        let store = SessionStore::from_dataset(&ds);
        let result = store.sweep_with_telemetry(&[0.0, 60.0], &[60.0, 0.05], 10.0, &telemetry);
        let rendered = telemetry.registry.render();
        assert!(rendered.contains("analysis_sweep_records_total 7"), "{rendered}");
        assert!(rendered.contains("analysis_sweep_duration_seconds_count 1"), "{rendered}");
        let sessions: u64 = result.gap_rows.iter().map(|r| r.sessions as u64).sum();
        assert!(
            rendered.contains(&format!("analysis_sweep_sessions_total {sessions}")),
            "{rendered}"
        );
        assert!(rendered.contains("analysis_sweep_cells_total 4"), "{rendered}");
    }

    proptest! {
        /// The engine and the per-gap reference implementation agree
        /// cell for cell on arbitrary workloads and grids.
        #[test]
        fn prop_sweep_equals_legacy(
            starts in proptest::collection::vec(0.0f64..5_000.0, 1..60),
            durs in proptest::collection::vec(0.0f64..300.0, 60),
            sizes in proptest::collection::vec(0u64..5_000_000_000, 60),
            pair in proptest::collection::vec(0u8..3, 60),
            gaps in proptest::collection::vec(0.0f64..400.0, 1..5),
            delays in proptest::collection::vec(0.0f64..100.0, 1..4),
        ) {
            let recs: Vec<TransferRecord> = starts
                .iter()
                .zip(&durs)
                .zip(&sizes)
                .zip(&pair)
                .map(|(((&s, &d), &z), &p)| {
                    let remote = match p {
                        0 => Some("pa"),
                        1 => Some("pb"),
                        _ => None,
                    };
                    rec(s, d, z, remote)
                })
                .collect();
            let ds = Dataset::from_records(recs);
            let result = sweep_dataset(&ds, &gaps, &delays, 10.0);
            prop_assert_eq!(&result.gap_rows, &legacy_rows(&ds, &gaps));
            prop_assert_eq!(&result.cells, &legacy_cells(&ds, &gaps, &delays, 10.0));
        }
    }
}
