//! The paper's contribution: GridFTP transfer-log analysis for
//! dynamic virtual-circuit feasibility.
//!
//! Every analysis in the SC 2012 paper is implemented here, each in
//! its own module, operating on [`gvc_logs::Dataset`] values (real or
//! simulator-generated):
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`sessions`] | §V/§VI-A session grouping with the gap parameter `g` |
//! | [`tables`] | Tables I, II, V, VI, VII (descriptive summaries) |
//! | [`gap_sensitivity`] | Table III (session counts vs `g`) |
//! | [`mod@vc_suitability`] | Table IV (% sessions/transfers that tolerate VC setup delay) |
//! | [`factors`] | Tables VIII, IX (year- and stripe-based throughput) |
//! | [`stream_analysis`] | Figs. 3, 4, 5 (streams × file-size bins) |
//! | [`time_of_day`] | Fig. 6 (throughput vs start hour) |
//! | [`snmp_attr`] | Eq. 1, Tables X, XIII (byte attribution, link load) |
//! | [`snmp_corr`] | Tables XI, XII (GridFTP vs SNMP correlations) |
//! | [`concurrency`] | Eq. 2, Figs. 7, 8 (concurrent-transfer prediction) |
//! | [`scatter`] | Fig. 2 (throughput vs file size) |
//! | [`report`] | finding (i): the headline feasibility numbers |
//! | [`session_stats`] | §VI-A session call-outs + Table VIII trend fits |
//! | [`sweep`] | incremental session-sweep engine: the whole Table III/IV grid in one pass |

pub mod concurrency;
pub mod factors;
pub mod gap_sensitivity;
pub mod report;
pub mod scatter;
pub mod session_stats;
pub mod sessions;
pub mod snmp_attr;
pub mod snmp_corr;
pub mod stream_analysis;
pub mod sweep;
pub mod tables;
pub mod time_of_day;
pub mod vc_suitability;

pub use report::{feasibility_report, FeasibilityReport, ResilienceSummary};
pub use sessions::{group_sessions, Session, SessionGrouping};
pub use sweep::{sweep_dataset, SessionRange, SessionStore, SessionView, SweepResult};
pub use vc_suitability::{vc_suitability, VcSuitability};
