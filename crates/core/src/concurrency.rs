//! Eq. 2 and Figs. 7–8: the impact of concurrent GridFTP transfers.
//!
//! §VII-D: "For each of the 84 memory-to-memory transfers, the
//! duration is divided into intervals based on the number of
//! concurrent transfers being executed by the NERSC GridFTP server"
//! (Fig. 7), and a predicted throughput is computed by sharing a
//! hypothetical server capacity `R` among the concurrent transfers in
//! each interval, weighted by their recorded throughputs:
//!
//! ```text
//! t̂_i = (R / D_i) · Σ_j  d_ij · t_i / Σ_{k=1}^{n_ij} t_k
//! ```
//!
//! The paper's headline is the correlation ρ ≈ 0.62 between `t̂` and
//! actual throughput, with R chosen as the 90th-percentile transfer
//! throughput; "the choice of R impacts the predicted throughput plot,
//! but it does not impact correlation."

use gvc_logs::{Dataset, TransferRecord};
use gvc_stats::{pearson, quantile};

/// One constant-concurrency interval within a transfer's duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrencyInterval {
    /// Interval start, unix µs.
    pub start_us: i64,
    /// Interval length, seconds (`d_ij`).
    pub duration_s: f64,
    /// Number of transfers in flight at the logging server, including
    /// the target itself (`n_ij`).
    pub concurrent: usize,
}

/// Transfers at the same *server* overlapping instant `t` (half-open
/// intervals).
fn active_at(ds: &Dataset, server: &str, t: i64) -> Vec<usize> {
    ds.records()
        .iter()
        .enumerate()
        .filter(|(_, r)| r.server == server && r.start_unix_us <= t && r.end_unix_us() > t)
        .map(|(i, _)| i)
        .collect()
}

/// Fig. 7: the concurrency profile of one transfer — the piecewise-
/// constant number of concurrent transfers at its server across its
/// duration.
pub fn concurrency_profile(ds: &Dataset, target: &TransferRecord) -> Vec<ConcurrencyInterval> {
    let (s, e) = (target.start_unix_us, target.end_unix_us());
    if e <= s {
        return Vec::new();
    }
    // Breakpoints: every other transfer's start/end inside (s, e).
    let mut points = vec![s, e];
    for r in ds.records() {
        if r.server != target.server {
            continue;
        }
        for t in [r.start_unix_us, r.end_unix_us()] {
            if t > s && t < e {
                points.push(t);
            }
        }
    }
    points.sort_unstable();
    points.dedup();
    points
        .iter()
        .zip(points.iter().skip(1))
        .map(|(&lo, &hi)| ConcurrencyInterval {
            start_us: lo,
            duration_s: (hi - lo) as f64 / 1e6,
            concurrent: active_at(ds, &target.server, lo).len(),
        })
        .collect()
}

/// Eq. 2: predicted throughput (Mbps) of `target` given server
/// capacity `r_mbps`, sharing `R` across concurrent transfers in
/// proportion to their recorded throughputs.
pub fn predict_throughput_mbps(ds: &Dataset, target: &TransferRecord, r_mbps: f64) -> f64 {
    let d_i = target.duration_s();
    if d_i <= 0.0 {
        return 0.0;
    }
    let t_i = target.throughput_mbps();
    let recs = ds.records();
    let mut acc = 0.0;
    for iv in concurrency_profile(ds, target) {
        let active = active_at(ds, &target.server, iv.start_us);
        let denom: f64 = active.iter().map(|&k| recs[k].throughput_mbps()).sum();
        if denom > 0.0 {
            acc += iv.duration_s * t_i / denom;
        }
    }
    r_mbps * acc / d_i
}

/// The Fig. 8 analysis over a set of target transfers.
#[derive(Debug, Clone)]
pub struct PredictionAnalysis {
    /// `(actual, predicted)` throughput pairs, Mbps, in target order.
    pub points: Vec<(f64, f64)>,
    /// Overall Pearson ρ between predicted and actual.
    pub rho: Option<f64>,
    /// ρ per actual-throughput quartile.
    pub per_quartile_rho: [Option<f64>; 4],
    /// The `R` used, Mbps.
    pub r_mbps: f64,
}

/// Runs the Eq. 2 prediction for every transfer in `targets`
/// (typically the mem-mem test transfers), with concurrency computed
/// against the full server log `ds`. `R` defaults to the
/// 90th-percentile throughput of the targets when `r_mbps` is `None`.
pub fn prediction_analysis(
    ds: &Dataset,
    targets: &Dataset,
    r_mbps: Option<f64>,
) -> PredictionAnalysis {
    // One value per target record (positional alignment with
    // `predicted` matters; `throughputs_mbps()` drops degenerates).
    let actual: Vec<f64> =
        targets.records().iter().map(gvc_logs::TransferRecord::throughput_mbps).collect();
    let r = r_mbps.unwrap_or_else(|| quantile(&actual, 0.90).unwrap_or(0.0));
    let predicted: Vec<f64> =
        targets.records().iter().map(|t| predict_throughput_mbps(ds, t, r)).collect();
    let points: Vec<(f64, f64)> = actual.iter().copied().zip(predicted.iter().copied()).collect();

    // Quartiles by actual throughput.
    let q1 = quantile(&actual, 0.25).unwrap_or(0.0);
    let q2 = quantile(&actual, 0.50).unwrap_or(0.0);
    let q3 = quantile(&actual, 0.75).unwrap_or(0.0);
    let mut quartiles: [Vec<usize>; 4] = Default::default();
    for (i, &a) in actual.iter().enumerate() {
        let q = if a <= q1 {
            0
        } else if a <= q2 {
            1
        } else if a <= q3 {
            2
        } else {
            3
        };
        quartiles[q].push(i);
    }
    let corr_of = |idx: &[usize]| {
        let x: Vec<f64> = idx.iter().map(|&i| actual[i]).collect();
        let y: Vec<f64> = idx.iter().map(|&i| predicted[i]).collect();
        pearson(&x, &y)
    };
    let [qa, qb, qc, qd] = &quartiles;
    PredictionAnalysis {
        rho: pearson(&actual, &predicted),
        per_quartile_rho: [corr_of(qa), corr_of(qb), corr_of(qc), corr_of(qd)],
        points,
        r_mbps: r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::TransferType;

    fn rec(start_s: f64, dur_s: f64, size: u64) -> TransferRecord {
        TransferRecord::simple(
            TransferType::Retr,
            size,
            (start_s * 1e6) as i64,
            (dur_s * 1e6) as i64,
            "nersc",
            Some("anl"),
        )
    }

    #[test]
    fn profile_of_isolated_transfer() {
        let t = rec(10.0, 20.0, 1_000);
        let ds = Dataset::from_records(vec![t.clone()]);
        let p = concurrency_profile(&ds, &t);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].concurrent, 1);
        assert!((p[0].duration_s - 20.0).abs() < 1e-9);
    }

    #[test]
    fn profile_detects_overlaps() {
        // Target [0, 30); competitor [10, 20): intervals of
        // concurrency 1, 2, 1.
        let target = rec(0.0, 30.0, 1_000);
        let other = rec(10.0, 10.0, 1_000);
        let ds = Dataset::from_records(vec![target.clone(), other]);
        let p = concurrency_profile(&ds, &target);
        assert_eq!(p.len(), 3);
        assert_eq!(p.iter().map(|iv| iv.concurrent).collect::<Vec<_>>(), vec![1, 2, 1]);
        let total: f64 = p.iter().map(|iv| iv.duration_s).sum();
        assert!((total - 30.0).abs() < 1e-9);
    }

    #[test]
    fn other_servers_ignored() {
        let target = rec(0.0, 30.0, 1_000);
        let mut other = rec(5.0, 10.0, 1_000);
        other.server = "elsewhere".into();
        let ds = Dataset::from_records(vec![target.clone(), other]);
        let p = concurrency_profile(&ds, &target);
        assert!(p.iter().all(|iv| iv.concurrent == 1));
    }

    #[test]
    fn solo_prediction_equals_r() {
        // A transfer alone the whole time: t̂ = R · (d/D) · t/t = R.
        let t = rec(0.0, 100.0, 10_000_000_000);
        let ds = Dataset::from_records(vec![t.clone()]);
        let pred = predict_throughput_mbps(&ds, &t, 2190.0);
        assert!((pred - 2190.0).abs() < 1e-6);
    }

    #[test]
    fn equal_competitors_halve_prediction() {
        // Two identical fully-overlapping transfers: each predicted R/2.
        let a = rec(0.0, 100.0, 5_000_000_000);
        let b = rec(0.0, 100.0, 5_000_000_000);
        let ds = Dataset::from_records(vec![a.clone(), b]);
        let pred = predict_throughput_mbps(&ds, &a, 2000.0);
        assert!((pred - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn prediction_correlates_when_concurrency_drives_throughput() {
        // Build a log where actual throughput really is R shared
        // equally among the k overlapping transfers: prediction should
        // correlate strongly.
        let mut recs = Vec::new();
        let mut start = 0.0;
        for batch in 1..=8usize {
            // `batch` fully-overlapping transfers, each getting
            // 1000/batch Mbps; 1 GB each.
            let tp_mbps = 1000.0 / batch as f64;
            let size = 1_000_000_000u64;
            let dur = size as f64 * 8.0 / (tp_mbps * 1e6);
            for _ in 0..batch {
                recs.push(rec(start, dur, size));
            }
            start += dur + 100.0;
        }
        let ds = Dataset::from_records(recs);
        let analysis = prediction_analysis(&ds, &ds, Some(1000.0));
        assert!(analysis.rho.unwrap() > 0.95, "{:?}", analysis.rho);
        assert_eq!(analysis.points.len(), ds.len());
    }

    #[test]
    fn default_r_is_90th_percentile() {
        let ds = Dataset::from_records(
            (1..=10).map(|k| rec(k as f64 * 1000.0, 10.0, k * 125_000_000)).collect(),
        );
        let analysis = prediction_analysis(&ds, &ds, None);
        let expected = quantile(&ds.throughputs_mbps(), 0.90).unwrap();
        assert!((analysis.r_mbps - expected).abs() < 1e-9);
    }

    #[test]
    fn degenerate_target() {
        let mut t = rec(0.0, 0.0, 100);
        t.duration_us = 0;
        let ds = Dataset::from_records(vec![t.clone()]);
        assert_eq!(predict_throughput_mbps(&ds, &t, 1000.0), 0.0);
        assert!(concurrency_profile(&ds, &t).is_empty());
    }
}
