//! Table IV: the fraction of sessions (and transfers) that can
//! tolerate dynamic-VC setup delay.
//!
//! The paper's methodology (§VI-A): "Instead of considering the actual
//! durations of sessions, which could be high because of other factors
//! such as disk I/O access rates, new hypothetical durations are
//! computed by dividing session sizes by the third quartile of
//! transfer throughput. The question posed is for what percentage of
//! the sessions would the VC setup delay overhead represent one-tenth
//! or less of session durations…" — i.e. a session is VC-suitable iff
//!
//! ```text
//! size / q3_throughput ≥ overhead_factor × setup_delay
//! ```
//!
//! with `overhead_factor = 10`.

use crate::sessions::SessionGrouping;
use gvc_logs::Dataset;
use gvc_stats::quantile;

/// The paper's "one-tenth or less of session duration" rule.
pub const DEFAULT_OVERHEAD_FACTOR: f64 = 10.0;

/// Result of the suitability analysis for one (g, setup-delay) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcSuitability {
    /// Setup delay assumed, seconds.
    pub setup_delay_s: f64,
    /// Gap parameter used for the underlying grouping, seconds.
    pub gap_s: f64,
    /// The q3 transfer throughput used as the hypothetical rate, Mbps.
    pub q3_throughput_mbps: f64,
    /// Sessions suitable / total sessions.
    pub suitable_sessions: usize,
    /// Total sessions.
    pub total_sessions: usize,
    /// Transfers inside suitable sessions.
    pub suitable_transfers: usize,
    /// Total transfers in sessions.
    pub total_transfers: usize,
}

impl VcSuitability {
    /// Percent of sessions suitable (the Table IV headline cell).
    pub fn pct_sessions(&self) -> f64 {
        if self.total_sessions == 0 {
            0.0
        } else {
            self.suitable_sessions as f64 / self.total_sessions as f64 * 100.0
        }
    }

    /// Percent of transfers inside suitable sessions (Table IV's
    /// parenthesized numbers).
    pub fn pct_transfers(&self) -> f64 {
        if self.total_transfers == 0 {
            0.0
        } else {
            self.suitable_transfers as f64 / self.total_transfers as f64 * 100.0
        }
    }
}

/// Runs the Table IV analysis for one grouping and setup delay.
///
/// `ds` supplies the transfer-throughput distribution (its q3 becomes
/// the hypothetical session rate).
pub fn vc_suitability(
    grouping: &SessionGrouping,
    ds: &Dataset,
    setup_delay_s: f64,
    overhead_factor: f64,
) -> VcSuitability {
    let q3_mbps = quantile(&ds.throughputs_mbps(), 0.75).unwrap_or(0.0);
    let q3_bps = q3_mbps * 1e6;
    let threshold_s = overhead_factor * setup_delay_s;
    let mut suitable_sessions = 0usize;
    let mut suitable_transfers = 0usize;
    let mut total_transfers = 0usize;
    for s in &grouping.sessions {
        total_transfers += s.len();
        // Degenerate q3 (empty or all-degenerate throughput
        // distribution): there is no rate to extrapolate hypothetical
        // durations from, so no session can be judged suitable.
        // Without this guard, a zero q3 plus a zero setup delay made
        // the test read `0.0 >= 0.0` and marked *every* session —
        // including zero-byte ones — suitable.
        let suitable = q3_bps > 0.0 && s.size_bytes() as f64 * 8.0 / q3_bps >= threshold_s;
        if suitable {
            suitable_sessions += 1;
            suitable_transfers += s.len();
        }
    }
    VcSuitability {
        setup_delay_s,
        gap_s: grouping.gap_s,
        q3_throughput_mbps: q3_mbps,
        suitable_sessions,
        total_sessions: grouping.sessions.len(),
        suitable_transfers,
        total_transfers,
    }
}

/// The full Table IV grid: every (g, setup delay) combination, in
/// `for g { for delay }` order.
///
/// Computed by one [`crate::sweep`] pass instead of one regrouping
/// per gap value.
pub fn vc_suitability_grid(
    ds: &Dataset,
    gaps_s: &[f64],
    setup_delays_s: &[f64],
    overhead_factor: f64,
) -> Vec<VcSuitability> {
    crate::sweep::sweep_dataset(ds, gaps_s, setup_delays_s, overhead_factor).cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sessions::group_sessions;
    use gvc_logs::{TransferRecord, TransferType};

    /// One session of `n` transfers of `size` bytes each, plus enough
    /// spread in throughput that q3 is deterministic.
    fn dataset(sizes_and_durs: &[(u64, f64)]) -> Dataset {
        let mut t = 0.0f64;
        let recs = sizes_and_durs
            .iter()
            .map(|&(size, dur)| {
                let r = TransferRecord::simple(
                    TransferType::Retr,
                    size,
                    (t * 1e6) as i64,
                    (dur * 1e6) as i64,
                    "srv",
                    Some("peer"),
                );
                t += dur + 1_000_000.0; // huge gap: one session each
                r
            })
            .collect();
        Dataset::from_records(recs)
    }

    #[test]
    fn known_threshold_splits_sessions() {
        // All transfers at 8 Mbps (1 MB/s): q3 = 8 Mbps.
        // Threshold (delay 60 s, factor 10) = 600 s -> 600 MB.
        let ds = dataset(&[
            (1_000_000_000, 1000.0), // 1 GB: hypothetical 1000 s, suitable
            (100_000_000, 100.0),    // 100 MB: 100 s, not suitable
            (700_000_000, 700.0),    // 700 MB: suitable
        ]);
        let g = group_sessions(&ds, 60.0);
        assert_eq!(g.sessions.len(), 3);
        let v = vc_suitability(&g, &ds, 60.0, DEFAULT_OVERHEAD_FACTOR);
        assert!((v.q3_throughput_mbps - 8.0).abs() < 1e-9);
        assert_eq!(v.suitable_sessions, 2);
        assert_eq!(v.total_sessions, 3);
        assert!((v.pct_sessions() - 66.666).abs() < 0.01);
    }

    #[test]
    fn lower_setup_delay_admits_more() {
        let ds = dataset(&[(1_000_000_000, 1000.0), (100_000_000, 100.0), (5_000_000, 5.0)]);
        let g = group_sessions(&ds, 60.0);
        let slow = vc_suitability(&g, &ds, 60.0, 10.0);
        let fast = vc_suitability(&g, &ds, 0.05, 10.0);
        assert!(fast.suitable_sessions >= slow.suitable_sessions);
        assert_eq!(fast.suitable_sessions, 3); // threshold 0.5 s
    }

    #[test]
    fn transfer_percentages_weighted_by_session_size() {
        // One big 10-transfer session (suitable) + 10 tiny singleton
        // sessions (not suitable): 50 % of sessions... actually 1/11
        // sessions but 10/20 transfers.
        let mut recs = Vec::new();
        for i in 0..10 {
            // 1 GB in 1000 s = 8 Mbps; the session totals 10 GB, so at
            // the q3 rate (8 Mbps) its hypothetical duration is
            // 10 000 s >> the 600 s threshold.
            recs.push(TransferRecord::simple(
                TransferType::Retr,
                1_000_000_000,
                i * 1_000_000,
                1_000_000_000,
                "srv",
                Some("big"),
            ));
        }
        for i in 0..10 {
            recs.push(TransferRecord::simple(
                TransferType::Retr,
                1_000,
                2_000_000_000i64 + i64::from(i) * 1_000_000_000,
                1_000_000,
                "srv",
                Some("small"),
            ));
        }
        let ds = Dataset::from_records(recs);
        let g = group_sessions(&ds, 60.0);
        assert_eq!(g.sessions.len(), 11);
        let v = vc_suitability(&g, &ds, 60.0, 10.0);
        assert_eq!(v.suitable_sessions, 1);
        assert_eq!(v.suitable_transfers, 10);
        assert!((v.pct_transfers() - 50.0).abs() < 1e-9);
        assert!((v.pct_sessions() - 100.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn grid_covers_all_combinations() {
        let ds = dataset(&[(1_000_000_000, 1000.0)]);
        let grid = vc_suitability_grid(&ds, &[0.0, 60.0, 120.0], &[60.0, 0.05], 10.0);
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().any(|c| c.gap_s == 0.0 && c.setup_delay_s == 60.0));
        assert!(grid.iter().any(|c| c.gap_s == 120.0 && c.setup_delay_s == 0.05));
    }

    #[test]
    fn empty_grouping() {
        let ds = Dataset::new();
        let g = group_sessions(&ds, 60.0);
        let v = vc_suitability(&g, &ds, 60.0, 10.0);
        assert_eq!(v.pct_sessions(), 0.0);
        assert_eq!(v.pct_transfers(), 0.0);
    }

    #[test]
    fn degenerate_q3_never_marks_sessions_suitable() {
        // All records are zero-duration, so the throughput
        // distribution is empty and q3 = 0. With a zero setup delay
        // the pre-fix test degenerated to `0.0 >= 0.0` and marked
        // every session (even these zero-rate ones) suitable.
        let recs = (0..3)
            .map(|i| {
                TransferRecord::simple(
                    TransferType::Retr,
                    1_000_000,
                    i * 10_000_000_000,
                    0,
                    "srv",
                    Some("peer"),
                )
            })
            .collect();
        let ds = Dataset::from_records(recs);
        let g = group_sessions(&ds, 60.0);
        assert_eq!(g.sessions.len(), 3);
        let v = vc_suitability(&g, &ds, 0.0, DEFAULT_OVERHEAD_FACTOR);
        assert_eq!(v.q3_throughput_mbps, 0.0);
        assert_eq!(v.suitable_sessions, 0, "degenerate q3 must admit nothing");
        assert_eq!(v.suitable_transfers, 0);
        assert_eq!(v.total_sessions, 3);
    }
}
