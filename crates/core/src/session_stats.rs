//! Session-level narratives and trends.
//!
//! Beyond the Table I/II summaries, the paper's §VI-A discussion calls
//! out individual sessions — "The largest session of size 12 TB in the
//! SLAC-BNL dataset took 26 hours and 24 minutes to complete,
//! receiving an effective throughput of 1.06 Gbps. The longest-
//! duration session occurred in the NCAR-NICS data set, with a
//! duration of 13 hours and 27 minutes … This session throughput is
//! lower than even the third-quartile throughput" — plus, implicitly,
//! the year-over-year decline of Table VIII. This module computes
//! those call-outs and trend fits.

use crate::sessions::{Session, SessionGrouping};
use crate::sweep::SessionStore;
use gvc_logs::Dataset;
use gvc_stats::regression::{linear_fit, LinearFit};
use gvc_stats::{quantile, Summary};

/// The §VI-A call-out facts for one grouping.
#[derive(Debug, Clone)]
pub struct SessionHighlights {
    /// `(size_bytes, duration_s, effective_mbps)` of the largest
    /// session by size. The rate is `None` for an instantaneous
    /// (zero-wall-duration) session.
    pub largest: Option<(u64, f64, Option<f64>)>,
    /// `(size_bytes, duration_s, effective_mbps)` of the longest
    /// session by duration.
    pub longest: Option<(u64, f64, Option<f64>)>,
    /// Effective session-throughput summary (Mbps) over sessions with
    /// a defined rate.
    pub effective_throughput_mbps: Option<Summary>,
    /// Fraction of defined-rate sessions whose effective throughput is
    /// below the q3 *transfer* throughput — the paper's observation
    /// that session rates sit below transfer rates (idle gaps, slow
    /// members). Instantaneous sessions have no rate to compare and
    /// are excluded from both numerator and denominator.
    pub frac_below_transfer_q3: f64,
}

fn triple(s: &Session) -> (u64, f64, Option<f64>) {
    (s.size_bytes(), s.duration_s(), s.effective_throughput_mbps())
}

/// Computes the highlights for a grouping over dataset `ds`.
pub fn session_highlights(grouping: &SessionGrouping, ds: &Dataset) -> SessionHighlights {
    let largest = grouping.sessions.iter().max_by_key(|s| s.size_bytes()).map(triple);
    let longest = grouping
        .sessions
        .iter()
        .max_by(|a, b| a.duration_s().total_cmp(&b.duration_s()))
        .map(triple);
    let rates: Vec<f64> =
        grouping.sessions.iter().filter_map(Session::effective_throughput_mbps).collect();
    let q3_transfer = quantile(&ds.throughputs_mbps(), 0.75).unwrap_or(0.0);
    let below = if rates.is_empty() {
        0.0
    } else {
        rates.iter().filter(|&&r| r < q3_transfer).count() as f64 / rates.len() as f64
    };
    SessionHighlights {
        largest,
        longest,
        effective_throughput_mbps: Summary::of(&rates),
        frac_below_transfer_q3: below,
    }
}

/// [`session_highlights`] over a [`SessionStore`] at one gap value —
/// identical numbers without cloning records into sessions.
pub fn session_highlights_from_store(store: &SessionStore, gap_s: f64) -> SessionHighlights {
    let ranges = store.sessions_at(gap_s);
    let views: Vec<_> = ranges.iter().map(|&r| store.session(r)).collect();
    let triple = |v: &crate::sweep::SessionView<'_>| {
        (v.size_bytes(), v.duration_s(), v.effective_throughput_mbps())
    };
    let largest = views.iter().max_by_key(|v| v.size_bytes()).map(triple);
    let longest = views.iter().max_by(|a, b| a.duration_s().total_cmp(&b.duration_s())).map(triple);
    let rates: Vec<f64> =
        views.iter().filter_map(super::sweep::SessionView::effective_throughput_mbps).collect();
    let q3_transfer = quantile(&store.throughputs_mbps(), 0.75).unwrap_or(0.0);
    let below = if rates.is_empty() {
        0.0
    } else {
        rates.iter().filter(|&&r| r < q3_transfer).count() as f64 / rates.len() as f64
    };
    SessionHighlights {
        largest,
        longest,
        effective_throughput_mbps: Summary::of(&rates),
        frac_below_transfer_q3: below,
    }
}

/// OLS fit of per-transfer throughput (Mbps) against start year —
/// quantifying the Table VIII decline as a slope (Mbps/year) with r².
pub fn yearly_trend(ds: &Dataset) -> Option<LinearFit> {
    let x: Vec<f64> = ds.records().iter().map(|r| f64::from(r.start_civil().year)).collect();
    let y: Vec<f64> = ds.throughputs_mbps();
    linear_fit(&x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sessions::group_sessions;
    use gvc_logs::{TransferRecord, TransferType};

    fn rec(start_s: f64, dur_s: f64, size: u64, remote: &str) -> TransferRecord {
        TransferRecord::simple(
            TransferType::Retr,
            size,
            (start_s * 1e6) as i64,
            (dur_s * 1e6) as i64,
            "srv",
            Some(remote),
        )
    }

    fn fixture() -> (SessionGrouping, Dataset) {
        // Session A: 2 x 1 GB back to back over 200 s (big).
        // Session B: 1 x 1 MB over 1000 s (long and slow).
        let ds = Dataset::from_records(vec![
            rec(0.0, 100.0, 1_000_000_000, "a"),
            rec(101.0, 99.0, 1_000_000_000, "a"),
            rec(0.0, 1000.0, 1_000_000, "b"),
        ]);
        (group_sessions(&ds, 60.0), ds)
    }

    #[test]
    fn largest_and_longest_identified() {
        let (g, ds) = fixture();
        let h = session_highlights(&g, &ds);
        let (size, dur, mbps) = h.largest.unwrap();
        assert_eq!(size, 2_000_000_000);
        assert!((dur - 200.0).abs() < 1e-6);
        assert!((mbps.unwrap() - 80.0).abs() < 0.1);
        let (lsize, ldur, _) = h.longest.unwrap();
        assert_eq!(lsize, 1_000_000);
        assert!((ldur - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn session_rates_sit_below_transfer_q3() {
        let (g, ds) = fixture();
        let h = session_highlights(&g, &ds);
        // The slow 1 MB session is below q3; the big one is at the
        // transfer rate.
        assert!(h.frac_below_transfer_q3 >= 0.5);
        assert!(h.effective_throughput_mbps.is_some());
    }

    #[test]
    fn instantaneous_sessions_do_not_pollute_rates() {
        // One healthy 80 Mbps session plus one zero-duration
        // singleton. Pre-fix the singleton contributed a bogus
        // 0.0 Mbps to the session-rate summary, halving the min.
        let ds = Dataset::from_records(vec![
            rec(0.0, 100.0, 1_000_000_000, "a"),
            rec(5000.0, 0.0, 1_000_000, "b"),
        ]);
        let g = group_sessions(&ds, 60.0);
        assert_eq!(g.sessions.len(), 2);
        let h = session_highlights(&g, &ds);
        let s = h.effective_throughput_mbps.unwrap();
        assert_eq!(s.n, 1, "instantaneous session must be excluded");
        assert!((s.min - 80.0).abs() < 1e-6, "min {}", s.min);
    }

    #[test]
    fn store_backed_highlights_match_grouping_backed() {
        let (g, ds) = fixture();
        let a = session_highlights(&g, &ds);
        let b = session_highlights_from_store(&SessionStore::from_dataset(&ds), 60.0);
        assert_eq!(a.largest, b.largest);
        assert_eq!(a.longest, b.longest);
        assert_eq!(a.effective_throughput_mbps, b.effective_throughput_mbps);
        assert_eq!(a.frac_below_transfer_q3, b.frac_below_transfer_q3);
    }

    #[test]
    fn empty_grouping() {
        let ds = Dataset::new();
        let g = group_sessions(&ds, 60.0);
        let h = session_highlights(&g, &ds);
        assert!(h.largest.is_none());
        assert!(h.longest.is_none());
        assert!(h.effective_throughput_mbps.is_none());
        assert_eq!(h.frac_below_transfer_q3, 0.0);
    }

    #[test]
    fn yearly_trend_detects_decline() {
        // 2009 fast, 2011 slow.
        const Y2009: f64 = 1_230_768_000.0;
        const Y2011: f64 = 1_293_840_000.0;
        let mut recs = Vec::new();
        for i in 0..20 {
            recs.push(rec(Y2009 + i as f64 * 1e5, 8.0, 1_000_000_000, "p")); // 1000 Mbps
            recs.push(rec(Y2011 + i as f64 * 1e5, 24.0, 1_000_000_000, "p")); // 333 Mbps
        }
        let ds = Dataset::from_records(recs);
        let fit = yearly_trend(&ds).unwrap();
        assert!(fit.slope < -200.0, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn yearly_trend_none_for_single_year() {
        let ds = Dataset::from_records(vec![rec(0.0, 1.0, 1, "p"), rec(10.0, 1.0, 1, "p")]);
        assert!(yearly_trend(&ds).is_none());
    }
}
