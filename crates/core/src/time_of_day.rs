//! Fig. 6: throughput as a function of time of day.
//!
//! The 32 GB NERSC–ORNL test transfers "all started at either 2 AM or
//! 8 AM"; the figure scatters throughput against start hour, and the
//! paper concludes the time-of-day factor "appears to have a minor
//! impact".

use gvc_logs::Dataset;
use gvc_stats::Summary;
use std::collections::BTreeMap;

/// One scatter point: (fractional start hour, throughput Mbps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeOfDayPoint {
    /// Start hour of day, 0.0 ≤ h < 24.0 (UTC).
    pub hour: f64,
    /// Transfer throughput, Mbps.
    pub throughput_mbps: f64,
}

/// The Fig. 6 scatter.
pub fn time_of_day_scatter(ds: &Dataset) -> Vec<TimeOfDayPoint> {
    ds.records()
        .iter()
        .map(|r| TimeOfDayPoint {
            hour: r.start_civil().hour_of_day(),
            throughput_mbps: r.throughput_mbps(),
        })
        .collect()
}

/// Per-start-hour throughput summaries (integer hour buckets), for
/// the "some of the transfers at 2 AM appear to have received higher
/// levels of throughput, but there is significant variance within each
/// set" comparison.
pub fn by_hour(ds: &Dataset) -> Vec<(u32, Summary)> {
    let mut groups: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for r in ds.records() {
        groups.entry(r.start_civil().hour).or_default().push(r.throughput_mbps());
    }
    groups.into_iter().filter_map(|(h, v)| Some((h, Summary::of(&v)?))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::{TransferRecord, TransferType};

    /// Transfer starting at the given UTC hour on 2010-09-14.
    fn rec(hour: u32, dur_s: f64) -> TransferRecord {
        let day = 1_284_422_400i64; // 2010-09-14T00:00:00Z
        TransferRecord::simple(
            TransferType::Retr,
            32_000_000_000,
            (day + i64::from(hour) * 3600) * 1_000_000,
            (dur_s * 1e6) as i64,
            "srv",
            Some("peer"),
        )
    }

    #[test]
    fn scatter_maps_hours() {
        let ds = Dataset::from_records(vec![rec(2, 100.0), rec(8, 200.0)]);
        let pts = time_of_day_scatter(&ds);
        assert_eq!(pts.len(), 2);
        assert!((pts[0].hour - 2.0).abs() < 1e-9);
        assert!((pts[1].hour - 8.0).abs() < 1e-9);
        assert!(pts[0].throughput_mbps > pts[1].throughput_mbps);
    }

    #[test]
    fn hour_buckets() {
        let ds = Dataset::from_records(vec![rec(2, 100.0), rec(2, 110.0), rec(8, 150.0)]);
        let rows = by_hour(&ds);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 2);
        assert_eq!(rows[0].1.n, 2);
        assert_eq!(rows[1].0, 8);
    }

    #[test]
    fn empty() {
        assert!(time_of_day_scatter(&Dataset::new()).is_empty());
        assert!(by_hour(&Dataset::new()).is_empty());
    }
}
