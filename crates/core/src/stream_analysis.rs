//! Figures 3–5: stream count × file size.
//!
//! §VII-B's binning: "For transfers of size [0 GB, 1 GB], the bin size
//! is chosen to be 1 MB, while for transfers of size (1 GB, 4 GB], the
//! bin size is chosen to be 100 MB." Transfers in each bin are split
//! into the 1-stream and 8-stream groups and the *median* throughput
//! per group per bin is reported ("to avoid the effects of outliers"),
//! together with per-bin observation counts (Fig. 5).

use gvc_logs::Dataset;
use gvc_stats::BinnedSeries;

/// MB and GB in the paper's binning (10⁶ / 10⁹ bytes).
const MB: f64 = 1e6;
const GB: f64 = 1e9;

/// One point of the Fig. 3/4 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamBinPoint {
    /// Bin center, bytes.
    pub size_bytes: f64,
    /// Median throughput of the group, Mbps.
    pub median_mbps: f64,
    /// Observations in the group for this bin (Fig. 5).
    pub count: usize,
}

/// The Fig. 3/4/5 data: per-bin medians for the 1-stream and 8-stream
/// groups.
#[derive(Debug, Clone)]
pub struct StreamAnalysis {
    /// 1-stream group series.
    pub one_stream: Vec<StreamBinPoint>,
    /// 8-stream group series.
    pub eight_streams: Vec<StreamBinPoint>,
}

impl StreamAnalysis {
    /// Median of a group's medians over a size range — a scalar
    /// summary used to compare the regimes ("8-stream beats 1-stream
    /// below ~150 MB").
    pub fn regime_median(series: &[StreamBinPoint], lo_bytes: f64, hi_bytes: f64) -> Option<f64> {
        let vals: Vec<f64> = series
            .iter()
            .filter(|p| p.size_bytes >= lo_bytes && p.size_bytes < hi_bytes)
            .map(|p| p.median_mbps)
            .collect();
        gvc_stats::median(&vals)
    }
}

fn series_for(ds: &Dataset, streams: u32, lo: f64, hi: f64, bin: f64) -> Vec<StreamBinPoint> {
    let nbins = ((hi - lo) / bin).round() as usize;
    let mut b = BinnedSeries::new(lo, hi, nbins);
    for r in ds.records() {
        if r.num_streams == streams {
            b.insert(r.size_bytes as f64, r.throughput_mbps());
        }
    }
    b.median_series()
        .into_iter()
        .map(|(center, median, count)| StreamBinPoint {
            size_bytes: center,
            median_mbps: median,
            count,
        })
        .collect()
}

/// Fig. 3: sizes (0, 1 GB], 1 MB bins.
pub fn stream_analysis_small(ds: &Dataset) -> StreamAnalysis {
    StreamAnalysis {
        one_stream: series_for(ds, 1, 0.0, GB, MB),
        eight_streams: series_for(ds, 8, 0.0, GB, MB),
    }
}

/// Fig. 4's upper range: sizes (1 GB, 4 GB], 100 MB bins. (Fig. 4
/// plots both ranges; combine with [`stream_analysis_small`].)
pub fn stream_analysis_large(ds: &Dataset) -> StreamAnalysis {
    StreamAnalysis {
        one_stream: series_for(ds, 1, GB, 4.0 * GB, 100.0 * MB),
        eight_streams: series_for(ds, 8, GB, 4.0 * GB, 100.0 * MB),
    }
}

/// The full Fig. 4 view: small-range and large-range series
/// concatenated (paper bins: 1 MB below 1 GB, 100 MB above).
pub fn stream_analysis_full(ds: &Dataset) -> StreamAnalysis {
    let small = stream_analysis_small(ds);
    let large = stream_analysis_large(ds);
    StreamAnalysis {
        one_stream: [small.one_stream, large.one_stream].concat(),
        eight_streams: [small.eight_streams, large.eight_streams].concat(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::{TransferRecord, TransferType};

    fn rec(size: u64, dur_s: f64, streams: u32) -> TransferRecord {
        let mut r = TransferRecord::simple(
            TransferType::Retr,
            size,
            0,
            (dur_s * 1e6) as i64,
            "srv",
            Some("peer"),
        );
        r.num_streams = streams;
        r
    }

    #[test]
    fn bins_are_paper_sized() {
        // 1 MB bins below 1 GB: two 10 MB-ish transfers land in
        // distinct adjacent bins.
        let ds = Dataset::from_records(vec![rec(10_400_000, 1.0, 8), rec(11_600_000, 1.0, 8)]);
        let a = stream_analysis_small(&ds);
        assert_eq!(a.eight_streams.len(), 2);
        assert!((a.eight_streams[0].size_bytes - 10_500_000.0).abs() < 1.0);
        assert!((a.eight_streams[1].size_bytes - 11_500_000.0).abs() < 1.0);
    }

    #[test]
    fn groups_split_by_stream_count() {
        let ds = Dataset::from_records(vec![
            rec(50_000_000, 2.0, 1),
            rec(50_000_000, 1.0, 8),
            rec(50_000_000, 4.0, 4), // neither group
        ]);
        let a = stream_analysis_small(&ds);
        assert_eq!(a.one_stream.len(), 1);
        assert_eq!(a.eight_streams.len(), 1);
        assert!(a.eight_streams[0].median_mbps > a.one_stream[0].median_mbps);
        assert_eq!(a.one_stream[0].count, 1);
    }

    #[test]
    fn median_within_bin() {
        let ds = Dataset::from_records(vec![
            rec(5_200_000, 1.0, 8), // 41.6 Mbps
            rec(5_300_000, 2.0, 8), // 21.2 Mbps
            rec(5_700_000, 4.0, 8), // 11.4 Mbps
        ]);
        let a = stream_analysis_small(&ds);
        assert_eq!(a.eight_streams.len(), 1);
        assert!((a.eight_streams[0].median_mbps - 21.2).abs() < 0.01);
        assert_eq!(a.eight_streams[0].count, 3);
    }

    #[test]
    fn large_range_uses_coarse_bins() {
        let ds = Dataset::from_records(vec![
            rec(1_510_000_000, 10.0, 1),
            rec(1_590_000_000, 12.0, 1), // same 100 MB bin
            rec(2_250_000_000, 10.0, 1),
        ]);
        let a = stream_analysis_large(&ds);
        assert_eq!(a.one_stream.len(), 2);
        assert_eq!(a.one_stream[0].count, 2);
    }

    #[test]
    fn full_concatenates_ranges() {
        let ds = Dataset::from_records(vec![rec(500_000_000, 5.0, 8), rec(2_000_000_500, 20.0, 8)]);
        let a = stream_analysis_full(&ds);
        assert_eq!(a.eight_streams.len(), 2);
        assert!(a.eight_streams[0].size_bytes < 1e9);
        assert!(a.eight_streams[1].size_bytes > 1e9);
    }

    #[test]
    fn regime_median_filters_by_size() {
        let pts = vec![
            StreamBinPoint { size_bytes: 1e6, median_mbps: 10.0, count: 1 },
            StreamBinPoint { size_bytes: 2e6, median_mbps: 20.0, count: 1 },
            StreamBinPoint { size_bytes: 9e8, median_mbps: 99.0, count: 1 },
        ];
        let m = StreamAnalysis::regime_median(&pts, 0.0, 5e6).unwrap();
        assert_eq!(m, 15.0);
        assert!(StreamAnalysis::regime_median(&pts, 1e9, 2e9).is_none());
    }
}
