//! Descriptive-summary tables (Tables I, II, V, VI, VII).
//!
//! Tables I and II characterize *session* sizes (MB) and durations
//! (s) but *transfer* throughput (Mbps) — "session throughputs could
//! be lower if some of the individual transfers within a session had
//! lower throughput" (§VI-A). Tables V–VII are plain transfer
//! summaries over a filtered slice.

use crate::sessions::SessionGrouping;
use crate::sweep::SessionStore;
use gvc_logs::{Dataset, EndpointKind};
use gvc_stats::Summary;

/// The Table I/II triple: session sizes, session durations, transfer
/// throughputs.
#[derive(Debug, Clone)]
pub struct SessionTable {
    /// Session sizes in megabytes (10⁶ bytes).
    pub session_size_mb: Summary,
    /// Session durations in seconds.
    pub session_duration_s: Summary,
    /// Per-transfer throughput in Mbps.
    pub transfer_throughput_mbps: Summary,
}

/// Builds Table I/II from a grouping and its source dataset.
/// Returns `None` when either is empty.
pub fn session_table(grouping: &SessionGrouping, ds: &Dataset) -> Option<SessionTable> {
    let sizes: Vec<f64> = grouping.sessions.iter().map(|s| s.size_bytes() as f64 / 1e6).collect();
    let durations: Vec<f64> =
        grouping.sessions.iter().map(super::sessions::Session::duration_s).collect();
    let throughputs = ds.throughputs_mbps();
    Some(SessionTable {
        session_size_mb: Summary::of(&sizes)?,
        session_duration_s: Summary::of(&durations)?,
        transfer_throughput_mbps: Summary::of(&throughputs)?,
    })
}

/// Builds Table I/II from a [`SessionStore`] at one gap value —
/// identical numbers to [`session_table`], but sessions are index
/// ranges over the shared store instead of cloned record vectors.
/// Returns `None` when the store is empty.
pub fn session_table_from_store(store: &SessionStore, gap_s: f64) -> Option<SessionTable> {
    let ranges = store.sessions_at(gap_s);
    let mut sizes = Vec::with_capacity(ranges.len());
    let mut durations = Vec::with_capacity(ranges.len());
    for &r in &ranges {
        let v = store.session(r);
        sizes.push(v.size_bytes() as f64 / 1e6);
        durations.push(v.duration_s());
    }
    Some(SessionTable {
        session_size_mb: Summary::of(&sizes)?,
        session_duration_s: Summary::of(&durations)?,
        transfer_throughput_mbps: Summary::of(&store.throughputs_mbps())?,
    })
}

/// Table V/VII-style transfer summary: duration and throughput of a
/// slice of transfers.
#[derive(Debug, Clone)]
pub struct TransferTable {
    /// Durations, seconds.
    pub duration_s: Summary,
    /// Throughputs, Mbps.
    pub throughput_mbps: Summary,
}

/// Builds a transfer summary for a dataset slice.
pub fn transfer_table(ds: &Dataset) -> Option<TransferTable> {
    let durations: Vec<f64> =
        ds.records().iter().map(gvc_logs::TransferRecord::duration_s).collect();
    Some(TransferTable {
        duration_s: Summary::of(&durations)?,
        throughput_mbps: Summary::of(&ds.throughputs_mbps())?,
    })
}

/// The four NERSC–ANL endpoint-type categories of Table VI / Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndpointCategory {
    /// memory → memory
    MemMem,
    /// memory → disk
    MemDisk,
    /// disk → memory
    DiskMem,
    /// disk → disk
    DiskDisk,
}

impl EndpointCategory {
    /// All categories in the paper's column order.
    pub const ALL: [EndpointCategory; 4] = [
        EndpointCategory::MemMem,
        EndpointCategory::MemDisk,
        EndpointCategory::DiskMem,
        EndpointCategory::DiskDisk,
    ];

    /// The paper's column label.
    pub fn label(self) -> &'static str {
        match self {
            EndpointCategory::MemMem => "mem-mem",
            EndpointCategory::MemDisk => "mem-disk",
            EndpointCategory::DiskMem => "disk-mem",
            EndpointCategory::DiskDisk => "disk-disk",
        }
    }

    fn matches(self, src: EndpointKind, dst: EndpointKind) -> bool {
        use EndpointKind::{Disk, Memory};
        matches!(
            (self, src, dst),
            (EndpointCategory::MemMem, Memory, Memory)
                | (EndpointCategory::MemDisk, Memory, Disk)
                | (EndpointCategory::DiskMem, Disk, Memory)
                | (EndpointCategory::DiskDisk, Disk, Disk)
        )
    }
}

/// One Table VI column: throughput summary + CV for a category.
#[derive(Debug, Clone)]
pub struct EndpointTypeRow {
    /// Which category.
    pub category: EndpointCategory,
    /// Throughput summary, Mbps.
    pub throughput_mbps: Summary,
    /// Coefficient of variation (fraction; the paper prints %).
    pub cv: f64,
}

/// Builds Table VI: per-category throughput summaries. Records with
/// unknown endpoint kinds are skipped; empty categories are omitted.
pub fn endpoint_type_table(ds: &Dataset) -> Vec<EndpointTypeRow> {
    EndpointCategory::ALL
        .iter()
        .filter_map(|&cat| {
            let slice: Vec<f64> = ds
                .records()
                .iter()
                .filter(|r| match (r.src_kind, r.dst_kind) {
                    (Some(s), Some(d)) => cat.matches(s, d),
                    _ => false,
                })
                .map(gvc_logs::TransferRecord::throughput_mbps)
                .collect();
            let throughput_mbps = Summary::of(&slice)?;
            let cv = throughput_mbps.cv().unwrap_or(0.0);
            Some(EndpointTypeRow { category: cat, throughput_mbps, cv })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sessions::group_sessions;
    use gvc_logs::{TransferRecord, TransferType};

    fn rec(start_s: f64, dur_s: f64, size: u64) -> TransferRecord {
        TransferRecord::simple(
            TransferType::Retr,
            size,
            (start_s * 1e6) as i64,
            (dur_s * 1e6) as i64,
            "srv",
            Some("peer"),
        )
    }

    #[test]
    fn session_table_units() {
        let ds = Dataset::from_records(vec![
            rec(0.0, 10.0, 10_000_000),   // 10 MB, 8 Mbps
            rec(100.0, 10.0, 30_000_000), // 30 MB, 24 Mbps
        ]);
        let g = group_sessions(&ds, 1.0);
        assert_eq!(g.sessions.len(), 2);
        let t = session_table(&g, &ds).unwrap();
        assert_eq!(t.session_size_mb.min, 10.0);
        assert_eq!(t.session_size_mb.max, 30.0);
        assert_eq!(t.session_duration_s.mean, 10.0);
        assert_eq!(t.transfer_throughput_mbps.min, 8.0);
        assert_eq!(t.transfer_throughput_mbps.max, 24.0);
    }

    #[test]
    fn store_backed_table_matches_grouping_backed() {
        let ds = Dataset::from_records(vec![
            rec(0.0, 10.0, 10_000_000),
            rec(5.0, 20.0, 5_000_000),
            rec(100.0, 10.0, 30_000_000),
        ]);
        let store = SessionStore::from_dataset(&ds);
        for &gap in &[0.0, 1.0, 60.0, 200.0] {
            let a = session_table(&group_sessions(&ds, gap), &ds).unwrap();
            let b = session_table_from_store(&store, gap).unwrap();
            assert_eq!(a.session_size_mb, b.session_size_mb, "gap {gap}");
            assert_eq!(a.session_duration_s, b.session_duration_s, "gap {gap}");
            assert_eq!(a.transfer_throughput_mbps, b.transfer_throughput_mbps, "gap {gap}");
        }
        assert!(
            session_table_from_store(&SessionStore::from_dataset(&Dataset::new()), 60.0).is_none()
        );
    }

    #[test]
    fn empty_dataset_gives_none() {
        let ds = Dataset::new();
        let g = group_sessions(&ds, 1.0);
        assert!(session_table(&g, &ds).is_none());
        assert!(transfer_table(&ds).is_none());
    }

    #[test]
    fn transfer_table_durations() {
        let ds = Dataset::from_records(vec![rec(0.0, 60.0, 1), rec(1.0, 120.0, 1)]);
        let t = transfer_table(&ds).unwrap();
        assert_eq!(t.duration_s.min, 60.0);
        assert_eq!(t.duration_s.max, 120.0);
    }

    #[test]
    fn endpoint_categories_partition() {
        use EndpointKind::{Disk, Memory};
        let mk = |s, d, dur| {
            let mut r = rec(0.0, dur, 1_000_000_000);
            r.src_kind = Some(s);
            r.dst_kind = Some(d);
            r
        };
        let ds = Dataset::from_records(vec![
            mk(Memory, Memory, 4.0),
            mk(Memory, Memory, 5.0),
            mk(Memory, Disk, 8.0),
            mk(Disk, Memory, 6.0),
            mk(Disk, Disk, 10.0),
        ]);
        let rows = endpoint_type_table(&ds);
        assert_eq!(rows.len(), 4);
        let get = |c: EndpointCategory| {
            rows.iter().find(|r| r.category == c).unwrap().throughput_mbps.median
        };
        assert!(get(EndpointCategory::MemMem) > get(EndpointCategory::MemDisk));
        assert!(get(EndpointCategory::DiskMem) > get(EndpointCategory::DiskDisk));
        assert_eq!(rows.iter().map(|r| r.throughput_mbps.n).sum::<usize>(), 5);
    }

    #[test]
    fn unknown_kinds_skipped() {
        let ds = Dataset::from_records(vec![rec(0.0, 1.0, 1)]);
        assert!(endpoint_type_table(&ds).is_empty());
    }

    #[test]
    fn labels() {
        assert_eq!(EndpointCategory::MemMem.label(), "mem-mem");
        assert_eq!(EndpointCategory::DiskDisk.label(), "disk-disk");
    }
}
