//! The headline feasibility report (finding i).
//!
//! Bundles the session, gap-sensitivity and VC-suitability analyses
//! for one dataset into the numbers the paper leads with: "Of the
//! NCAR–NICS sessions analyzed, 56% of all sessions (90% of all
//! transfers) would have been long enough to be served with dynamic VC
//! service."

use crate::gap_sensitivity::GapRow;
use crate::sweep::SessionStore;
use crate::tables::{session_table_from_store, SessionTable};
use crate::vc_suitability::{VcSuitability, DEFAULT_OVERHEAD_FACTOR};
use gvc_logs::Dataset;
use gvc_telemetry::RunManifest;

/// The paper's standard parameter grid.
pub const PAPER_GAPS_S: [f64; 3] = [0.0, 60.0, 120.0];
/// Table IV's two setup-delay assumptions: the ESnet 1 min and the
/// hardware 50 ms.
pub const PAPER_SETUP_DELAYS_S: [f64; 2] = [60.0, 0.05];

/// Everything finding (i) needs for one dataset.
#[derive(Debug, Clone)]
pub struct FeasibilityReport {
    /// Provenance stamp: analysis parameters, their digest, crate
    /// version, and wall-clock start — so a report can be traced back
    /// to the exact configuration that produced it.
    pub manifest: RunManifest,
    /// Transfers in the dataset.
    pub n_transfers: usize,
    /// Table I/II-style summary at g = 1 min (`None` for an empty
    /// dataset).
    pub session_table_g1: Option<SessionTable>,
    /// Table III rows over the paper's g grid.
    pub gap_rows: Vec<GapRow>,
    /// Table IV cells over the (g, setup delay) grid, in
    /// `for g { for delay }` order.
    pub suitability: Vec<VcSuitability>,
    /// Zero/negative-duration records in the dataset — excluded from
    /// the throughput distribution (and hence from the q3 the
    /// suitability analysis extrapolates with), surfaced here so a
    /// report never hides data-quality problems.
    pub degenerate_records: usize,
    /// Fault/recovery outcomes from a simulated run, when the report
    /// accompanies one (see [`FeasibilityReport::with_resilience`]).
    pub resilience: Option<ResilienceSummary>,
}

/// Fault/recovery outcomes folded into the feasibility picture.
///
/// The suitability analysis asks whether a session is long enough to
/// amortize *one* circuit setup. Under failures a session pays setup
/// signalling once per establishment attempt, and only
/// `session_success_rate` of requesting sessions get a circuit at all
/// — both corrections come from these counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceSummary {
    /// Sessions that requested a circuit.
    pub vc_requested: u64,
    /// Sessions whose circuit was eventually established.
    pub vc_established: u64,
    /// Faults injected during the run (all kinds).
    pub faults_injected: u64,
    /// Establishment attempts retried.
    pub retries: u64,
    /// Sessions that fell back to the routed IP path.
    pub fallbacks: u64,
    /// Mean first-attempt-to-outcome latency over sessions that needed
    /// recovery, seconds.
    pub mean_recovery_latency_s: f64,
}

impl ResilienceSummary {
    /// Fraction of circuit-requesting sessions that got one (1.0 when
    /// none asked).
    pub fn session_success_rate(&self) -> f64 {
        if self.vc_requested == 0 {
            1.0
        } else {
            self.vc_established as f64 / self.vc_requested as f64
        }
    }

    /// Mean establishment attempts per circuit-requesting session
    /// (1.0 with no retries).
    pub fn attempts_per_session(&self) -> f64 {
        if self.vc_requested == 0 {
            1.0
        } else {
            1.0 + self.retries as f64 / self.vc_requested as f64
        }
    }

    /// How much the setup cost a session must amortize grows under
    /// failures: each retry pays the signalling again, so the
    /// suitability bar ("session >= factor x setup") effectively
    /// rises by this multiple.
    pub fn setup_amortization_factor(&self) -> f64 {
        self.attempts_per_session()
    }
}

impl FeasibilityReport {
    /// Attaches fault/recovery outcomes from a simulated run,
    /// returning `self`.
    pub fn with_resilience(mut self, resilience: ResilienceSummary) -> FeasibilityReport {
        self.resilience = Some(resilience);
        self
    }

    /// The Table IV cell for a given g and setup delay (seconds).
    pub fn cell(&self, gap_s: f64, setup_delay_s: f64) -> Option<&VcSuitability> {
        self.suitability.iter().find(|c| c.gap_s == gap_s && c.setup_delay_s == setup_delay_s)
    }

    /// The headline: % sessions and % transfers suitable at g = 1 min
    /// under the deployed 1-minute setup delay.
    pub fn headline(&self) -> Option<(f64, f64)> {
        self.cell(60.0, 60.0).map(|c| (c.pct_sessions(), c.pct_transfers()))
    }
}

/// Runs the full finding-(i) analysis over a dataset.
pub fn feasibility_report(ds: &Dataset) -> FeasibilityReport {
    // The analysis is deterministic (no RNG), so the manifest's seed
    // slot is fixed at 0 and the config string covers every parameter
    // of the grid plus the dataset size.
    let config = format!(
        "n_transfers={} gaps_s={:?} setup_delays_s={:?} overhead_factor={}",
        ds.len(),
        PAPER_GAPS_S,
        PAPER_SETUP_DELAYS_S,
        DEFAULT_OVERHEAD_FACTOR,
    );
    // One store, one sweep: Table III rows and Table IV cells for the
    // whole grid come out of a single monotone-merge pass instead of
    // one regrouping per gap value.
    let store = SessionStore::from_dataset(ds);
    let sweep = store.sweep(&PAPER_GAPS_S, &PAPER_SETUP_DELAYS_S, DEFAULT_OVERHEAD_FACTOR);
    FeasibilityReport {
        manifest: RunManifest::new("feasibility-report", 0, &config),
        n_transfers: ds.len(),
        session_table_g1: session_table_from_store(&store, 60.0),
        gap_rows: sweep.gap_rows,
        suitability: sweep.cells,
        degenerate_records: sweep.degenerate_records,
        resilience: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::{TransferRecord, TransferType};

    fn dataset() -> Dataset {
        // Ten sessions: five large multi-transfer, five tiny
        // singletons, all at ~8 Mbps.
        let mut recs = Vec::new();
        let mut t = 0i64;
        for s in 0..5 {
            for _ in 0..10 {
                recs.push(TransferRecord::simple(
                    TransferType::Retr,
                    500_000_000,
                    t,
                    500_000_000, // 500 s
                    "srv",
                    Some(&format!("big{s}")),
                ));
                t += 510_000_000;
            }
            t += 3_600_000_000;
        }
        for s in 0..5 {
            recs.push(TransferRecord::simple(
                TransferType::Retr,
                1_000_000,
                t,
                1_000_000,
                "srv",
                Some(&format!("small{s}")),
            ));
            t += 3_600_000_000;
        }
        Dataset::from_records(recs)
    }

    #[test]
    fn report_structure() {
        let r = feasibility_report(&dataset());
        assert_eq!(r.n_transfers, 55);
        assert_eq!(r.gap_rows.len(), 3);
        assert_eq!(r.suitability.len(), 6);
        assert!(r.session_table_g1.is_some());
        assert_eq!(r.degenerate_records, 0);
    }

    #[test]
    fn degenerate_records_surfaced() {
        let mut recs = dataset().into_records();
        recs.push(TransferRecord::simple(
            TransferType::Retr,
            1_000,
            999_000_000_000,
            0,
            "srv",
            Some("deg"),
        ));
        let r = feasibility_report(&Dataset::from_records(recs));
        assert_eq!(r.degenerate_records, 1);
    }

    #[test]
    fn manifest_stamps_parameters_and_is_stable() {
        let r = feasibility_report(&dataset());
        assert_eq!(r.manifest.tool, "feasibility-report");
        assert_eq!(r.manifest.seed, 0);
        assert!(r.manifest.config.contains("n_transfers=55"), "{}", r.manifest.config);
        assert!(r.manifest.config.contains("overhead_factor="), "{}", r.manifest.config);
        // Same dataset and grid => same digest (wall clock may differ).
        let again = feasibility_report(&dataset());
        assert_eq!(r.manifest.config_digest, again.manifest.config_digest);
        assert!(r.manifest.summary_line().contains("tool=feasibility-report"));
    }

    #[test]
    fn headline_cell_exists_and_is_consistent() {
        let r = feasibility_report(&dataset());
        let (pct_s, pct_t) = r.headline().unwrap();
        // Five big sessions of 5 GB are suitable (hypothetical
        // duration 5000 s >> 600 s); five tiny are not.
        assert!((pct_s - 50.0).abs() < 1e-9, "{pct_s}");
        assert!((pct_t - 50.0 / 55.0 * 100.0).abs() < 1e-9, "{pct_t}");
    }

    #[test]
    fn faster_setup_weakly_improves_suitability() {
        let r = feasibility_report(&dataset());
        for &g in &PAPER_GAPS_S {
            let slow = r.cell(g, 60.0).unwrap().pct_sessions();
            let fast = r.cell(g, 0.05).unwrap().pct_sessions();
            assert!(fast >= slow);
        }
    }

    #[test]
    fn resilience_summary_attaches_and_derives_rates() {
        let r = feasibility_report(&dataset());
        assert!(r.resilience.is_none());
        let rs = ResilienceSummary {
            vc_requested: 4,
            vc_established: 3,
            faults_injected: 6,
            retries: 6,
            fallbacks: 1,
            mean_recovery_latency_s: 42.0,
        };
        let r = r.with_resilience(rs);
        let got = r.resilience.unwrap();
        assert!((got.session_success_rate() - 0.75).abs() < 1e-12);
        // 6 retries over 4 sessions: 2.5 attempts each on average, so
        // the amortization bar rises 2.5x.
        assert!((got.setup_amortization_factor() - 2.5).abs() < 1e-12);
        // No circuit requests => vacuous success, unchanged bar.
        let idle = ResilienceSummary { vc_requested: 0, vc_established: 0, ..rs };
        assert!((idle.session_success_rate() - 1.0).abs() < 1e-12);
        assert!((idle.attempts_per_session() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_report() {
        let r = feasibility_report(&Dataset::new());
        assert_eq!(r.n_transfers, 0);
        assert!(r.session_table_g1.is_none());
        assert_eq!(r.headline(), Some((0.0, 0.0)));
    }
}
