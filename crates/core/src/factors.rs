//! Factor analyses: year-based and stripes-based throughput
//! (Tables VIII and IX).
//!
//! The NCAR `frost` cluster shrank from 3 servers (2009) to mostly 2
//! (2010) to 1 (2011); Table VIII shows throughput of the 16 GB and
//! 4 GB transfer slices falling year over year, and Table IX shows the
//! direct dependence on stripe count — "the median column is the one
//! to consider".

use gvc_engine::calendar::CivilDateTime;
use gvc_logs::Dataset;
use gvc_stats::Summary;
use std::collections::BTreeMap;

/// A (group key, throughput summary) row.
#[derive(Debug, Clone)]
pub struct FactorRow {
    /// The group value (a year like 2010, or a stripe count).
    pub key: i64,
    /// Throughput summary in Mbps.
    pub throughput_mbps: Summary,
}

/// Groups transfers by calendar year of their start time (Table VIII).
pub fn by_year(ds: &Dataset) -> Vec<FactorRow> {
    group_by(ds, |r| {
        i64::from(CivilDateTime::from_unix(r.start_unix_us.div_euclid(1_000_000)).year)
    })
}

/// Groups transfers by stripe count (Table IX).
pub fn by_stripes(ds: &Dataset) -> Vec<FactorRow> {
    group_by(ds, |r| i64::from(r.num_stripes))
}

/// Groups transfers by stream count (the §VII-B factor).
pub fn by_streams(ds: &Dataset) -> Vec<FactorRow> {
    group_by(ds, |r| i64::from(r.num_streams))
}

/// Fraction of throughput variance explained by a grouping factor
/// (η², the between-group sum of squares over the total): the
/// quantitative answer to §VII's question of which of the candidate
/// factors actually drives the observed variance. Returns `None` for
/// datasets with < 2 transfers or zero variance.
pub fn variance_explained<F>(ds: &Dataset, key: F) -> Option<f64>
where
    F: Fn(&gvc_logs::TransferRecord) -> i64,
{
    let values: Vec<(i64, f64)> =
        ds.records().iter().map(|r| (key(r), r.throughput_mbps())).collect();
    if values.len() < 2 {
        return None;
    }
    let grand_mean = values.iter().map(|(_, v)| v).sum::<f64>() / values.len() as f64;
    let total_ss: f64 = values.iter().map(|(_, v)| (v - grand_mean).powi(2)).sum();
    if total_ss == 0.0 {
        return None;
    }
    let mut groups: BTreeMap<i64, (f64, usize)> = BTreeMap::new();
    for &(k, v) in &values {
        let e = groups.entry(k).or_insert((0.0, 0));
        e.0 += v;
        e.1 += 1;
    }
    let between_ss: f64 = groups
        .values()
        .map(|&(sum, n)| {
            let mean = sum / n as f64;
            n as f64 * (mean - grand_mean).powi(2)
        })
        .sum();
    Some(between_ss / total_ss)
}

fn group_by<F: Fn(&gvc_logs::TransferRecord) -> i64>(ds: &Dataset, key: F) -> Vec<FactorRow> {
    let mut groups: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
    for r in ds.records() {
        groups.entry(key(r)).or_default().push(r.throughput_mbps());
    }
    groups
        .into_iter()
        .filter_map(|(k, v)| Some(FactorRow { key: k, throughput_mbps: Summary::of(&v)? }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::{TransferRecord, TransferType};

    fn rec(start_unix_s: i64, dur_s: f64, stripes: u32, streams: u32) -> TransferRecord {
        let mut r = TransferRecord::simple(
            TransferType::Retr,
            1_000_000_000,
            start_unix_s * 1_000_000,
            (dur_s * 1e6) as i64,
            "srv",
            Some("peer"),
        );
        r.num_stripes = stripes;
        r.num_streams = streams;
        r
    }

    const Y2009: i64 = 1_230_768_000; // 2009-01-01
    const Y2010: i64 = 1_262_304_000; // 2010-01-01
    const Y2011: i64 = 1_293_840_000; // 2011-01-01

    #[test]
    fn year_grouping_uses_civil_years() {
        let ds = Dataset::from_records(vec![
            rec(Y2009 + 100, 2.0, 3, 8),
            rec(Y2009 + 200, 2.5, 3, 8),
            rec(Y2010 + 100, 4.0, 2, 8),
            rec(Y2011 + 100, 8.0, 1, 8),
        ]);
        let rows = by_year(&ds);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].key, 2009);
        assert_eq!(rows[1].key, 2010);
        assert_eq!(rows[2].key, 2011);
        assert_eq!(rows[0].throughput_mbps.n, 2);
        // Throughput falls year over year (duration grows).
        assert!(rows[0].throughput_mbps.median > rows[1].throughput_mbps.median);
        assert!(rows[1].throughput_mbps.median > rows[2].throughput_mbps.median);
    }

    #[test]
    fn stripes_grouping_sorted_by_count() {
        let ds = Dataset::from_records(vec![
            rec(Y2010, 8.0, 1, 8),
            rec(Y2010 + 10, 4.0, 2, 8),
            rec(Y2010 + 20, 2.0, 3, 8),
            rec(Y2010 + 30, 2.1, 3, 8),
        ]);
        let rows = by_stripes(&ds);
        assert_eq!(rows.iter().map(|r| r.key).collect::<Vec<_>>(), vec![1, 2, 3]);
        // Median rises with stripes.
        assert!(rows[2].throughput_mbps.median > rows[0].throughput_mbps.median);
        assert_eq!(rows[2].throughput_mbps.n, 2);
    }

    #[test]
    fn streams_grouping() {
        let ds = Dataset::from_records(vec![rec(Y2010, 2.0, 1, 1), rec(Y2010 + 5, 2.0, 1, 8)]);
        let rows = by_streams(&ds);
        assert_eq!(rows.iter().map(|r| r.key).collect::<Vec<_>>(), vec![1, 8]);
    }

    #[test]
    fn empty_dataset_empty_rows() {
        assert!(by_year(&Dataset::new()).is_empty());
        assert!(by_stripes(&Dataset::new()).is_empty());
    }

    #[test]
    fn variance_fully_explained_by_perfect_factor() {
        // Throughput determined entirely by stripes.
        let ds = Dataset::from_records(vec![
            rec(Y2010, 8.0, 1, 8),
            rec(Y2010 + 10, 8.0, 1, 8),
            rec(Y2010 + 20, 4.0, 2, 8),
            rec(Y2010 + 30, 4.0, 2, 8),
        ]);
        let eta = variance_explained(&ds, |r| i64::from(r.num_stripes)).unwrap();
        assert!((eta - 1.0).abs() < 1e-12, "{eta}");
    }

    #[test]
    fn variance_unexplained_by_constant_factor() {
        let ds = Dataset::from_records(vec![rec(Y2010, 8.0, 1, 8), rec(Y2010 + 10, 4.0, 1, 8)]);
        let eta = variance_explained(&ds, |r| i64::from(r.num_stripes)).unwrap();
        assert!(eta.abs() < 1e-12);
    }

    #[test]
    fn variance_partial_explanation_between_zero_and_one() {
        // Stripes shift the mean but noise remains within groups.
        let ds = Dataset::from_records(vec![
            rec(Y2010, 8.0, 1, 8),
            rec(Y2010 + 10, 7.0, 1, 8),
            rec(Y2010 + 20, 4.0, 2, 8),
            rec(Y2010 + 30, 3.5, 2, 8),
        ]);
        let eta = variance_explained(&ds, |r| i64::from(r.num_stripes)).unwrap();
        assert!(eta > 0.5 && eta < 1.0, "{eta}");
    }

    #[test]
    fn variance_degenerate_none() {
        assert!(variance_explained(&Dataset::new(), |_| 0).is_none());
        let single = Dataset::from_records(vec![rec(Y2010, 1.0, 1, 1)]);
        assert!(variance_explained(&single, |_| 0).is_none());
        // Zero variance.
        let flat = Dataset::from_records(vec![rec(Y2010, 2.0, 1, 1), rec(Y2010 + 5, 2.0, 1, 1)]);
        assert!(variance_explained(&flat, |_| 0).is_none());
    }
}
