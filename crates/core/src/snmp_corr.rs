//! Tables XI and XII: correlating GridFTP bytes with SNMP counters.
//!
//! Per router on the path, and per throughput quartile of the
//! transfers, the paper computes:
//!
//! * Table XI — corr(GridFTP transfer bytes, `B_i` total SNMP bytes
//!   during the transfer): *high* values mean the transfers dominate
//!   the links' byte counts;
//! * Table XII — corr(GridFTP transfer bytes, `B_i −` GridFTP bytes):
//!   *low* values mean the remaining traffic does not track (or
//!   disturb) the transfers.

use crate::snmp_attr::attributed_bytes;
use gvc_logs::{Dataset, SnmpSeries};
use gvc_stats::{pearson, quantile};

/// Correlations for one interface.
#[derive(Debug, Clone)]
pub struct RouterCorrelation {
    /// Interface label (from the series).
    pub interface: String,
    /// Correlation per throughput quartile (1st..4th); `None` when a
    /// quartile is degenerate (constant or too small).
    pub per_quartile: [Option<f64>; 4],
    /// Correlation over all transfers.
    pub overall: Option<f64>,
}

/// Which byte series to correlate GridFTP bytes against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationKind {
    /// Table XI: total SNMP bytes `B_i`.
    TotalBytes,
    /// Table XII: other-flow bytes `B_i − gridftp_i`.
    OtherFlows,
}

/// Splits transfer indices into throughput quartiles (by the
/// transfer's own throughput). Quartile boundaries are R type-7,
/// computed over the defined-throughput distribution; the returned
/// indices are positions in `ds.records()` (one per record — a
/// degenerate record reads as 0.0 Mbps and lands in the bottom
/// quartile rather than shifting every index after it).
pub fn throughput_quartile_indices(ds: &Dataset) -> [Vec<usize>; 4] {
    let q1 = quantile(&ds.throughputs_mbps(), 0.25).unwrap_or(0.0);
    let q2 = quantile(&ds.throughputs_mbps(), 0.50).unwrap_or(0.0);
    let q3 = quantile(&ds.throughputs_mbps(), 0.75).unwrap_or(0.0);
    let tps: Vec<f64> =
        ds.records().iter().map(gvc_logs::TransferRecord::throughput_mbps).collect();
    let mut out: [Vec<usize>; 4] = Default::default();
    for (i, &t) in tps.iter().enumerate() {
        let q = if t <= q1 {
            0
        } else if t <= q2 {
            1
        } else if t <= q3 {
            2
        } else {
            3
        };
        out[q].push(i);
    }
    out
}

/// Computes the Table XI/XII correlations for one interface.
pub fn router_correlation(
    ds: &Dataset,
    series: &SnmpSeries,
    kind: CorrelationKind,
) -> RouterCorrelation {
    let gridftp: Vec<f64> = ds.records().iter().map(|r| r.size_bytes as f64).collect();
    let snmp: Vec<f64> = ds
        .records()
        .iter()
        .map(|r| {
            let total = attributed_bytes(series, r.start_unix_us, r.end_unix_us());
            match kind {
                CorrelationKind::TotalBytes => total,
                CorrelationKind::OtherFlows => total - r.size_bytes as f64,
            }
        })
        .collect();

    let quartiles = throughput_quartile_indices(ds);
    let corr_of = |idx: &[usize]| {
        let x: Vec<f64> = idx.iter().map(|&i| gridftp[i]).collect();
        let y: Vec<f64> = idx.iter().map(|&i| snmp[i]).collect();
        pearson(&x, &y)
    };
    RouterCorrelation {
        interface: series.interface.clone(),
        per_quartile: {
            let [qa, qb, qc, qd] = &quartiles;
            [corr_of(qa), corr_of(qb), corr_of(qc), corr_of(qd)]
        },
        overall: pearson(&gridftp, &snmp),
    }
}

/// Directional variant: each transfer's bytes are attributed on the
/// interface matching its direction ("the appropriate interfaces were
/// used for each GridFTP transfer", §VII-C). `fwd` serves records for
/// which `is_fwd` returns true (e.g. RETR), `rev` the rest; the two
/// series must belong to the same router.
pub fn router_correlation_directional<F>(
    ds: &Dataset,
    fwd: &SnmpSeries,
    rev: &SnmpSeries,
    is_fwd: F,
    kind: CorrelationKind,
) -> RouterCorrelation
where
    F: Fn(&gvc_logs::TransferRecord) -> bool,
{
    let gridftp: Vec<f64> = ds.records().iter().map(|r| r.size_bytes as f64).collect();
    let snmp: Vec<f64> = ds
        .records()
        .iter()
        .map(|r| {
            let series = if is_fwd(r) { fwd } else { rev };
            let total = attributed_bytes(series, r.start_unix_us, r.end_unix_us());
            match kind {
                CorrelationKind::TotalBytes => total,
                CorrelationKind::OtherFlows => total - r.size_bytes as f64,
            }
        })
        .collect();
    let quartiles = throughput_quartile_indices(ds);
    let corr_of = |idx: &[usize]| {
        let x: Vec<f64> = idx.iter().map(|&i| gridftp[i]).collect();
        let y: Vec<f64> = idx.iter().map(|&i| snmp[i]).collect();
        pearson(&x, &y)
    };
    RouterCorrelation {
        interface: fwd.interface.clone(),
        per_quartile: {
            let [qa, qb, qc, qd] = &quartiles;
            [corr_of(qa), corr_of(qb), corr_of(qc), corr_of(qd)]
        },
        overall: pearson(&gridftp, &snmp),
    }
}

/// The full Table XI or XII: one column per monitored interface.
pub fn correlation_table(
    ds: &Dataset,
    series: &[&SnmpSeries],
    kind: CorrelationKind,
) -> Vec<RouterCorrelation> {
    series.iter().map(|s| router_correlation(ds, s, kind)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::{TransferRecord, TransferType};

    const S30: i64 = 30_000_000;

    /// Transfers of varying size back to back; the SNMP series records
    /// exactly those bytes (dominant-flow regime) plus optional noise.
    fn fixture(noise: u64) -> (Dataset, SnmpSeries) {
        let mut series = SnmpSeries::thirty_second("rt1", 0);
        let mut recs = Vec::new();
        let mut t = 0i64;
        for k in 1..=40u64 {
            let size = k * 50_000_000; // 50 MB .. 2 GB
            let dur = 2 * S30; // 60 s each
            recs.push(TransferRecord::simple(
                TransferType::Retr,
                size,
                t,
                dur,
                "srv",
                Some("peer"),
            ));
            series.add_interval(t, t + dur, size);
            if noise > 0 {
                series.add_interval(t, t + dur, noise);
            }
            t += dur + 4 * S30; // idle gap
        }
        (Dataset::from_records(recs), series)
    }

    #[test]
    fn dominant_flows_correlate_highly() {
        let (ds, series) = fixture(1_000_000);
        let c = router_correlation(&ds, &series, CorrelationKind::TotalBytes);
        assert!(c.overall.unwrap() > 0.99, "{:?}", c.overall);
        for q in &c.per_quartile {
            assert!(q.unwrap() > 0.9, "{q:?}");
        }
    }

    #[test]
    fn other_flows_uncorrelated_when_constant_noise() {
        let (ds, series) = fixture(1_000_000);
        let c = router_correlation(&ds, &series, CorrelationKind::OtherFlows);
        // Other-flow bytes are ~constant: correlation ~0 or undefined;
        // in any case far below the Table XI values.
        let overall = c.overall.unwrap_or(0.0).abs();
        assert!(overall < 0.5, "{overall}");
    }

    #[test]
    fn quartile_indices_partition() {
        let (ds, _) = fixture(0);
        let qs = throughput_quartile_indices(&ds);
        let total: usize = qs.iter().map(Vec::len).sum();
        assert_eq!(total, ds.len());
        // Sorted quartiles: every index appears once.
        let mut all: Vec<usize> = qs.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..ds.len()).collect::<Vec<_>>());
    }

    #[test]
    fn table_covers_all_interfaces() {
        let (ds, s1) = fixture(0);
        let (_, s2) = fixture(5_000_000);
        let t = correlation_table(&ds, &[&s1, &s2], CorrelationKind::TotalBytes);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].interface, "rt1");
    }

    #[test]
    fn directional_routes_records_to_matching_series() {
        // Forward records deposited on `fwd`, reverse on `rev`; the
        // directional correlation should be as high as the
        // single-direction one, while using either series alone for
        // everything would dilute it.
        let mut fwd = SnmpSeries::thirty_second("rtx-fwd", 0);
        let mut rev = SnmpSeries::thirty_second("rtx-rev", 0);
        let mut recs = Vec::new();
        let mut t = 0i64;
        for k in 1..=30u64 {
            let size = k * 80_000_000;
            let dur = 2 * S30;
            let is_fwd = k % 2 == 0;
            let mut r =
                TransferRecord::simple(TransferType::Retr, size, t, dur, "srv", Some("peer"));
            if !is_fwd {
                r.transfer_type = TransferType::Store;
            }
            if is_fwd {
                fwd.add_interval(t, t + dur, size);
            } else {
                rev.add_interval(t, t + dur, size);
            }
            recs.push(r);
            t += dur + 4 * S30;
        }
        let ds = Dataset::from_records(recs);
        let c = router_correlation_directional(
            &ds,
            &fwd,
            &rev,
            |r| r.transfer_type == TransferType::Retr,
            CorrelationKind::TotalBytes,
        );
        assert!(c.overall.unwrap() > 0.99, "{:?}", c.overall);
        // Mono-series correlation is much weaker (half the records see
        // zero bytes).
        let mono = router_correlation(&ds, &fwd, CorrelationKind::TotalBytes);
        assert!(mono.overall.unwrap() < c.overall.unwrap());
    }

    #[test]
    fn empty_dataset_gives_none_correlations() {
        let ds = Dataset::new();
        let s = SnmpSeries::thirty_second("rt1", 0);
        let c = router_correlation(&ds, &s, CorrelationKind::TotalBytes);
        assert!(c.overall.is_none());
        assert!(c.per_quartile.iter().all(Option::is_none));
    }
}
