//! Table III: impact of the gap parameter `g` on session structure.
//!
//! "The 1 min value for g appears to offer significant advantages
//! relative to a 0 value, by decreasing the number of single-transfer
//! sessions" (§VI-A) — this analysis quantifies that, per `g` value.

use gvc_logs::Dataset;

/// One Table III row.
#[derive(Debug, Clone, PartialEq)]
pub struct GapRow {
    /// The gap value, seconds.
    pub gap_s: f64,
    /// Total sessions.
    pub sessions: usize,
    /// Sessions with exactly one transfer.
    pub single_transfer: usize,
    /// Sessions with more than one transfer.
    pub multi_transfer: usize,
    /// Percent of sessions with 1 or 2 transfers.
    pub pct_with_1_or_2: f64,
    /// Highest number of transfers in a session.
    pub max_transfers: usize,
    /// Sessions with ≥ 100 transfers.
    pub with_100_plus: usize,
}

/// Computes Table III rows for the given `g` values (the paper uses
/// 0 s, 60 s, 120 s).
///
/// All rows come out of one [`crate::sweep`] pass — the whole grid
/// costs one sort of the dataset, not one regrouping per `g`.
pub fn gap_sensitivity(ds: &Dataset, gaps_s: &[f64]) -> Vec<GapRow> {
    crate::sweep::sweep_dataset(ds, gaps_s, &[], crate::vc_suitability::DEFAULT_OVERHEAD_FACTOR)
        .gap_rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::{TransferRecord, TransferType};

    fn rec(start_s: f64, dur_s: f64) -> TransferRecord {
        TransferRecord::simple(
            TransferType::Retr,
            1,
            (start_s * 1e6) as i64,
            (dur_s * 1e6) as i64,
            "srv",
            Some("peer"),
        )
    }

    /// Transfers 30 s apart: one session at g = 60, singletons at g = 0.
    fn spaced_dataset(n: usize) -> Dataset {
        Dataset::from_records((0..n).map(|i| rec(i as f64 * 40.0, 10.0)).collect())
    }

    #[test]
    fn larger_gap_fewer_sessions() {
        let ds = spaced_dataset(10);
        let rows = gap_sensitivity(&ds, &[0.0, 60.0, 120.0]);
        assert_eq!(rows[0].sessions, 10);
        assert_eq!(rows[0].single_transfer, 10);
        assert_eq!(rows[1].sessions, 1);
        assert_eq!(rows[1].multi_transfer, 1);
        assert_eq!(rows[2].sessions, 1);
        assert!(rows[0].pct_with_1_or_2 > rows[1].pct_with_1_or_2);
    }

    #[test]
    fn max_and_hundred_counters() {
        let mut recs: Vec<TransferRecord> = (0..120).map(|i| rec(i as f64 * 5.0, 4.0)).collect();
        recs.push(rec(100_000.0, 1.0));
        let ds = Dataset::from_records(recs);
        let rows = gap_sensitivity(&ds, &[10.0]);
        assert_eq!(rows[0].sessions, 2);
        assert_eq!(rows[0].max_transfers, 120);
        assert_eq!(rows[0].with_100_plus, 1);
    }

    #[test]
    fn monotone_in_g() {
        // Session count is non-increasing in g.
        let ds = spaced_dataset(50);
        let rows = gap_sensitivity(&ds, &[0.0, 10.0, 30.0, 60.0, 120.0]);
        for w in rows.windows(2) {
            assert!(w[1].sessions <= w[0].sessions);
        }
    }

    #[test]
    fn empty_dataset() {
        let rows = gap_sensitivity(&Dataset::new(), &[0.0, 60.0]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].sessions, 0);
        assert_eq!(rows[0].pct_with_1_or_2, 0.0);
    }
}
