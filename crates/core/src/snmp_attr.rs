//! Eq. 1 byte attribution and link-load statistics (Tables X, XIII).
//!
//! "The start and end times of the GridFTP transfers will typically
//! not align with the 30-sec SNMP time bins" (§VII-C), so the paper
//! prorates the first and last bins by their overlap with the transfer
//! interval:
//!
//! ```text
//! B_i = b_1 · (τ_i2 − s_i)/W + Σ_{j=2}^{m−2} b_j
//!     + b_{m−1} · (s_i + D_i − τ_i(m−1))/W
//! ```
//!
//! with `W` the bin width (30 s). [`attributed_bytes`] implements
//! exactly that; [`link_load_bps`] divides by the duration for the
//! Table XIII average-load rows.

use gvc_logs::SnmpSeries;

/// The paper's Eq. 1: total bytes estimated to have crossed an
/// interface during `[start_us, end_us)`, prorating partial head and
/// tail bins. Returns 0 for an empty interval.
pub fn attributed_bytes(series: &SnmpSeries, start_us: i64, end_us: i64) -> f64 {
    if end_us <= start_us {
        return 0.0;
    }
    let w = series.bin_width_us as f64;
    series
        .samples_overlapping(start_us, end_us)
        .iter()
        .map(|s| {
            let bin_start = s.bin_start_us;
            let bin_end = bin_start + series.bin_width_us;
            let overlap = (end_us.min(bin_end) - start_us.max(bin_start)).max(0) as f64;
            s.bytes as f64 * overlap / w
        })
        .sum()
}

/// Average load (bits per second) on the interface over the transfer
/// interval: `B_i / D_i` — the Table XIII statistic.
pub fn link_load_bps(series: &SnmpSeries, start_us: i64, end_us: i64) -> f64 {
    if end_us <= start_us {
        return 0.0;
    }
    let bytes = attributed_bytes(series, start_us, end_us);
    bytes * 8.0 / ((end_us - start_us) as f64 / 1e6)
}

/// Table X: the raw per-bin byte counts whose bins overlap a transfer
/// interval, as `(bin_start_us, bytes)`.
pub fn raw_bins(series: &SnmpSeries, start_us: i64, end_us: i64) -> Vec<(i64, u64)> {
    series
        .samples_overlapping(start_us, end_us)
        .into_iter()
        .map(|s| (s.bin_start_us, s.bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A series with 30 s bins holding the given byte counts.
    fn series(bins: &[u64]) -> SnmpSeries {
        let mut s = SnmpSeries::thirty_second("if0", 0);
        for (i, &b) in bins.iter().enumerate() {
            s.add_bytes(i as i64 * 30_000_000, b);
        }
        s
    }

    const S30: i64 = 30_000_000;

    #[test]
    fn aligned_interval_sums_exact_bins() {
        let s = series(&[100, 200, 300, 400]);
        let b = attributed_bytes(&s, S30, 3 * S30);
        assert!((b - 500.0).abs() < 1e-9); // bins 1 and 2
    }

    #[test]
    fn partial_head_and_tail_prorated() {
        let s = series(&[300, 600, 900]);
        // Interval [15 s, 75 s): half of bin0 + all of bin1 + half of bin2.
        let b = attributed_bytes(&s, S30 / 2, 2 * S30 + S30 / 2);
        assert!((b - (150.0 + 600.0 + 450.0)).abs() < 1e-6);
    }

    #[test]
    fn interval_inside_one_bin() {
        let s = series(&[3000]);
        // 10 s of the 30 s bin: one third.
        let b = attributed_bytes(&s, 5_000_000, 15_000_000);
        assert!((b - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_is_zero() {
        let s = series(&[100]);
        assert_eq!(attributed_bytes(&s, 10, 10), 0.0);
        assert_eq!(attributed_bytes(&s, 20, 10), 0.0);
        assert_eq!(link_load_bps(&s, 20, 10), 0.0);
    }

    #[test]
    fn link_load_units() {
        // 30 s bin with 37.5 MB = 10 Mbps average over the bin.
        let s = series(&[37_500_000]);
        let load = link_load_bps(&s, 0, S30);
        assert!((load - 10e6).abs() < 1.0);
    }

    #[test]
    fn raw_bins_table_x_shape() {
        let s = series(&[10, 20, 30, 40]);
        let rows = raw_bins(&s, 35_000_000, 95_000_000);
        assert_eq!(rows, vec![(S30, 20), (2 * S30, 30), (3 * S30, 40)]);
    }

    proptest! {
        /// Attribution is additive over a split point: B[a,c] =
        /// B[a,b] + B[b,c].
        #[test]
        fn prop_additive(
            a in 0i64..100_000_000,
            len1 in 1i64..100_000_000,
            len2 in 1i64..100_000_000,
            bins in proptest::collection::vec(0u64..1_000_000, 1..12),
        ) {
            let s = series(&bins);
            let b = a + len1;
            let c = b + len2;
            let whole = attributed_bytes(&s, a, c);
            let parts = attributed_bytes(&s, a, b) + attributed_bytes(&s, b, c);
            prop_assert!((whole - parts).abs() < 1e-3, "{whole} vs {parts}");
        }

        /// Attribution never exceeds the series total and is
        /// non-negative.
        #[test]
        fn prop_bounded(
            a in 0i64..200_000_000,
            len in 1i64..400_000_000,
            bins in proptest::collection::vec(0u64..1_000_000, 1..12),
        ) {
            let s = series(&bins);
            let b = attributed_bytes(&s, a, a + len);
            prop_assert!(b >= 0.0);
            prop_assert!(b <= s.total_bytes() as f64 + 1e-6);
        }
    }
}
