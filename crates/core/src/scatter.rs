//! Fig. 2: transfer throughput as a function of file size.
//!
//! A plain scatter plus the observations the paper calls out: the
//! peak throughput and its file size, and the count of transfers above
//! a high-throughput threshold (2 215 transfers above 1.5 Gbps in the
//! SLAC–BNL data, 85 % of them in one 2–3 AM window).

use gvc_logs::Dataset;

/// One scatter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// File size, bytes.
    pub size_bytes: u64,
    /// Throughput, Mbps.
    pub throughput_mbps: f64,
    /// Start time, unix µs (for the time-cluster observation).
    pub start_unix_us: i64,
}

/// The Fig. 2 scatter.
pub fn throughput_vs_size(ds: &Dataset) -> Vec<ScatterPoint> {
    ds.records()
        .iter()
        .map(|r| ScatterPoint {
            size_bytes: r.size_bytes,
            throughput_mbps: r.throughput_mbps(),
            start_unix_us: r.start_unix_us,
        })
        .collect()
}

/// The peak-throughput point, if any.
pub fn peak(points: &[ScatterPoint]) -> Option<ScatterPoint> {
    points.iter().copied().max_by(|a, b| a.throughput_mbps.total_cmp(&b.throughput_mbps))
}

/// Points above a throughput threshold (the paper's "> 1.5 Gbps"
/// count).
pub fn above_threshold(points: &[ScatterPoint], mbps: f64) -> Vec<ScatterPoint> {
    points.iter().copied().filter(|p| p.throughput_mbps > mbps).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_logs::{TransferRecord, TransferType};

    fn ds() -> Dataset {
        Dataset::from_records(
            (1..=5u64)
                .map(|k| {
                    TransferRecord::simple(
                        TransferType::Retr,
                        k * 1_000_000,
                        k as i64,
                        1_000_000, // 1 s: throughput = 8k Mbps
                        "srv",
                        Some("peer"),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn scatter_has_all_points() {
        let pts = throughput_vs_size(&ds());
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].size_bytes, 1_000_000);
        assert!((pts[0].throughput_mbps - 8.0).abs() < 1e-9);
    }

    #[test]
    fn peak_is_max_throughput() {
        let pts = throughput_vs_size(&ds());
        let p = peak(&pts).unwrap();
        assert_eq!(p.size_bytes, 5_000_000);
        assert!((p.throughput_mbps - 40.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_filter() {
        let pts = throughput_vs_size(&ds());
        assert_eq!(above_threshold(&pts, 20.0).len(), 3); // 24, 32, 40 Mbps
        assert!(above_threshold(&pts, 100.0).is_empty());
    }

    #[test]
    fn empty() {
        assert!(peak(&[]).is_none());
        assert!(throughput_vs_size(&Dataset::new()).is_empty());
    }
}
