//! Fixture: trace emit sites with malformed kind/span names.

pub fn emit(t: &Tracer, parent: SpanId, name: &'static str) {
    t.emit_with(|| TraceEvent::new(0, "idc.admit").field("rate", 1u64));
    t.emit_with(|| TraceEvent::new(0, "UpperCase.Kind"));
    t.emit_with(|| TraceEvent::new(0, "flat"));
    let s = t.span_enter(parent, 0, "session.vc_setup");
    t.span_exit(s, 1);
    t.span_enter(parent, 0, name);
    let wrapped = t.span_enter_with(
        parent,
        0,
        "kernel.queue_wait",
        |ev| ev.field("depth", 3u64),
    );
    t.span_exit(wrapped, 2);
}
