//! Fixture: every panic-family token in non-test library code.

pub fn helpers(xs: &[u64], b: u64) -> u64 {
    let a = *xs.first().unwrap();
    let parsed: u64 = "7".parse().expect("seven");
    if a > b + parsed {
        panic!("a exceeded b");
    }
    match b {
        0 => unreachable!("b is nonzero here"),
        1 => todo!(),
        2 => unimplemented!(),
        _ => xs[0],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let xs = [1u64, 2];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
