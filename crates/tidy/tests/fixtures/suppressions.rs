//! Fixture: inline suppression behaviour.

pub fn justified(xs: &[u64]) -> u64 {
    // gvc-lint: allow(no-panic-in-lib) — validated non-empty by the caller contract
    xs.first().unwrap() + 1
}

pub fn unjustified(xs: &[u64]) -> u64 {
    xs.first().unwrap() + 1 // gvc-lint: allow(no-panic-in-lib)
}

pub fn wrong_rule(xs: &[u64]) -> u64 {
    // gvc-lint: allow(determinism) — a justification long enough, but the wrong rule
    xs.first().unwrap() + 1
}
