//! Fixture: unordered maps in a table-rendering file.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn render(rows: &HashMap<String, u64>, seen: &HashSet<u64>) -> String {
    format!("{} rows, {} ids", rows.len(), seen.len())
}
