//! Fixture: forbidden tokens inside comments and literals never fire.
//! A comment may say .unwrap() or panic!( or Instant::now freely.

pub fn clean() -> String {
    /* block comment mentioning .expect( and thread_rng */
    let a = "string with .unwrap() and panic!( and a TODO inside";
    let b = r#"raw: SystemTime::now and println!( and dbg!( here"#;
    let c = '"';
    // Depth-≥2 raw strings of every prefix; the quoted contents must
    // never surface in the code view. The `cr##` case mis-masked
    // before the scanner learned the C-string prefix (Rust ≥ 1.77):
    // the inner quote ended an "ordinary" string early and the text
    // after it — here spelling panic and nondeterminism tokens —
    // leaked as code.
    let d = r##"deep: has "x.unwrap()" and "Instant::now" inside"##;
    let e = br##"deep bytes: "panic!(" and "thread_rng" inside"##;
    let f = cr##"deep C: has "dbg!(" and "SystemTime::now" inside"##;
    let g = r###"deeper: closes "## but not yet, .expect( hidden"###;
    format!("{a}{b}{c}{d}{e:?}{f:?}{g}")
}
