//! Fixture: forbidden tokens inside comments and literals never fire.
//! A comment may say .unwrap() or panic!( or Instant::now freely.

pub fn clean() -> String {
    /* block comment mentioning .expect( and thread_rng */
    let a = "string with .unwrap() and panic!( and a TODO inside";
    let b = r#"raw: SystemTime::now and println!( and dbg!( here"#;
    let c = '"';
    format!("{a}{b}{c}")
}
