//! Fixture: hygiene violations — tabs, trailing space, bare markers.

fn spaced() {
	let tabbed = 1;
    let trailing = 2;  
    drop((tabbed, trailing));
}

// TODO: fix the thing
// FIXME make it stop
// TODO(#12): this one is tracked
