//! Fixture: second hop of the confinement chain.
//! Mapped to `crates/gridftp/src/entry.rs` by the semantic tests.

use gvc_core::sample_window;

/// Hop 2: two calls away from `Instant::now()` and still flagged —
/// the acceptance case for determinism confinement.
pub fn schedule_seed() -> u64 {
    sample_window() + 1
}
