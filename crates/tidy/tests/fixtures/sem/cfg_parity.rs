//! Fixture: cfg-parity violations and one correct twin pair.
//! Mapped to `crates/core/src/gated.rs` by the semantic tests.

/// Orphan: no sequential twin anywhere.
#[cfg(feature = "parallel")]
pub fn lanes_only(n: usize) -> u64 {
    n as u64
}

/// Drifted twins: same name, different return type.
#[cfg(feature = "parallel")]
pub fn merge(n: usize) -> u32 {
    n as u32
}

#[cfg(not(feature = "parallel"))]
pub fn merge(n: usize) -> u64 {
    n as u64
}

/// Correct twins: `_n` normalizes against `n`, consts stay exempt.
#[cfg(feature = "parallel")]
pub fn run(n: usize) -> u64 {
    n as u64
}

#[cfg(not(feature = "parallel"))]
pub fn run(_n: usize) -> u64 {
    0
}

#[cfg(feature = "parallel")]
const THRESHOLD: usize = 4;
