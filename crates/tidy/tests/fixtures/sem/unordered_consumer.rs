//! Fixture: presentation code iterating unordered returns through
//! `let` bindings. Mapped to `crates/cli/src/report.rs`.

use gvc_hntes::{active_pairs, pair_weights};

/// Two flagged iterations and one clean (sorted) path.
pub fn render() -> Vec<u32> {
    let pairs = active_pairs();
    for p in &pairs {
        let _ = p;
    }
    let weights = pair_weights();
    let _n = weights.keys().count();
    let mut sorted: Vec<u32> = Vec::new();
    sorted.sort_unstable();
    sorted
}
