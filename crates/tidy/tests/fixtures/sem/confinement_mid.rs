//! Fixture: first hop of the confinement chain.
//! Mapped to `crates/core/src/mid.rs` by the semantic tests.

use gvc_net::raw_stamp_us;

/// Hop 1: no sink token anywhere in this file — only the call graph
/// can see that this is a clock read in disguise.
pub fn sample_window() -> u64 {
    raw_stamp_us() / 2
}
