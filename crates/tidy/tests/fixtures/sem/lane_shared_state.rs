//! Fixture: shared mutable state inside a lane-fanned crate.
//! Mapped to `crates/engine/src/shared.rs` by the semantic tests.

use std::sync::atomic::AtomicUsize;
use std::sync::Mutex;

/// A cross-lane counter: exactly the channel lane isolation bans.
pub static PROGRESS: AtomicUsize = AtomicUsize::new(0);

/// Lock-guarded shared queue — merge order becomes timing-dependent.
pub struct SharedQueue {
    inner: Mutex<Vec<u64>>,
}

/// Mutable static: visible to every lane at once.
pub static mut LAST_SEEN: u64 = 0;
