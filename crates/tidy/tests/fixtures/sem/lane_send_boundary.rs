//! Fixture: a type with interior mutability crossing a lane-spawn
//! boundary. Mapped to `crates/engine/src/lanes.rs`.

/// Carried into lane closures by `fan_out` below.
pub struct LaneCtx {
    pub budget: u64,
    cache: std::cell::RefCell<Vec<u64>>,
}

/// Indirect hazard: reached through `Outer` in the spawn signature.
pub struct Outer {
    ctx: LaneCtx,
    shared: std::rc::Rc<Vec<u8>>,
}

/// The lane-spawn site: its signature names `Outer`, so both the
/// `Rc` field and the nested `RefCell` field are lane hazards.
pub fn fan_out(outer: Outer) {
    rayon::join(|| drop(&outer), || ());
}
