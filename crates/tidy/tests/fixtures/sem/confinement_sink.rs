//! Fixture: a direct wall-clock observer outside gvc-telemetry.
//! Mapped to `crates/net/src/clock.rs` by the semantic tests.

/// Hop 0: holds the sink itself. The per-line `determinism` rule
/// flags this line; confinement starts its taint here.
pub fn raw_stamp_us() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_micros() as u64
}
