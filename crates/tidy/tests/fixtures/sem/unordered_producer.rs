//! Fixture: workspace fns returning unordered collections.
//! Mapped to `crates/hntes/src/pairs.rs` by the semantic tests.

use std::collections::{HashMap, HashSet};

/// Unordered return the v2 rule tracks across crates.
pub fn active_pairs() -> HashSet<(u32, u32)> {
    HashSet::new()
}

/// Map-returning variant.
pub fn pair_weights() -> HashMap<u32, f64> {
    HashMap::new()
}
