//! Fixture: terminal output from library code.

pub fn report(n: usize) {
    println!("saw {n} records");
    print!("partial");
    eprintln!("warning: {n}");
    eprint!("err");
    dbg!(n);
}
