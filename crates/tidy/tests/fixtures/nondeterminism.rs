//! Fixture: wall-clock and entropy reads inside simulation code.

pub fn stamp() -> f64 {
    let t0 = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    drop(wall);
    t0.elapsed().as_secs_f64()
}

pub fn draw() -> f64 {
    let rng = rand::thread_rng();
    let seeded = SmallRng::from_entropy();
    let x: f64 = rand::random();
    drop((rng, seeded));
    x
}
