//! End-to-end tests for the v2 workspace rules over the semantic
//! fixture corpus.
//!
//! Fixtures live under `tests/fixtures/sem/` (the runner's workspace
//! walk skips `fixtures/` directories, so they never pollute a real
//! scan) and are parsed here under synthetic workspace-relative paths
//! so crate scoping behaves exactly as in-tree. Each test asserts the
//! precise `(rule, path, line)` findings — semantic rules must be
//! exact, not merely non-empty.

use gvc_tidy::{default_workspace_rules, run_sources, RuleSet, Violation, Workspace};

const SINK: &str = include_str!("fixtures/sem/confinement_sink.rs");
const MID: &str = include_str!("fixtures/sem/confinement_mid.rs");
const ENTRY: &str = include_str!("fixtures/sem/confinement_entry.rs");
const LANE_SHARED: &str = include_str!("fixtures/sem/lane_shared_state.rs");
const LANE_SEND: &str = include_str!("fixtures/sem/lane_send_boundary.rs");
const CFG_PARITY: &str = include_str!("fixtures/sem/cfg_parity.rs");
const UNORDERED_PRODUCER: &str = include_str!("fixtures/sem/unordered_producer.rs");
const UNORDERED_CONSUMER: &str = include_str!("fixtures/sem/unordered_consumer.rs");

/// The full corpus under its synthetic in-tree paths.
fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("crates/net/src/clock.rs", SINK),
        ("crates/core/src/mid.rs", MID),
        ("crates/gridftp/src/entry.rs", ENTRY),
        ("crates/engine/src/shared.rs", LANE_SHARED),
        ("crates/engine/src/lanes.rs", LANE_SEND),
        ("crates/core/src/gated.rs", CFG_PARITY),
        ("crates/hntes/src/pairs.rs", UNORDERED_PRODUCER),
        ("crates/cli/src/report.rs", UNORDERED_CONSUMER),
    ]
}

/// Runs one workspace rule by name over the corpus, returning sorted
/// `(path, line)` findings.
fn check_ws(rule_name: &str) -> Vec<(String, usize)> {
    let ws = Workspace::from_sources(&corpus());
    let rule = default_workspace_rules()
        .into_iter()
        .find(|r| r.name() == rule_name)
        .unwrap_or_else(|| panic!("no workspace rule named {rule_name}"));
    let mut out: Vec<(String, usize)> =
        rule.check(&ws).into_iter().map(|v| (v.path, v.line)).collect();
    out.sort();
    out
}

fn at(path: &str, line: usize) -> (String, usize) {
    (path.to_string(), line)
}

#[test]
fn confinement_flags_instant_now_two_hops_out() {
    // The acceptance case: `Instant::now()` sits in crates/net, and
    // both the one-hop wrapper (crates/core) and the two-hop entry
    // point (crates/gridftp) are flagged at the call site that
    // imports the taint — neither file mentions a clock token.
    let vs = check_ws("determinism-confinement");
    assert_eq!(
        vs,
        vec![at("crates/core/src/mid.rs", 9), at("crates/gridftp/src/entry.rs", 9)],
        "{vs:?}"
    );
}

#[test]
fn confinement_message_carries_the_call_chain() {
    let ws = Workspace::from_sources(&corpus());
    let rule = default_workspace_rules()
        .into_iter()
        .find(|r| r.name() == "determinism-confinement")
        .unwrap();
    let vs = rule.check(&ws);
    let entry = vs.iter().find(|v| v.path == "crates/gridftp/src/entry.rs").unwrap();
    assert!(entry.message.contains("Instant::now"), "{}", entry.message);
    assert!(
        entry.message.contains("entry::schedule_seed -> mid::sample_window -> clock::raw_stamp_us"),
        "{}",
        entry.message
    );
}

#[test]
fn lane_isolation_flags_shared_state_tokens() {
    let vs = check_ws("lane-isolation");
    let shared: Vec<&(String, usize)> =
        vs.iter().filter(|(p, _)| p == "crates/engine/src/shared.rs").collect();
    // use AtomicUsize (4), use Mutex (5), the static's type and
    // initializer (8, twice), the locked field (12), static mut (16).
    assert_eq!(
        shared.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
        vec![4, 5, 8, 8, 12, 16],
        "{vs:?}"
    );
}

#[test]
fn lane_isolation_follows_send_hazards_through_nested_fields() {
    let vs = check_ws("lane-isolation");
    let send: Vec<&(String, usize)> =
        vs.iter().filter(|(p, _)| p == "crates/engine/src/lanes.rs").collect();
    // `fan_out(outer: Outer)` spawns lanes; `Outer` carries an `Rc`
    // directly (13) and a `RefCell` one struct deeper (7).
    assert_eq!(send.iter().map(|(_, l)| *l).collect::<Vec<_>>(), vec![7, 13], "{vs:?}");
}

#[test]
fn cfg_parity_flags_orphan_and_drift_but_not_twins_or_consts() {
    // lanes_only (6) has no sequential twin; the merge twins (12)
    // disagree on return type. The run pair and the gated const are
    // clean.
    let vs = check_ws("cfg-parity");
    assert_eq!(vs, vec![at("crates/core/src/gated.rs", 6), at("crates/core/src/gated.rs", 12)]);
}

#[test]
fn unordered_v2_tracks_returns_through_let_bindings() {
    // `pairs` (bound line 8, iterated line 9) and `weights` (bound
    // line 12, `.keys()` line 13) both come from gvc-hntes fns whose
    // return types name unordered collections; the consumer file
    // itself never mentions HashMap/HashSet, so v1 ordered-iteration
    // cannot see this.
    let vs = check_ws("unordered-iteration-v2");
    assert_eq!(vs, vec![at("crates/cli/src/report.rs", 9), at("crates/cli/src/report.rs", 13)]);
}

#[test]
fn full_engine_run_combines_v1_and_v2_findings() {
    let report = run_sources(&corpus(), &RuleSet::v2());
    let mut by_rule: Vec<(&str, &str, usize)> =
        report.violations.iter().map(|v| (v.rule, v.path.as_str(), v.line)).collect();
    by_rule.sort();
    assert_eq!(
        by_rule,
        vec![
            ("cfg-parity", "crates/core/src/gated.rs", 6),
            ("cfg-parity", "crates/core/src/gated.rs", 12),
            // v1 catches the sink line itself; v2 catches the wrappers.
            ("determinism", "crates/net/src/clock.rs", 7),
            ("determinism-confinement", "crates/core/src/mid.rs", 9),
            ("determinism-confinement", "crates/gridftp/src/entry.rs", 9),
            ("lane-isolation", "crates/engine/src/lanes.rs", 7),
            ("lane-isolation", "crates/engine/src/lanes.rs", 13),
            ("lane-isolation", "crates/engine/src/shared.rs", 4),
            ("lane-isolation", "crates/engine/src/shared.rs", 5),
            ("lane-isolation", "crates/engine/src/shared.rs", 8),
            ("lane-isolation", "crates/engine/src/shared.rs", 8),
            ("lane-isolation", "crates/engine/src/shared.rs", 12),
            ("lane-isolation", "crates/engine/src/shared.rs", 16),
            ("unordered-iteration-v2", "crates/cli/src/report.rs", 9),
            ("unordered-iteration-v2", "crates/cli/src/report.rs", 13),
        ],
        "{:#?}",
        report.violations
    );
    assert!(report.suppressed.is_empty());
    assert_eq!(report.files_scanned, corpus().len());
}

#[test]
fn suppressed_semantic_findings_are_recorded_not_dropped() {
    // Suppressing the lane finding at the use site silences it but
    // keeps the site in the report's suppressed list for auditing.
    let patched = LANE_SHARED.replace(
        "use std::sync::Mutex;",
        "// gvc-lint: allow(lane-isolation) — fixture exercising the suppression audit path\n\
         use std::sync::Mutex;",
    );
    let sources = vec![("crates/engine/src/shared.rs", patched.as_str())];
    let report = run_sources(&sources, &RuleSet::v2());
    let suppressed: Vec<(&str, usize)> = report
        .suppressed
        .iter()
        .filter(|v| v.rule == "lane-isolation")
        .map(|v| (v.path.as_str(), v.line))
        .collect();
    // The use-Mutex line moved to 6 under the inserted comment.
    assert_eq!(suppressed, vec![("crates/engine/src/shared.rs", 6)], "{:#?}", report.suppressed);
    let still: Vec<usize> =
        report.violations.iter().filter(|v| v.rule == "lane-isolation").map(|v| v.line).collect();
    assert_eq!(still, vec![4, 9, 9, 13, 17], "{:#?}", report.violations);
}

#[test]
fn workspace_rule_allowlists_exempt_whole_files() {
    use gvc_tidy::semrules::LaneIsolation;
    use gvc_tidy::WorkspaceRule;
    let ws = Workspace::from_sources(&[("crates/engine/src/shared.rs", LANE_SHARED)]);
    let rule = LaneIsolation::new(vec!["shared.rs".to_string()]);
    let vs: Vec<Violation> = rule.check(&ws);
    assert!(vs.is_empty(), "{vs:#?}");
}
