//! End-to-end lint-engine tests over the fixture corpus.
//!
//! Each file under `tests/fixtures/` carries known violations (the
//! runner's workspace walk skips `fixtures/` directories, so they
//! never pollute a real scan). Tests parse them under synthetic
//! workspace-relative paths so rule scoping behaves exactly as
//! in-tree, then assert the precise `(rule, line)` findings.

use gvc_tidy::rules::NoPanicInLib;
use gvc_tidy::runner::check_file;
use gvc_tidy::{default_rules, Rule, SourceFile, Violation};

fn check(rel_path: &str, src: &str) -> Vec<Violation> {
    let file = SourceFile::parse(rel_path, src);
    let mut out = Vec::new();
    check_file(&file, &default_rules(), &mut out);
    out
}

fn found(vs: &[Violation]) -> Vec<(&'static str, usize)> {
    vs.iter().map(|v| (v.rule, v.line)).collect()
}

const PANIC_FIXTURE: &str = include_str!("fixtures/panic_paths.rs");
const NONDET_FIXTURE: &str = include_str!("fixtures/nondeterminism.rs");
const STDOUT_FIXTURE: &str = include_str!("fixtures/stdout.rs");
const UNORDERED_FIXTURE: &str = include_str!("fixtures/unordered_render.rs");
const HYGIENE_FIXTURE: &str = include_str!("fixtures/hygiene.rs");
const SUPPRESSION_FIXTURE: &str = include_str!("fixtures/suppressions.rs");
const MASKED_FIXTURE: &str = include_str!("fixtures/masked_tokens.rs");
const TRACE_KINDS_FIXTURE: &str = include_str!("fixtures/trace_kinds.rs");

#[test]
fn panic_fixture_exact_findings() {
    let vs = check("crates/core/src/panic_paths.rs", PANIC_FIXTURE);
    assert_eq!(
        found(&vs),
        vec![
            ("no-panic-in-lib", 4),  // .unwrap()
            ("no-panic-in-lib", 5),  // .expect(
            ("no-panic-in-lib", 7),  // panic!(
            ("no-panic-in-lib", 10), // unreachable!(
            ("no-panic-in-lib", 11), // todo!(
            ("no-panic-in-lib", 12), // unimplemented!(
            ("no-panic-in-lib", 13), // xs[0]
        ],
        "{vs:#?}"
    );
    assert!(vs[0].message.contains("unwrap"));
    assert!(vs[6].message.contains("literal slice index"));
    assert!(vs.iter().all(|v| v.col > 0 && v.path == "crates/core/src/panic_paths.rs"));
}

#[test]
fn panic_fixture_out_of_scope_paths_are_clean() {
    // Binary crates and `src/bin/` targets own their failure modes.
    assert!(check("crates/cli/src/panic_paths.rs", PANIC_FIXTURE).is_empty());
    assert!(check("crates/core/src/bin/panic_paths.rs", PANIC_FIXTURE).is_empty());
}

#[test]
fn nondeterminism_fixture_exact_findings() {
    let vs = check("crates/net/src/nondeterminism.rs", NONDET_FIXTURE);
    assert_eq!(
        found(&vs),
        vec![
            ("determinism", 4),  // Instant::now
            ("determinism", 5),  // SystemTime::now
            ("determinism", 11), // thread_rng
            ("determinism", 12), // from_entropy
            ("determinism", 13), // rand::random
        ],
        "{vs:#?}"
    );
    // The telemetry spine and the CLI may read the real world.
    assert!(check("crates/telemetry/src/nondeterminism.rs", NONDET_FIXTURE).is_empty());
    assert!(check("crates/cli/src/nondeterminism.rs", NONDET_FIXTURE).is_empty());
}

#[test]
fn stdout_fixture_exact_findings() {
    let vs = check("crates/logs/src/stdout.rs", STDOUT_FIXTURE);
    assert_eq!(
        found(&vs),
        vec![
            ("no-stdout-in-lib", 4), // println!
            ("no-stdout-in-lib", 5), // print!
            ("no-stdout-in-lib", 6), // eprintln!
            ("no-stdout-in-lib", 7), // eprint!
            ("no-stdout-in-lib", 8), // dbg!
        ],
        "{vs:#?}"
    );
}

#[test]
fn unordered_fixture_fires_only_in_presentation_files() {
    let vs = check("crates/core/src/tables.rs", UNORDERED_FIXTURE);
    assert_eq!(
        found(&vs),
        vec![
            ("ordered-iteration", 3),
            ("ordered-iteration", 4),
            ("ordered-iteration", 6), // HashMap in the signature
            ("ordered-iteration", 6), // HashSet in the signature
        ],
        "{vs:#?}"
    );
    // The same content is fine in a non-rendering file.
    assert!(check("crates/core/src/sweep.rs", UNORDERED_FIXTURE).is_empty());
}

#[test]
fn hygiene_fixture_exact_findings() {
    let vs = check("tests/hygiene_fixture.rs", HYGIENE_FIXTURE);
    assert_eq!(
        found(&vs),
        vec![
            ("hygiene", 4),  // tab indent
            ("hygiene", 5),  // trailing whitespace
            ("hygiene", 9),  // task marker without an issue ref
            ("hygiene", 10), // second marker flavour, same problem
        ],
        "{vs:#?}"
    );
    assert_eq!(vs[0].col, 1, "tab is the first character");
    assert!(vs[2].message.contains("issue reference"));
}

#[test]
fn suppression_fixture_semantics() {
    let vs = check("crates/core/src/suppressions.rs", SUPPRESSION_FIXTURE);
    assert_eq!(
        found(&vs),
        vec![
            // A suppression for the wrong rule leaves the panic finding.
            ("no-panic-in-lib", 14),
            // An unjustified suppression silences its line but is
            // itself reported.
            ("lint-suppression", 9),
        ],
        "{vs:#?}"
    );
    assert!(vs[1].message.contains("justification"));
}

#[test]
fn trace_kinds_fixture_exact_findings() {
    let vs = check("crates/gridftp/src/trace_kinds.rs", TRACE_KINDS_FIXTURE);
    assert_eq!(
        found(&vs),
        vec![
            ("trace-kind-naming", 5), // uppercase segments
            ("trace-kind-naming", 6), // single segment
            ("trace-kind-naming", 9), // name is not a string literal
        ],
        "{vs:#?}"
    );
    assert!(vs[0].message.contains("dot-namespaced"));
    assert!(vs[2].message.contains("string literal"));
    // The well-formed sites (including the rustfmt-wrapped call whose
    // literal sits a few lines below the token) stay silent.
    assert!(vs.iter().all(|v| v.line != 4 && v.line != 7 && v.line != 10));
}

#[test]
fn masked_fixture_is_clean() {
    let vs = check("crates/core/src/masked_tokens.rs", MASKED_FIXTURE);
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn allowlist_exempts_whole_fixture() {
    let rules: Vec<Box<dyn Rule>> =
        vec![Box::new(NoPanicInLib::new(vec!["panic_paths.rs".to_string()]))];
    let file = SourceFile::parse("crates/core/src/panic_paths.rs", PANIC_FIXTURE);
    let mut out = Vec::new();
    check_file(&file, &rules, &mut out);
    assert!(out.is_empty(), "{out:#?}");
}

#[test]
fn diagnostics_render_with_fixture_locations() {
    let vs = check("crates/core/src/panic_paths.rs", PANIC_FIXTURE);
    let human = vs[0].render_human();
    assert!(human.starts_with("crates/core/src/panic_paths.rs:4:"));
    assert!(human.contains("[no-panic-in-lib]"));
    let json = vs[0].render_json();
    assert!(json.contains("\"rule\":\"no-panic-in-lib\""));
    assert!(json.contains("\"line\":4"));
}
