//! The workspace item graph: a hand-rolled, dependency-free index of
//! functions, types, `use` declarations, and call sites.
//!
//! Built from the masked code view ([`crate::lexer`]), so string and
//! comment contents can never fake an item or a call. The scanner is
//! line-oriented with a brace-depth scope stack: items are only
//! collected at module/impl/trait scope (never inside fn bodies or
//! macro bodies), headers may span lines (multi-line signatures,
//! `where` clauses), and `#[cfg(feature = "parallel")]` attributes
//! are read from the *raw* lines, since the masked view blanks the
//! string inside the attribute.
//!
//! The resulting [`ItemGraph`] is deliberately "call-graph-lite":
//! calls resolve through the per-file `use` map and workspace path
//! conventions ([`crate::resolve`]); anything ambiguous resolves to
//! [`CallTarget::Unknown`] so interprocedural rules stay silent
//! rather than guessing.

use std::collections::BTreeMap;

use crate::lexer::SourceFile;
use crate::resolve::{crate_of_path, module_of_path, resolve_root, Root, UseMap};

/// Which side of the `parallel` feature gate an item sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cfg {
    /// Ungated (or gated on something other than `parallel`).
    None,
    /// `#[cfg(feature = "parallel")]`.
    Parallel,
    /// `#[cfg(not(feature = "parallel"))]`.
    NotParallel,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// 0-based line index in the file.
    pub line: usize,
    /// 1-based column of the callee path.
    pub col: usize,
    /// The callee path as written (`helper`, `sweep::run`,
    /// `Instant::now`); for method calls, the bare method name.
    pub path: String,
    /// True for `.name(...)` receiver calls.
    pub is_method: bool,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index into [`ItemGraph::files`].
    pub file: usize,
    /// Short crate name ([`crate_of_path`]).
    pub krate: String,
    /// `module::path::[Type::]name` within the crate.
    pub qname: String,
    /// Bare function name.
    pub name: String,
    /// Header text from `fn` up to the body brace / semicolon.
    pub sig: String,
    /// Declared `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based body line range (empty for bodyless trait fns).
    pub body: std::ops::Range<usize>,
    /// Feature-gate side.
    pub cfg: Cfg,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Declared inside an `impl` or `trait` block.
    pub is_method: bool,
    /// Call sites in the body.
    pub calls: Vec<Call>,
}

/// One `struct` / `enum` item, with its field lines for
/// Send-boundary scans.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// Index into [`ItemGraph::files`].
    pub file: usize,
    /// Short crate name.
    pub krate: String,
    /// Bare type name.
    pub name: String,
    /// 0-based line of the declaring keyword.
    pub line: usize,
    /// `(0-based line, masked text)` of body lines (or the header
    /// itself for tuple/unit structs, whose fields sit inline).
    pub fields: Vec<(usize, String)>,
    /// Inside a test region.
    pub is_test: bool,
}

/// A module-level item on either side of the `parallel` gate —
/// the unit of the cfg-parity check.
#[derive(Debug, Clone)]
pub struct GatedItem {
    /// Item kind keyword (`fn`, `struct`, `impl`, …).
    pub kind: &'static str,
    /// Pairing key: qualified name, or normalized header text for
    /// `impl` / `use` items.
    pub key: String,
    /// Index into [`ItemGraph::files`].
    pub file: usize,
    /// 0-based declaration line.
    pub line: usize,
    /// Which side of the gate.
    pub cfg: Cfg,
    /// For fns: normalized signature and visibility, compared
    /// between twins.
    pub sig: Option<String>,
    /// Declared `pub`.
    pub is_pub: bool,
}

/// Per-file facts the graph keeps alongside the global item lists.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Short crate name.
    pub krate: String,
    /// File's module path within the crate.
    pub mods: Vec<String>,
    /// Resolved `use` declarations.
    pub uses: UseMap,
}

/// The whole-workspace index.
#[derive(Debug, Clone, Default)]
pub struct ItemGraph {
    /// Per-file facts, parallel to the runner's file list.
    pub files: Vec<FileInfo>,
    /// Every `fn` item.
    pub fns: Vec<FnItem>,
    /// Every `struct` / `enum` item.
    pub types: Vec<TypeItem>,
    /// Every `parallel`-gated module-level item.
    pub gated: Vec<GatedItem>,
    /// Bare fn name → indices into `fns`.
    pub fn_names: BTreeMap<String, Vec<usize>>,
    /// Type name → indices into `types`.
    pub type_names: BTreeMap<String, Vec<usize>>,
}

/// What a call site resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// A unique workspace function (index into [`ItemGraph::fns`]).
    Fn(usize),
    /// A path outside the workspace, fully expanded
    /// (`std::time::Instant::now`).
    External(String),
    /// Ambiguous or unresolvable — rules must not guess.
    Unknown,
}

impl ItemGraph {
    /// Builds the graph over all files.
    pub fn build(files: &[SourceFile]) -> ItemGraph {
        let mut g = ItemGraph::default();
        for (idx, f) in files.iter().enumerate() {
            let mut sc = Scanner::new(idx, f);
            sc.scan(&mut g);
        }
        for (i, f) in g.fns.iter().enumerate() {
            g.fn_names.entry(f.name.clone()).or_default().push(i);
        }
        for (i, t) in g.types.iter().enumerate() {
            g.type_names.entry(t.name.clone()).or_default().push(i);
        }
        g
    }

    /// Resolves one call site found in `file` to a workspace fn,
    /// an external path, or unknown.
    pub fn resolve_call(&self, call: &Call, file: usize) -> CallTarget {
        let info = &self.files[file];
        if call.is_method {
            // Method calls carry no receiver type: resolve only when
            // the name is unique across the workspace and could not
            // be a std collection/iterator method (a `.insert(` on a
            // `HashMap` must not resolve to some workspace `insert`).
            if COMMON_METHODS.contains(&call.path.as_str()) {
                return CallTarget::Unknown;
            }
            return match self.fn_names.get(&call.path) {
                Some(ids) if ids.len() == 1 && self.fns[ids[0]].is_method => CallTarget::Fn(ids[0]),
                _ => CallTarget::Unknown,
            };
        }
        let segments: Vec<String> = call.path.split("::").map(str::to_string).collect();
        let (root, segs) = resolve_root(&segments, &info.uses, &info.krate, &info.mods);
        match root {
            Root::External => CallTarget::External(segs.join("::")),
            Root::Workspace(krate) => self.find_fn(&krate, &segs, file),
        }
    }

    /// Finds the unique fn in `krate` whose qualified name ends with
    /// `segs`, preferring same-file matches.
    fn find_fn(&self, krate: &str, segs: &[String], file: usize) -> CallTarget {
        let Some(last) = segs.last() else {
            return CallTarget::Unknown;
        };
        let Some(ids) = self.fn_names.get(last) else {
            return CallTarget::Unknown;
        };
        let suffix = segs.join("::");
        let matches: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&i| {
                let f = &self.fns[i];
                f.krate == krate && (f.qname == suffix || f.qname.ends_with(&format!("::{suffix}")))
            })
            .collect();
        match matches.len() {
            1 => CallTarget::Fn(matches[0]),
            0 => CallTarget::Unknown,
            _ => {
                // Prefer a same-file match when the bare name is
                // declared in several modules.
                let local: Vec<usize> =
                    matches.iter().copied().filter(|&i| self.fns[i].file == file).collect();
                if local.len() == 1 {
                    CallTarget::Fn(local[0])
                } else {
                    CallTarget::Unknown
                }
            }
        }
    }
}

/// What kind of scope a `{` opened.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ScopeKind {
    Mod,
    Impl(String),
    Trait(String),
    Fn(usize),
    Type(usize),
    Block,
}

struct Scope {
    kind: ScopeKind,
}

/// An item header being accumulated until its `{` or `;`.
struct Header {
    kind: &'static str,
    text: String,
    start_line: usize,
    cfg: Cfg,
    is_pub: bool,
    /// Paren/bracket nesting inside the header (a `{` only ends the
    /// header at depth 0, so `fn f(x: impl Fn() -> {…}` stays safe).
    nest: i32,
}

struct Scanner<'a> {
    file_idx: usize,
    file: &'a SourceFile,
    krate: String,
    file_mods: Vec<String>,
    /// Inline `mod name { … }` names currently open.
    inline_mods: Vec<String>,
    depth: usize,
    scopes: Vec<Scope>,
    pending_cfg: Cfg,
    header: Option<Header>,
    /// Scope kind produced by a just-finished header whose body `{`
    /// is being opened (one word of hand-off state between
    /// `finish_header` and `open_brace_as_header_body`).
    finished_kind: Option<ScopeKind>,
    uses: UseMap,
}

impl<'a> Scanner<'a> {
    fn new(file_idx: usize, file: &'a SourceFile) -> Scanner<'a> {
        Scanner {
            file_idx,
            file,
            krate: crate_of_path(&file.rel_path),
            file_mods: module_of_path(&file.rel_path),
            inline_mods: Vec::new(),
            depth: 0,
            scopes: Vec::new(),
            pending_cfg: Cfg::None,
            header: None,
            finished_kind: None,
            uses: UseMap::new(),
        }
    }

    /// Full module path at the current position.
    fn mod_path(&self) -> Vec<String> {
        let mut p = self.file_mods.clone();
        p.extend(self.inline_mods.iter().cloned());
        p
    }

    /// True when the current scope can declare items the graph
    /// collects (module level, impl blocks, trait blocks).
    fn at_item_scope(&self) -> bool {
        matches!(
            self.scopes.last().map(|s| &s.kind),
            None | Some(ScopeKind::Mod | ScopeKind::Impl(_) | ScopeKind::Trait(_))
        )
    }

    fn scan(&mut self, g: &mut ItemGraph) {
        for ln in 0..self.file.code.len() {
            self.line(ln, g);
        }
        // Extract calls for every fn collected from this file.
        for f in &mut g.fns {
            if f.file == self.file_idx {
                f.calls = extract_calls(&self.file.code, f.body.clone());
            }
        }
        g.files.push(FileInfo {
            rel_path: self.file.rel_path.clone(),
            krate: self.krate.clone(),
            mods: self.file_mods.clone(),
            uses: std::mem::take(&mut self.uses),
        });
    }

    fn line(&mut self, ln: usize, g: &mut ItemGraph) {
        let code = self.file.code[ln].clone();
        if self.header.is_none() && self.at_item_scope() {
            let trimmed = code.trim_start();
            if trimmed.starts_with("#[") || trimmed.starts_with("#!") {
                // Attributes are read from the raw line: the feature
                // name is a string literal, blanked in the code view.
                let raw = &self.file.raw[ln];
                if raw.contains("cfg(not(feature = \"parallel\"))")
                    || raw.contains("cfg(not(feature=\"parallel\"))")
                {
                    self.pending_cfg = Cfg::NotParallel;
                } else if raw.contains("cfg(feature = \"parallel\")")
                    || raw.contains("cfg(feature=\"parallel\")")
                {
                    self.pending_cfg = Cfg::Parallel;
                }
                return;
            }
            if trimmed.is_empty() {
                // Blank (or comment-only) lines keep a pending
                // attribute alive between `#[cfg]` and the item.
                return;
            }
            if let Some((kind, is_pub)) = item_start(trimmed) {
                let cfg = std::mem::replace(&mut self.pending_cfg, Cfg::None);
                self.header = Some(Header {
                    kind,
                    text: String::new(),
                    start_line: ln,
                    cfg,
                    is_pub,
                    nest: 0,
                });
            } else {
                self.pending_cfg = Cfg::None;
            }
        }
        self.walk_chars(ln, &code, g);
    }

    fn walk_chars(&mut self, ln: usize, code: &str, g: &mut ItemGraph) {
        for c in code.chars() {
            if let Some(mut h) = self.header.take() {
                // `use` groups carry braces inside the header; for
                // every other item a depth-0 `{` opens the body.
                let group_braces = h.kind == "use";
                match c {
                    '(' | '[' => h.nest += 1,
                    ')' | ']' => h.nest -= 1,
                    '{' if group_braces => h.nest += 1,
                    '}' if group_braces => h.nest -= 1,
                    '{' if h.nest == 0 => {
                        self.finish_header(h, ln, true, g);
                        let kind = self.finished_kind.take().unwrap_or(ScopeKind::Block);
                        self.scopes.push(Scope { kind });
                        self.depth += 1;
                        continue;
                    }
                    ';' if h.nest == 0 => {
                        self.finish_header(h, ln, false, g);
                        continue;
                    }
                    _ => {}
                }
                h.text.push(c);
                self.header = Some(h);
            } else {
                match c {
                    '{' => {
                        self.scopes.push(Scope { kind: ScopeKind::Block });
                        self.depth += 1;
                    }
                    '}' => {
                        self.depth = self.depth.saturating_sub(1);
                        if let Some(s) = self.scopes.pop() {
                            self.close_scope(s.kind, ln, g);
                        }
                    }
                    _ => {}
                }
            }
        }
        // A header that spans lines keeps accumulating; add a space
        // so `fn f(\n  x: u32)` normalizes cleanly.
        if let Some(h) = &mut self.header {
            h.text.push(' ');
        }
    }

    fn close_scope(&mut self, kind: ScopeKind, ln: usize, g: &mut ItemGraph) {
        match kind {
            ScopeKind::Fn(idx) => {
                g.fns[idx].body.end = ln + 1;
            }
            ScopeKind::Type(idx) => {
                // Field lines include the header and closer, so
                // single-line declarations are covered too.
                let t = &mut g.types[idx];
                for l in t.line..=ln {
                    if let Some(text) = self.file.code.get(l) {
                        t.fields.push((l, text.clone()));
                    }
                }
            }
            ScopeKind::Mod => {
                self.inline_mods.pop();
            }
            _ => {}
        }
    }

    fn finish_header(&mut self, h: Header, ln: usize, has_body: bool, g: &mut ItemGraph) {
        let text = h.text.trim().to_string();
        let is_test = self.file.is_test.get(h.start_line).copied().unwrap_or(false);
        let mods = self.mod_path();
        let kind_scope = match h.kind {
            "fn" => {
                let name = ident_after(&text, "fn ").unwrap_or_default();
                let owner = match self.scopes.last().map(|s| &s.kind) {
                    Some(ScopeKind::Impl(t) | ScopeKind::Trait(t)) => Some(t.clone()),
                    _ => None,
                };
                let mut qsegs = mods.clone();
                if let Some(t) = &owner {
                    qsegs.push(t.clone());
                }
                qsegs.push(name.clone());
                let idx = g.fns.len();
                g.fns.push(FnItem {
                    file: self.file_idx,
                    krate: self.krate.clone(),
                    qname: qsegs.join("::"),
                    name,
                    sig: text.clone(),
                    is_pub: h.is_pub,
                    line: h.start_line,
                    // Body starts at the brace line so single-line
                    // bodies (`fn f() { g() }`) are scanned too; the
                    // end is patched when the scope closes.
                    body: if has_body { ln..ln + 1 } else { 0..0 },
                    cfg: h.cfg,
                    is_test,
                    is_method: owner.is_some(),
                    calls: Vec::new(),
                });
                if h.cfg != Cfg::None {
                    g.gated.push(GatedItem {
                        kind: "fn",
                        key: g.fns[idx].qname.clone(),
                        file: self.file_idx,
                        line: h.start_line,
                        cfg: h.cfg,
                        sig: Some(crate::resolve::normalize_sig(&text)),
                        is_pub: h.is_pub,
                    });
                }
                has_body.then_some(ScopeKind::Fn(idx))
            }
            "struct" | "enum" | "union" => {
                let name = ident_after(&text, h.kind).unwrap_or_default();
                let idx = g.types.len();
                let mut fields = Vec::new();
                if !has_body {
                    // Tuple / unit struct: fields live in the header.
                    fields.push((h.start_line, text.clone()));
                }
                g.types.push(TypeItem {
                    file: self.file_idx,
                    krate: self.krate.clone(),
                    name: name.clone(),
                    line: h.start_line,
                    fields,
                    is_test,
                });
                if h.cfg != Cfg::None {
                    let mut qsegs = mods.clone();
                    qsegs.push(name);
                    g.gated.push(GatedItem {
                        kind: h.kind,
                        key: qsegs.join("::"),
                        file: self.file_idx,
                        line: h.start_line,
                        cfg: h.cfg,
                        sig: None,
                        is_pub: h.is_pub,
                    });
                }
                has_body.then_some(ScopeKind::Type(idx))
            }
            "trait" => {
                let name = ident_after(&text, "trait ").unwrap_or_default();
                if h.cfg != Cfg::None {
                    let mut qsegs = mods.clone();
                    qsegs.push(name.clone());
                    g.gated.push(GatedItem {
                        kind: "trait",
                        key: qsegs.join("::"),
                        file: self.file_idx,
                        line: h.start_line,
                        cfg: h.cfg,
                        sig: None,
                        is_pub: h.is_pub,
                    });
                }
                has_body.then_some(ScopeKind::Trait(name))
            }
            "mod" => {
                let name = ident_after(&text, "mod ").unwrap_or_default();
                if h.cfg != Cfg::None {
                    let mut qsegs = mods.clone();
                    qsegs.push(name.clone());
                    g.gated.push(GatedItem {
                        kind: "mod",
                        key: qsegs.join("::"),
                        file: self.file_idx,
                        line: h.start_line,
                        cfg: h.cfg,
                        sig: None,
                        is_pub: h.is_pub,
                    });
                }
                if has_body {
                    self.inline_mods.push(name);
                    Some(ScopeKind::Mod)
                } else {
                    None
                }
            }
            "impl" => {
                let ty = impl_type_name(&text);
                if h.cfg != Cfg::None {
                    g.gated.push(GatedItem {
                        kind: "impl",
                        key: crate::resolve::normalize_sig(&text),
                        file: self.file_idx,
                        line: h.start_line,
                        cfg: h.cfg,
                        sig: None,
                        is_pub: false,
                    });
                }
                has_body.then_some(ScopeKind::Impl(ty))
            }
            "use" => {
                // The decl text is everything after the keyword
                // (`pub use` re-exports included).
                let decl = match text.find("use") {
                    Some(at) => text[at + 3..].trim().to_string(),
                    None => text.clone(),
                };
                self.uses.add_decl(&decl);
                if h.cfg != Cfg::None {
                    g.gated.push(GatedItem {
                        kind: "use",
                        key: crate::resolve::normalize_sig(&decl),
                        file: self.file_idx,
                        line: h.start_line,
                        cfg: h.cfg,
                        sig: None,
                        is_pub: h.is_pub,
                    });
                }
                // Group braces stay inside the header, so a `use`
                // never opens a scope.
                None
            }
            _ => has_body.then_some(ScopeKind::Block),
        };
        self.finished_kind = if has_body { kind_scope } else { None };
    }
}

/// Recognizes a module-level item declaration at the start of a
/// trimmed masked line. Returns the item kind and whether it is
/// `pub`.
fn item_start(trimmed: &str) -> Option<(&'static str, bool)> {
    let mut rest = trimmed;
    let mut is_pub = false;
    if let Some(r) = rest.strip_prefix("pub") {
        // `pub`, `pub(crate)`, `pub(super)`, `pub(in …)`.
        let r = r.trim_start();
        let r = if let Some(paren) = r.strip_prefix('(') {
            match paren.find(')') {
                Some(close) => paren[close + 1..].trim_start(),
                None => return None,
            }
        } else {
            r
        };
        if r.len() == rest.len() {
            return None;
        }
        is_pub = true;
        rest = r;
    }
    // Qualifiers that may precede `fn`.
    for q in ["default ", "const ", "async ", "unsafe ", "extern \"C\" ", "extern "] {
        if let Some(r) = rest.strip_prefix(q) {
            rest = r.trim_start();
        }
    }
    let kind =
        ["fn", "struct", "enum", "union", "trait", "mod", "impl", "use"].into_iter().find(|k| {
            rest.strip_prefix(k)
                .is_some_and(|r| r.starts_with(|c: char| !is_ident_char(c)) || r.is_empty())
        })?;
    // `use` as `fn` argument etc. can't start a trimmed line at item
    // scope; `impl Trait for` in a type position can't either.
    Some((kind, is_pub))
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// First identifier after `marker` in `text`.
fn ident_after(text: &str, marker: &str) -> Option<String> {
    let at = text.find(marker)? + marker.len();
    let rest = text[at..].trim_start();
    let end = rest.find(|c: char| !is_ident_char(c)).unwrap_or(rest.len());
    let name = &rest[..end];
    (!name.is_empty()).then(|| name.to_string())
}

/// The self-type name of an `impl` header: `impl<T> Foo<T> for
/// Bar<T>` → `Bar`, `impl Baz { … }` → `Baz`.
fn impl_type_name(text: &str) -> String {
    let body = text.trim_start_matches("impl").trim_start();
    // Skip a leading generic parameter list.
    let body = if let Some(rest) = body.strip_prefix('<') {
        let mut depth = 1i32;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest[cut..].trim_start()
    } else {
        body
    };
    let body = match body.find(" for ") {
        Some(at) => body[at + 5..].trim_start(),
        None => body,
    };
    let end = body.find(|c: char| !is_ident_char(c) && c != ':').unwrap_or(body.len());
    body[..end].rsplit("::").next().unwrap_or("").to_string()
}

/// Method names so common on std types that a bare `.name(` must
/// never be attributed to a workspace method of the same name.
const COMMON_METHODS: &[&str] = &[
    "new",
    "insert",
    "get",
    "get_mut",
    "push",
    "pop",
    "len",
    "iter",
    "iter_mut",
    "into_iter",
    "clone",
    "next",
    "remove",
    "contains",
    "contains_key",
    "extend",
    "map",
    "filter",
    "collect",
    "sort",
    "join",
    "split",
    "trim",
    "parse",
    "entry",
    "keys",
    "values",
    "drain",
    "take",
    "send",
    "recv",
    "lock",
    "read",
    "write",
    "min",
    "max",
    "sum",
    "count",
    "last",
    "first",
    "find",
    "any",
    "all",
    "fold",
    "rev",
    "chain",
    "zip",
    "retain",
    "clear",
    "is_empty",
    "to_string",
    "to_owned",
    "as_str",
    "as_ref",
    "as_slice",
    "into",
    "from",
    "unwrap_or",
    "unwrap_or_else",
    "and_then",
    "ok_or",
    "expect",
    "with_capacity",
    "default",
    "eq",
    "cmp",
    "hash",
    "fmt",
    "drop",
];

/// Keywords and enum constructors that look like calls but are not.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "loop", "fn", "move", "impl", "dyn",
    "where", "let", "else", "Some", "Ok", "Err", "None", "Box",
];

/// Scans a body's masked lines for call sites: an identifier path
/// directly before a `(`. Macro invocations (`name!(…)`) are skipped;
/// `.name(` is recorded as a method call.
pub(crate) fn extract_calls(code: &[String], body: std::ops::Range<usize>) -> Vec<Call> {
    let mut out = Vec::new();
    for ln in body {
        let Some(line) = code.get(ln) else { break };
        let bytes = line.as_bytes();
        for (at, _) in line.match_indices('(') {
            let mut start = at;
            while start > 0 {
                let p = bytes[start - 1] as char;
                if is_ident_char(p) || p == ':' {
                    start -= 1;
                } else {
                    break;
                }
            }
            if start == at {
                continue;
            }
            let path = &line[start..at];
            if path.starts_with(|c: char| c.is_ascii_digit()) || path.starts_with(':') {
                continue;
            }
            if NOT_CALLS.contains(&path) {
                continue;
            }
            let is_method = start > 0 && bytes[start - 1] == b'.';
            if is_method && path.contains(':') {
                continue;
            }
            out.push(Call { line: ln, col: start + 1, path: path.to_string(), is_method });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> ItemGraph {
        let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        ItemGraph::build(&parsed)
    }

    fn fn_named<'g>(g: &'g ItemGraph, name: &str) -> &'g FnItem {
        let ids = g.fn_names.get(name).unwrap_or_else(|| panic!("no fn `{name}`"));
        assert_eq!(ids.len(), 1, "fn `{name}` not unique");
        &g.fns[ids[0]]
    }

    #[test]
    fn collects_fns_with_qualified_names_and_bodies() {
        let src = "use std::time::Instant;\n\
                   pub struct Clock {\n    t: u64,\n}\n\
                   impl Clock {\n    pub fn read(&self) -> u64 { self.t }\n}\n\
                   fn helper() {\n    let _ = Instant::now();\n}\n";
        let g = graph(&[("crates/net/src/sim.rs", src)]);
        let read = fn_named(&g, "read");
        assert_eq!(read.krate, "net");
        assert_eq!(read.qname, "sim::Clock::read");
        assert!(read.is_method && read.is_pub);
        let helper = fn_named(&g, "helper");
        assert_eq!(helper.qname, "sim::helper");
        assert!(!helper.is_pub);
        // The single-line body of `read` still yields its call scan
        // range; `helper`'s call to Instant::now resolves external.
        let call = helper.calls.iter().find(|c| c.path == "Instant::now").expect("call");
        assert_eq!(
            g.resolve_call(call, helper.file),
            CallTarget::External("std::time::Instant::now".to_string())
        );
    }

    #[test]
    fn single_line_bodies_are_scanned() {
        let src = "fn inner() {}\npub fn outer() { inner() }\n";
        let g = graph(&[("crates/core/src/lib.rs", src)]);
        let outer = fn_named(&g, "outer");
        let call = outer.calls.iter().find(|c| c.path == "inner").expect("inner call");
        let inner = fn_named(&g, "inner");
        let id = g.fn_names["inner"][0];
        assert_eq!(inner.qname, "inner");
        assert_eq!(g.resolve_call(call, outer.file), CallTarget::Fn(id));
    }

    #[test]
    fn cross_crate_calls_resolve_through_use() {
        let a = "pub fn sink_like() {}\n";
        let b = "use gvc_net::sink_like;\n\
                 pub fn caller() {\n    sink_like();\n    gvc_net::sink_like();\n}\n";
        let g = graph(&[("crates/net/src/lib.rs", a), ("crates/core/src/lib.rs", b)]);
        let id = g.fn_names["sink_like"][0];
        let caller = fn_named(&g, "caller");
        for c in caller.calls.iter().filter(|c| c.path.contains("sink_like")) {
            assert_eq!(g.resolve_call(c, caller.file), CallTarget::Fn(id), "path {}", c.path);
        }
    }

    #[test]
    fn cfg_gated_items_are_recorded_from_raw_attrs() {
        let src = "#[cfg(feature = \"parallel\")]\n\
                   pub fn fan_out(n: usize) -> u32 { 0 }\n\
                   #[cfg(not(feature = \"parallel\"))]\n\
                   pub fn fan_out(_n: usize) -> u32 { 0 }\n";
        let g = graph(&[("crates/core/src/run.rs", src)]);
        assert_eq!(g.gated.len(), 2);
        assert_eq!(g.gated[0].cfg, Cfg::Parallel);
        assert_eq!(g.gated[1].cfg, Cfg::NotParallel);
        assert_eq!(g.gated[0].key, g.gated[1].key);
        // `_n` vs `n` normalize to the same comparable signature.
        assert_eq!(g.gated[0].sig, g.gated[1].sig);
    }

    #[test]
    fn cfg_inside_fn_bodies_is_not_an_item() {
        let src = "pub fn f() {\n    #[cfg(feature = \"parallel\")]\n    {\n        let x = 1;\n    }\n}\n";
        let g = graph(&[("crates/core/src/lib.rs", src)]);
        assert!(g.gated.is_empty());
    }

    #[test]
    fn struct_fields_cover_single_and_multi_line() {
        let src = "pub struct One { x: std::rc::Rc<u32> }\n\
                   pub struct Two {\n    y: u32,\n}\n\
                   pub struct Tup(pub u8);\n";
        let g = graph(&[("crates/core/src/t.rs", src)]);
        let one = &g.types[g.type_names["One"][0]];
        assert!(one.fields.iter().any(|(_, l)| l.contains("Rc<")));
        let two = &g.types[g.type_names["Two"][0]];
        assert!(two.fields.iter().any(|(_, l)| l.contains("y: u32")));
        let tup = &g.types[g.type_names["Tup"][0]];
        assert!(tup.fields.iter().any(|(_, l)| l.contains("u8")));
    }

    #[test]
    fn strings_and_comments_cannot_fake_items_or_calls() {
        let src = "pub fn f() -> String {\n    // calls helper() in a comment\n    \
                   let s = \"helper()\";\n    s.to_string()\n}\n";
        let g = graph(&[("crates/core/src/lib.rs", src)]);
        let f = fn_named(&g, "f");
        assert!(f.calls.iter().all(|c| c.path != "helper"));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "pub fn f(v: &[u32]) -> u32 {\n    if (v.len()) > 0 {\n        \
                   assert_eq!(v[0], 0);\n    }\n    g(v)\n}\nfn g(_v: &[u32]) -> u32 { 0 }\n";
        let g = graph(&[("crates/core/src/lib.rs", src)]);
        let f = fn_named(&g, "f");
        let paths: Vec<&str> = f.calls.iter().map(|c| c.path.as_str()).collect();
        assert!(!paths.contains(&"if"));
        assert!(!paths.contains(&"assert_eq"));
        assert!(paths.contains(&"g"));
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let src = "mod inner {\n    pub fn f() {}\n}\npub fn outer() {}\n";
        let g = graph(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(fn_named(&g, "f").qname, "inner::f");
        assert_eq!(fn_named(&g, "outer").qname, "outer");
    }

    #[test]
    fn test_region_fns_are_flagged() {
        let src = "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    \
                   fn t() {\n        super::prod();\n    }\n}\n";
        let g = graph(&[("crates/core/src/lib.rs", src)]);
        assert!(!fn_named(&g, "prod").is_test);
        assert!(fn_named(&g, "t").is_test);
    }
}
