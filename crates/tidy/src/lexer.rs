//! A small comment/string/char-literal-aware scanner.
//!
//! `gvc-tidy` has no parser dependency (the vendor tree carries no
//! `syn`), so rules work on a *masked* view of each file: the exact
//! same lines as the source, but with comment text and string/char
//! contents blanked out. A forbidden token inside a string literal or
//! a doc comment therefore never matches, while every real code token
//! keeps its line and column.
//!
//! The scanner also derives two per-line facts the rules need:
//!
//! * **test regions** — lines inside a `#[cfg(test)]` or `#[test]`
//!   item's brace block, where panic-family rules do not apply;
//! * **suppressions** — `// gvc-lint: allow(<rule>) — <justification>`
//!   comments, which silence `<rule>` on the same and the following
//!   line. A suppression without a justification is itself reported.

/// One parsed suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// Whether a non-trivial justification follows the `allow(...)`.
    pub justified: bool,
}

/// A source file prepared for rule checks.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Raw lines, exactly as on disk (no trailing newline).
    pub raw: Vec<String>,
    /// Masked lines: comments and string/char contents blanked.
    pub code: Vec<String>,
    /// Lines with string/char contents blanked but comments kept —
    /// the view hygiene checks scan, since task markers live in
    /// comments.
    pub nostr: Vec<String>,
    /// Per-line flag: inside a `#[cfg(test)]` / `#[test]` block.
    pub is_test: Vec<bool>,
    /// All `gvc-lint: allow(...)` comments found in the file.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Scans `content` into the masked/classified form.
    pub fn parse(rel_path: &str, content: &str) -> SourceFile {
        let masked = mask_impl(content, true);
        let raw: Vec<String> = split_lines(content);
        let code: Vec<String> = split_lines(&masked);
        let nostr: Vec<String> = split_lines(&mask_impl(content, false));
        let is_test = test_lines(&masked, raw.len());
        // Suppressions are parsed from the strings-masked view so a
        // string literal mentioning the marker never counts.
        let suppressions = find_suppressions(&nostr);
        SourceFile { rel_path: rel_path.to_string(), raw, code, nostr, is_test, suppressions }
    }

    /// True when `rule` is suppressed on 1-based `line` (a suppression
    /// covers its own line and the line after it).
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }
}

fn split_lines(s: &str) -> Vec<String> {
    s.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l).to_string()).collect()
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Blanks comment text and string/char-literal contents, preserving
/// line structure and the position of every code character.
pub fn mask(content: &str) -> String {
    mask_impl(content, true)
}

fn mask_impl(content: &str, mask_comments: bool) -> String {
    let b: Vec<char> = content.chars().collect();
    let mut out = String::with_capacity(content.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        // Line comment (also covers doc comments).
        if c == '/' && next == Some('/') {
            while i < b.len() && b[i] != '\n' {
                out.push(if mask_comments { ' ' } else { b[i] });
                i += 1;
            }
            continue;
        }
        // Block comment, nestable.
        if c == '/' && next == Some('*') {
            let keep = |ch: char| if mask_comments { blank(ch) } else { ch };
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(keep('/'));
                    out.push(keep('*'));
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(keep('*'));
                    out.push(keep('/'));
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(keep(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw-byte / raw-C) strings: r"…", r#"…"#, br#"…"#,
        // cr#"…"#. The `c` prefix (C strings, Rust ≥ 1.77) used to be
        // unknown to this scanner, so `cr##"…"##` fell through to the
        // ordinary-string branch and any `#`-delimited (depth ≥ 1)
        // contents containing quotes leaked into the code view.
        let prev_ident = i > 0 && is_ident(b[i - 1]);
        if !prev_ident && (c == 'r' || c == 'b' || c == 'c') {
            let after_prefix =
                if (c == 'b' || c == 'c') && next == Some('r') { i + 2 } else { i + 1 };
            let is_raw = (c == 'r' || next == Some('r'))
                && matches!(b.get(after_prefix), Some('"') | Some('#'));
            if is_raw {
                let mut j = after_prefix;
                let mut hashes = 0usize;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&'"') {
                    // Opener confirmed; blank through the closer.
                    j += 1;
                    loop {
                        match b.get(j) {
                            None => break,
                            Some(&'"') => {
                                let mut k = 0;
                                while k < hashes && b.get(j + 1 + k) == Some(&'#') {
                                    k += 1;
                                }
                                if k == hashes {
                                    j += 1 + hashes;
                                    break;
                                }
                                j += 1;
                            }
                            _ => j += 1,
                        }
                    }
                    for &ch in &b[i..j.min(b.len())] {
                        out.push(blank(ch));
                    }
                    i = j;
                    continue;
                }
            }
        }
        // Ordinary (and byte) strings.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < b.len() {
                match b[i] {
                    '\\' => {
                        // The escaped char may be a newline (line
                        // continuation) — keep it so lines stay aligned.
                        out.push(' ');
                        if let Some(&esc) = b.get(i + 1) {
                            out.push(blank(esc));
                        }
                        i += 2;
                    }
                    '"' => {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    ch => {
                        out.push(blank(ch));
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = match next {
                Some('\\') => true,
                Some(_) => b.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => {
                            out.push(' ');
                            if let Some(&esc) = b.get(i + 1) {
                                out.push(blank(esc));
                            }
                            i += 2;
                        }
                        '\'' => {
                            out.push(' ');
                            i += 1;
                            break;
                        }
                        ch => {
                            out.push(blank(ch));
                            i += 1;
                        }
                    }
                }
                continue;
            }
            // Lifetime: emit the tick, let the ident pass as code.
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Marks every line inside a `#[cfg(test)]` or `#[test]` item's block.
fn test_lines(masked: &str, n_lines: usize) -> Vec<bool> {
    let bytes = masked.as_bytes();
    // Byte offset → 0-based line. '\n' cannot be a UTF-8 continuation
    // byte, so scanning bytes is safe.
    let mut line_of = Vec::with_capacity(bytes.len() + 1);
    let mut ln = 0usize;
    for &byte in bytes {
        line_of.push(ln);
        if byte == b'\n' {
            ln += 1;
        }
    }
    line_of.push(ln);
    let mut out = vec![false; n_lines];
    for pat in ["#[cfg(test)]", "#[test]"] {
        for (start, _) in masked.match_indices(pat) {
            let Some((_, close)) = attached_block(bytes, start + pat.len()) else {
                continue;
            };
            let (from, to) = (line_of[start], line_of[close]);
            for flag in out.iter_mut().take(to + 1).skip(from) {
                *flag = true;
            }
        }
    }
    out
}

/// Finds the brace block an attribute at `from` is attached to:
/// skips further attributes, gives up at a top-level `;` (non-block
/// item), otherwise brace-matches from the first `{`.
fn attached_block(bytes: &[u8], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    let mut open = None;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                open = Some(i);
                break;
            }
            b';' => return None,
            b'[' => {
                // Another attribute or a slice type: skip to its `]`.
                let mut depth = 1usize;
                i += 1;
                while i < bytes.len() && depth > 0 {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    let open = open?;
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses `gvc-lint: allow(<rule>)` comments out of the raw lines.
fn find_suppressions(raw: &[String]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        let Some(pos) = line.find("gvc-lint:") else {
            continue;
        };
        let rest = line[pos + "gvc-lint:".len()..].trim_start();
        let Some(inner) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = inner.find(')') else {
            continue;
        };
        let rule = inner[..close].trim().to_string();
        let justification = &inner[close + 1..];
        let justified = justification.chars().filter(|c| c.is_alphanumeric()).count() >= 10;
        out.push(Suppression { line: idx + 1, rule, justified });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_doc_comments() {
        let m = mask("let x = 1; // unwrap() here\n/// .expect(doc)\nlet y = 2;");
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("expect"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask("a /* x /* panic!( */ y */ b");
        assert!(m.contains('a'));
        assert!(m.contains('b'));
        assert!(!m.contains("panic"));
    }

    #[test]
    fn masks_string_contents_not_code() {
        let m = mask(r#"let s = "call .unwrap() now"; s.unwrap();"#);
        assert_eq!(m.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn masks_raw_strings_with_hashes() {
        let m = mask("let s = r#\"has \"quotes\" and panic!( \"#; real();");
        assert!(!m.contains("panic"));
        assert!(m.contains("real();"));
    }

    #[test]
    fn masks_deep_hash_raw_strings_of_every_prefix() {
        // Depth ≥ 2 for every raw prefix the language has: plain,
        // byte, and C raw strings. The `cr##"…"##` case failed before
        // the scanner learned the `c` prefix — the inner quotes ended
        // the "ordinary string" early and `leaked.unwrap()` surfaced
        // as code (see fixtures/masked_tokens.rs for the corpus copy).
        for prefix in ["r", "br", "cr"] {
            let src = format!("let s = {prefix}##\"has \"leaked.unwrap()\" panic!( \"##; ok();");
            let m = mask(&src);
            assert!(!m.contains("unwrap"), "{prefix}: {m}");
            assert!(!m.contains("panic"), "{prefix}: {m}");
            assert!(!m.contains('#'), "{prefix}: delimiter hashes must be blanked: {m}");
            assert!(m.contains("ok();"), "{prefix}: {m}");
            assert_eq!(m.chars().count(), src.chars().count(), "{prefix}");
        }
    }

    #[test]
    fn masks_plain_c_strings() {
        let m = mask("let s = c\"call .unwrap() now\"; real();");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("real();"));
    }

    #[test]
    fn deep_raw_string_with_depth_one_closer_inside() {
        // A depth-2 raw string legitimately containing the depth-1
        // closer sequence `"#` must not end early.
        let m = mask("let s = r##\"end\"# panic!( \"##; after();");
        assert!(!m.contains("panic"), "{m}");
        assert!(m.contains("after();"));
    }

    #[test]
    fn masks_escaped_quotes() {
        let m = mask(r#"let s = "a \" .unwrap() b"; ok();"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("ok();"));
    }

    #[test]
    fn line_continuation_strings_keep_line_count() {
        // A `\` at end of line inside a string escapes the newline;
        // masking must still emit that newline or every later line
        // shifts (and diagnostics point at the wrong place).
        let src = "let s = \"first \\\n     second\";\nok();\n";
        let m = mask(src);
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(m.lines().nth(2).is_some_and(|l| l.contains("ok();")));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let m = mask("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; }");
        assert!(m.contains("fn f<'a>(x: &'a str)"));
        assert!(!m.contains('"'));
    }

    #[test]
    fn preserves_line_count_and_positions() {
        let src = "let a = 1; // c\nlet b = \"two\nlines\"; panic!(\"x\");\n";
        let m = mask(src);
        assert_eq!(src.matches('\n').count(), m.matches('\n').count());
        // panic!( survives at the same line.
        let line = m.split('\n').nth(2).unwrap();
        assert!(line.contains("panic!("));
    }

    #[test]
    fn cfg_test_block_is_flagged() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.is_test[0]);
        assert!(f.is_test[1] && f.is_test[2] && f.is_test[3] && f.is_test[4]);
        assert!(!f.is_test[5]);
    }

    #[test]
    fn test_fn_outside_cfg_block_is_flagged() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}\nfn real() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_test[0] && f.is_test[1] && f.is_test[2] && f.is_test[3]);
        assert!(!f.is_test[4]);
    }

    #[test]
    fn cfg_test_on_use_item_is_ignored() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { x.unwrap(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.is_test[2]);
    }

    #[test]
    fn suppression_parsed_with_justification() {
        let src = "// gvc-lint: allow(no-panic-in-lib) — poisoned locks cannot recover here\nx.unwrap();\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        assert!(f.suppressions[0].justified);
        assert!(f.is_suppressed("no-panic-in-lib", 2));
        assert!(!f.is_suppressed("determinism", 2));
    }

    #[test]
    fn bare_suppression_is_unjustified() {
        let src = "x.unwrap(); // gvc-lint: allow(no-panic-in-lib)\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.suppressions[0].justified);
        assert!(f.is_suppressed("no-panic-in-lib", 1));
    }
}
