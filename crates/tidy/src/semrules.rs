//! Workspace-level semantic rules over the item graph.
//!
//! Where [`crate::rules`] checks one file at a time, the rules here
//! see the whole workspace through [`crate::graph::ItemGraph`] and
//! prove *interprocedural* properties:
//!
//! * `determinism-confinement` — host wall-clock, OS entropy, env
//!   reads, and thread-id observation are reachable only from
//!   `gvc-telemetry`, proven over the call graph (a wrapper two hops
//!   away from `Instant::now()` is as nondeterministic as the probe
//!   itself);
//! * `lane-isolation` — crates the sharded driver fans out over hold
//!   no shared mutable state, and types crossing a lane-spawn
//!   boundary hold no non-`Send` interior mutability;
//! * `cfg-parity` — every `#[cfg(feature = "parallel")]` module-level
//!   item has a sequential twin with an agreeing signature, so
//!   `--no-default-features` builds cannot drift;
//! * `unordered-iteration-v2` — `HashMap`/`HashSet` values are
//!   tracked through `let` bindings and workspace-fn returns into
//!   presentation code, not just literal iteration sites.
//!
//! Rules resolve calls through [`crate::resolve`]; anything ambiguous
//! is dropped, so every finding is backed by a concrete chain.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::Violation;
use crate::graph::{CallTarget, Cfg, ItemGraph};
use crate::lexer::SourceFile;
use crate::rules::{crate_of, token_cols, violation, LIB_CRATES, PRESENTATION_FILES};

/// The parsed workspace plus its item graph — the input every
/// workspace rule checks.
pub struct Workspace {
    /// All scanned files, index-aligned with the graph's file list.
    pub files: Vec<SourceFile>,
    /// The item graph over those files.
    pub graph: ItemGraph,
}

impl Workspace {
    /// Builds the graph over already-parsed files.
    pub fn build(files: Vec<SourceFile>) -> Workspace {
        let graph = ItemGraph::build(&files);
        Workspace { files, graph }
    }

    /// Parses `(rel_path, content)` pairs and builds the workspace —
    /// the entry point for engine tests and the perf suite.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        Workspace::build(sources.iter().map(|(p, s)| SourceFile::parse(p, s)).collect())
    }
}

/// A rule that checks the whole workspace at once.
pub trait WorkspaceRule {
    /// Registry name, used in diagnostics and `allow(...)` comments.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and the docs.
    fn description(&self) -> &'static str;
    /// Path substrings exempting whole files from this rule.
    fn allowlist(&self) -> &[String];
    /// Checks the workspace, returning all violations found.
    fn check(&self, ws: &Workspace) -> Vec<Violation>;

    /// True when `rel_path` is exempted by the allowlist.
    fn allowlisted(&self, rel_path: &str) -> bool {
        self.allowlist().iter().any(|p| rel_path.contains(p.as_str()))
    }
}

/// The v2 workspace rule registry.
pub fn default_workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(DeterminismConfinement::new(Vec::new())),
        Box::new(LaneIsolation::new(Vec::new())),
        Box::new(CfgParity::new(Vec::new())),
        Box::new(UnorderedFlow::new(Vec::new())),
    ]
}

/// Like [`token_cols`] but also requires a right identifier
/// boundary, for tokens that end in an identifier character.
fn token_cols_bounded(line: &str, tok: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    token_cols(line, tok)
        .into_iter()
        .filter(|&col| {
            let end = col - 1 + tok.len();
            bytes.get(end).is_none_or(|&b| {
                let c = b as char;
                !(c.is_ascii_alphanumeric() || c == '_')
            })
        })
        .collect()
}

/// Tokens whose presence in a fn body makes it a *direct* observer
/// of host nondeterminism. `env::var` also matches `env::var_os`;
/// `std::env::` paths match through the `env::` suffix boundary.
const SINK_TOKENS: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "thread_rng",
    "from_entropy",
    "rand::random",
    "env::var",
    "thread::current",
];

/// `determinism-confinement`: wall-clock, entropy, env reads, and
/// thread-id observation must stay inside `gvc-telemetry`. Proven
/// over the call graph: any fn outside telemetry that *reaches* a
/// sink through workspace calls is flagged at the call site that
/// imports the taint, with the chain in the message. Direct sink use
/// in lib crates stays the per-line `determinism` rule's job; this
/// rule catches the wrappers the line rule cannot see.
pub struct DeterminismConfinement {
    allow: Vec<String>,
}

impl DeterminismConfinement {
    /// New instance with `allow` path substrings.
    pub fn new(allow: Vec<String>) -> DeterminismConfinement {
        DeterminismConfinement { allow }
    }
}

/// Longest chain rendered in a confinement message.
const CHAIN_DISPLAY: usize = 4;
/// Propagation depth bound (defensive; real chains are short).
const CHAIN_MAX: usize = 16;

impl WorkspaceRule for DeterminismConfinement {
    fn name(&self) -> &'static str {
        "determinism-confinement"
    }

    fn description(&self) -> &'static str {
        "wall-clock/entropy/env/thread-id reachable only from gvc-telemetry, proven over the call graph"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let g = &ws.graph;
        // Pass 1: direct sinks per fn (suppressed sink lines do not
        // seed — that is what a justified allow(...) means here).
        let mut seeds: BTreeMap<usize, String> = BTreeMap::new();
        let mut sites: Vec<Violation> = Vec::new();
        for (i, f) in g.fns.iter().enumerate() {
            if f.is_test || f.krate == "telemetry" {
                continue;
            }
            let file = &ws.files[f.file];
            if self.allowlisted(&file.rel_path) {
                continue;
            }
            let mut toks: Vec<String> = SINK_TOKENS.iter().map(|t| (*t).to_string()).collect();
            for (alias, path) in g.files[f.file].uses.iter() {
                let joined = path.join("::");
                if joined == "std::time::Instant" || joined == "std::time::SystemTime" {
                    toks.push(format!("{alias}::now"));
                }
            }
            'body: for ln in f.body.clone() {
                let Some(line) = file.code.get(ln) else { break };
                if file.is_test.get(ln).copied().unwrap_or(false) {
                    continue;
                }
                for t in &toks {
                    let Some(&col) = token_cols(line, t).first() else {
                        continue;
                    };
                    if file.is_suppressed(self.name(), ln + 1) {
                        // A justified suppression contains the sink:
                        // no taint — but the site is still recorded
                        // (the runner routes it to the suppressed
                        // list) so the budget stays auditable.
                        sites.push(violation(
                            "determinism-confinement",
                            file,
                            ln,
                            col,
                            format!(
                                "`{}` directly observes nondeterministic `{t}` (suppressed \
                                 confinement boundary)",
                                f.qname
                            ),
                        ));
                        continue;
                    }
                    seeds.insert(i, t.clone());
                    break 'body;
                }
            }
        }
        // Pass 2: reverse call edges. Telemetry callees are the
        // confinement boundary: taint never crosses out of them.
        let mut callers: BTreeMap<usize, Vec<(usize, usize, usize)>> = BTreeMap::new();
        for (i, f) in g.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            for c in &f.calls {
                if let CallTarget::Fn(j) = g.resolve_call(c, f.file) {
                    if i == j || g.fns[j].krate == "telemetry" || g.fns[j].is_test {
                        continue;
                    }
                    callers.entry(j).or_default().push((i, c.line, c.col));
                }
            }
        }
        // Pass 3: backward propagation from the seeds; a fn is
        // flagged at the first call site that imports taint into it.
        let mut out = sites;
        let mut chains: BTreeMap<usize, (String, Vec<String>)> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (&i, sink) in &seeds {
            chains.insert(i, (sink.clone(), vec![g.fns[i].qname.clone()]));
            queue.push_back(i);
        }
        while let Some(j) = queue.pop_front() {
            let (sink, chain) = chains[&j].clone();
            if chain.len() >= CHAIN_MAX {
                continue;
            }
            let Some(edges) = callers.get(&j) else {
                continue;
            };
            for &(i, line, col) in edges {
                if chains.contains_key(&i) {
                    continue;
                }
                let f = &g.fns[i];
                let mut ch = vec![f.qname.clone()];
                ch.extend(chain.iter().cloned());
                chains.insert(i, (sink.clone(), ch.clone()));
                queue.push_back(i);
                if f.krate == "telemetry" {
                    continue;
                }
                let file = &ws.files[f.file];
                if self.allowlisted(&file.rel_path) {
                    continue;
                }
                let shown: Vec<&str> = ch.iter().take(CHAIN_DISPLAY).map(String::as_str).collect();
                let ellipsis = if ch.len() > CHAIN_DISPLAY { " -> ..." } else { "" };
                out.push(violation(
                    "determinism-confinement",
                    file,
                    line,
                    col,
                    format!(
                        "`{}` reaches nondeterministic `{}` via `{}{}`; only gvc-telemetry may \
                         observe host time/entropy — pass the value in as a parameter or move \
                         the probe behind gvc-telemetry",
                        f.qname,
                        sink,
                        shown.join(" -> "),
                        ellipsis
                    ),
                ));
            }
        }
        out
    }
}

/// Crates the sharded driver fans event lanes out over: every lib
/// crate except the host-facing telemetry crate.
fn lane_crates() -> Vec<&'static str> {
    LIB_CRATES.iter().copied().filter(|k| *k != "telemetry").collect()
}

/// Shared-mutable-state tokens banned in lane-fanned crates. Lane
/// merge determinism (engine/shard.rs) relies on lanes being
/// resource-disjoint: any cross-lane channel — locks, atomics,
/// mutable statics, thread-locals — lets lane *timing* leak into
/// results.
const SHARED_STATE_TOKENS: &[&str] = &[
    "static mut",
    "Mutex",
    "RwLock",
    "OnceLock",
    "LazyLock",
    "Condvar",
    "thread_local!",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Interior-mutability / non-`Send` hazards in struct fields.
const FIELD_HAZARDS: &[&str] = &["Rc<", "RefCell<", "Cell<", "UnsafeCell<", "*mut ", "*const "];

/// Tokens marking a fn body as a lane-spawn site.
const SPAWN_TOKENS: &[&str] = &["rayon::join", "thread::scope"];

/// `lane-isolation`: no shared mutable state in lane-fanned crates,
/// and types named in lane-spawning fn signatures must not hold
/// non-`Send` interior mutability (checked recursively through
/// workspace struct fields).
pub struct LaneIsolation {
    allow: Vec<String>,
}

impl LaneIsolation {
    /// New instance with `allow` path substrings.
    pub fn new(allow: Vec<String>) -> LaneIsolation {
        LaneIsolation { allow }
    }
}

impl WorkspaceRule for LaneIsolation {
    fn name(&self) -> &'static str {
        "lane-isolation"
    }

    fn description(&self) -> &'static str {
        "no shared mutable state in lane-fanned crates; lane-boundary types must be Send-safe"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let g = &ws.graph;
        let lanes = lane_crates();
        let mut out = Vec::new();
        // Token scan over non-test lines of lane-crate sources.
        for file in &ws.files {
            let Some((krate, tail)) = crate_of(&file.rel_path) else {
                continue;
            };
            if !lanes.contains(&krate)
                || !tail.starts_with("src/")
                || self.allowlisted(&file.rel_path)
            {
                continue;
            }
            for (idx, line) in file.code.iter().enumerate() {
                if file.is_test.get(idx).copied().unwrap_or(false) {
                    continue;
                }
                for tok in SHARED_STATE_TOKENS {
                    for col in token_cols(line, tok) {
                        out.push(violation(
                            "lane-isolation",
                            file,
                            idx,
                            col,
                            format!(
                                "shared mutable state `{tok}` in lane-fanned crate `{krate}`: \
                                 cross-lane channels make merge order timing-dependent and break \
                                 byte-identical replay"
                            ),
                        ));
                    }
                }
            }
        }
        // Send-boundary: types named in the signature of any fn that
        // spawns lanes must not hold interior mutability, transitively
        // through workspace struct fields.
        let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
        for f in &g.fns {
            if f.is_test {
                continue;
            }
            let file = &ws.files[f.file];
            let spawns = f.body.clone().any(|ln| {
                file.code
                    .get(ln)
                    .is_some_and(|l| SPAWN_TOKENS.iter().any(|t| !token_cols(l, t).is_empty()))
            });
            if !spawns {
                continue;
            }
            let mut visited: BTreeSet<String> = BTreeSet::new();
            for ty in type_idents(&f.sig) {
                self.scan_type(ws, &ty, &f.qname, &lanes, &mut visited, &mut seen, &mut out);
            }
        }
        out
    }
}

impl LaneIsolation {
    /// Recursively scans the fields of workspace type `name` (when it
    /// lives in a lane crate) for interior-mutability hazards,
    /// attributing findings to the lane boundary of `spawn_fn`.
    #[allow(clippy::too_many_arguments)]
    fn scan_type(
        &self,
        ws: &Workspace,
        name: &str,
        spawn_fn: &str,
        lanes: &[&'static str],
        visited: &mut BTreeSet<String>,
        seen: &mut BTreeSet<(String, usize)>,
        out: &mut Vec<Violation>,
    ) {
        if !visited.insert(name.to_string()) || visited.len() > 64 {
            return;
        }
        let g = &ws.graph;
        let Some(ids) = g.type_names.get(name) else {
            return;
        };
        for &ti in ids {
            let t = &g.types[ti];
            if t.is_test || !lanes.contains(&t.krate.as_str()) {
                continue;
            }
            let file = &ws.files[t.file];
            if self.allowlisted(&file.rel_path) {
                continue;
            }
            for (line, text) in &t.fields {
                for hz in FIELD_HAZARDS {
                    for col in token_cols(text, hz) {
                        if seen.insert((format!("{}:{line}", t.name), col)) {
                            out.push(violation(
                                "lane-isolation",
                                file,
                                *line,
                                col,
                                format!(
                                    "`{}` crosses the `{spawn_fn}` lane boundary but holds \
                                     `{}`; lane closures may only capture Send state",
                                    t.name,
                                    hz.trim_end()
                                ),
                            ));
                        }
                    }
                }
                for inner in type_idents(text) {
                    if inner != *name {
                        self.scan_type(ws, &inner, spawn_fn, lanes, visited, seen, out);
                    }
                }
            }
        }
    }
}

/// Uppercase-starting identifiers in a signature or field line —
/// candidate type names for workspace lookup.
fn type_idents(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if cur.starts_with(|c: char| c.is_ascii_uppercase()) && cur.len() > 1 {
                out.push(std::mem::take(&mut cur));
            }
            cur.clear();
        }
    }
    if cur.starts_with(|c: char| c.is_ascii_uppercase()) && cur.len() > 1 {
        out.push(cur);
    }
    out.sort();
    out.dedup();
    out
}

/// `cfg-parity`: every module-level item gated on
/// `#[cfg(feature = "parallel")]` has a twin gated on the negation,
/// and fn twins agree on normalized signature and visibility.
/// Consts, statics, and blocks inside fn bodies are exempt — those
/// legitimately differ between the two builds (thresholds, inner
/// strategies); the *public surface* may not.
pub struct CfgParity {
    allow: Vec<String>,
}

impl CfgParity {
    /// New instance with `allow` path substrings.
    pub fn new(allow: Vec<String>) -> CfgParity {
        CfgParity { allow }
    }
}

impl WorkspaceRule for CfgParity {
    fn name(&self) -> &'static str {
        "cfg-parity"
    }

    fn description(&self) -> &'static str {
        "every #[cfg(feature = \"parallel\")] item has a sequential twin with an agreeing signature"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let g = &ws.graph;
        let mut groups: BTreeMap<(&'static str, &str), Vec<usize>> = BTreeMap::new();
        for (i, item) in g.gated.iter().enumerate() {
            let file = &ws.files[item.file];
            if self.allowlisted(&file.rel_path) {
                continue;
            }
            groups.entry((item.kind, item.key.as_str())).or_default().push(i);
        }
        let mut out = Vec::new();
        for ((kind, key), ids) in groups {
            let par: Vec<usize> =
                ids.iter().copied().filter(|&i| g.gated[i].cfg == Cfg::Parallel).collect();
            let seq: Vec<usize> =
                ids.iter().copied().filter(|&i| g.gated[i].cfg == Cfg::NotParallel).collect();
            let orphans: Option<(&[usize], &str)> = if seq.is_empty() {
                Some((&par, "#[cfg(not(feature = \"parallel\"))]"))
            } else if par.is_empty() {
                Some((&seq, "#[cfg(feature = \"parallel\")]"))
            } else {
                None
            };
            if let Some((present, missing_side)) = orphans {
                for &i in present {
                    let item = &g.gated[i];
                    out.push(violation(
                        "cfg-parity",
                        &ws.files[item.file],
                        item.line,
                        1,
                        format!(
                            "{kind} `{key}` is feature-gated but has no {missing_side} twin; \
                             sequential and parallel builds will drift"
                        ),
                    ));
                }
            }
            // Fn twins must agree on the comparable surface.
            if let (Some(&p), Some(&s)) = (par.first(), seq.first()) {
                let (pi, si) = (&g.gated[p], &g.gated[s]);
                if kind == "fn" && (pi.sig != si.sig || pi.is_pub != si.is_pub) {
                    out.push(violation(
                        "cfg-parity",
                        &ws.files[pi.file],
                        pi.line,
                        1,
                        format!(
                            "feature-gated twins of fn `{key}` disagree on their public \
                             signature: `{}` vs `{}`",
                            pi.sig.clone().unwrap_or_default(),
                            si.sig.clone().unwrap_or_default()
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Patterns that iterate a tracked binding.
const ITER_SUFFIXES: &[&str] =
    &[".iter()", ".iter_mut()", ".into_iter()", ".keys()", ".values()", ".values_mut()", ".drain("];

/// `unordered-iteration-v2`: dataflow extension of the v1
/// `ordered-iteration` rule. Where v1 flags literal
/// `HashMap`-mention-plus-iteration in the same file, v2 follows
/// unordered collections *returned by workspace fns* through `let`
/// bindings and flags the downstream iteration in presentation code.
pub struct UnorderedFlow {
    allow: Vec<String>,
}

impl UnorderedFlow {
    /// New instance with `allow` path substrings.
    pub fn new(allow: Vec<String>) -> UnorderedFlow {
        UnorderedFlow { allow }
    }
}

/// True for files whose output is rendered for humans — the scope of
/// both ordered-iteration rules.
fn is_presentation(rel: &str) -> bool {
    let name = rel.rsplit('/').next().unwrap_or(rel);
    PRESENTATION_FILES.contains(&name) || rel.starts_with("crates/cli/src/")
}

/// The unordered collection named in a fn's return type, if any.
fn returns_unordered(sig: &str) -> Option<&'static str> {
    let ret = sig.split("->").nth(1)?;
    if !token_cols(ret, "HashMap").is_empty() {
        return Some("HashMap");
    }
    if !token_cols(ret, "HashSet").is_empty() {
        return Some("HashSet");
    }
    None
}

/// The identifier bound by a `let [mut] name = …` ending at `col`.
fn let_binding(prefix: &str) -> Option<String> {
    let at = prefix.rfind("let ")?;
    let rest = prefix[at + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).unwrap_or(rest.len());
    let name = &rest[..end];
    let after = rest[end..].trim_start();
    (!name.is_empty() && after.starts_with('=') && !after.starts_with("=="))
        .then(|| name.to_string())
}

impl WorkspaceRule for UnorderedFlow {
    fn name(&self) -> &'static str {
        "unordered-iteration-v2"
    }

    fn description(&self) -> &'static str {
        "tracks HashMap/HashSet through let bindings and fn returns into presentation iteration"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let g = &ws.graph;
        let mut out = Vec::new();
        for f in &g.fns {
            let file = &ws.files[f.file];
            if f.is_test || !is_presentation(&file.rel_path) || self.allowlisted(&file.rel_path) {
                continue;
            }
            // binding name -> (collection kind, source fn qname)
            let mut tracked: BTreeMap<String, (&'static str, String)> = BTreeMap::new();
            for ln in f.body.clone() {
                let Some(line) = file.code.get(ln) else { break };
                for c in f.calls.iter().filter(|c| c.line == ln) {
                    let CallTarget::Fn(j) = g.resolve_call(c, f.file) else {
                        continue;
                    };
                    let Some(kind) = returns_unordered(&g.fns[j].sig) else {
                        continue;
                    };
                    let prefix = &line[..c.col - 1];
                    if let Some(name) = let_binding(prefix) {
                        tracked.insert(name, (kind, g.fns[j].qname.clone()));
                    } else if prefix.contains(" in ") && line.trim_start().starts_with("for ") {
                        out.push(violation(
                            "unordered-iteration-v2",
                            file,
                            ln,
                            c.col,
                            format!(
                                "iterating the `{kind}` returned by `{}` directly; its order is \
                                 nondeterministic — collect into a BTree or sort first",
                                g.fns[j].qname
                            ),
                        ));
                    }
                }
                for (name, (kind, src)) in &tracked {
                    let mut cols: Vec<usize> = Vec::new();
                    for suf in ITER_SUFFIXES {
                        cols.extend(token_cols(line, &format!("{name}{suf}")));
                    }
                    if line.trim_start().starts_with("for ") {
                        for pat in
                            [format!("in {name}"), format!("in &{name}"), format!("in &mut {name}")]
                        {
                            cols.extend(token_cols_bounded(line, &pat));
                        }
                    }
                    cols.sort_unstable();
                    cols.dedup();
                    for col in cols {
                        out.push(violation(
                            "unordered-iteration-v2",
                            file,
                            ln,
                            col,
                            format!(
                                "`{name}` holds an unordered `{kind}` returned by `{src}`; \
                                 iterating it in presentation code leaks nondeterministic order \
                                 — collect into a BTree or sort first"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_rule(rule: &dyn WorkspaceRule, files: &[(&str, &str)]) -> Vec<(String, usize)> {
        let ws = Workspace::from_sources(files);
        rule.check(&ws).into_iter().map(|v| (v.path, v.line)).collect()
    }

    #[test]
    fn confinement_flags_two_hop_wrapper() {
        let sink = "pub fn stamp() -> u64 {\n    let t = std::time::Instant::now();\n    0\n}\n";
        let mid = "use gvc_net::stamp;\npub fn mid() -> u64 { stamp() }\n";
        let entry = "use gvc_core::mid;\npub fn entry() -> u64 { mid() }\n";
        let vs = check_rule(
            &DeterminismConfinement::new(Vec::new()),
            &[
                ("crates/net/src/lib.rs", sink),
                ("crates/core/src/lib.rs", mid),
                ("crates/gridftp/src/lib.rs", entry),
            ],
        );
        assert_eq!(
            vs,
            vec![
                ("crates/core/src/lib.rs".to_string(), 2),
                ("crates/gridftp/src/lib.rs".to_string(), 2),
            ]
        );
    }

    #[test]
    fn confinement_stops_at_telemetry_boundary() {
        let probe = "pub fn probe() -> f64 {\n    let t = std::time::Instant::now();\n    0.0\n}\n";
        let user = "use gvc_telemetry::probe;\npub fn timed() -> f64 { probe() }\n";
        let vs = check_rule(
            &DeterminismConfinement::new(Vec::new()),
            &[("crates/telemetry/src/lib.rs", probe), ("crates/core/src/lib.rs", user)],
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn confinement_suppressed_seed_does_not_taint() {
        let sink = "pub fn stamp() -> u64 {\n    \
                    // gvc-lint: allow(determinism-confinement) — host-only snapshot naming\n    \
                    let v = std::env::var(\"X\");\n    0\n}\n";
        let caller = "use gvc_bench::stamp;\npub fn wrap() -> u64 { stamp() }\n";
        let vs = check_rule(
            &DeterminismConfinement::new(Vec::new()),
            &[("crates/bench/src/lib.rs", sink), ("crates/core/src/lib.rs", caller)],
        );
        // The suppressed sink site itself is still recorded (the
        // runner routes it to the suppressed list), but no taint
        // reaches the caller.
        assert_eq!(vs, vec![("crates/bench/src/lib.rs".to_string(), 3)]);
    }

    #[test]
    fn lane_isolation_flags_shared_state_and_send_hazards() {
        let bad = "use std::sync::Mutex;\npub struct S {\n    m: Mutex<u32>,\n}\n";
        let vs = check_rule(&LaneIsolation::new(Vec::new()), &[("crates/core/src/s.rs", bad)]);
        // One hit for the use, one for the field.
        assert_eq!(vs.len(), 2, "{vs:?}");
        let carrier = "pub struct Carrier {\n    cell: std::cell::RefCell<u32>,\n}\n\
                       pub fn fan_out(c: Carrier) {\n    rayon::join(|| (), || ());\n}\n";
        let vs =
            check_rule(&LaneIsolation::new(Vec::new()), &[("crates/engine/src/l.rs", carrier)]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].1, 2);
    }

    #[test]
    fn lane_isolation_ignores_telemetry_and_tests() {
        let tele = "use std::sync::Mutex;\npub struct T {\n    m: Mutex<u32>,\n}\n";
        let test = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    fn f() {\n        \
                    let m = Mutex::new(0);\n    }\n}\n";
        let vs = check_rule(
            &LaneIsolation::new(Vec::new()),
            &[("crates/telemetry/src/t.rs", tele), ("crates/core/src/ok.rs", test)],
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn cfg_parity_missing_twin_and_sig_drift() {
        let orphan = "#[cfg(feature = \"parallel\")]\npub fn solo(n: usize) -> u32 { 0 }\n";
        let vs = check_rule(&CfgParity::new(Vec::new()), &[("crates/core/src/a.rs", orphan)]);
        assert_eq!(vs, vec![("crates/core/src/a.rs".to_string(), 2)]);

        let drift = "#[cfg(feature = \"parallel\")]\npub fn run(n: usize) -> u32 { 0 }\n\
                     #[cfg(not(feature = \"parallel\"))]\npub fn run(n: usize) -> u64 { 0 }\n";
        let vs = check_rule(&CfgParity::new(Vec::new()), &[("crates/core/src/b.rs", drift)]);
        assert_eq!(vs, vec![("crates/core/src/b.rs".to_string(), 2)]);
    }

    #[test]
    fn cfg_parity_accepts_twins_with_underscore_params() {
        let ok = "#[cfg(feature = \"parallel\")]\npub fn run(threads: usize) -> u32 { 0 }\n\
                  #[cfg(not(feature = \"parallel\"))]\npub fn run(_threads: usize) -> u32 { 0 }\n";
        let vs = check_rule(&CfgParity::new(Vec::new()), &[("crates/core/src/c.rs", ok)]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn unordered_flow_tracks_let_bindings() {
        let producer = "use std::collections::HashSet;\npub fn pair_set() -> HashSet<u32> {\n    \
             HashSet::new()\n}\n";
        let consumer =
            "use gvc_hntes::pair_set;\npub fn render() {\n    let pairs = pair_set();\n    \
                        for p in &pairs {\n        let _ = p;\n    }\n}\n";
        let vs = check_rule(
            &UnorderedFlow::new(Vec::new()),
            &[("crates/hntes/src/lib.rs", producer), ("crates/cli/src/report.rs", consumer)],
        );
        assert_eq!(vs, vec![("crates/cli/src/report.rs".to_string(), 4)]);
    }

    #[test]
    fn unordered_flow_ignores_non_presentation_and_ordered_returns() {
        let producer = "use std::collections::HashSet;\npub fn pair_set() -> HashSet<u32> {\n    \
                        HashSet::new()\n}\n";
        let engine_use =
            "use gvc_hntes::pair_set;\npub fn consume() {\n    let p = pair_set();\n    \
                          for x in &p {\n        let _ = x;\n    }\n}\n";
        let sorted = "use gvc_hntes::pair_set;\npub fn render() {\n    let mut v: Vec<u32> = \
                      pair_set().into_iter().collect();\n    v.sort_unstable();\n}\n";
        let vs = check_rule(
            &UnorderedFlow::new(Vec::new()),
            &[
                ("crates/hntes/src/lib.rs", producer),
                ("crates/engine/src/consume.rs", engine_use),
                ("crates/cli/src/fmt.rs", sorted),
            ],
        );
        assert!(vs.is_empty(), "{vs:?}");
    }
}
