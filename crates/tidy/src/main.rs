//! The `gvc-tidy` binary: run the workspace static-analysis pass.
//!
//! ```text
//! gvc-tidy [--root <path>] [--format human|json] [--metrics <path>]
//!          [--list-rules] [--perf]
//! ```
//!
//! Exit code 0 when the tree is clean, 1 on violations, 2 on usage or
//! I/O errors. `--metrics` writes `tidy_*` counters (rules run, files
//! scanned, violations and suppressed sites by rule) in Prometheus
//! text exposition through the shared `gvc-telemetry` registry,
//! alongside a `run.manifest` JSON line, so lint runs carry the same
//! provenance as simulations. `--perf` prints a per-rule wall-time
//! table to stderr so analyzer cost shows up in the perf trajectory.

use gvc_telemetry::{Registry, RunManifest};
use gvc_tidy::runner::{self, RuleSet};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    json: bool,
    metrics: Option<PathBuf>,
    list_rules: bool,
    perf: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: workspace_root(),
        json: false,
        metrics: None,
        list_rules: false,
        perf: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                opts.root = PathBuf::from(v);
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.json = false,
                Some("json") => opts.json = true,
                other => return Err(format!("--format must be human|json, got {other:?}")),
            },
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs a path")?;
                opts.metrics = Some(PathBuf::from(v));
            }
            "--list-rules" => opts.list_rules = true,
            "--perf" => opts.perf = true,
            "--help" | "-h" => {
                return Err("usage: gvc-tidy [--root <path>] [--format human|json] \
                            [--metrics <path>] [--list-rules] [--perf]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other}; see --help")),
        }
    }
    Ok(opts)
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via
/// `cargo run -p gvc-tidy`, else the current directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let rules = RuleSet::v2();
    if opts.list_rules {
        for r in &rules.file_rules {
            println!("{:<24} {}", r.name(), r.description());
        }
        for r in &rules.workspace_rules {
            println!("{:<24} [workspace] {}", r.name(), r.description());
        }
        return ExitCode::SUCCESS;
    }
    let report = match runner::run(&opts.root, &rules) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gvc-tidy: scanning {} failed: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    // tidy_* counters through the shared telemetry registry, so lint
    // runs render in the same exposition format as simulations.
    let registry = Registry::new();
    registry.counter("tidy_files_scanned_total", &[]).add(report.files_scanned as u64);
    registry.counter("tidy_rules_run_total", &[]).add(report.rules_run as u64);
    for r in &rules.file_rules {
        registry.counter("tidy_violations_total", &[("rule", r.name())]);
    }
    for r in &rules.workspace_rules {
        registry.counter("tidy_violations_total", &[("rule", r.name())]);
    }
    for (rule, n) in report.by_rule() {
        registry.counter("tidy_violations_total", &[("rule", rule)]).add(n as u64);
    }
    for (rule, n) in report.suppressed_by_rule() {
        registry.counter("tidy_suppressions_total", &[("rule", rule)]).add(n as u64);
    }
    if let Some(path) = &opts.metrics {
        let manifest = RunManifest::new("gvc-tidy", 0, &format!("root={}", opts.root.display()));
        let body = format!("{}\n{}\n", registry.render().trim_end(), manifest.to_json());
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("gvc-tidy: writing metrics to {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.perf {
        let mut table = String::from("gvc-tidy --perf (wall seconds per rule)");
        for t in &report.timings {
            table
                .push_str(&format!("\n  {:<28} {:>9.6}s  {:>4} found", t.name, t.seconds, t.found));
        }
        let _ = writeln!(std::io::stderr(), "{table}");
    }

    if opts.json {
        let render = |vs: &[gvc_tidy::Violation]| {
            let mut out = String::from("[");
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.render_json());
            }
            out.push(']');
            out
        };
        println!(
            "{{\"violations\":{},\"suppressed\":{}}}",
            render(&report.violations),
            render(&report.suppressed)
        );
    } else {
        for v in &report.violations {
            println!("{}", v.render_human());
        }
        let mut summary = format!(
            "gvc-tidy: {} file(s), {} rule(s), {} violation(s), {} suppressed",
            report.files_scanned,
            report.rules_run,
            report.violations.len(),
            report.suppressed.len()
        );
        for (rule, n) in report.by_rule() {
            summary.push_str(&format!("\n  {rule}: {n}"));
        }
        for (rule, n) in report.suppressed_by_rule() {
            summary.push_str(&format!("\n  {rule}: {n} suppressed"));
        }
        let _ = writeln!(std::io::stderr(), "{summary}");
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
