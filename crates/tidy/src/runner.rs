//! Walks the workspace, applies every rule, and collects violations.
//!
//! The walk covers `crates/`, `src/`, `tests/`, and `examples/`,
//! skipping `target/`, `vendor/` (third-party shims), `fixtures/`
//! directories (they contain violations on purpose), and anything
//! hidden. Paths are sorted so output and counters are deterministic.

use crate::diag::Violation;
use crate::lexer::SourceFile;
use crate::rules::Rule;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Scan scope at the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];
/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// Outcome of a tidy run.
#[derive(Debug, Default)]
pub struct TidyReport {
    /// Every unsuppressed violation, in path/line order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of rules applied.
    pub rules_run: usize,
}

impl TidyReport {
    /// True when the tree is clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count per rule name, sorted by rule.
    pub fn by_rule(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Collects every scannable `.rs` file under `root`, sorted,
/// workspace-relative.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs `rules` over every file under `root`. Suppressed violations
/// are dropped; a suppression without a justification is reported
/// under the synthetic rule name `lint-suppression`.
pub fn run(root: &Path, rules: &[Box<dyn Rule>]) -> io::Result<TidyReport> {
    let files = collect_files(root)?;
    let mut report = TidyReport { rules_run: rules.len(), ..TidyReport::default() };
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let content = fs::read_to_string(path)?;
        let file = SourceFile::parse(&rel, &content);
        report.files_scanned += 1;
        check_file(&file, rules, &mut report.violations);
    }
    Ok(report)
}

/// Applies every rule to one prepared file (exposed for tests).
pub fn check_file(file: &SourceFile, rules: &[Box<dyn Rule>], out: &mut Vec<Violation>) {
    for rule in rules {
        if rule.allowlisted(file) {
            continue;
        }
        for v in rule.check(file) {
            if !file.is_suppressed(rule.name(), v.line) {
                out.push(v);
            }
        }
    }
    for s in &file.suppressions {
        if !s.justified {
            out.push(Violation {
                rule: "lint-suppression",
                path: file.rel_path.clone(),
                line: s.line,
                col: 0,
                message: format!(
                    "suppression of `{}` without a justification; write \
                     `// gvc-lint: allow({}) — <why this cannot fail>`",
                    s.rule, s.rule
                ),
                snippet: file.raw.get(s.line - 1).map(|l| l.trim().to_string()).unwrap_or_default(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::default_rules;

    #[test]
    fn suppressed_violation_is_dropped() {
        let src = "fn f() {\n    // gvc-lint: allow(no-panic-in-lib) — invariant: list is never empty\n    a.unwrap();\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        check_file(&f, &default_rules(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unjustified_suppression_still_reports() {
        let src = "fn f() {\n    a.unwrap(); // gvc-lint: allow(no-panic-in-lib)\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        check_file(&f, &default_rules(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "lint-suppression");
    }

    #[test]
    fn report_counts_by_rule() {
        let src = "fn f() { a.unwrap(); let t = Instant::now(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut report = TidyReport::default();
        check_file(&f, &default_rules(), &mut report.violations);
        let by = report.by_rule();
        assert_eq!(by, vec![("determinism", 1), ("no-panic-in-lib", 1)]);
    }
}
