//! Walks the workspace, applies every rule, and collects violations.
//!
//! The walk covers `crates/`, `src/`, `tests/`, and `examples/`,
//! skipping `target/`, `vendor/` (third-party shims), `fixtures/`
//! directories (they contain violations on purpose), and anything
//! hidden. Paths are sorted so output and counters are deterministic.
//!
//! v2 runs two rule classes over the same parsed files: per-file
//! rules ([`crate::rules::Rule`]) and workspace rules
//! ([`crate::semrules::WorkspaceRule`]), the latter against the item
//! graph built once per run. Suppressed violations are *recorded*,
//! not dropped, so the suppression budget is auditable
//! (`tidy_suppressions_total{rule}`, `--format json`). Per-rule
//! wall time is measured through `gvc_telemetry::Stopwatch` — the
//! analyzer itself is host tooling, but it still routes its clock
//! through the one crate allowed to own one.

use crate::diag::Violation;
use crate::lexer::SourceFile;
use crate::rules::{default_rules, Rule};
use crate::semrules::{default_workspace_rules, Workspace, WorkspaceRule};
use gvc_telemetry::Stopwatch;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Scan scope at the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];
/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// The full rule registry for one run: per-file rules plus
/// workspace (semantic) rules.
pub struct RuleSet {
    /// Per-file lexical rules.
    pub file_rules: Vec<Box<dyn Rule>>,
    /// Whole-workspace semantic rules.
    pub workspace_rules: Vec<Box<dyn WorkspaceRule>>,
}

impl RuleSet {
    /// The default v2 registry: every file rule and every workspace
    /// rule.
    pub fn v2() -> RuleSet {
        RuleSet { file_rules: default_rules(), workspace_rules: default_workspace_rules() }
    }

    /// File rules only — the v1 surface, used by lexical fixtures.
    pub fn file_only() -> RuleSet {
        RuleSet { file_rules: default_rules(), workspace_rules: Vec::new() }
    }

    /// Total number of registered rules.
    pub fn len(&self) -> usize {
        self.file_rules.len() + self.workspace_rules.len()
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Wall time spent in one rule (or analysis phase) across the run.
#[derive(Debug, Clone)]
pub struct RuleTiming {
    /// Rule name, or a synthetic phase name (`parse`, `item-graph`).
    pub name: String,
    /// Wall seconds across all files.
    pub seconds: f64,
    /// Violations produced (before suppression accounting).
    pub found: usize,
}

/// Outcome of a tidy run.
#[derive(Debug, Default)]
pub struct TidyReport {
    /// Every unsuppressed violation, in path/line order.
    pub violations: Vec<Violation>,
    /// Violations silenced by a justified suppression comment —
    /// recorded so the suppression budget stays auditable.
    pub suppressed: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of rules applied.
    pub rules_run: usize,
    /// Per-rule wall time, in registry order (plus synthetic
    /// `parse` / `item-graph` phases first).
    pub timings: Vec<RuleTiming>,
}

impl TidyReport {
    /// True when the tree is clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count per rule name, sorted by rule.
    pub fn by_rule(&self) -> Vec<(&'static str, usize)> {
        count_by_rule(&self.violations)
    }

    /// Suppressed-site count per rule name, sorted by rule.
    pub fn suppressed_by_rule(&self) -> Vec<(&'static str, usize)> {
        count_by_rule(&self.suppressed)
    }
}

fn count_by_rule(vs: &[Violation]) -> Vec<(&'static str, usize)> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for v in vs {
        *counts.entry(v.rule).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// Collects every scannable `.rs` file under `root`, sorted,
/// workspace-relative.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs `rules` over every file under `root`.
pub fn run(root: &Path, rules: &RuleSet) -> io::Result<TidyReport> {
    let sw = Stopwatch::start();
    let paths = collect_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let content = fs::read_to_string(path)?;
        files.push(SourceFile::parse(&rel, &content));
    }
    let parse_s = sw.elapsed_s();
    Ok(run_parsed(files, rules, parse_s))
}

/// Runs `rules` over in-memory `(rel_path, content)` sources — the
/// entry point for engine tests and the perf suite.
pub fn run_sources(sources: &[(&str, &str)], rules: &RuleSet) -> TidyReport {
    let sw = Stopwatch::start();
    let files: Vec<SourceFile> = sources.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    let parse_s = sw.elapsed_s();
    run_parsed(files, rules, parse_s)
}

fn run_parsed(files: Vec<SourceFile>, rules: &RuleSet, parse_s: f64) -> TidyReport {
    let mut report =
        TidyReport { rules_run: rules.len(), files_scanned: files.len(), ..TidyReport::default() };
    report.timings.push(RuleTiming { name: "parse".to_string(), seconds: parse_s, found: 0 });

    // Item graph, built once for all workspace rules.
    let sw = Stopwatch::start();
    let ws = Workspace::build(files);
    report.timings.push(RuleTiming {
        name: "item-graph".to_string(),
        seconds: sw.elapsed_s(),
        found: 0,
    });

    // Per-file rules.
    for rule in &rules.file_rules {
        let sw = Stopwatch::start();
        let mut found = 0usize;
        for file in &ws.files {
            if rule.allowlisted(file) {
                continue;
            }
            for v in rule.check(file) {
                found += 1;
                route(v, file, rule.name(), &mut report);
            }
        }
        report.timings.push(RuleTiming {
            name: rule.name().to_string(),
            seconds: sw.elapsed_s(),
            found,
        });
    }

    // Workspace rules: violations route back to their file for
    // suppression handling.
    let by_path: BTreeMap<&str, usize> =
        ws.files.iter().enumerate().map(|(i, f)| (f.rel_path.as_str(), i)).collect();
    for rule in &rules.workspace_rules {
        let sw = Stopwatch::start();
        let vs = rule.check(&ws);
        let found = vs.len();
        for v in vs {
            match by_path.get(v.path.as_str()) {
                Some(&i) => route(v, &ws.files[i], rule.name(), &mut report),
                None => report.violations.push(v),
            }
        }
        report.timings.push(RuleTiming {
            name: rule.name().to_string(),
            seconds: sw.elapsed_s(),
            found,
        });
    }

    // Suppressions without a justification are themselves findings.
    for file in &ws.files {
        for s in &file.suppressions {
            if !s.justified {
                report.violations.push(Violation {
                    rule: "lint-suppression",
                    path: file.rel_path.clone(),
                    line: s.line,
                    col: 0,
                    message: format!(
                        "suppression of `{}` without a justification; write \
                         `// gvc-lint: allow({}) — <why this cannot fail>`",
                        s.rule, s.rule
                    ),
                    snippet: file
                        .raw
                        .get(s.line - 1)
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default(),
                });
            }
        }
    }

    let key = |v: &Violation| (v.path.clone(), v.line, v.col, v.rule);
    report.violations.sort_by_key(key);
    report.suppressed.sort_by_key(key);
    report
}

/// Sends one violation to the open or suppressed list, depending on
/// the owning file's suppression comments.
fn route(v: Violation, file: &SourceFile, rule: &str, report: &mut TidyReport) {
    if file.is_suppressed(rule, v.line) {
        report.suppressed.push(v);
    } else {
        report.violations.push(v);
    }
}

/// Applies every per-file rule to one prepared file (exposed for
/// tests). Suppressed violations are dropped here; use [`run`] /
/// [`run_sources`] for the auditable path.
pub fn check_file(file: &SourceFile, rules: &[Box<dyn Rule>], out: &mut Vec<Violation>) {
    for rule in rules {
        if rule.allowlisted(file) {
            continue;
        }
        for v in rule.check(file) {
            if !file.is_suppressed(rule.name(), v.line) {
                out.push(v);
            }
        }
    }
    for s in &file.suppressions {
        if !s.justified {
            out.push(Violation {
                rule: "lint-suppression",
                path: file.rel_path.clone(),
                line: s.line,
                col: 0,
                message: format!(
                    "suppression of `{}` without a justification; write \
                     `// gvc-lint: allow({}) — <why this cannot fail>`",
                    s.rule, s.rule
                ),
                snippet: file.raw.get(s.line - 1).map(|l| l.trim().to_string()).unwrap_or_default(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::default_rules;

    #[test]
    fn suppressed_violation_is_dropped() {
        let src = "fn f() {\n    // gvc-lint: allow(no-panic-in-lib) — invariant: list is never empty\n    a.unwrap();\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        check_file(&f, &default_rules(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unjustified_suppression_still_reports() {
        let src = "fn f() {\n    a.unwrap(); // gvc-lint: allow(no-panic-in-lib)\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        check_file(&f, &default_rules(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "lint-suppression");
    }

    #[test]
    fn report_counts_by_rule() {
        let src = "fn f() { a.unwrap(); let t = Instant::now(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut report = TidyReport::default();
        check_file(&f, &default_rules(), &mut report.violations);
        let by = report.by_rule();
        assert_eq!(by, vec![("determinism", 1), ("no-panic-in-lib", 1)]);
    }

    #[test]
    fn run_sources_records_suppressed_sites() {
        let src = "fn f() {\n    // gvc-lint: allow(no-panic-in-lib) — invariant: list is never empty\n    a.unwrap();\n}\n";
        let report = run_sources(&[("crates/core/src/x.rs", src)], &RuleSet::v2());
        assert!(report.clean(), "{:?}", report.violations);
        assert_eq!(report.suppressed_by_rule(), vec![("no-panic-in-lib", 1)]);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].line, 3);
    }

    #[test]
    fn run_sources_times_every_rule() {
        let report = run_sources(&[("crates/core/src/x.rs", "fn f() {}\n")], &RuleSet::v2());
        let names: Vec<&str> = report.timings.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"parse"));
        assert!(names.contains(&"item-graph"));
        assert!(names.contains(&"determinism-confinement"));
        assert!(names.contains(&"no-panic-in-lib"));
        assert_eq!(report.rules_run + 2, report.timings.len());
    }
}
