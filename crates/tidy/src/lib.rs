//! `gvc-tidy`: the workspace's own static-analysis pass.
//!
//! A rust-`tidy`-style, dependency-free lint engine: a small
//! comment/string/char-literal-aware scanner ([`lexer`]), a rule
//! registry with per-rule file allowlists and inline suppressions
//! ([`rules`]), and human + JSON diagnostics with `file:line:col`
//! spans ([`diag`]). The [`runner`] walks the workspace and applies
//! every rule; the `gvc-tidy` binary wires that to an exit code, the
//! telemetry registry (`tidy_*` counters), and CI.
//!
//! See `docs/static-analysis.md` for the rule catalog, the rationale
//! behind each rule, the suppression syntax, and how to add a rule.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod runner;

pub use diag::Violation;
pub use lexer::SourceFile;
pub use rules::{default_rules, Rule};
pub use runner::{run, TidyReport};
