//! `gvc-tidy`: the workspace's own static-analysis pass.
//!
//! A rust-`tidy`-style, dependency-free lint engine: a small
//! comment/string/char-literal-aware scanner ([`lexer`]), a rule
//! registry with per-rule file allowlists and inline suppressions
//! ([`rules`]), and human + JSON diagnostics with `file:line:col`
//! spans ([`diag`]). Since v2 the engine is workspace-aware: an item
//! graph with lexical name resolution and a call-graph-lite
//! ([`graph`], [`resolve`]) feeds interprocedural rules
//! ([`semrules`]) that prove determinism confinement, lane isolation,
//! `parallel`-feature cfg-parity, and unordered-iteration flow across
//! crate boundaries. The [`runner`] walks the workspace and applies
//! every rule; the `gvc-tidy` binary wires that to an exit code, the
//! telemetry registry (`tidy_*` counters), and CI.
//!
//! See `docs/static-analysis.md` for the rule catalog, the rationale
//! behind each rule, the suppression syntax, and how to add a rule.

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod runner;
pub mod semrules;

pub use diag::Violation;
pub use graph::ItemGraph;
pub use lexer::SourceFile;
pub use rules::{default_rules, Rule};
pub use runner::{run, run_sources, RuleSet, TidyReport};
pub use semrules::{default_workspace_rules, Workspace, WorkspaceRule};
