//! The rule registry and the initial rule set.
//!
//! Each rule works on a [`SourceFile`]'s masked code view (comments
//! and string contents blanked), so forbidden tokens inside strings
//! or comments never fire. Rules carry their own scope (which files
//! they apply to) plus a per-rule allowlist of path substrings that
//! exempts whole files; line-level exemptions use
//! `// gvc-lint: allow(<rule>) — <justification>` comments, which the
//! runner applies after the rule fires.

use crate::diag::Violation;
use crate::lexer::SourceFile;

/// Library crates held to the panic-freedom and no-stdout standard.
/// `cli` and `bench` are deliberately absent: binaries own their
/// output and may fail fast on startup errors.
pub const LIB_CRATES: &[&str] = &[
    "core",
    "engine",
    "net",
    "oscars",
    "gridftp",
    "logs",
    "stats",
    "telemetry",
    "workload",
    "topology",
    "hntes",
    "faults",
    "scenario",
];

/// Crates allowed to read wall clocks and unseeded entropy: the
/// telemetry spine (provenance timestamps, wall-time histograms) and
/// the CLI (user-facing timing).
pub const WALLCLOCK_CRATES: &[&str] = &["telemetry", "cli"];

/// Files whose job is rendering reports and tables; unordered-map
/// iteration there produces nondeterministic output.
pub const PRESENTATION_FILES: &[&str] = &["tables.rs", "report.rs", "fmt.rs", "session_stats.rs"];

/// A static-analysis rule.
pub trait Rule {
    /// Registry name, used in diagnostics and `allow(...)` comments.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and the docs.
    fn description(&self) -> &'static str;
    /// Path substrings exempting whole files from this rule.
    fn allowlist(&self) -> &[String];
    /// Checks one file, returning all violations found.
    fn check(&self, file: &SourceFile) -> Vec<Violation>;

    /// True when `file` is exempted by the allowlist.
    fn allowlisted(&self, file: &SourceFile) -> bool {
        self.allowlist().iter().any(|p| file.rel_path.contains(p.as_str()))
    }
}

/// The crate a `crates/<name>/src/...` path belongs to, with the
/// `src`-relative tail; `None` outside `crates/`.
pub(crate) fn crate_of(rel: &str) -> Option<(&str, &str)> {
    let rest = rel.strip_prefix("crates/")?;
    let (krate, tail) = rest.split_once('/')?;
    Some((krate, tail))
}

/// True for non-binary library-crate sources (`crates/<lib>/src/`,
/// excluding `src/bin/`).
fn in_lib_crate(rel: &str) -> bool {
    match crate_of(rel) {
        Some((krate, tail)) => {
            LIB_CRATES.contains(&krate) && tail.starts_with("src/") && !tail.starts_with("src/bin/")
        }
        None => false,
    }
}

/// Column positions (1-based) where `tok` occurs in `line` as a code
/// token: the preceding character must not be part of an identifier.
pub(crate) fn token_cols(line: &str, tok: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    // Tokens that start mid-expression (`.unwrap()`) carry their own
    // boundary; identifier-leading tokens must not match inside a
    // longer identifier (`eprint!` inside nothing, `rng` in `thread_rng`).
    let check_left = tok.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
    line.match_indices(tok)
        .filter(|&(at, _)| {
            !check_left || at == 0 || {
                let p = bytes[at - 1] as char;
                !(p.is_ascii_alphanumeric() || p == '_')
            }
        })
        .map(|(at, _)| at + 1)
        .collect()
}

pub(crate) fn violation(
    rule: &'static str,
    file: &SourceFile,
    line_idx: usize,
    col: usize,
    message: String,
) -> Violation {
    Violation {
        rule,
        path: file.rel_path.clone(),
        line: line_idx + 1,
        col,
        message,
        snippet: file.raw.get(line_idx).map(|l| l.trim().to_string()).unwrap_or_default(),
    }
}

/// `no-panic-in-lib`: library crates must not contain panic paths in
/// non-test code — `unwrap`/`expect`, the panic macro family, or
/// slice indexing with a literal index. Fallible paths return
/// `Result`/`Option`; true invariants may be suppressed inline with a
/// justification.
pub struct NoPanicInLib {
    allow: Vec<String>,
}

const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

impl NoPanicInLib {
    pub fn new(allow: Vec<String>) -> NoPanicInLib {
        NoPanicInLib { allow }
    }

    /// 1-based columns of `ident[<int literal>]` slice indexing.
    fn literal_index_cols(line: &str) -> Vec<usize> {
        let b = line.as_bytes();
        let mut out = Vec::new();
        for at in 0..b.len() {
            if b[at] != b'[' || at == 0 {
                continue;
            }
            let prev = b[at - 1] as char;
            if !(prev.is_ascii_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
                continue;
            }
            let mut j = at + 1;
            let mut digits = 0usize;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                if b[j].is_ascii_digit() {
                    digits += 1;
                }
                j += 1;
            }
            if digits > 0 && j < b.len() && b[j] == b']' {
                out.push(at + 1);
            }
        }
        out
    }
}

impl Rule for NoPanicInLib {
    fn name(&self) -> &'static str {
        "no-panic-in-lib"
    }

    fn description(&self) -> &'static str {
        "forbid unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! and literal slice \
         indexing in non-test library-crate code"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, file: &SourceFile) -> Vec<Violation> {
        if !in_lib_crate(&file.rel_path) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test.get(idx).copied().unwrap_or(false) {
                continue;
            }
            for tok in PANIC_TOKENS {
                for col in token_cols(code, tok) {
                    out.push(violation(
                        self.name(),
                        file,
                        idx,
                        col,
                        format!(
                            "`{}` can panic; return Result/Option or restructure \
                             (suppress only with a justified gvc-lint allow)",
                            tok.trim_start_matches('.')
                        ),
                    ));
                }
            }
            for col in NoPanicInLib::literal_index_cols(code) {
                out.push(violation(
                    self.name(),
                    file,
                    idx,
                    col,
                    "literal slice index can panic; use .get(..), .first()/.last(), or \
                     pattern matching"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// `determinism`: simulation and analysis code must not read wall
/// clocks or OS entropy — sim time flows through `gvc-engine::time`,
/// randomness through the vendored seeded `rand`. Only the telemetry
/// spine and the CLI may touch the real world.
pub struct Determinism {
    allow: Vec<String>,
}

const NONDETERMINISM_TOKENS: &[&str] =
    &["SystemTime::now", "Instant::now", "thread_rng", "from_entropy", "rand::random"];

impl Determinism {
    pub fn new(allow: Vec<String>) -> Determinism {
        Determinism { allow }
    }
}

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "forbid wall-clock reads and unseeded RNGs outside the telemetry spine and the CLI"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, file: &SourceFile) -> Vec<Violation> {
        let scoped = match crate_of(&file.rel_path) {
            Some((krate, _)) => !WALLCLOCK_CRATES.contains(&krate),
            // Root src/ and integration tests are simulation-facing.
            None => true,
        };
        if !scoped {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test.get(idx).copied().unwrap_or(false) {
                continue;
            }
            for tok in NONDETERMINISM_TOKENS {
                for col in token_cols(code, tok) {
                    out.push(violation(
                        self.name(),
                        file,
                        idx,
                        col,
                        format!(
                            "`{tok}` is nondeterministic; use gvc-engine sim time or a \
                             seeded component RNG (gvc-stats::rng)"
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// `no-stdout-in-lib`: library crates write no terminal output; logs
/// and metrics flow through the telemetry spine, rendering through
/// the report layer.
pub struct NoStdoutInLib {
    allow: Vec<String>,
}

const STDOUT_TOKENS: &[&str] = &["println!", "print!", "eprintln!", "eprint!", "dbg!"];

impl NoStdoutInLib {
    pub fn new(allow: Vec<String>) -> NoStdoutInLib {
        NoStdoutInLib { allow }
    }
}

impl Rule for NoStdoutInLib {
    fn name(&self) -> &'static str {
        "no-stdout-in-lib"
    }

    fn description(&self) -> &'static str {
        "forbid println!/eprintln!/dbg! in library crates; route output through telemetry \
         or the report layer"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, file: &SourceFile) -> Vec<Violation> {
        if !in_lib_crate(&file.rel_path) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test.get(idx).copied().unwrap_or(false) {
                continue;
            }
            for tok in STDOUT_TOKENS {
                for col in token_cols(code, tok) {
                    out.push(violation(
                        self.name(),
                        file,
                        idx,
                        col,
                        format!(
                            "`{tok}` in a library crate; use the telemetry tracer or return \
                                 renderable data"
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// `ordered-iteration`: report- and table-producing files must not
/// mention `HashMap`/`HashSet` at all — iteration order would leak
/// into rendered output. Use `BTreeMap`/`BTreeSet` or sort
/// explicitly.
pub struct OrderedIteration {
    allow: Vec<String>,
}

impl OrderedIteration {
    pub fn new(allow: Vec<String>) -> OrderedIteration {
        OrderedIteration { allow }
    }

    fn presentation(rel: &str) -> bool {
        let file_name = rel.rsplit('/').next().unwrap_or(rel);
        PRESENTATION_FILES.contains(&file_name) || rel.starts_with("crates/cli/src/")
    }
}

impl Rule for OrderedIteration {
    fn name(&self) -> &'static str {
        "ordered-iteration"
    }

    fn description(&self) -> &'static str {
        "forbid HashMap/HashSet in report- and table-rendering files; use BTreeMap/BTreeSet \
         or an explicit sort"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, file: &SourceFile) -> Vec<Violation> {
        if !OrderedIteration::presentation(&file.rel_path) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test.get(idx).copied().unwrap_or(false) {
                continue;
            }
            for tok in ["HashMap", "HashSet"] {
                for col in token_cols(code, tok) {
                    out.push(violation(
                        self.name(),
                        file,
                        idx,
                        col,
                        format!(
                            "`{tok}` in a report/table-producing file: iteration order leaks \
                             into output; use BTreeMap/BTreeSet or sort before rendering"
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// `hygiene`: no tabs, no trailing whitespace, and every task marker
/// comment carries an issue reference (`#<digits>`).
pub struct Hygiene {
    allow: Vec<String>,
}

impl Hygiene {
    pub fn new(allow: Vec<String>) -> Hygiene {
        Hygiene { allow }
    }
}

impl Rule for Hygiene {
    fn name(&self) -> &'static str {
        "hygiene"
    }

    fn description(&self) -> &'static str {
        "no tabs, no trailing whitespace, and TODO/FIXME must reference an issue (#N)"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        for (idx, raw) in file.raw.iter().enumerate() {
            if let Some(at) = raw.find('\t') {
                out.push(violation(
                    self.name(),
                    file,
                    idx,
                    at + 1,
                    "tab character; indent with spaces".to_string(),
                ));
            }
            if raw.ends_with(' ') || raw.ends_with('\t') {
                out.push(violation(
                    self.name(),
                    file,
                    idx,
                    raw.len(),
                    "trailing whitespace".to_string(),
                ));
            }
            let nostr = file.nostr.get(idx).map_or("", |l| l.as_str());
            for marker in ["TODO", "FIXME"] {
                for col in token_cols(nostr, marker) {
                    let tail = &nostr[col - 1..];
                    let has_ref = tail.char_indices().any(|(i, c)| {
                        c == '#' && tail[i + 1..].starts_with(|d: char| d.is_ascii_digit())
                    });
                    if !has_ref {
                        out.push(violation(
                            self.name(),
                            file,
                            idx,
                            col,
                            format!("`{marker}` without an issue reference; write `{marker}(#123): ...`"),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// `trace-kind-naming`: trace event kinds and span names must be
/// lowercase dot-namespaced string literals (`subsystem.event`) at
/// the emit site, so the documented schema in
/// `docs/observability.md` stays mechanically auditable (the
/// `schema_drift` meta-test in `gvc-cli` closes the loop from the
/// other side).
pub struct TraceKindNaming {
    allow: Vec<String>,
}

/// Call tokens whose next string-literal argument is an event kind or
/// span name.
const EMIT_TOKENS: &[&str] = &["TraceEvent::new(", ".span_enter(", ".span_enter_with("];

/// How many lines after the emit token to search for the literal —
/// rustfmt puts wrapped call arguments one per line, with the name
/// never more than a few arguments in.
const EMIT_LOOKAHEAD: usize = 5;

impl TraceKindNaming {
    pub fn new(allow: Vec<String>) -> TraceKindNaming {
        TraceKindNaming { allow }
    }

    /// True for `seg(.seg)+` where each segment is nonempty
    /// `[a-z0-9_]+`.
    fn well_formed(name: &str) -> bool {
        let mut segments = 0usize;
        for seg in name.split('.') {
            let ok = !seg.is_empty()
                && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            if !ok {
                return false;
            }
            segments += 1;
        }
        segments >= 2
    }

    /// The first string literal at or after char column `from` of line
    /// `start`, as `(line index, 1-based col, contents)`. Scanning
    /// stops at a `;` or `{` in the masked view — the name argument
    /// always precedes the statement end and any closure body — or
    /// when the lookahead window runs out. String masking blanks the
    /// delimiters too, so a real literal is a position where the raw
    /// line has `"` but the strings-masked views have a space (a quote
    /// inside a comment survives in `nostr` and is skipped).
    fn first_literal(
        file: &SourceFile,
        start: usize,
        from: usize,
    ) -> Option<(usize, usize, String)> {
        let stop = (start + EMIT_LOOKAHEAD).min(file.code.len());
        for j in start..stop {
            let code: Vec<char> = file.code.get(j)?.chars().collect();
            let raw: Vec<char> = file.raw.get(j)?.chars().collect();
            let nostr: Vec<char> = file.nostr.get(j)?.chars().collect();
            let begin = if j == start { from } else { 0 };
            for at in begin..raw.len() {
                if let Some(';' | '{') = code.get(at) {
                    return None;
                }
                let opens = raw.get(at) == Some(&'"') && nostr.get(at) == Some(&' ');
                if !opens {
                    continue;
                }
                let close = (at + 1..raw.len()).find(|&k| {
                    raw.get(k) == Some(&'"') && raw.get(k.wrapping_sub(1)) != Some(&'\\')
                })?;
                let lit: String = raw.get(at + 1..close)?.iter().collect();
                return Some((j, at + 2, lit));
            }
        }
        None
    }
}

impl Rule for TraceKindNaming {
    fn name(&self) -> &'static str {
        "trace-kind-naming"
    }

    fn description(&self) -> &'static str {
        "trace event kinds and span names must be lowercase dot-namespaced string literals \
         (`subsystem.event`) at the emit site"
    }

    fn allowlist(&self) -> &[String] {
        &self.allow
    }

    fn check(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test.get(idx).copied().unwrap_or(false) {
                continue;
            }
            for tok in EMIT_TOKENS {
                for col in token_cols(code, tok) {
                    let from =
                        code.get(..col - 1 + tok.len()).map_or(0, |prefix| prefix.chars().count());
                    match TraceKindNaming::first_literal(file, idx, from) {
                        Some((line, lcol, lit)) => {
                            if !TraceKindNaming::well_formed(&lit) {
                                out.push(violation(
                                    self.name(),
                                    file,
                                    line,
                                    lcol,
                                    format!(
                                        "trace kind/span name `{lit}` must be lowercase \
                                         dot-namespaced, e.g. `subsystem.event` \
                                         (see docs/observability.md)"
                                    ),
                                ));
                            }
                        }
                        None => out.push(violation(
                            self.name(),
                            file,
                            idx,
                            col,
                            "trace kind/span name should be a string literal at the emit site \
                             so the documented schema stays auditable"
                                .to_string(),
                        )),
                    }
                }
            }
        }
        out
    }
}

/// The default registry: every shipped rule with its allowlist.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicInLib::new(vec![])),
        Box::new(Determinism::new(vec![])),
        Box::new(NoStdoutInLib::new(vec![])),
        Box::new(OrderedIteration::new(vec![])),
        Box::new(Hygiene::new(vec![])),
        Box::new(TraceKindNaming::new(vec![])),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src)
    }

    #[test]
    fn lib_crate_scoping() {
        assert!(in_lib_crate("crates/stats/src/summary.rs"));
        assert!(!in_lib_crate("crates/cli/src/commands.rs"));
        assert!(!in_lib_crate("crates/stats/src/bin/tool.rs"));
        assert!(!in_lib_crate("tests/end_to_end.rs"));
    }

    #[test]
    fn panic_rule_fires_on_each_token() {
        let src = "fn f() {\n  a.unwrap();\n  b.expect(\"x\");\n  panic!(\"y\");\n  unreachable!(\"z\");\n}\n";
        let v = NoPanicInLib::new(vec![]).check(&file("crates/core/src/x.rs", src));
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn panic_rule_skips_non_lib_and_tests() {
        let src = "fn f() { a.unwrap(); }\n";
        assert!(NoPanicInLib::new(vec![]).check(&file("crates/cli/src/x.rs", src)).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n fn f() { a.unwrap(); } }\n";
        assert!(NoPanicInLib::new(vec![])
            .check(&file("crates/core/src/x.rs", test_src))
            .is_empty());
    }

    #[test]
    fn literal_index_detection() {
        assert_eq!(NoPanicInLib::literal_index_cols("let a = xs[0];"), vec![11]);
        assert_eq!(NoPanicInLib::literal_index_cols("f(ys)[12_3]"), vec![6]);
        assert!(NoPanicInLib::literal_index_cols("let t: [u8; 4] = x;").is_empty());
        assert!(NoPanicInLib::literal_index_cols("#[cfg(feature = x)]").is_empty());
        assert!(NoPanicInLib::literal_index_cols("xs[i]").is_empty());
        assert!(NoPanicInLib::literal_index_cols("xs[1..]").is_empty());
    }

    #[test]
    fn determinism_scope_and_tokens() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        let v = Determinism::new(vec![]).check(&file("crates/net/src/x.rs", src));
        assert_eq!(v.len(), 2);
        assert!(Determinism::new(vec![]).check(&file("crates/telemetry/src/x.rs", src)).is_empty());
        assert!(Determinism::new(vec![]).check(&file("crates/cli/src/x.rs", src)).is_empty());
        // bench is NOT exempt: wall-clock use there needs a suppression.
        assert_eq!(Determinism::new(vec![]).check(&file("crates/bench/src/x.rs", src)).len(), 2);
    }

    #[test]
    fn stdout_rule() {
        let src = "fn f() { println!(\"x\"); dbg!(y); }\n";
        let v = NoStdoutInLib::new(vec![]).check(&file("crates/logs/src/x.rs", src));
        assert_eq!(v.len(), 2);
        assert!(NoStdoutInLib::new(vec![]).check(&file("crates/cli/src/x.rs", src)).is_empty());
    }

    #[test]
    fn ordered_iteration_scope() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let v = OrderedIteration::new(vec![]).check(&file("crates/core/src/tables.rs", src));
        assert_eq!(v.len(), 2);
        assert!(OrderedIteration::new(vec![])
            .check(&file("crates/core/src/sweep.rs", src))
            .is_empty());
        assert_eq!(
            OrderedIteration::new(vec![]).check(&file("crates/cli/src/args.rs", src)).len(),
            2
        );
    }

    #[test]
    fn hygiene_rule() {
        let src = "let a = 1; \n\tlet b = 2;\n// TODO: fix this\n// TODO(#12): tracked\n";
        let v = Hygiene::new(vec![]).check(&file("tests/x.rs", src));
        let rules: Vec<&str> =
            v.iter().map(|x| x.message.split(';').next().unwrap_or("")).collect();
        assert_eq!(v.len(), 3, "{rules:?}");
        assert!(v[0].message.contains("trailing"));
        assert!(v[1].message.contains("tab"));
        assert!(v[2].message.contains("issue reference"));
    }

    #[test]
    fn trace_kind_naming_accepts_namespaced_literals() {
        let src = "fn f(t: &Tracer) {\n    t.emit_with(|| TraceEvent::new(0, \"idc.admit\").field(\"id\", 1u64));\n    t.span_enter(SpanId::NONE, 0, \"session.vc_setup\");\n}\n";
        assert!(TraceKindNaming::new(vec![]).check(&file("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn trace_kind_naming_flags_bad_names_and_non_literals() {
        let src = "fn f(t: &Tracer) {\n    t.emit_with(|| TraceEvent::new(0, \"BadKind\"));\n    t.span_enter(p, 0, name);\n    let s = t.span_enter_with(\n        p,\n        0,\n        \"single\",\n        |ev| ev,\n    );\n}\n";
        let v = TraceKindNaming::new(vec![]).check(&file("crates/core/src/x.rs", src));
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![2, 3, 7], "{v:#?}");
        assert!(v.first().is_some_and(|x| x.message.contains("BadKind")));
        assert!(v.get(1).is_some_and(|x| x.message.contains("string literal")));
    }

    #[test]
    fn trace_kind_well_formedness() {
        assert!(TraceKindNaming::well_formed("idc.admit"));
        assert!(TraceKindNaming::well_formed("net.snmp_deposit"));
        assert!(TraceKindNaming::well_formed("a.b.c2"));
        assert!(!TraceKindNaming::well_formed("flat"));
        assert!(!TraceKindNaming::well_formed("Idc.Admit"));
        assert!(!TraceKindNaming::well_formed("idc..admit"));
        assert!(!TraceKindNaming::well_formed("idc.admit "));
        assert!(!TraceKindNaming::well_formed(""));
    }

    #[test]
    fn allowlist_exempts_file() {
        let rule = NoPanicInLib::new(vec!["src/x.rs".to_string()]);
        let f = file("crates/core/src/x.rs", "fn f() { a.unwrap(); }\n");
        assert!(rule.allowlisted(&f));
    }

    #[test]
    fn tokens_in_strings_and_comments_ignored() {
        let src = "// call .unwrap() and panic!(now)\nlet s = \".expect( thread_rng \";\n";
        let f = file("crates/core/src/x.rs", src);
        assert!(NoPanicInLib::new(vec![]).check(&f).is_empty());
        assert!(Determinism::new(vec![]).check(&f).is_empty());
    }
}
