//! Name resolution for the workspace item graph.
//!
//! `gvc-tidy` has no compiler at hand, so resolution is *lexical*: a
//! per-file map from locally visible names to absolute-ish paths,
//! built from `use` declarations, plus the workspace conventions —
//! `gvc_<name>` is the library of `crates/<name>`, `crate::` is the
//! file's own crate, `self::`/`super::` are resolved against the
//! file's module path. The item graph ([`crate::graph`]) uses this to
//! turn call tokens into candidate callee paths; anything it cannot
//! pin down is treated as unknown rather than guessed, so the
//! semantic rules err toward silence, not false findings.

use std::collections::BTreeMap;

/// Per-file view of `use` declarations: local name → absolute path
/// segments (e.g. `Instant` → `["std", "time", "Instant"]`).
#[derive(Debug, Clone, Default)]
pub struct UseMap {
    map: BTreeMap<String, Vec<String>>,
}

impl UseMap {
    /// An empty map.
    pub fn new() -> UseMap {
        UseMap::default()
    }

    /// Parses one complete `use` declaration (everything between the
    /// `use` keyword and the `;`, braces included) into the map.
    /// Handles nested groups and `as` renames; glob imports carry no
    /// name and are ignored.
    pub fn add_decl(&mut self, decl: &str) {
        parse_use_tree(decl.trim(), &[], &mut self.map);
    }

    /// The absolute path `name` maps to, when imported.
    pub fn lookup(&self, name: &str) -> Option<&[String]> {
        self.map.get(name).map(Vec::as_slice)
    }

    /// Iterates `(local name, absolute segments)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

/// Recursive descent over a use tree: `a::b::{c, d as e, f::{g}}`.
fn parse_use_tree(tree: &str, prefix: &[String], out: &mut BTreeMap<String, Vec<String>>) {
    let tree = tree.trim().trim_end_matches(';').trim();
    if tree.is_empty() || tree == "*" {
        return;
    }
    // Split off a brace group at the end: `head::{...}`.
    if let Some(open) = tree.find('{') {
        let head = tree[..open].trim_end_matches("::").trim();
        let inner = tree[open + 1..].strip_suffix('}').unwrap_or(&tree[open + 1..]);
        let mut base = prefix.to_vec();
        base.extend(head.split("::").filter(|s| !s.is_empty()).map(str::to_string));
        // Split the group body on top-level commas.
        let mut depth = 0usize;
        let mut start = 0usize;
        let bytes = inner.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => depth = depth.saturating_sub(1),
                b',' if depth == 0 => {
                    parse_use_tree(&inner[start..i], &base, out);
                    start = i + 1;
                }
                _ => {}
            }
        }
        parse_use_tree(&inner[start..], &base, out);
        return;
    }
    // Leaf: `path::to::Name` or `path::to::Name as Alias`.
    let (path, alias) = match tree.split_once(" as ") {
        Some((p, a)) => (p.trim(), Some(a.trim())),
        None => (tree, None),
    };
    let mut segs = prefix.to_vec();
    segs.extend(path.split("::").filter(|s| !s.is_empty()).map(str::to_string));
    let Some(last) = segs.last().cloned() else {
        return;
    };
    if last == "*" {
        return;
    }
    let name = alias.unwrap_or(&last);
    if !name.is_empty() && name != "_" {
        out.insert(name.to_string(), segs);
    }
}

/// Where an absolute path roots after workspace mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Root {
    /// A workspace crate, by short name (`net`, `telemetry`, …).
    Workspace(String),
    /// Anything else (`std`, vendored shims, unknown externals).
    External,
}

/// External crate names that are *not* workspace libraries even
/// though they are path roots in source.
const EXTERNAL_ROOTS: &[&str] = &["std", "core", "alloc", "rand", "rayon", "proptest", "criterion"];

/// Maps a path's first segment to its root, applying the file's
/// `use` map and the workspace conventions. Returns the fully
/// expanded segments alongside.
///
/// `krate` is the file's own crate short name; `mods` its module
/// path inside that crate.
pub fn resolve_root(
    segments: &[String],
    uses: &UseMap,
    krate: &str,
    mods: &[String],
) -> (Root, Vec<String>) {
    let Some(first) = segments.first() else {
        return (Root::External, segments.to_vec());
    };
    // A locally imported name expands to its absolute path first.
    let expanded: Vec<String> = match uses.lookup(first) {
        Some(abs) => abs.iter().cloned().chain(segments.iter().skip(1).cloned()).collect(),
        None => segments.to_vec(),
    };
    let Some(head) = expanded.first().map(String::as_str) else {
        return (Root::External, expanded);
    };
    match head {
        "crate" => {
            let rest: Vec<String> = expanded.iter().skip(1).cloned().collect();
            (Root::Workspace(krate.to_string()), rest)
        }
        "self" => {
            let mut segs: Vec<String> = mods.to_vec();
            segs.extend(expanded.iter().skip(1).cloned());
            (Root::Workspace(krate.to_string()), segs)
        }
        "super" => {
            let mut up = 0usize;
            let mut it = expanded.iter();
            while it.clone().next().map(String::as_str) == Some("super") {
                up += 1;
                it.next();
            }
            let keep = mods.len().saturating_sub(up);
            let mut segs: Vec<String> = mods[..keep].to_vec();
            segs.extend(it.cloned());
            (Root::Workspace(krate.to_string()), segs)
        }
        h if h.starts_with("gvc_") => {
            let short = h.trim_start_matches("gvc_").to_string();
            let rest: Vec<String> = expanded.iter().skip(1).cloned().collect();
            (Root::Workspace(short), rest)
        }
        "gridftp_vc" => {
            let rest: Vec<String> = expanded.iter().skip(1).cloned().collect();
            (Root::Workspace("gridftp_vc".to_string()), rest)
        }
        h if EXTERNAL_ROOTS.contains(&h) => (Root::External, expanded),
        _ => {
            // Unqualified path in the file's own crate (an item from
            // the same module, or a type named without import).
            (Root::Workspace(krate.to_string()), expanded)
        }
    }
}

/// Normalizes a function signature for cfg-parity comparison:
/// whitespace collapsed, leading underscores stripped from parameter
/// names (`_threads: usize` ≡ `threads: usize` — a sequential twin
/// legitimately ignores a worker-count argument).
pub fn normalize_sig(sig: &str) -> String {
    let mut out = String::with_capacity(sig.len());
    let mut last_space = true;
    let mut chars = sig.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
            continue;
        }
        if c == '_' && !out.ends_with(|p: char| p.is_ascii_alphanumeric() || p == '_') {
            // Leading underscore of an identifier: drop it when a
            // real identifier follows (`_x` → `x`), keep a bare `_`.
            if chars.peek().is_some_and(char::is_ascii_alphanumeric) {
                last_space = false;
                continue;
            }
        }
        out.push(c);
        last_space = false;
    }
    // Spacing around delimiters and trailing commas (multi-line arg
    // lists), trailing `{`, and `where` clauses don't change the API.
    for (from, to) in [("( ", "("), (" )", ")"), (" ,", ","), (",)", ")")] {
        while out.contains(from) {
            out = out.replace(from, to);
        }
    }
    let out = out.trim().trim_end_matches('{').trim();
    let out = match out.find(" where ") {
        Some(at) => &out[..at],
        None => out,
    };
    out.trim().trim_end_matches(',').trim().to_string()
}

/// The short crate name a workspace-relative path belongs to:
/// `crates/net/...` → `net`, root `src/` → `gridftp_vc`, integration
/// tests and examples each form their own target (`test:<stem>`).
pub fn crate_of_path(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((krate, _)) = rest.split_once('/') {
            return krate.to_string();
        }
    }
    if rel.starts_with("src/") {
        return "gridftp_vc".to_string();
    }
    let stem = rel.rsplit('/').next().unwrap_or(rel).trim_end_matches(".rs");
    format!("test:{stem}")
}

/// The module path of a file inside its crate: `src/a/b.rs` →
/// `["a", "b"]`, `src/a/mod.rs` → `["a"]`, `src/lib.rs` → `[]`.
pub fn module_of_path(rel: &str) -> Vec<String> {
    let tail = match rel.strip_prefix("crates/").and_then(|r| r.split_once('/')) {
        Some((_, tail)) => tail,
        None => rel,
    };
    let Some(path) = tail.strip_prefix("src/") else {
        return Vec::new();
    };
    let path = path.trim_end_matches(".rs");
    if path == "lib" || path == "main" {
        return Vec::new();
    }
    let mut segs: Vec<String> = path.split('/').map(str::to_string).collect();
    if segs.last().map(String::as_str) == Some("mod") {
        segs.pop();
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uses(decls: &[&str]) -> UseMap {
        let mut m = UseMap::new();
        for d in decls {
            m.add_decl(d);
        }
        m
    }

    #[test]
    fn flat_and_grouped_uses_parse() {
        let m = uses(&["std::time::Instant;", "gvc_logs::{Dataset, TransferRecord as Rec};"]);
        assert_eq!(m.lookup("Instant").unwrap().join("::"), "std::time::Instant");
        assert_eq!(m.lookup("Dataset").unwrap().join("::"), "gvc_logs::Dataset");
        assert_eq!(m.lookup("Rec").unwrap().join("::"), "gvc_logs::TransferRecord");
        assert!(m.lookup("TransferRecord").is_none());
    }

    #[test]
    fn nested_groups_and_globs() {
        let m = uses(&["a::{b::{c, d}, e};", "f::*;"]);
        assert_eq!(m.lookup("c").unwrap().join("::"), "a::b::c");
        assert_eq!(m.lookup("d").unwrap().join("::"), "a::b::d");
        assert_eq!(m.lookup("e").unwrap().join("::"), "a::e");
        assert!(m.iter().all(|(k, _)| k != "*"));
    }

    #[test]
    fn roots_resolve_workspace_and_external() {
        let m = uses(&["std::time::Instant;", "gvc_net::NetworkSim;"]);
        let seg = |s: &str| s.split("::").map(str::to_string).collect::<Vec<_>>();
        let (root, p) = resolve_root(&seg("Instant::now"), &m, "core", &[]);
        assert_eq!(root, Root::External);
        assert_eq!(p.join("::"), "std::time::Instant::now");
        let (root, p) = resolve_root(&seg("NetworkSim::new"), &m, "core", &[]);
        assert_eq!(root, Root::Workspace("net".to_string()));
        assert_eq!(p.join("::"), "NetworkSim::new");
        let (root, p) = resolve_root(&seg("crate::sweep::run"), &m, "core", &[]);
        assert_eq!(root, Root::Workspace("core".to_string()));
        assert_eq!(p.join("::"), "sweep::run");
        let (root, _) = resolve_root(&seg("helper"), &m, "core", &[]);
        assert_eq!(root, Root::Workspace("core".to_string()));
    }

    #[test]
    fn super_and_self_use_the_module_path() {
        let m = UseMap::new();
        let seg = |s: &str| s.split("::").map(str::to_string).collect::<Vec<_>>();
        let mods = vec!["a".to_string(), "b".to_string()];
        let (_, p) = resolve_root(&seg("self::f"), &m, "core", &mods);
        assert_eq!(p.join("::"), "a::b::f");
        let (_, p) = resolve_root(&seg("super::g"), &m, "core", &mods);
        assert_eq!(p.join("::"), "a::g");
        let (_, p) = resolve_root(&seg("super::super::h"), &m, "core", &mods);
        assert_eq!(p.join("::"), "h");
    }

    #[test]
    fn signature_normalization() {
        assert_eq!(
            normalize_sig(
                "fn run_lanes(lanes: Vec<Driver>, limit: SimTime, _threads: usize,\n) -> Vec<R> {"
            ),
            normalize_sig(
                "fn run_lanes(lanes: Vec<Driver>, limit: SimTime, threads: usize) -> Vec<R>"
            )
        );
        assert_ne!(normalize_sig("fn f(a: u32)"), normalize_sig("fn f(a: u64)"));
        // `where` clauses are not part of the comparable surface.
        assert_eq!(normalize_sig("fn f<T>(t: T) where T: Send {"), normalize_sig("fn f<T>(t: T)"));
        // A bare `_` placeholder survives.
        assert_eq!(normalize_sig("fn f(_: u32)"), "fn f(_: u32)");
    }

    #[test]
    fn crate_and_module_of_paths() {
        assert_eq!(crate_of_path("crates/net/src/sim.rs"), "net");
        assert_eq!(crate_of_path("src/lib.rs"), "gridftp_vc");
        assert_eq!(crate_of_path("tests/end_to_end.rs"), "test:end_to_end");
        assert_eq!(module_of_path("crates/net/src/sim.rs"), vec!["sim".to_string()]);
        assert!(module_of_path("crates/net/src/lib.rs").is_empty());
        assert_eq!(module_of_path("crates/core/src/a/mod.rs"), vec!["a".to_string()]);
        assert_eq!(
            module_of_path("crates/core/src/a/b.rs"),
            vec!["a".to_string(), "b".to_string()]
        );
        assert!(module_of_path("tests/end_to_end.rs").is_empty());
    }
}
