//! Diagnostics: one violation per finding, renderable as a human
//! `file:line:col` line or as a JSON object for machine consumers.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired (registry name, e.g. `no-panic-in-lib`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the offending token (0 = whole line).
    pub col: usize,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Violation {
    /// `path:line:col: [rule] message` plus the snippet.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        let _ =
            write!(s, "{}:{}:{}: [{}] {}", self.path, self.line, self.col, self.rule, self.message);
        if !self.snippet.is_empty() {
            let _ = write!(s, "\n    | {}", self.snippet);
        }
        s
    }

    /// One JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(self.rule),
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(&self.snippet)
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_has_location_and_rule() {
        let v = Violation {
            rule: "no-panic-in-lib",
            path: "crates/stats/src/summary.rs".into(),
            line: 38,
            col: 9,
            message: "forbidden `.expect(`".into(),
            snippet: "x.expect(\"boom\")".into(),
        };
        let h = v.render_human();
        assert!(h.starts_with("crates/stats/src/summary.rs:38:9: [no-panic-in-lib]"));
        assert!(h.contains("x.expect"));
    }

    #[test]
    fn json_rendering_escapes() {
        let v = Violation {
            rule: "hygiene",
            path: "a\\b.rs".into(),
            line: 1,
            col: 0,
            message: "tab \"here\"".into(),
            snippet: "\tx".into(),
        };
        let j = v.render_json();
        assert!(j.contains("\"path\":\"a\\\\b.rs\""));
        assert!(j.contains("\\\"here\\\""));
        assert!(j.contains("\\tx"));
    }
}
