//! Advance-reservation bandwidth calendars.
//!
//! A link's calendar is the set of bandwidth commitments over time.
//! Admission of a new reservation `[start, end) @ rate` requires that
//! the *peak* committed bandwidth over the window plus `rate` stays
//! within the link's reservable capacity. "Such advance-reservation
//! service is required when the requested circuit rate is a significant
//! portion of link capacity if the network is to be operated at high
//! utilization and with low call blocking probability" (§II).

use gvc_engine::SimTime;
use gvc_topology::LinkId;
use std::collections::HashMap;

/// One committed window on a link.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Commitment {
    start: SimTime,
    end: SimTime,
    rate_bps: f64,
    /// Owner token so commitments can be released individually.
    owner: u64,
}

/// Bandwidth commitments on a single link.
#[derive(Debug, Clone, Default)]
pub struct LinkCalendar {
    commitments: Vec<Commitment>,
}

impl LinkCalendar {
    /// An empty calendar.
    pub fn new() -> LinkCalendar {
        LinkCalendar::default()
    }

    /// Peak committed bandwidth over `[start, end)`.
    ///
    /// Event sweep: each overlapping commitment contributes a `+rate`
    /// event where it enters the window and a `−rate` event where it
    /// leaves (commitment ends are exclusive, so an end inside the
    /// window stops counting exactly there). One sort plus a
    /// running-sum scan — O(n log n), where the old
    /// breakpoint-times-rescan formulation was O(n²) on the calendars
    /// an admission-heavy simulation builds up.
    pub fn peak_committed_bps(&self, start: SimTime, end: SimTime) -> f64 {
        let mut events: Vec<(SimTime, f64)> = Vec::with_capacity(self.commitments.len() * 2);
        for c in &self.commitments {
            if c.start >= end || c.end <= start {
                continue;
            }
            events.push((c.start.max(start), c.rate_bps));
            if c.end < end {
                events.push((c.end, -c.rate_bps));
            }
        }
        events.sort_by_key(|e| e.0);
        let mut peak = 0.0f64;
        let mut current = 0.0f64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            // Apply every delta at this instant before sampling, so a
            // commitment ending at t never overlaps one starting at t.
            while i < events.len() && events[i].0 == t {
                current += events[i].1;
                i += 1;
            }
            peak = peak.max(current);
        }
        peak
    }

    /// Committed bandwidth at instant `t`.
    pub fn committed_at(&self, t: SimTime) -> f64 {
        self.commitments.iter().filter(|c| c.start <= t && c.end > t).map(|c| c.rate_bps).sum()
    }

    /// Records a commitment.
    pub fn commit(&mut self, owner: u64, start: SimTime, end: SimTime, rate_bps: f64) {
        assert!(end > start, "commitment window must be non-empty");
        assert!(rate_bps > 0.0, "commitment rate must be positive");
        self.commitments.push(Commitment { start, end, rate_bps, owner });
    }

    /// Releases all commitments of `owner` from `at` onward: windows
    /// entirely in the future disappear, the active one is truncated.
    /// Returns the number of commitments affected.
    pub fn release(&mut self, owner: u64, at: SimTime) -> usize {
        let mut touched = 0;
        self.commitments.retain_mut(|c| {
            if c.owner != owner {
                return true;
            }
            if c.start >= at {
                touched += 1;
                false // future window: drop entirely
            } else if c.end > at {
                touched += 1;
                c.end = at; // active window: truncate
                true
            } else {
                true // already past
            }
        });
        touched
    }

    /// Number of commitments on record.
    pub fn len(&self) -> usize {
        self.commitments.len()
    }

    /// True when no commitments.
    pub fn is_empty(&self) -> bool {
        self.commitments.is_empty()
    }
}

/// Calendars for every link in a topology.
#[derive(Debug, Clone, Default)]
pub struct NetworkCalendar {
    links: HashMap<LinkId, LinkCalendar>,
}

impl NetworkCalendar {
    /// An empty network calendar.
    pub fn new() -> NetworkCalendar {
        NetworkCalendar::default()
    }

    /// The calendar of `link` (created on first touch).
    pub fn link_mut(&mut self, link: LinkId) -> &mut LinkCalendar {
        self.links.entry(link).or_default()
    }

    /// Read-only access; `None` when never touched.
    pub fn link(&self, link: LinkId) -> Option<&LinkCalendar> {
        self.links.get(&link)
    }

    /// Spare reservable bandwidth on `link` over `[start, end)` given
    /// its reservable `capacity_bps`.
    pub fn available_bps(
        &self,
        link: LinkId,
        capacity_bps: f64,
        start: SimTime,
        end: SimTime,
    ) -> f64 {
        let committed = self.links.get(&link).map_or(0.0, |c| c.peak_committed_bps(start, end));
        (capacity_bps - committed).max(0.0)
    }

    /// Commits `rate` on every link of `path_links`.
    pub fn commit_path(
        &mut self,
        owner: u64,
        path_links: &[LinkId],
        start: SimTime,
        end: SimTime,
        rate_bps: f64,
    ) {
        for &l in path_links {
            self.link_mut(l).commit(owner, start, end, rate_bps);
        }
    }

    /// Releases `owner`'s commitments on the given links from `at`.
    pub fn release_path(&mut self, owner: u64, path_links: &[LinkId], at: SimTime) {
        for &l in path_links {
            self.link_mut(l).release(owner, at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_calendar_has_zero_commitment() {
        let c = LinkCalendar::new();
        assert_eq!(c.peak_committed_bps(t(0), t(100)), 0.0);
        assert_eq!(c.committed_at(t(50)), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn overlapping_windows_sum() {
        let mut c = LinkCalendar::new();
        c.commit(1, t(0), t(100), 2e9);
        c.commit(2, t(50), t(150), 3e9);
        assert_eq!(c.committed_at(t(25)), 2e9);
        assert_eq!(c.committed_at(t(75)), 5e9);
        assert_eq!(c.committed_at(t(120)), 3e9);
        assert_eq!(c.peak_committed_bps(t(0), t(150)), 5e9);
        assert_eq!(c.peak_committed_bps(t(0), t(50)), 2e9);
        // Window ending exactly at an overlap start excludes it.
        assert_eq!(c.peak_committed_bps(t(100), t(150)), 3e9);
    }

    #[test]
    fn peak_sees_commitment_starting_inside_window() {
        let mut c = LinkCalendar::new();
        c.commit(1, t(60), t(80), 4e9);
        assert_eq!(c.peak_committed_bps(t(0), t(100)), 4e9);
        assert_eq!(c.peak_committed_bps(t(0), t(60)), 0.0);
    }

    #[test]
    fn release_future_and_truncate_active() {
        let mut c = LinkCalendar::new();
        c.commit(7, t(0), t(100), 1e9);
        c.commit(7, t(200), t(300), 1e9);
        c.commit(9, t(0), t(300), 2e9);
        let n = c.release(7, t(50));
        assert_eq!(n, 2);
        assert_eq!(c.committed_at(t(75)), 2e9); // truncated at 50
        assert_eq!(c.committed_at(t(25)), 3e9); // history intact
        assert_eq!(c.committed_at(t(250)), 2e9); // future dropped
    }

    #[test]
    fn commitment_ending_at_window_start_excluded() {
        // Ends are exclusive: a commitment whose window closes exactly
        // where the query window opens contributes nothing.
        let mut c = LinkCalendar::new();
        c.commit(1, t(0), t(50), 6e9);
        assert_eq!(c.peak_committed_bps(t(50), t(100)), 0.0);
        assert_eq!(c.committed_at(t(50)), 0.0);
        // …and one starting exactly at the window start is counted.
        c.commit(2, t(50), t(60), 1e9);
        assert_eq!(c.peak_committed_bps(t(50), t(100)), 1e9);
    }

    #[test]
    fn back_to_back_windows_never_double_count() {
        // owner 1 hands off to owner 2 at t=50; the instant of the
        // handoff must see one rate, not both.
        let mut c = LinkCalendar::new();
        c.commit(1, t(0), t(50), 6e9);
        c.commit(2, t(50), t(100), 6e9);
        assert_eq!(c.peak_committed_bps(t(0), t(100)), 6e9);
    }

    #[test]
    fn release_at_commitment_start_drops_it_entirely() {
        // `release(at)` with `at` equal to a window's start must treat
        // it as future (drop), not truncate it to an empty window.
        let mut c = LinkCalendar::new();
        c.commit(3, t(100), t(200), 2e9);
        assert_eq!(c.release(3, t(100)), 1);
        assert!(c.is_empty());
        assert_eq!(c.peak_committed_bps(t(0), t(300)), 0.0);
    }

    #[test]
    fn release_truncation_keeps_half_open_semantics() {
        let mut c = LinkCalendar::new();
        c.commit(4, t(0), t(100), 5e9);
        c.release(4, t(40));
        assert_eq!(c.committed_at(t(39)), 5e9);
        assert_eq!(c.committed_at(t(40)), 0.0, "truncated end is exclusive");
        assert_eq!(c.peak_committed_bps(t(40), t(100)), 0.0);
        assert_eq!(c.peak_committed_bps(t(0), t(100)), 5e9);
    }

    #[test]
    fn peak_of_many_staggered_windows() {
        // 100 unit-rate commitments, each [i, i+10): peak overlap 10.
        let mut c = LinkCalendar::new();
        for i in 0..100u64 {
            c.commit(i, t(i), t(i + 10), 1.0);
        }
        assert_eq!(c.peak_committed_bps(t(0), t(200)), 10.0);
        // A window clipped to the ramp-up sees fewer overlaps.
        assert_eq!(c.peak_committed_bps(t(0), t(5)), 5.0);
    }

    #[test]
    fn release_wrong_owner_is_noop() {
        let mut c = LinkCalendar::new();
        c.commit(1, t(0), t(10), 1e9);
        assert_eq!(c.release(2, t(0)), 0);
        assert_eq!(c.committed_at(t(5)), 1e9);
    }

    #[test]
    fn network_calendar_availability() {
        let mut nc = NetworkCalendar::new();
        let l = LinkId(3);
        assert_eq!(nc.available_bps(l, 10e9, t(0), t(10)), 10e9);
        nc.commit_path(1, &[l], t(0), t(10), 4e9);
        assert_eq!(nc.available_bps(l, 10e9, t(0), t(10)), 6e9);
        assert_eq!(nc.available_bps(l, 10e9, t(10), t(20)), 10e9);
        nc.release_path(1, &[l], t(0));
        assert_eq!(nc.available_bps(l, 10e9, t(0), t(10)), 10e9);
    }

    #[test]
    fn availability_clamps_at_zero() {
        let mut nc = NetworkCalendar::new();
        let l = LinkId(0);
        nc.commit_path(1, &[l], t(0), t(10), 12e9);
        assert_eq!(nc.available_bps(l, 10e9, t(0), t(10)), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_panics() {
        let mut c = LinkCalendar::new();
        c.commit(1, t(10), t(10), 1e9);
    }
}
