//! Virtual-circuit setup-delay models.
//!
//! §IV: the deployed IDC "has the opportunity to collect all
//! provisioning requests that start in the next minute and send them in
//! batch mode to the ingress router. This solution however results in a
//! minimum 1-min VC setup delay if a data transfer application sends a
//! VC setup request to the IDC for immediate usage." Table IV also
//! evaluates a 50 ms setup delay — "the lowest value (round-trip
//! propagation delay across the US) if VC setup message processing is
//! implemented in hardware".

use gvc_engine::{SimSpan, SimTime};

/// When a circuit requested at time `t` becomes usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupDelayModel {
    /// A fixed setup delay (the analysis-side abstraction; Table IV
    /// uses `Fixed(1 min)` and `Fixed(50 ms)`).
    Fixed(SimSpan),
    /// The deployed batched IDC: requests are collected until the next
    /// batch boundary and provisioned during the following batch, so
    /// the delay for an immediate-use request is in
    /// `[interval, 2·interval)` — "minimally 1 min" with the 1-minute
    /// batch.
    Batched {
        /// Batch interval (1 minute in ESnet's deployment).
        interval: SimSpan,
    },
}

impl SetupDelayModel {
    /// The ESnet deployment: 1-minute batches.
    pub fn esnet_deployed() -> SetupDelayModel {
        SetupDelayModel::Batched { interval: SimSpan::from_mins(1) }
    }

    /// The paper's hardware lower bound: flat 50 ms.
    pub fn hardware() -> SetupDelayModel {
        SetupDelayModel::Fixed(SimSpan::from_millis(50))
    }

    /// The flat 1-minute delay Table IV assumes analytically.
    pub fn one_minute() -> SetupDelayModel {
        SetupDelayModel::Fixed(SimSpan::from_mins(1))
    }

    /// Instant at which a circuit requested at `requested` for
    /// immediate use becomes ready.
    pub fn ready_at(self, requested: SimTime) -> SimTime {
        match self {
            SetupDelayModel::Fixed(d) => requested + d,
            SetupDelayModel::Batched { interval } => {
                let iv = interval.micros() as u64;
                assert!(iv > 0, "batch interval must be positive");
                // Next boundary at or after the request (a request
                // landing exactly on a boundary is collected there)…
                let boundary = requested.micros().div_ceil(iv) * iv;
                // …plus one full batch of provisioning.
                SimTime(boundary) + interval
            }
        }
    }

    /// The nominal delay the analysis should budget for (the paper's
    /// "setup delay" scalar): the fixed value, or the batch interval.
    pub fn nominal_delay(self) -> SimSpan {
        match self {
            SetupDelayModel::Fixed(d) => d,
            SetupDelayModel::Batched { interval } => interval,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_is_additive() {
        let m = SetupDelayModel::hardware();
        let t = SimTime::from_secs(100);
        assert_eq!(m.ready_at(t), t + SimSpan::from_millis(50));
    }

    #[test]
    fn batched_minimum_is_one_interval() {
        let m = SetupDelayModel::esnet_deployed();
        // Request exactly on a boundary: collected there, ready one
        // batch later…
        let t = SimTime::from_secs(120);
        assert_eq!(m.ready_at(t), SimTime::from_secs(180));
        // …request just before a boundary: ready just over 1 min later.
        let t2 = SimTime::from_secs(119);
        assert_eq!(m.ready_at(t2), SimTime::from_secs(180));
    }

    #[test]
    fn nominal_delays() {
        assert_eq!(SetupDelayModel::one_minute().nominal_delay(), SimSpan::from_mins(1));
        assert_eq!(SetupDelayModel::esnet_deployed().nominal_delay(), SimSpan::from_mins(1));
        assert_eq!(SetupDelayModel::hardware().nominal_delay(), SimSpan::from_millis(50));
    }

    proptest! {
        /// The batched delay always lies in [interval, 2*interval).
        #[test]
        fn prop_batched_delay_bounds(secs in 0u64..10_000) {
            let m = SetupDelayModel::esnet_deployed();
            let t = SimTime::from_secs(secs);
            let d = m.ready_at(t) - t;
            prop_assert!(d >= SimSpan::from_mins(1));
            prop_assert!(d < SimSpan::from_mins(2));
        }

        /// ready_at is monotone in the request time.
        #[test]
        fn prop_monotone(a in 0u64..10_000u64, b in 0u64..10_000u64) {
            let (lo, hi) = (a.min(b), a.max(b));
            for m in [SetupDelayModel::esnet_deployed(), SetupDelayModel::hardware()] {
                prop_assert!(m.ready_at(SimTime::from_secs(lo)) <= m.ready_at(SimTime::from_secs(hi)));
            }
        }
    }
}
