//! The Inter-Domain Controller: admission, provisioning, teardown.
//!
//! Admission runs CSPF against the advance-reservation calendar: a
//! request is admitted iff some path has spare reservable bandwidth ≥
//! the requested rate over the whole window (§II: advance reservations
//! let the network run at high utilization with low blocking). The
//! reservable fraction of each link defaults to 100 % of line rate; a
//! provider policy can cap it (e.g. reserve headroom for IP traffic).

use crate::calendar::NetworkCalendar;
use crate::reservation::{Reservation, ReservationId, ReservationRequest, ReservationState};
use crate::setup::SetupDelayModel;
use gvc_engine::SimTime;
use gvc_topology::{constrained_shortest_path, Graph};
use std::collections::HashMap;

/// Why a reservation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockReason {
    /// Malformed request (empty window, zero rate, same endpoints).
    InvalidRequest(String),
    /// No path with sufficient spare bandwidth over the window.
    NoFeasiblePath,
}

/// Aggregate admission statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdcStats {
    /// Reservation requests received.
    pub requests: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests blocked.
    pub blocked: u64,
}

impl IdcStats {
    /// Call-blocking probability.
    pub fn blocking_probability(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.blocked as f64 / self.requests as f64
        }
    }
}

/// The circuit scheduler.
///
/// ```
/// use gvc_oscars::{Idc, ReservationRequest, SetupDelayModel};
/// use gvc_engine::SimTime;
/// use gvc_topology::{study_topology, Site};
///
/// let topo = study_topology();
/// let mut idc = Idc::new(topo.graph.clone(), SetupDelayModel::one_minute());
/// let id = idc
///     .create_reservation(ReservationRequest {
///         src: topo.dtn(Site::Nersc),
///         dst: topo.dtn(Site::Ornl),
///         rate_bps: 4e9,
///         start: SimTime::ZERO,
///         end: SimTime::from_secs(3600),
///     })
///     .expect("10 Gbps links have room for 4 Gbps");
/// let ready = idc.provision(id, SimTime::ZERO);
/// assert_eq!(ready, SimTime::from_secs(60)); // the deployed 1-min setup
/// ```
pub struct Idc {
    graph: Graph,
    calendar: NetworkCalendar,
    setup: SetupDelayModel,
    /// Fraction of each link's line rate available to circuits.
    reservable_fraction: f64,
    reservations: HashMap<ReservationId, Reservation>,
    next_id: u64,
    stats: IdcStats,
}

impl Idc {
    /// A controller over `graph` with the given setup-delay model,
    /// allowing circuits up to the full line rate.
    pub fn new(graph: Graph, setup: SetupDelayModel) -> Idc {
        Idc {
            graph,
            calendar: NetworkCalendar::new(),
            setup,
            reservable_fraction: 1.0,
            reservations: HashMap::new(),
            next_id: 0,
            stats: IdcStats::default(),
        }
    }

    /// Caps the reservable fraction of every link (policy headroom).
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    pub fn with_reservable_fraction(mut self, fraction: f64) -> Idc {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        self.reservable_fraction = fraction;
        self
    }

    /// The setup-delay model in force.
    pub fn setup_model(&self) -> SetupDelayModel {
        self.setup
    }

    /// Admission statistics so far.
    pub fn stats(&self) -> IdcStats {
        self.stats
    }

    /// Processes a `createReservation`: CSPF over calendar
    /// availability; commits the path on success.
    pub fn create_reservation(
        &mut self,
        req: ReservationRequest,
    ) -> Result<ReservationId, BlockReason> {
        self.stats.requests += 1;
        if let Err(e) = req.validate() {
            self.stats.blocked += 1;
            return Err(BlockReason::InvalidRequest(e));
        }
        let calendar = &self.calendar;
        let graph = &self.graph;
        let frac = self.reservable_fraction;
        let path = constrained_shortest_path(graph, req.src, req.dst, req.rate_bps, |l| {
            calendar.available_bps(
                l,
                graph.link(l).capacity_bps * frac,
                req.start,
                req.end,
            )
        });
        let Some(path) = path else {
            self.stats.blocked += 1;
            return Err(BlockReason::NoFeasiblePath);
        };
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        self.calendar
            .commit_path(id.0, &path.links, req.start, req.end, req.rate_bps);
        self.reservations.insert(
            id,
            Reservation {
                id,
                request: req,
                path,
                state: ReservationState::Scheduled,
                ready_at: None,
            },
        );
        self.stats.admitted += 1;
        Ok(id)
    }

    /// Signals provisioning of a scheduled reservation at `now`
    /// (automatic signalling just before start, or an explicit
    /// `createPath`). Returns the instant the circuit becomes usable
    /// under the setup-delay model.
    ///
    /// # Panics
    /// Panics when the reservation is unknown or already released.
    pub fn provision(&mut self, id: ReservationId, now: SimTime) -> SimTime {
        let r = self.reservations.get_mut(&id).expect("unknown reservation");
        assert!(
            matches!(r.state, ReservationState::Scheduled | ReservationState::Provisioning),
            "cannot provision a reservation in state {:?}",
            r.state
        );
        let ready = self.setup.ready_at(now).max(r.request.start);
        r.state = ReservationState::Active;
        r.ready_at = Some(ready);
        ready
    }

    /// Tears a reservation down at `now`, releasing its remaining
    /// calendar window.
    pub fn teardown(&mut self, id: ReservationId, now: SimTime) {
        let r = self.reservations.get_mut(&id).expect("unknown reservation");
        if r.state == ReservationState::Released {
            return;
        }
        r.state = ReservationState::Released;
        self.calendar.release_path(id.0, &r.path.links.clone(), now);
    }

    /// The reservation record.
    pub fn reservation(&self, id: ReservationId) -> Option<&Reservation> {
        self.reservations.get(&id)
    }

    /// Spare reservable bandwidth between two endpoints over a window
    /// (what a client could still get).
    pub fn probe_available_bps(
        &self,
        req: ReservationRequest,
    ) -> f64 {
        // Binary-search the admissible rate via CSPF feasibility.
        let (mut lo, mut hi) = (0.0f64, self.graph.links()
            .iter()
            .map(|l| l.capacity_bps)
            .fold(0.0, f64::max) * self.reservable_fraction);
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            let feasible = constrained_shortest_path(&self.graph, req.src, req.dst, mid, |l| {
                self.calendar.available_bps(
                    l,
                    self.graph.link(l).capacity_bps * self.reservable_fraction,
                    req.start,
                    req.end,
                )
            })
            .is_some();
            if feasible {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_topology::{study_topology, Site};

    fn idc() -> (Idc, ReservationRequest) {
        let t = study_topology();
        let req = ReservationRequest {
            src: t.dtn(Site::Nersc),
            dst: t.dtn(Site::Ornl),
            rate_bps: 4e9,
            start: SimTime::from_secs(0),
            end: SimTime::from_secs(3600),
        };
        (Idc::new(t.graph, SetupDelayModel::one_minute()), req)
    }

    #[test]
    fn admit_then_block_when_full() {
        let (mut idc, req) = idc();
        // 10 G links: two 4 G circuits fit, the third is blocked.
        assert!(idc.create_reservation(req).is_ok());
        assert!(idc.create_reservation(req).is_ok());
        assert_eq!(idc.create_reservation(req), Err(BlockReason::NoFeasiblePath));
        let s = idc.stats();
        assert_eq!((s.requests, s.admitted, s.blocked), (3, 2, 1));
        assert!((s.blocking_probability() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_windows_do_not_compete() {
        let (mut idc, mut req) = idc();
        req.rate_bps = 8e9;
        assert!(idc.create_reservation(req).is_ok());
        // Same rate later in time: fine.
        req.start = SimTime::from_secs(3600);
        req.end = SimTime::from_secs(7200);
        assert!(idc.create_reservation(req).is_ok());
    }

    #[test]
    fn teardown_releases_capacity() {
        let (mut idc, mut req) = idc();
        req.rate_bps = 8e9;
        let id = idc.create_reservation(req).unwrap();
        assert_eq!(idc.create_reservation(req), Err(BlockReason::NoFeasiblePath));
        idc.teardown(id, SimTime::from_secs(10));
        // Remaining window [10, 3600) is free again.
        let mut later = req;
        later.start = SimTime::from_secs(10);
        assert!(idc.create_reservation(later).is_ok());
    }

    #[test]
    fn invalid_request_blocked_with_reason() {
        let (mut idc, mut req) = idc();
        req.rate_bps = -1.0;
        match idc.create_reservation(req) {
            Err(BlockReason::InvalidRequest(_)) => {}
            other => panic!("expected invalid request, got {other:?}"),
        }
        assert_eq!(idc.stats().blocked, 1);
    }

    #[test]
    fn provisioning_sets_ready_per_model() {
        let (mut idc, req) = idc();
        let id = idc.create_reservation(req).unwrap();
        let ready = idc.provision(id, SimTime::from_secs(0));
        assert_eq!(ready, SimTime::from_secs(60));
        let r = idc.reservation(id).unwrap();
        assert_eq!(r.state, ReservationState::Active);
        assert!(r.usable_at(SimTime::from_secs(60)));
        assert!(!r.usable_at(SimTime::from_secs(59)));
    }

    #[test]
    fn ready_never_precedes_window_start() {
        let (mut idc, mut req) = idc();
        req.start = SimTime::from_secs(1000);
        req.end = SimTime::from_secs(2000);
        let id = idc.create_reservation(req).unwrap();
        // Provisioned early: usable only from the window start.
        let ready = idc.provision(id, SimTime::from_secs(0));
        assert_eq!(ready, SimTime::from_secs(1000));
    }

    #[test]
    fn reservable_fraction_policy() {
        let t = study_topology();
        let req = ReservationRequest {
            src: t.dtn(Site::Slac),
            dst: t.dtn(Site::Bnl),
            rate_bps: 6e9,
            start: SimTime::ZERO,
            end: SimTime::from_secs(60),
        };
        let mut idc = Idc::new(t.graph, SetupDelayModel::hardware()).with_reservable_fraction(0.5);
        // 6 G > 50 % of 10 G: blocked.
        assert_eq!(idc.create_reservation(req), Err(BlockReason::NoFeasiblePath));
        let mut ok = req;
        ok.rate_bps = 4e9;
        assert!(idc.create_reservation(ok).is_ok());
    }

    #[test]
    fn probe_tracks_committed_bandwidth() {
        let (mut idc, req) = idc();
        let free0 = idc.probe_available_bps(req);
        assert!((free0 - 10e9).abs() < 1e7, "{free0}");
        idc.create_reservation(req).unwrap();
        let free1 = idc.probe_available_bps(req);
        assert!((free1 - 6e9).abs() < 1e7, "{free1}");
    }

    #[test]
    fn double_teardown_is_idempotent() {
        let (mut idc, req) = idc();
        let id = idc.create_reservation(req).unwrap();
        idc.teardown(id, SimTime::from_secs(5));
        idc.teardown(id, SimTime::from_secs(6));
        assert_eq!(idc.reservation(id).unwrap().state, ReservationState::Released);
    }
}
