//! The Inter-Domain Controller: admission, provisioning, teardown.
//!
//! Admission runs CSPF against the advance-reservation calendar: a
//! request is admitted iff some path has spare reservable bandwidth ≥
//! the requested rate over the whole window (§II: advance reservations
//! let the network run at high utilization with low blocking). The
//! reservable fraction of each link defaults to 100 % of line rate; a
//! provider policy can cap it (e.g. reserve headroom for IP traffic).

use crate::calendar::NetworkCalendar;
use crate::reservation::{Reservation, ReservationId, ReservationRequest, ReservationState};
use crate::setup::SetupDelayModel;
use gvc_engine::SimTime;
use gvc_telemetry::timeline::series;
use gvc_telemetry::{
    Counter, Gauge, Histogram, Registry, SpanId, TimelineHandle, TraceEvent, Tracer,
};
use gvc_topology::{constrained_shortest_path, Graph};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// IDC admission/provisioning telemetry, shared with a [`Registry`].
/// Attach via [`Idc::set_telemetry`].
#[derive(Clone)]
pub struct IdcTelemetry {
    /// `idc_requests_total`: `createReservation` calls.
    pub requests: Arc<Counter>,
    /// `idc_admitted_total`: admitted requests.
    pub admitted: Arc<Counter>,
    /// `idc_blocked_total{reason="invalid_request"}`.
    pub blocked_invalid: Arc<Counter>,
    /// `idc_blocked_total{reason="no_feasible_path"}`.
    pub blocked_no_path: Arc<Counter>,
    /// `idc_reservations_active`: provisioned minus torn down.
    pub active: Arc<Gauge>,
    /// `idc_setup_delay_seconds`: provision-to-usable delay.
    pub setup_delay: Arc<Histogram>,
    /// `idc_path_utilization`: peak committed fraction of the
    /// bottleneck link on the admitted path, *after* the commit — how
    /// full the calendar runs (§II high-utilization claim).
    pub path_utilization: Arc<Histogram>,
    /// Trace handle for `idc.*` events.
    pub tracer: Tracer,
    /// Sim-time flight recorder feeding the `oscars.*` windowed
    /// series (`None` unless [`IdcTelemetry::with_timeline`] attached
    /// one).
    pub timeline: Option<TimelineHandle>,
}

impl IdcTelemetry {
    /// Registers the IDC metrics in `registry`, tracing into `tracer`.
    pub fn register(registry: &Registry, tracer: Tracer) -> IdcTelemetry {
        registry.describe("idc_requests_total", "createReservation calls received");
        registry.describe("idc_admitted_total", "Reservation requests admitted by CSPF");
        registry.describe("idc_blocked_total", "Reservation requests blocked, by reason");
        registry.describe("idc_reservations_active", "Provisioned reservations not yet torn down");
        registry.describe("idc_setup_delay_seconds", "Provision-to-usable circuit setup delay");
        registry.describe(
            "idc_path_utilization",
            "Post-commit peak utilization of the admitted path's bottleneck link",
        );
        IdcTelemetry {
            requests: registry.counter("idc_requests_total", &[]),
            admitted: registry.counter("idc_admitted_total", &[]),
            blocked_invalid: registry
                .counter("idc_blocked_total", &[("reason", "invalid_request")]),
            blocked_no_path: registry
                .counter("idc_blocked_total", &[("reason", "no_feasible_path")]),
            active: registry.gauge("idc_reservations_active", &[]),
            setup_delay: registry.histogram("idc_setup_delay_seconds", &[], Histogram::timing),
            path_utilization: registry.histogram("idc_path_utilization", &[], || {
                // Linear-ish fine buckets over (0, 1.28]: utilization
                // is a ratio, so a shallow growth factor keeps
                // resolution near full.
                Histogram::new(0.01, 1.6, 11)
            }),
            tracer,
            timeline: None,
        }
    }

    /// Attaches a sim-time flight recorder. The IDC lives in exactly
    /// one shard lane, so its calendar-occupancy samples are
    /// shard-invariant by construction.
    #[must_use]
    pub fn with_timeline(mut self, timeline: Option<TimelineHandle>) -> IdcTelemetry {
        self.timeline = timeline;
        self
    }
}

/// Why a reservation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockReason {
    /// Malformed request (empty window, zero rate, same endpoints).
    InvalidRequest(String),
    /// No path with sufficient spare bandwidth over the window.
    NoFeasiblePath,
}

/// Why a signalling operation (provision/teardown) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdcError {
    /// The reservation id is not known to this IDC.
    UnknownReservation(ReservationId),
    /// The reservation's current state does not allow the operation.
    InvalidState(ReservationId, ReservationState),
}

impl std::fmt::Display for IdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdcError::UnknownReservation(id) => write!(f, "unknown reservation {}", id.0),
            IdcError::InvalidState(id, st) => {
                write!(f, "reservation {} cannot be signalled in state {st:?}", id.0)
            }
        }
    }
}

impl std::error::Error for IdcError {}

/// Aggregate admission statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdcStats {
    /// Reservation requests received.
    pub requests: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests blocked.
    pub blocked: u64,
}

impl IdcStats {
    /// Call-blocking probability.
    pub fn blocking_probability(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.blocked as f64 / self.requests as f64
        }
    }
}

/// The circuit scheduler.
///
/// ```
/// use gvc_oscars::{Idc, ReservationRequest, SetupDelayModel};
/// use gvc_engine::SimTime;
/// use gvc_topology::{study_topology, Site};
///
/// let topo = study_topology();
/// let mut idc = Idc::new(topo.graph.clone(), SetupDelayModel::one_minute());
/// let id = idc
///     .create_reservation(ReservationRequest {
///         src: topo.dtn(Site::Nersc),
///         dst: topo.dtn(Site::Ornl),
///         rate_bps: 4e9,
///         start: SimTime::ZERO,
///         end: SimTime::from_secs(3600),
///     })
///     .expect("10 Gbps links have room for 4 Gbps");
/// let ready = idc.provision(id, SimTime::ZERO).expect("scheduled");
/// assert_eq!(ready, SimTime::from_secs(60)); // the deployed 1-min setup
/// ```
pub struct Idc {
    graph: Graph,
    calendar: NetworkCalendar,
    setup: SetupDelayModel,
    /// Fraction of each link's line rate available to circuits.
    reservable_fraction: f64,
    reservations: HashMap<ReservationId, Reservation>,
    next_id: u64,
    stats: IdcStats,
    telemetry: Option<IdcTelemetry>,
    /// Open `circuit.lifetime` spans by reservation id, closed at
    /// teardown. Empty unless a trace sink is attached.
    circuit_spans: BTreeMap<u64, SpanId>,
}

impl Idc {
    /// A controller over `graph` with the given setup-delay model,
    /// allowing circuits up to the full line rate.
    pub fn new(graph: Graph, setup: SetupDelayModel) -> Idc {
        Idc {
            graph,
            calendar: NetworkCalendar::new(),
            setup,
            reservable_fraction: 1.0,
            reservations: HashMap::new(),
            next_id: 0,
            stats: IdcStats::default(),
            telemetry: None,
            circuit_spans: BTreeMap::new(),
        }
    }

    /// Attaches admission/provisioning telemetry.
    pub fn set_telemetry(&mut self, telemetry: IdcTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Caps the reservable fraction of every link (policy headroom).
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    pub fn with_reservable_fraction(mut self, fraction: f64) -> Idc {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        self.reservable_fraction = fraction;
        self
    }

    /// The setup-delay model in force.
    pub fn setup_model(&self) -> SetupDelayModel {
        self.setup
    }

    /// A fresh controller sharing this one's graph, setup model, and
    /// reservable-fraction policy, with an empty calendar and ids
    /// starting at `id_base`.
    ///
    /// Sharded runs hand each lane a fork with a disjoint id range so
    /// lane-issued [`ReservationId`]s never collide in merged output.
    /// The fork's calendar is private: correctness relies on the lane
    /// partition guaranteeing no two lanes reserve on the same links,
    /// so the calendars can never disagree about shared capacity.
    pub fn fork_with_id_base(&self, id_base: u64) -> Idc {
        Idc {
            graph: self.graph.clone(),
            calendar: NetworkCalendar::new(),
            setup: self.setup,
            reservable_fraction: self.reservable_fraction,
            reservations: HashMap::new(),
            next_id: id_base,
            stats: IdcStats::default(),
            telemetry: None,
            circuit_spans: BTreeMap::new(),
        }
    }

    /// Admission statistics so far.
    pub fn stats(&self) -> IdcStats {
        self.stats
    }

    /// Samples calendar occupancy into the timeline at `at`: open
    /// reservation count and the sum of reserved rates. Rates are
    /// summed in reservation-id order so the float total never
    /// depends on hash-map iteration order.
    fn sample_timeline(&self, at: SimTime) {
        let Some(tl) = self.telemetry.as_ref().and_then(|t| t.timeline.as_ref()) else {
            return;
        };
        let mut open: Vec<(u64, f64)> = self
            .reservations
            .values()
            .filter(|r| r.state != ReservationState::Released)
            .map(|r| (r.id.0, r.request.rate_bps))
            .collect();
        open.sort_unstable_by_key(|&(id, _)| id);
        let reserved: f64 = open.iter().map(|&(_, bps)| bps).sum();
        tl.sample(series::OSCARS_OPEN_RESERVATIONS, at.micros(), open.len() as f64);
        tl.sample(series::OSCARS_RESERVED_BPS, at.micros(), reserved);
    }

    /// Processes a `createReservation`: CSPF over calendar
    /// availability; commits the path on success.
    pub fn create_reservation(
        &mut self,
        req: ReservationRequest,
    ) -> Result<ReservationId, BlockReason> {
        self.stats.requests += 1;
        if let Some(t) = &self.telemetry {
            t.requests.inc();
        }
        if let Err(e) = req.validate() {
            self.stats.blocked += 1;
            if let Some(t) = &self.telemetry {
                t.blocked_invalid.inc();
                t.tracer.emit_with(|| {
                    TraceEvent::new(req.start.micros() as i64, "idc.block")
                        .field("reason", "invalid_request")
                        .field("detail", e.as_str())
                        .field("rate_bps", req.rate_bps)
                });
            }
            return Err(BlockReason::InvalidRequest(e));
        }
        let calendar = &self.calendar;
        let graph = &self.graph;
        let frac = self.reservable_fraction;
        let path = constrained_shortest_path(graph, req.src, req.dst, req.rate_bps, |l| {
            calendar.available_bps(l, graph.link(l).capacity_bps * frac, req.start, req.end)
        });
        let Some(path) = path else {
            self.stats.blocked += 1;
            if let Some(t) = &self.telemetry {
                t.blocked_no_path.inc();
                t.tracer.emit_with(|| {
                    TraceEvent::new(req.start.micros() as i64, "idc.block")
                        .field("reason", "no_feasible_path")
                        .field("rate_bps", req.rate_bps)
                        .field("window_s", (req.end - req.start).as_secs_f64())
                });
            }
            return Err(BlockReason::NoFeasiblePath);
        };
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        self.calendar.commit_path(id.0, &path.links, req.start, req.end, req.rate_bps);
        if let Some(t) = &self.telemetry {
            t.admitted.inc();
            // Post-commit utilization of the bottleneck link on the
            // chosen path over the reservation window.
            let util = path
                .links
                .iter()
                .map(|&l| {
                    let cap = self.graph.link(l).capacity_bps * self.reservable_fraction;
                    let committed = self
                        .calendar
                        .link(l)
                        .map_or(0.0, |c| c.peak_committed_bps(req.start, req.end));
                    if cap > 0.0 {
                        committed / cap
                    } else {
                        0.0
                    }
                })
                .fold(0.0, f64::max);
            t.path_utilization.record(util);
            let hops = path.links.len();
            t.tracer.emit_with(|| {
                TraceEvent::new(req.start.micros() as i64, "idc.admit")
                    .field("id", id.0)
                    .field("rate_bps", req.rate_bps)
                    .field("hops", hops)
                    .field("window_s", (req.end - req.start).as_secs_f64())
                    .field("bottleneck_utilization", util)
            });
        }
        self.reservations.insert(
            id,
            Reservation {
                id,
                request: req,
                path,
                state: ReservationState::Scheduled,
                ready_at: None,
            },
        );
        self.stats.admitted += 1;
        self.sample_timeline(req.start);
        Ok(id)
    }

    /// Signals provisioning of a scheduled reservation at `now`
    /// (automatic signalling just before start, or an explicit
    /// `createPath`). Returns the instant the circuit becomes usable
    /// under the setup-delay model.
    ///
    /// # Errors
    /// [`IdcError::UnknownReservation`] when `id` was never admitted,
    /// [`IdcError::InvalidState`] when the reservation is already
    /// active or released.
    pub fn provision(&mut self, id: ReservationId, now: SimTime) -> Result<SimTime, IdcError> {
        let r = self.reservations.get_mut(&id).ok_or(IdcError::UnknownReservation(id))?;
        if !matches!(r.state, ReservationState::Scheduled | ReservationState::Provisioning) {
            return Err(IdcError::InvalidState(id, r.state));
        }
        let ready = self.setup.ready_at(now).max(r.request.start);
        r.state = ReservationState::Active;
        r.ready_at = Some(ready);
        if let Some(t) = &self.telemetry {
            t.active.add(1);
            t.setup_delay.record((ready - now).as_secs_f64());
            t.tracer.emit_with(|| {
                TraceEvent::new(now.micros() as i64, "idc.provision")
                    .field("id", id.0)
                    .field("setup_s", (ready - now).as_secs_f64())
            });
            // The circuit's whole life as a span (closed at teardown)
            // with the signalling delay as a child. The setup child's
            // end is known now, so it closes immediately at a future
            // timestamp — offline consumers sort by time.
            let circuit = t.tracer.span_enter_with(
                SpanId::NONE,
                now.micros() as i64,
                "circuit.lifetime",
                |ev| ev.field("reservation", id.0),
            );
            let setup = t.tracer.span_enter_with(circuit, now.micros() as i64, "idc.setup", |ev| {
                ev.field("reservation", id.0).field("setup_s", (ready - now).as_secs_f64())
            });
            t.tracer.span_exit(setup, ready.micros() as i64);
            if !circuit.is_none() {
                self.circuit_spans.insert(id.0, circuit);
            }
        }
        Ok(ready)
    }

    /// Tears a reservation down at `now`, releasing its remaining
    /// calendar window. Tearing down an already-released reservation
    /// is a no-op (teardown is idempotent).
    ///
    /// # Errors
    /// [`IdcError::UnknownReservation`] when `id` was never admitted.
    pub fn teardown(&mut self, id: ReservationId, now: SimTime) -> Result<(), IdcError> {
        let r = self.reservations.get_mut(&id).ok_or(IdcError::UnknownReservation(id))?;
        if r.state == ReservationState::Released {
            return Ok(());
        }
        let was_active = r.state == ReservationState::Active;
        r.state = ReservationState::Released;
        self.calendar.release_path(id.0, &r.path.links.clone(), now);
        if let Some(t) = &self.telemetry {
            if was_active {
                t.active.add(-1);
            }
            t.tracer.emit_with(|| {
                TraceEvent::new(now.micros() as i64, "idc.teardown").field("id", id.0)
            });
            if let Some(span) = self.circuit_spans.remove(&id.0) {
                t.tracer.span_exit(span, now.micros() as i64);
            }
        }
        self.sample_timeline(now);
        Ok(())
    }

    /// The reservation record.
    pub fn reservation(&self, id: ReservationId) -> Option<&Reservation> {
        self.reservations.get(&id)
    }

    /// Admitted reservations not yet released (Scheduled,
    /// Provisioning, or Active). The resilience harness asserts this
    /// reaches zero after every fault plan: anything else is a leaked
    /// reservation still holding calendar capacity.
    pub fn open_reservations(&self) -> usize {
        self.reservations.values().filter(|r| r.state != ReservationState::Released).count()
    }

    /// Spare reservable bandwidth between two endpoints over a window
    /// (what a client could still get).
    pub fn probe_available_bps(&self, req: ReservationRequest) -> f64 {
        // Binary-search the admissible rate via CSPF feasibility.
        let (mut lo, mut hi) = (
            0.0f64,
            self.graph.links().iter().map(|l| l.capacity_bps).fold(0.0, f64::max)
                * self.reservable_fraction,
        );
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            let feasible = constrained_shortest_path(&self.graph, req.src, req.dst, mid, |l| {
                self.calendar.available_bps(
                    l,
                    self.graph.link(l).capacity_bps * self.reservable_fraction,
                    req.start,
                    req.end,
                )
            })
            .is_some();
            if feasible {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_topology::{study_topology, Site};

    fn idc() -> (Idc, ReservationRequest) {
        let t = study_topology();
        let req = ReservationRequest {
            src: t.dtn(Site::Nersc),
            dst: t.dtn(Site::Ornl),
            rate_bps: 4e9,
            start: SimTime::from_secs(0),
            end: SimTime::from_secs(3600),
        };
        (Idc::new(t.graph, SetupDelayModel::one_minute()), req)
    }

    #[test]
    fn admit_then_block_when_full() {
        let (mut idc, req) = idc();
        // 10 G links: two 4 G circuits fit, the third is blocked.
        assert!(idc.create_reservation(req).is_ok());
        assert!(idc.create_reservation(req).is_ok());
        assert_eq!(idc.create_reservation(req), Err(BlockReason::NoFeasiblePath));
        let s = idc.stats();
        assert_eq!((s.requests, s.admitted, s.blocked), (3, 2, 1));
        assert!((s.blocking_probability() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_windows_do_not_compete() {
        let (mut idc, mut req) = idc();
        req.rate_bps = 8e9;
        assert!(idc.create_reservation(req).is_ok());
        // Same rate later in time: fine.
        req.start = SimTime::from_secs(3600);
        req.end = SimTime::from_secs(7200);
        assert!(idc.create_reservation(req).is_ok());
    }

    #[test]
    fn teardown_releases_capacity() {
        let (mut idc, mut req) = idc();
        req.rate_bps = 8e9;
        let id = idc.create_reservation(req).unwrap();
        assert_eq!(idc.create_reservation(req), Err(BlockReason::NoFeasiblePath));
        idc.teardown(id, SimTime::from_secs(10)).unwrap();
        // Remaining window [10, 3600) is free again.
        let mut later = req;
        later.start = SimTime::from_secs(10);
        assert!(idc.create_reservation(later).is_ok());
    }

    #[test]
    fn invalid_request_blocked_with_reason() {
        let (mut idc, mut req) = idc();
        req.rate_bps = -1.0;
        match idc.create_reservation(req) {
            Err(BlockReason::InvalidRequest(_)) => {}
            other => panic!("expected invalid request, got {other:?}"),
        }
        assert_eq!(idc.stats().blocked, 1);
    }

    #[test]
    fn provisioning_sets_ready_per_model() {
        let (mut idc, req) = idc();
        let id = idc.create_reservation(req).unwrap();
        let ready = idc.provision(id, SimTime::from_secs(0)).unwrap();
        assert_eq!(ready, SimTime::from_secs(60));
        let r = idc.reservation(id).unwrap();
        assert_eq!(r.state, ReservationState::Active);
        assert!(r.usable_at(SimTime::from_secs(60)));
        assert!(!r.usable_at(SimTime::from_secs(59)));
    }

    #[test]
    fn ready_never_precedes_window_start() {
        let (mut idc, mut req) = idc();
        req.start = SimTime::from_secs(1000);
        req.end = SimTime::from_secs(2000);
        let id = idc.create_reservation(req).unwrap();
        // Provisioned early: usable only from the window start.
        let ready = idc.provision(id, SimTime::from_secs(0)).unwrap();
        assert_eq!(ready, SimTime::from_secs(1000));
    }

    #[test]
    fn reservable_fraction_policy() {
        let t = study_topology();
        let req = ReservationRequest {
            src: t.dtn(Site::Slac),
            dst: t.dtn(Site::Bnl),
            rate_bps: 6e9,
            start: SimTime::ZERO,
            end: SimTime::from_secs(60),
        };
        let mut idc = Idc::new(t.graph, SetupDelayModel::hardware()).with_reservable_fraction(0.5);
        // 6 G > 50 % of 10 G: blocked.
        assert_eq!(idc.create_reservation(req), Err(BlockReason::NoFeasiblePath));
        let mut ok = req;
        ok.rate_bps = 4e9;
        assert!(idc.create_reservation(ok).is_ok());
    }

    #[test]
    fn probe_tracks_committed_bandwidth() {
        let (mut idc, req) = idc();
        let free0 = idc.probe_available_bps(req);
        assert!((free0 - 10e9).abs() < 1e7, "{free0}");
        idc.create_reservation(req).unwrap();
        let free1 = idc.probe_available_bps(req);
        assert!((free1 - 6e9).abs() < 1e7, "{free1}");
    }

    #[test]
    fn telemetry_tracks_admissions_and_lifecycle() {
        use gvc_telemetry::RingSink;
        let (mut i, req) = idc();
        let reg = Registry::new();
        let ring = Arc::new(RingSink::new(64));
        i.set_telemetry(IdcTelemetry::register(&reg, Tracer::to_sink(ring.clone())));

        let a = i.create_reservation(req).unwrap();
        let _b = i.create_reservation(req).unwrap();
        assert!(i.create_reservation(req).is_err());
        let mut bad = req;
        bad.rate_bps = 0.0;
        assert!(i.create_reservation(bad).is_err());

        i.provision(a, SimTime::ZERO).unwrap();
        i.teardown(a, SimTime::from_secs(30)).unwrap();

        assert_eq!(reg.counter("idc_requests_total", &[]).get(), 4);
        assert_eq!(reg.counter("idc_admitted_total", &[]).get(), 2);
        assert_eq!(reg.counter("idc_blocked_total", &[("reason", "no_feasible_path")]).get(), 1);
        assert_eq!(reg.counter("idc_blocked_total", &[("reason", "invalid_request")]).get(), 1);
        assert_eq!(reg.gauge("idc_reservations_active", &[]).get(), 0);
        let setup = reg
            .histogram("idc_setup_delay_seconds", &[], gvc_telemetry::Histogram::timing)
            .snapshot();
        assert_eq!(setup.count(), 1);
        assert!((setup.sum() - 60.0).abs() < 1e-9, "one-minute model");

        let kinds: Vec<&str> = ring.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                "idc.admit",
                "idc.admit",
                "idc.block",
                "idc.block",
                "idc.provision",
                "span.start", // circuit.lifetime opens at provision
                "span.start", // idc.setup child ...
                "span.end",   // ... closes at ready (future timestamp)
                "idc.teardown",
                "span.end", // circuit.lifetime closes at teardown
            ]
        );
        let jsons: Vec<String> =
            ring.events().iter().map(gvc_telemetry::TraceEvent::to_json).collect();
        assert!(
            jsons[5].contains("\"name\":\"circuit.lifetime\"")
                && jsons[5].contains("\"reservation\":0"),
            "{}",
            jsons[5]
        );
        assert!(jsons[6].contains("\"name\":\"idc.setup\""), "{}", jsons[6]);
        assert_eq!(ring.events()[7].t_us, 60_000_000, "setup span ends at ready");
        assert_eq!(ring.events()[9].t_us, 30_000_000, "circuit span ends at teardown");
        // Second admit on the same window fills the path to capacity.
        let util =
            reg.histogram("idc_path_utilization", &[], || Histogram::new(0.01, 1.6, 11)).snapshot();
        assert_eq!(util.count(), 2);
    }

    #[test]
    fn timeline_samples_calendar_occupancy() {
        use gvc_telemetry::{TimelineDoc, TimelineHandle};
        let (mut i, req) = idc();
        let reg = Registry::new();
        let tl = TimelineHandle::new(30_000_000);
        i.set_telemetry(
            IdcTelemetry::register(&reg, Tracer::disabled()).with_timeline(Some(tl.clone())),
        );
        let a = i.create_reservation(req).unwrap();
        let _b = i.create_reservation(req).unwrap();
        i.teardown(a, SimTime::from_secs(45)).unwrap();

        let doc = TimelineDoc::parse(&tl.to_json()).expect("parse");
        let series_by = |name: &str| {
            doc.series.iter().find(|s| s.name == name).unwrap_or_else(|| panic!("{name} missing"))
        };
        let open = series_by("oscars.open_reservations");
        // Two admits in window 0 (1 then 2 open), teardown in window 1.
        assert_eq!(open.windows[0].get("max"), Some(2.0));
        assert_eq!(open.windows[0].get("n"), Some(2.0));
        assert_eq!(open.windows[1].get("max"), Some(1.0));
        let bps = series_by("oscars.reserved_bps");
        assert_eq!(bps.windows[0].get("max"), Some(8e9));
        assert_eq!(bps.windows[1].get("max"), Some(4e9));
    }

    #[test]
    fn double_teardown_is_idempotent() {
        let (mut idc, req) = idc();
        let id = idc.create_reservation(req).unwrap();
        idc.teardown(id, SimTime::from_secs(5)).unwrap();
        idc.teardown(id, SimTime::from_secs(6)).unwrap();
        assert_eq!(idc.reservation(id).unwrap().state, ReservationState::Released);
    }

    #[test]
    fn double_teardown_does_not_double_release_capacity() {
        // Regression: the second (idempotent) teardown must not touch
        // the calendar again — releasing twice would free capacity a
        // concurrent reservation legitimately holds.
        let (mut idc, mut req) = idc();
        req.rate_bps = 6e9;
        let a = idc.create_reservation(req).unwrap();
        let b = idc.create_reservation(ReservationRequest { rate_bps: 4e9, ..req }).unwrap();
        idc.teardown(a, SimTime::from_secs(5)).unwrap();
        idc.teardown(a, SimTime::from_secs(6)).unwrap();
        // b still holds 4 G: a 7 G request over the same window must
        // not fit (10 G links), which it would if a's release ran
        // twice against b's commitment.
        let mut probe = req;
        probe.rate_bps = 7e9;
        probe.start = SimTime::from_secs(10);
        assert_eq!(idc.create_reservation(probe), Err(BlockReason::NoFeasiblePath));
        assert_eq!(idc.reservation(b).unwrap().state, ReservationState::Scheduled);
    }

    #[test]
    fn signalling_unknown_reservation_errors() {
        let (mut idc, req) = idc();
        let _ = idc.create_reservation(req).unwrap();
        let ghost = ReservationId(999);
        assert_eq!(idc.teardown(ghost, SimTime::ZERO), Err(IdcError::UnknownReservation(ghost)));
        assert_eq!(idc.provision(ghost, SimTime::ZERO), Err(IdcError::UnknownReservation(ghost)));
    }

    #[test]
    fn provision_after_teardown_is_invalid_state() {
        // Regression for the recovery path: a retry loop must never be
        // able to resurrect a reservation it already tore down.
        let (mut idc, req) = idc();
        let id = idc.create_reservation(req).unwrap();
        idc.teardown(id, SimTime::from_secs(1)).unwrap();
        assert_eq!(
            idc.provision(id, SimTime::from_secs(2)),
            Err(IdcError::InvalidState(id, ReservationState::Released))
        );
    }

    #[test]
    fn double_provision_is_invalid_state() {
        let (mut idc, req) = idc();
        let id = idc.create_reservation(req).unwrap();
        idc.provision(id, SimTime::ZERO).unwrap();
        assert_eq!(
            idc.provision(id, SimTime::from_secs(1)),
            Err(IdcError::InvalidState(id, ReservationState::Active))
        );
    }

    #[test]
    fn fork_shares_policy_but_not_state() {
        let (mut idc, req) = idc();
        idc.create_reservation(req).unwrap();
        let mut lane = idc.fork_with_id_base(1u64 << 32);
        // Fresh calendar: the fork admits as if nothing were committed.
        let id = lane.create_reservation(req).unwrap();
        assert_eq!(id, ReservationId(1u64 << 32), "ids start at the base");
        assert_eq!(lane.stats(), IdcStats { requests: 1, admitted: 1, blocked: 0 });
        assert_eq!(lane.setup_model(), idc.setup_model());
        assert_eq!(idc.stats().requests, 1, "parent untouched");
        assert_eq!(lane.open_reservations(), 1);
    }

    #[test]
    fn open_reservations_tracks_lifecycle() {
        let (mut idc, req) = idc();
        assert_eq!(idc.open_reservations(), 0);
        let a = idc.create_reservation(req).unwrap();
        let b = idc.create_reservation(req).unwrap();
        assert_eq!(idc.open_reservations(), 2);
        idc.provision(a, SimTime::ZERO).unwrap();
        assert_eq!(idc.open_reservations(), 2);
        idc.teardown(a, SimTime::from_secs(5)).unwrap();
        assert_eq!(idc.open_reservations(), 1);
        idc.teardown(b, SimTime::from_secs(5)).unwrap();
        assert_eq!(idc.open_reservations(), 0);
        // Idempotent teardown does not underflow the count.
        idc.teardown(b, SimTime::from_secs(6)).unwrap();
        assert_eq!(idc.open_reservations(), 0);
    }
}
