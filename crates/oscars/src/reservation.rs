//! Reservation lifecycle types.

use gvc_engine::SimTime;
use gvc_topology::{NodeId, Path};

/// Identifier assigned by the IDC to an admitted reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReservationId(pub u64);

/// A `createReservation` message (§IV: startTime, endTime, bandwidth,
/// circuit endpoint addresses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReservationRequest {
    /// Circuit ingress endpoint.
    pub src: NodeId,
    /// Circuit egress endpoint.
    pub dst: NodeId,
    /// Requested guaranteed rate, bps.
    pub rate_bps: f64,
    /// Scheduled start.
    pub start: SimTime,
    /// Scheduled end.
    pub end: SimTime,
}

impl ReservationRequest {
    /// Validates the request's internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.rate_bps <= 0.0 {
            return Err("rate must be positive".into());
        }
        if self.end <= self.start {
            return Err("window must be non-empty".into());
        }
        if self.src == self.dst {
            return Err("endpoints must differ".into());
        }
        Ok(())
    }
}

/// Lifecycle states of an admitted reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationState {
    /// Admitted, waiting for its start time.
    Scheduled,
    /// Provisioning signalled; circuit not yet usable.
    Provisioning,
    /// Circuit up and carrying traffic.
    Active,
    /// Torn down (explicitly or at window end).
    Released,
}

/// An admitted reservation with its selected path.
#[derive(Debug, Clone)]
pub struct Reservation {
    /// The IDC-assigned id.
    pub id: ReservationId,
    /// The original request.
    pub request: ReservationRequest,
    /// The CSPF-selected path.
    pub path: Path,
    /// Current lifecycle state.
    pub state: ReservationState,
    /// When the circuit became usable (set on activation).
    pub ready_at: Option<SimTime>,
}

impl Reservation {
    /// True while the circuit can carry traffic at instant `t`.
    pub fn usable_at(&self, t: SimTime) -> bool {
        self.state == ReservationState::Active
            && self.ready_at.is_some_and(|r| t >= r)
            && t < self.request.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvc_topology::{Graph, NodeKind};

    fn req(rate: f64, s: u64, e: u64) -> ReservationRequest {
        ReservationRequest {
            src: NodeId(0),
            dst: NodeId(1),
            rate_bps: rate,
            start: SimTime::from_secs(s),
            end: SimTime::from_secs(e),
        }
    }

    #[test]
    fn validation() {
        assert!(req(1e9, 0, 10).validate().is_ok());
        assert!(req(0.0, 0, 10).validate().is_err());
        assert!(req(1e9, 10, 10).validate().is_err());
        let mut same = req(1e9, 0, 10);
        same.dst = same.src;
        assert!(same.validate().is_err());
    }

    #[test]
    fn usability_window() {
        let mut g = Graph::new();
        let a = g.add_node("a", NodeKind::Host);
        let b = g.add_node("b", NodeKind::Host);
        let l = g.add_link(a, b, 1e10, 0.01);
        let mut r = Reservation {
            id: ReservationId(1),
            request: req(1e9, 0, 100),
            path: Path::new(&g, a, b, vec![l]),
            state: ReservationState::Scheduled,
            ready_at: None,
        };
        assert!(!r.usable_at(SimTime::from_secs(10)));
        r.state = ReservationState::Active;
        r.ready_at = Some(SimTime::from_secs(60));
        assert!(!r.usable_at(SimTime::from_secs(30)));
        assert!(r.usable_at(SimTime::from_secs(60)));
        assert!(r.usable_at(SimTime::from_secs(99)));
        assert!(!r.usable_at(SimTime::from_secs(100)));
    }
}
