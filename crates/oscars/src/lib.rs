//! OSCARS-style dynamic virtual-circuit service.
//!
//! §IV of the paper describes the ESnet OSCARS Inter-Domain Controller
//! (IDC): users send `createReservation` with start time, end time,
//! bandwidth and endpoints; the IDC admits or blocks the request
//! against its per-link advance-reservation calendar, selects a path,
//! and provisions the circuit at the scheduled start — with a setup
//! delay that is "minimally 1 min" in the deployed implementation
//! (requests are batched per minute) and could be ~50 ms were setup
//! processing implemented in hardware. Both delay models are
//! first-class here because Table IV's feasibility percentages are
//! computed under both.
//!
//! * [`calendar`] — per-link piecewise bandwidth commitments over time;
//! * [`setup`] — the setup-delay models (fixed, batched);
//! * [`reservation`] — request/reservation lifecycle types;
//! * [`idc`] — the controller: CSPF admission, provisioning,
//!   teardown, blocking statistics.

pub mod calendar;
pub mod idc;
pub mod interdomain;
pub mod reservation;
pub mod setup;

pub use calendar::{LinkCalendar, NetworkCalendar};
pub use idc::{BlockReason, Idc, IdcError, IdcStats, IdcTelemetry};
pub use interdomain::{
    AttemptFailure, CircuitResult, Domain, InterDomainBlock, InterDomainCircuit,
    InterDomainController, RecoveryOutcome,
};
pub use reservation::{Reservation, ReservationId, ReservationRequest, ReservationState};
pub use setup::SetupDelayModel;
