//! Inter-domain circuit setup (IDCP-style chaining).
//!
//! §II: "the phone service allows for users to request circuits to
//! customers of other providers, i.e., inter-domain service is
//! supported. Commercial high-speed optical dynamic circuit services
//! are currently only intra-domain, but REN providers are
//! experimenting with inter-domain service" — via the Inter-Domain
//! Controller Protocol (IDCP) that ESnet and Internet2 deploy, and the
//! DYNES build-out in campus/regional networks.
//!
//! The model: each provider domain runs its own [`Idc`] over its own
//! subgraph; domains meet at named gateway nodes. An end-to-end
//! request is decomposed along a domain-level route into per-domain
//! segment reservations, admitted atomically (all-or-nothing, with
//! rollback of already-admitted segments on failure). Setup is
//! signalled domain by domain, so the end-to-end ready time is the
//! *latest* segment ready time — chaining 1-minute batched IDCs does
//! not add minutes, but one slow domain gates the whole circuit.

use crate::idc::{BlockReason, Idc};
use crate::reservation::{ReservationId, ReservationRequest};
use gvc_engine::{SimSpan, SimTime};
use gvc_faults::{FaultInjector, FaultKind, FaultTelemetry, RecoveryAction, RecoveryPolicy};
use gvc_telemetry::{SpanId, TraceEvent};
use gvc_topology::NodeId;
use std::collections::HashMap;

/// A provider domain: an IDC plus the gateways it shares with
/// neighbours.
pub struct Domain {
    /// Provider name (e.g. `"esnet"`, `"internet2"`).
    pub name: String,
    /// The domain's scheduler over its own topology.
    pub idc: Idc,
    /// Nodes of this domain's graph that terminate inter-domain
    /// hand-offs, keyed by the *global* gateway label shared with the
    /// neighbour.
    pub gateways: HashMap<String, NodeId>,
    /// Nodes of this domain's graph that host customer endpoints,
    /// keyed by a global endpoint label.
    pub endpoints: HashMap<String, NodeId>,
}

/// One admitted end-to-end circuit: the per-domain segments in path
/// order.
#[derive(Debug, Clone)]
pub struct InterDomainCircuit {
    /// `(domain index, reservation id)` per segment.
    pub segments: Vec<(usize, ReservationId)>,
    /// When the whole circuit is usable (max of segment ready times).
    pub ready_at: SimTime,
}

/// Why an end-to-end request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum InterDomainBlock {
    /// No domain-level route between the endpoints.
    NoDomainRoute,
    /// A specific domain blocked its segment.
    SegmentBlocked {
        /// The blocking domain's name.
        domain: String,
        /// Its reason.
        reason: BlockReason,
    },
}

/// The inter-domain controller: a chain-of-domains coordinator.
pub struct InterDomainController {
    domains: Vec<Domain>,
}

impl InterDomainController {
    /// A controller over the given domains.
    pub fn new(domains: Vec<Domain>) -> InterDomainController {
        InterDomainController { domains }
    }

    /// Immutable access to the domains.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Finds the domain hosting a global endpoint label.
    fn endpoint_domain(&self, label: &str) -> Option<(usize, NodeId)> {
        self.domains.iter().enumerate().find_map(|(i, d)| d.endpoints.get(label).map(|&n| (i, n)))
    }

    /// Domain-level route by breadth-first search over shared gateway
    /// labels. Returns per-domain `(domain_ix, entry_node, exit_node)`
    /// hops: `entry` is the endpoint or ingress gateway, `exit` the
    /// egress gateway or endpoint.
    fn domain_route(
        &self,
        src_label: &str,
        dst_label: &str,
    ) -> Option<Vec<(usize, NodeId, NodeId)>> {
        let (src_dom, src_node) = self.endpoint_domain(src_label)?;
        let (dst_dom, dst_node) = self.endpoint_domain(dst_label)?;
        if src_dom == dst_dom {
            return Some(vec![(src_dom, src_node, dst_node)]);
        }
        // BFS over domains connected by shared gateway labels.
        let mut prev: HashMap<usize, (usize, String)> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([src_dom]);
        let mut seen = std::collections::HashSet::from([src_dom]);
        'bfs: while let Some(d) = queue.pop_front() {
            for label in self.domains[d].gateways.keys() {
                for (e, other) in self.domains.iter().enumerate() {
                    if e != d && !seen.contains(&e) && other.gateways.contains_key(label) {
                        seen.insert(e);
                        prev.insert(e, (d, label.clone()));
                        if e == dst_dom {
                            break 'bfs;
                        }
                        queue.push_back(e);
                    }
                }
            }
        }
        if !prev.contains_key(&dst_dom) {
            return None;
        }
        // Reconstruct the domain chain with gateway labels.
        let mut chain = vec![dst_dom];
        let mut labels = Vec::new();
        let mut at = dst_dom;
        while at != src_dom {
            let (p, label) = prev.get(&at)?.clone();
            labels.push(label);
            chain.push(p);
            at = p;
        }
        chain.reverse();
        labels.reverse();
        // Build hops: entry of first domain is the src endpoint; exits
        // are the shared gateways; entry of each next domain is its
        // copy of the same gateway label.
        let mut hops = Vec::with_capacity(chain.len());
        let mut entry = src_node;
        for (i, &dom) in chain.iter().enumerate() {
            let exit = if i + 1 < chain.len() {
                *self.domains[dom].gateways.get(&labels[i])?
            } else {
                dst_node
            };
            hops.push((dom, entry, exit));
            if i + 1 < chain.len() {
                entry = *self.domains[chain[i + 1]].gateways.get(&labels[i])?;
            }
        }
        Some(hops)
    }

    /// Requests an end-to-end circuit between two global endpoint
    /// labels. Admits all segments or none.
    pub fn create_circuit(
        &mut self,
        src_label: &str,
        dst_label: &str,
        rate_bps: f64,
        start: SimTime,
        end: SimTime,
        now: SimTime,
    ) -> Result<InterDomainCircuit, InterDomainBlock> {
        let hops =
            self.domain_route(src_label, dst_label).ok_or(InterDomainBlock::NoDomainRoute)?;

        let mut segments: Vec<(usize, ReservationId)> = Vec::with_capacity(hops.len());
        for (dom, entry, exit) in &hops {
            let req = ReservationRequest { src: *entry, dst: *exit, rate_bps, start, end };
            match self.domains[*dom].idc.create_reservation(req) {
                Ok(id) => segments.push((*dom, id)),
                Err(reason) => {
                    // Roll back everything admitted so far. The
                    // segments were admitted above, so teardown of
                    // each is infallible here.
                    for (d, id) in segments {
                        let _ = self.domains[d].idc.teardown(id, now);
                    }
                    return Err(InterDomainBlock::SegmentBlocked {
                        domain: self.domains[*dom].name.clone(),
                        reason,
                    });
                }
            }
        }

        // Signal provisioning in every domain; the circuit is usable
        // when the slowest segment is.
        let mut ready_at = start;
        for (d, id) in &segments {
            // Freshly admitted above, so provisioning succeeds; a
            // hypothetical failure just leaves `ready_at` at the
            // slowest successfully signalled segment.
            if let Ok(r) = self.domains[*d].idc.provision(*id, now) {
                ready_at = ready_at.max(r);
            }
        }
        Ok(InterDomainCircuit { segments, ready_at })
    }

    /// Tears an end-to-end circuit down in every domain.
    pub fn teardown(&mut self, circuit: &InterDomainCircuit, now: SimTime) {
        for (d, id) in &circuit.segments {
            let _ = self.domains[*d].idc.teardown(*id, now);
        }
    }

    /// Total reservations still open across every domain (leak check
    /// for the resilience harness).
    pub fn open_reservations(&self) -> usize {
        self.domains.iter().map(|d| d.idc.open_reservations()).sum()
    }

    /// [`Self::create_circuit`] under a recovery policy: injected
    /// signalling failures and setup timeouts (plus genuine admission
    /// blocks) are retried with the policy's backoff, and exhausting
    /// the budget falls back to the routed IP path when the policy
    /// allows. Every failed attempt tears its partial circuit down —
    /// no attempt ever leaks a reservation.
    ///
    /// Waiting is virtual: the returned outcome's `finished_at` is
    /// `now` plus all backoff delays spent, which callers fold into
    /// their own clocks.
    #[allow(clippy::too_many_arguments)]
    pub fn create_circuit_with_recovery(
        &mut self,
        src_label: &str,
        dst_label: &str,
        rate_bps: f64,
        start: SimTime,
        end: SimTime,
        now: SimTime,
        policy: &RecoveryPolicy,
        injector: &mut FaultInjector,
        telemetry: &FaultTelemetry,
    ) -> RecoveryOutcome {
        let seed = injector.plan().seed;
        let mut at = now;
        let mut attempts = 0u32;
        // The whole establishment sequence as one span, each attempt
        // and each backoff wait as children.
        let chain = telemetry.tracer.span_enter_with(
            SpanId::NONE,
            now.micros() as i64,
            "idc.interdomain",
            |ev| ev.field("rate_bps", rate_bps),
        );
        loop {
            attempts += 1;
            let attempt_span =
                telemetry.tracer.span_enter_with(chain, at.micros() as i64, "idc.attempt", |ev| {
                    ev.field("attempt", u64::from(attempts))
                });
            let fault = injector.provision_fault();
            let result = self.create_circuit(src_label, dst_label, rate_bps, start, end, at);
            let failure = match (fault, result) {
                (None, Ok(circuit)) => {
                    let late = (circuit.ready_at - at).as_secs_f64() > policy.setup_deadline_s;
                    if late {
                        // A genuine (non-injected) setup timeout: the
                        // chain answered too slowly to be useful.
                        self.teardown(&circuit, at);
                        AttemptFailure::Fault(FaultKind::SetupTimeout)
                    } else {
                        telemetry.recovery_latency.record((at - now).as_secs_f64());
                        telemetry.tracer.emit_with(|| {
                            TraceEvent::new(at.micros() as i64, "recovery.established")
                                .field("attempts", u64::from(attempts))
                                .field("waited_s", (at - now).as_secs_f64())
                        });
                        telemetry.tracer.span_exit(attempt_span, at.micros() as i64);
                        telemetry.tracer.span_exit_with(chain, at.micros() as i64, |ev| {
                            ev.field("outcome", "established")
                        });
                        return RecoveryOutcome {
                            result: CircuitResult::Established(circuit),
                            attempts,
                            finished_at: at,
                        };
                    }
                }
                (Some(kind), result) => {
                    // Injected fault. If admission succeeded underneath
                    // the failed signalling exchange, release it — the
                    // provider side admitted state the client never
                    // learned about.
                    if let Ok(circuit) = result {
                        self.teardown(&circuit, at);
                    }
                    telemetry.count_injected(kind);
                    telemetry.tracer.emit_with(|| {
                        TraceEvent::new(at.micros() as i64, "fault.injected")
                            .field("fault", kind.as_str())
                            .field("attempt", u64::from(attempts))
                    });
                    AttemptFailure::Fault(kind)
                }
                (None, Err(block)) => AttemptFailure::Blocked(block),
            };

            match policy.decide(seed, attempts) {
                RecoveryAction::Retry { delay_s_micros } => {
                    telemetry.retries.inc();
                    telemetry.tracer.emit_with(|| {
                        TraceEvent::new(at.micros() as i64, "recovery.retry")
                            .field("attempt", u64::from(attempts))
                            .field("delay_s", delay_s_micros as f64 / 1e6)
                    });
                    telemetry.tracer.span_exit(attempt_span, at.micros() as i64);
                    let backoff =
                        telemetry.tracer.span_enter(chain, at.micros() as i64, "idc.backoff");
                    at += SimSpan(delay_s_micros as i64);
                    telemetry.tracer.span_exit(backoff, at.micros() as i64);
                }
                RecoveryAction::FallbackToIp => {
                    telemetry.fallback_ip.inc();
                    telemetry.recovery_latency.record((at - now).as_secs_f64());
                    telemetry.tracer.emit_with(|| {
                        TraceEvent::new(at.micros() as i64, "recovery.fallback")
                            .field("attempts", u64::from(attempts))
                    });
                    telemetry.tracer.span_exit(attempt_span, at.micros() as i64);
                    telemetry.tracer.span_exit_with(chain, at.micros() as i64, |ev| {
                        ev.field("outcome", "fallback_ip")
                    });
                    return RecoveryOutcome {
                        result: CircuitResult::FellBack(failure),
                        attempts,
                        finished_at: at,
                    };
                }
                RecoveryAction::GiveUp => {
                    telemetry.recovery_latency.record((at - now).as_secs_f64());
                    telemetry.tracer.emit_with(|| {
                        TraceEvent::new(at.micros() as i64, "recovery.giveup")
                            .field("attempts", u64::from(attempts))
                    });
                    telemetry.tracer.span_exit(attempt_span, at.micros() as i64);
                    telemetry.tracer.span_exit_with(chain, at.micros() as i64, |ev| {
                        ev.field("outcome", "giveup")
                    });
                    return RecoveryOutcome {
                        result: CircuitResult::Abandoned(failure),
                        attempts,
                        finished_at: at,
                    };
                }
            }
        }
    }
}

/// Why one establishment attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptFailure {
    /// An injected fault (or a genuine setup timeout).
    Fault(FaultKind),
    /// The admission chain itself blocked the request.
    Blocked(InterDomainBlock),
}

/// Terminal result of a recovered establishment sequence.
#[derive(Debug, Clone)]
pub enum CircuitResult {
    /// The circuit came up.
    Established(InterDomainCircuit),
    /// Retries exhausted; the transfer should run over routed IP.
    FellBack(AttemptFailure),
    /// Retries exhausted and the policy forbids fallback.
    Abandoned(AttemptFailure),
}

/// What [`InterDomainController::create_circuit_with_recovery`]
/// reports back.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Established, fell back, or abandoned.
    pub result: CircuitResult,
    /// Establishment attempts made (≤ the policy's budget).
    pub attempts: u32,
    /// `now` plus all backoff waits spent.
    pub finished_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SetupDelayModel;
    use gvc_topology::{Graph, NodeKind};

    /// Two line domains joined at a gateway, plus a third stub domain.
    ///
    /// esnet:    ep-a -- r1 -- gw-x
    /// internet2: gw-x -- r2 -- ep-b
    /// regional:  gw-y -- ep-c   (not connected to the others)
    fn controller(capacity_bps: f64) -> InterDomainController {
        let mk_domain = |_name: &str,
                         nodes: &[(&str, NodeKind)],
                         links: &[(usize, usize)]|
         -> (Graph, Vec<NodeId>) {
            let mut g = Graph::new();
            let ids: Vec<NodeId> = nodes.iter().map(|(n, k)| g.add_node(n, *k)).collect();
            for &(a, b) in links {
                g.add_duplex_link(ids[a], ids[b], capacity_bps, 0.005);
            }
            (g, ids)
        };

        let (g1, n1) = mk_domain(
            "esnet",
            &[("ep-a", NodeKind::Host), ("r1", NodeKind::Router), ("gw-x", NodeKind::Router)],
            &[(0, 1), (1, 2)],
        );
        let (g2, n2) = mk_domain(
            "internet2",
            &[("gw-x", NodeKind::Router), ("r2", NodeKind::Router), ("ep-b", NodeKind::Host)],
            &[(0, 1), (1, 2)],
        );
        let (g3, n3) = mk_domain(
            "regional",
            &[("gw-y", NodeKind::Router), ("ep-c", NodeKind::Host)],
            &[(0, 1)],
        );

        InterDomainController::new(vec![
            Domain {
                name: "esnet".into(),
                idc: Idc::new(g1, SetupDelayModel::one_minute()),
                gateways: HashMap::from([("gw-x".to_string(), n1[2])]),
                endpoints: HashMap::from([("ep-a".to_string(), n1[0])]),
            },
            Domain {
                name: "internet2".into(),
                idc: Idc::new(g2, SetupDelayModel::hardware()),
                gateways: HashMap::from([("gw-x".to_string(), n2[0])]),
                endpoints: HashMap::from([("ep-b".to_string(), n2[2])]),
            },
            Domain {
                name: "regional".into(),
                idc: Idc::new(g3, SetupDelayModel::hardware()),
                gateways: HashMap::from([("gw-y".to_string(), n3[0])]),
                endpoints: HashMap::from([("ep-c".to_string(), n3[1])]),
            },
        ])
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn two_domain_circuit_admitted_with_max_setup_delay() {
        let mut c = controller(10e9);
        let circuit = c.create_circuit("ep-a", "ep-b", 4e9, t(0), t(3600), t(0)).expect("admitted");
        assert_eq!(circuit.segments.len(), 2);
        // esnet uses 1-min batching, internet2 hardware: the chain is
        // gated by esnet's 60 s.
        assert_eq!(circuit.ready_at, t(60));
    }

    #[test]
    fn unreachable_domain_is_no_route() {
        let mut c = controller(10e9);
        assert!(matches!(
            c.create_circuit("ep-a", "ep-c", 1e9, t(0), t(10), t(0)),
            Err(InterDomainBlock::NoDomainRoute)
        ));
        assert!(matches!(
            c.create_circuit("ep-a", "nowhere", 1e9, t(0), t(10), t(0)),
            Err(InterDomainBlock::NoDomainRoute)
        ));
    }

    #[test]
    fn intra_domain_endpoint_pair_uses_one_segment() {
        let mut c = controller(10e9);
        // Same-domain circuit: add a second endpoint to esnet.
        let extra = c.domains[0].endpoints.get("ep-a").copied().unwrap();
        c.domains[0].endpoints.insert("ep-a2".into(), extra);
        // src == dst node would be invalid; route via gw-x instead.
        let gw = c.domains[0].gateways.get("gw-x").copied().unwrap();
        c.domains[0].endpoints.insert("gw-as-ep".into(), gw);
        let circuit =
            c.create_circuit("ep-a", "gw-as-ep", 1e9, t(0), t(10), t(0)).expect("admitted");
        assert_eq!(circuit.segments.len(), 1);
    }

    #[test]
    fn blocked_segment_rolls_back_everything() {
        let mut c = controller(10e9);
        // Saturate internet2's links over the window so its segment
        // blocks, then verify esnet's calendar was rolled back by
        // admitting a fresh full-rate circuit afterwards.
        let gw = c.domains[1].gateways["gw-x"];
        let ep = c.domains[1].endpoints["ep-b"];
        let fill =
            ReservationRequest { src: gw, dst: ep, rate_bps: 10e9, start: t(0), end: t(3600) };
        c.domains[1].idc.create_reservation(fill).expect("fill");

        let blocked = c.create_circuit("ep-a", "ep-b", 4e9, t(0), t(3600), t(0));
        match blocked {
            Err(InterDomainBlock::SegmentBlocked { domain, .. }) => assert_eq!(domain, "internet2"),
            other => panic!("expected internet2 block, got {other:?}"),
        }
        // esnet must have rolled back: a full 10 G single-domain
        // reservation through it still fits.
        let src = c.domains[0].endpoints["ep-a"];
        let dst = c.domains[0].gateways["gw-x"];
        let ok = c.domains[0].idc.create_reservation(ReservationRequest {
            src,
            dst,
            rate_bps: 10e9,
            start: t(0),
            end: t(3600),
        });
        assert!(ok.is_ok(), "esnet calendar not rolled back: {ok:?}");
    }

    #[test]
    fn rollback_releases_each_admitted_segment() {
        // Regression for the rollback promise above: when a later
        // segment blocks, every earlier segment's reservation must
        // actually reach Released — not just free calendar capacity
        // as a side effect.
        use crate::reservation::ReservationState;
        let mut c = controller(10e9);
        let gw = c.domains[1].gateways["gw-x"];
        let ep = c.domains[1].endpoints["ep-b"];
        let fill =
            ReservationRequest { src: gw, dst: ep, rate_bps: 10e9, start: t(0), end: t(3600) };
        c.domains[1].idc.create_reservation(fill).expect("fill");

        assert!(c.create_circuit("ep-a", "ep-b", 4e9, t(0), t(3600), t(0)).is_err());
        // esnet admitted one segment (reservation id 0) before
        // internet2 blocked; it must be Released, and no domain may
        // hold an open reservation besides the deliberate fill.
        let esnet_seg = c.domains[0].idc.reservation(ReservationId(0)).expect("was admitted");
        assert_eq!(esnet_seg.state, ReservationState::Released);
        assert_eq!(c.open_reservations(), 1, "only the fill may stay open");
    }

    #[test]
    fn recovery_retries_then_establishes() {
        use gvc_faults::{FaultInjector, FaultPlan, FaultTelemetry, RecoveryPolicy};
        let mut c = controller(10e9);
        // First two attempts die on injected signalling failures; the
        // third succeeds within the default budget of 4 attempts.
        let plan = FaultPlan { fail_first_provisions: 2, ..FaultPlan::default() };
        let mut inj = FaultInjector::new(plan);
        let tel = FaultTelemetry::disabled();
        let out = c.create_circuit_with_recovery(
            "ep-a",
            "ep-b",
            4e9,
            t(0),
            t(3600),
            t(0),
            &RecoveryPolicy::default(),
            &mut inj,
            &tel,
        );
        assert_eq!(out.attempts, 3);
        assert!(matches!(out.result, CircuitResult::Established(_)));
        assert!(out.finished_at > t(0), "backoff waits must advance the clock");
        assert_eq!(tel.retries.get(), 2);
        assert_eq!(tel.fallback_ip.get(), 0);
        // The two failed attempts left nothing behind.
        let CircuitResult::Established(circuit) = &out.result else { unreachable!() };
        assert_eq!(c.open_reservations(), circuit.segments.len());
    }

    #[test]
    fn recovery_chain_emits_paired_spans() {
        use gvc_faults::{FaultInjector, FaultPlan, FaultTelemetry, RecoveryPolicy};
        use gvc_telemetry::{Registry, RingSink, TraceModel, Tracer};
        use std::sync::Arc;
        let mut c = controller(10e9);
        let plan = FaultPlan { fail_first_provisions: 2, ..FaultPlan::default() };
        let mut inj = FaultInjector::new(plan);
        let ring = Arc::new(RingSink::new(64));
        let tel = FaultTelemetry::register(&Registry::new(), Tracer::to_sink(ring.clone()));
        let out = c.create_circuit_with_recovery(
            "ep-a",
            "ep-b",
            4e9,
            t(0),
            t(3600),
            t(0),
            &RecoveryPolicy::default(),
            &mut inj,
            &tel,
        );
        assert_eq!(out.attempts, 3);
        let text: String = ring
            .events()
            .iter()
            .map(gvc_telemetry::TraceEvent::to_json)
            .collect::<Vec<_>>()
            .join("\n");
        let model = TraceModel::from_text(&text).expect("parse own trace");
        let names: Vec<&str> = model.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "idc.interdomain",
                "idc.attempt",
                "idc.backoff",
                "idc.attempt",
                "idc.backoff",
                "idc.attempt"
            ]
        );
        // Every span closed, attempts/backoffs all children of the chain.
        for s in &model.spans {
            assert!(s.end_us.is_some(), "span {} never closed", s.name);
            if s.name != "idc.interdomain" {
                assert_eq!(s.parent, model.spans[0].id);
            }
        }
        let chain = &model.spans[0];
        assert_eq!(chain.end_us, Some(out.finished_at.micros() as i64));
        let backoff_total: i64 = model
            .spans
            .iter()
            .filter(|s| s.name == "idc.backoff")
            .map(|s| s.end_us.unwrap_or(0) - s.start_us)
            .sum();
        assert_eq!(
            backoff_total,
            (out.finished_at - t(0)).0,
            "backoff spans account for the whole virtual wait"
        );
    }

    #[test]
    fn recovery_exhaustion_falls_back_without_leaks() {
        use gvc_faults::{FaultInjector, FaultPlan, FaultTelemetry, RecoveryPolicy};
        let mut c = controller(10e9);
        let plan = FaultPlan { fail_first_provisions: 100, ..FaultPlan::default() };
        let mut inj = FaultInjector::new(plan);
        let tel = FaultTelemetry::disabled();
        let policy = RecoveryPolicy { max_retries: 2, ..RecoveryPolicy::default() };
        let out = c.create_circuit_with_recovery(
            "ep-a",
            "ep-b",
            4e9,
            t(0),
            t(3600),
            t(0),
            &policy,
            &mut inj,
            &tel,
        );
        assert_eq!(out.attempts, 3);
        assert!(matches!(out.result, CircuitResult::FellBack(_)));
        assert_eq!(tel.fallback_ip.get(), 1);
        assert_eq!(c.open_reservations(), 0, "failed attempts leaked reservations");

        // Same plan with fallback disabled: abandoned instead.
        let mut inj2 =
            FaultInjector::new(FaultPlan { fail_first_provisions: 100, ..FaultPlan::default() });
        let strict = RecoveryPolicy { fallback_to_ip: false, ..policy };
        let out2 = c.create_circuit_with_recovery(
            "ep-a",
            "ep-b",
            4e9,
            t(0),
            t(3600),
            t(0),
            &strict,
            &mut inj2,
            &tel,
        );
        assert!(matches!(out2.result, CircuitResult::Abandoned(_)));
        assert_eq!(c.open_reservations(), 0);
    }

    #[test]
    fn teardown_releases_all_domains() {
        let mut c = controller(10e9);
        let circuit =
            c.create_circuit("ep-a", "ep-b", 10e9, t(0), t(3600), t(0)).expect("admitted");
        // Links full: a second circuit blocks.
        assert!(c.create_circuit("ep-a", "ep-b", 1e9, t(0), t(3600), t(0)).is_err());
        c.teardown(&circuit, t(10));
        // Remaining window free again.
        assert!(c.create_circuit("ep-a", "ep-b", 10e9, t(10), t(3600), t(10)).is_ok());
    }

    #[test]
    fn stats_accumulate_per_domain() {
        let mut c = controller(10e9);
        let _ = c.create_circuit("ep-a", "ep-b", 4e9, t(0), t(3600), t(0));
        assert_eq!(c.domains()[0].idc.stats().admitted, 1);
        assert_eq!(c.domains()[1].idc.stats().admitted, 1);
        assert_eq!(c.domains()[2].idc.stats().requests, 0);
    }
}
