//! Inter-domain circuit setup (IDCP-style chaining).
//!
//! §II: "the phone service allows for users to request circuits to
//! customers of other providers, i.e., inter-domain service is
//! supported. Commercial high-speed optical dynamic circuit services
//! are currently only intra-domain, but REN providers are
//! experimenting with inter-domain service" — via the Inter-Domain
//! Controller Protocol (IDCP) that ESnet and Internet2 deploy, and the
//! DYNES build-out in campus/regional networks.
//!
//! The model: each provider domain runs its own [`Idc`] over its own
//! subgraph; domains meet at named gateway nodes. An end-to-end
//! request is decomposed along a domain-level route into per-domain
//! segment reservations, admitted atomically (all-or-nothing, with
//! rollback of already-admitted segments on failure). Setup is
//! signalled domain by domain, so the end-to-end ready time is the
//! *latest* segment ready time — chaining 1-minute batched IDCs does
//! not add minutes, but one slow domain gates the whole circuit.

use crate::idc::{BlockReason, Idc};
use crate::reservation::{ReservationId, ReservationRequest};
use gvc_engine::SimTime;
use gvc_topology::NodeId;
use std::collections::HashMap;

/// A provider domain: an IDC plus the gateways it shares with
/// neighbours.
pub struct Domain {
    /// Provider name (e.g. `"esnet"`, `"internet2"`).
    pub name: String,
    /// The domain's scheduler over its own topology.
    pub idc: Idc,
    /// Nodes of this domain's graph that terminate inter-domain
    /// hand-offs, keyed by the *global* gateway label shared with the
    /// neighbour.
    pub gateways: HashMap<String, NodeId>,
    /// Nodes of this domain's graph that host customer endpoints,
    /// keyed by a global endpoint label.
    pub endpoints: HashMap<String, NodeId>,
}

/// One admitted end-to-end circuit: the per-domain segments in path
/// order.
#[derive(Debug, Clone)]
pub struct InterDomainCircuit {
    /// `(domain index, reservation id)` per segment.
    pub segments: Vec<(usize, ReservationId)>,
    /// When the whole circuit is usable (max of segment ready times).
    pub ready_at: SimTime,
}

/// Why an end-to-end request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum InterDomainBlock {
    /// No domain-level route between the endpoints.
    NoDomainRoute,
    /// A specific domain blocked its segment.
    SegmentBlocked {
        /// The blocking domain's name.
        domain: String,
        /// Its reason.
        reason: BlockReason,
    },
}

/// The inter-domain controller: a chain-of-domains coordinator.
pub struct InterDomainController {
    domains: Vec<Domain>,
}

impl InterDomainController {
    /// A controller over the given domains.
    pub fn new(domains: Vec<Domain>) -> InterDomainController {
        InterDomainController { domains }
    }

    /// Immutable access to the domains.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Finds the domain hosting a global endpoint label.
    fn endpoint_domain(&self, label: &str) -> Option<(usize, NodeId)> {
        self.domains.iter().enumerate().find_map(|(i, d)| d.endpoints.get(label).map(|&n| (i, n)))
    }

    /// Domain-level route by breadth-first search over shared gateway
    /// labels. Returns per-domain `(domain_ix, entry_node, exit_node)`
    /// hops: `entry` is the endpoint or ingress gateway, `exit` the
    /// egress gateway or endpoint.
    fn domain_route(
        &self,
        src_label: &str,
        dst_label: &str,
    ) -> Option<Vec<(usize, NodeId, NodeId)>> {
        let (src_dom, src_node) = self.endpoint_domain(src_label)?;
        let (dst_dom, dst_node) = self.endpoint_domain(dst_label)?;
        if src_dom == dst_dom {
            return Some(vec![(src_dom, src_node, dst_node)]);
        }
        // BFS over domains connected by shared gateway labels.
        let mut prev: HashMap<usize, (usize, String)> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([src_dom]);
        let mut seen = std::collections::HashSet::from([src_dom]);
        'bfs: while let Some(d) = queue.pop_front() {
            for label in self.domains[d].gateways.keys() {
                for (e, other) in self.domains.iter().enumerate() {
                    if e != d && !seen.contains(&e) && other.gateways.contains_key(label) {
                        seen.insert(e);
                        prev.insert(e, (d, label.clone()));
                        if e == dst_dom {
                            break 'bfs;
                        }
                        queue.push_back(e);
                    }
                }
            }
        }
        if !prev.contains_key(&dst_dom) {
            return None;
        }
        // Reconstruct the domain chain with gateway labels.
        let mut chain = vec![dst_dom];
        let mut labels = Vec::new();
        let mut at = dst_dom;
        while at != src_dom {
            let (p, label) = prev.get(&at)?.clone();
            labels.push(label);
            chain.push(p);
            at = p;
        }
        chain.reverse();
        labels.reverse();
        // Build hops: entry of first domain is the src endpoint; exits
        // are the shared gateways; entry of each next domain is its
        // copy of the same gateway label.
        let mut hops = Vec::with_capacity(chain.len());
        let mut entry = src_node;
        for (i, &dom) in chain.iter().enumerate() {
            let exit = if i + 1 < chain.len() {
                *self.domains[dom].gateways.get(&labels[i])?
            } else {
                dst_node
            };
            hops.push((dom, entry, exit));
            if i + 1 < chain.len() {
                entry = *self.domains[chain[i + 1]].gateways.get(&labels[i])?;
            }
        }
        Some(hops)
    }

    /// Requests an end-to-end circuit between two global endpoint
    /// labels. Admits all segments or none.
    pub fn create_circuit(
        &mut self,
        src_label: &str,
        dst_label: &str,
        rate_bps: f64,
        start: SimTime,
        end: SimTime,
        now: SimTime,
    ) -> Result<InterDomainCircuit, InterDomainBlock> {
        let hops =
            self.domain_route(src_label, dst_label).ok_or(InterDomainBlock::NoDomainRoute)?;

        let mut segments: Vec<(usize, ReservationId)> = Vec::with_capacity(hops.len());
        for (dom, entry, exit) in &hops {
            let req = ReservationRequest { src: *entry, dst: *exit, rate_bps, start, end };
            match self.domains[*dom].idc.create_reservation(req) {
                Ok(id) => segments.push((*dom, id)),
                Err(reason) => {
                    // Roll back everything admitted so far. The
                    // segments were admitted above, so teardown of
                    // each is infallible here.
                    for (d, id) in segments {
                        let _ = self.domains[d].idc.teardown(id, now);
                    }
                    return Err(InterDomainBlock::SegmentBlocked {
                        domain: self.domains[*dom].name.clone(),
                        reason,
                    });
                }
            }
        }

        // Signal provisioning in every domain; the circuit is usable
        // when the slowest segment is.
        let mut ready_at = start;
        for (d, id) in &segments {
            // Freshly admitted above, so provisioning succeeds; a
            // hypothetical failure just leaves `ready_at` at the
            // slowest successfully signalled segment.
            if let Ok(r) = self.domains[*d].idc.provision(*id, now) {
                ready_at = ready_at.max(r);
            }
        }
        Ok(InterDomainCircuit { segments, ready_at })
    }

    /// Tears an end-to-end circuit down in every domain.
    pub fn teardown(&mut self, circuit: &InterDomainCircuit, now: SimTime) {
        for (d, id) in &circuit.segments {
            let _ = self.domains[*d].idc.teardown(*id, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SetupDelayModel;
    use gvc_topology::{Graph, NodeKind};

    /// Two line domains joined at a gateway, plus a third stub domain.
    ///
    /// esnet:    ep-a -- r1 -- gw-x
    /// internet2: gw-x -- r2 -- ep-b
    /// regional:  gw-y -- ep-c   (not connected to the others)
    fn controller(capacity_bps: f64) -> InterDomainController {
        let mk_domain = |_name: &str,
                         nodes: &[(&str, NodeKind)],
                         links: &[(usize, usize)]|
         -> (Graph, Vec<NodeId>) {
            let mut g = Graph::new();
            let ids: Vec<NodeId> = nodes.iter().map(|(n, k)| g.add_node(n, *k)).collect();
            for &(a, b) in links {
                g.add_duplex_link(ids[a], ids[b], capacity_bps, 0.005);
            }
            (g, ids)
        };

        let (g1, n1) = mk_domain(
            "esnet",
            &[("ep-a", NodeKind::Host), ("r1", NodeKind::Router), ("gw-x", NodeKind::Router)],
            &[(0, 1), (1, 2)],
        );
        let (g2, n2) = mk_domain(
            "internet2",
            &[("gw-x", NodeKind::Router), ("r2", NodeKind::Router), ("ep-b", NodeKind::Host)],
            &[(0, 1), (1, 2)],
        );
        let (g3, n3) = mk_domain(
            "regional",
            &[("gw-y", NodeKind::Router), ("ep-c", NodeKind::Host)],
            &[(0, 1)],
        );

        InterDomainController::new(vec![
            Domain {
                name: "esnet".into(),
                idc: Idc::new(g1, SetupDelayModel::one_minute()),
                gateways: HashMap::from([("gw-x".to_string(), n1[2])]),
                endpoints: HashMap::from([("ep-a".to_string(), n1[0])]),
            },
            Domain {
                name: "internet2".into(),
                idc: Idc::new(g2, SetupDelayModel::hardware()),
                gateways: HashMap::from([("gw-x".to_string(), n2[0])]),
                endpoints: HashMap::from([("ep-b".to_string(), n2[2])]),
            },
            Domain {
                name: "regional".into(),
                idc: Idc::new(g3, SetupDelayModel::hardware()),
                gateways: HashMap::from([("gw-y".to_string(), n3[0])]),
                endpoints: HashMap::from([("ep-c".to_string(), n3[1])]),
            },
        ])
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn two_domain_circuit_admitted_with_max_setup_delay() {
        let mut c = controller(10e9);
        let circuit = c.create_circuit("ep-a", "ep-b", 4e9, t(0), t(3600), t(0)).expect("admitted");
        assert_eq!(circuit.segments.len(), 2);
        // esnet uses 1-min batching, internet2 hardware: the chain is
        // gated by esnet's 60 s.
        assert_eq!(circuit.ready_at, t(60));
    }

    #[test]
    fn unreachable_domain_is_no_route() {
        let mut c = controller(10e9);
        assert!(matches!(
            c.create_circuit("ep-a", "ep-c", 1e9, t(0), t(10), t(0)),
            Err(InterDomainBlock::NoDomainRoute)
        ));
        assert!(matches!(
            c.create_circuit("ep-a", "nowhere", 1e9, t(0), t(10), t(0)),
            Err(InterDomainBlock::NoDomainRoute)
        ));
    }

    #[test]
    fn intra_domain_endpoint_pair_uses_one_segment() {
        let mut c = controller(10e9);
        // Same-domain circuit: add a second endpoint to esnet.
        let extra = c.domains[0].endpoints.get("ep-a").copied().unwrap();
        c.domains[0].endpoints.insert("ep-a2".into(), extra);
        // src == dst node would be invalid; route via gw-x instead.
        let gw = c.domains[0].gateways.get("gw-x").copied().unwrap();
        c.domains[0].endpoints.insert("gw-as-ep".into(), gw);
        let circuit =
            c.create_circuit("ep-a", "gw-as-ep", 1e9, t(0), t(10), t(0)).expect("admitted");
        assert_eq!(circuit.segments.len(), 1);
    }

    #[test]
    fn blocked_segment_rolls_back_everything() {
        let mut c = controller(10e9);
        // Saturate internet2's links over the window so its segment
        // blocks, then verify esnet's calendar was rolled back by
        // admitting a fresh full-rate circuit afterwards.
        let gw = c.domains[1].gateways["gw-x"];
        let ep = c.domains[1].endpoints["ep-b"];
        let fill =
            ReservationRequest { src: gw, dst: ep, rate_bps: 10e9, start: t(0), end: t(3600) };
        c.domains[1].idc.create_reservation(fill).expect("fill");

        let blocked = c.create_circuit("ep-a", "ep-b", 4e9, t(0), t(3600), t(0));
        match blocked {
            Err(InterDomainBlock::SegmentBlocked { domain, .. }) => assert_eq!(domain, "internet2"),
            other => panic!("expected internet2 block, got {other:?}"),
        }
        // esnet must have rolled back: a full 10 G single-domain
        // reservation through it still fits.
        let src = c.domains[0].endpoints["ep-a"];
        let dst = c.domains[0].gateways["gw-x"];
        let ok = c.domains[0].idc.create_reservation(ReservationRequest {
            src,
            dst,
            rate_bps: 10e9,
            start: t(0),
            end: t(3600),
        });
        assert!(ok.is_ok(), "esnet calendar not rolled back: {ok:?}");
    }

    #[test]
    fn teardown_releases_all_domains() {
        let mut c = controller(10e9);
        let circuit =
            c.create_circuit("ep-a", "ep-b", 10e9, t(0), t(3600), t(0)).expect("admitted");
        // Links full: a second circuit blocks.
        assert!(c.create_circuit("ep-a", "ep-b", 1e9, t(0), t(3600), t(0)).is_err());
        c.teardown(&circuit, t(10));
        // Remaining window free again.
        assert!(c.create_circuit("ep-a", "ep-b", 10e9, t(10), t(3600), t(10)).is_ok());
    }

    #[test]
    fn stats_accumulate_per_domain() {
        let mut c = controller(10e9);
        let _ = c.create_circuit("ep-a", "ep-b", 4e9, t(0), t(3600), t(0));
        assert_eq!(c.domains()[0].idc.stats().admitted, 1);
        assert_eq!(c.domains()[1].idc.stats().admitted, 1);
        assert_eq!(c.domains()[2].idc.stats().requests, 0);
    }
}
