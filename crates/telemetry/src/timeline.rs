//! Sim-time flight recorder: fixed-width windowed timeline series.
//!
//! The paper's empirical core is *time-windowed* telemetry — 30-second
//! SNMP link polls and per-interval transfer ledgers. This module adds
//! that axis to the telemetry spine: a [`TimelineRecorder`] keyed on
//! simulation time in microseconds, aggregating into fixed-width
//! windows (default 30 s, matching the paper's SNMP poll period).
//!
//! Three series kinds, chosen so every per-window cell merges
//! **commutatively and associatively** across shard lanes:
//!
//! * **counter** — an `f64` sum per window (`add` / `add_span`);
//! * **gauge** — per-window `{sum, n, max}` of samples (`sample`),
//!   rendered as mean/max;
//! * **quantile** — a per-window log-bucketed histogram with the
//!   fixed timing layout (`observe`), rendered as p50/p90/p99. Cells
//!   hold only integer bucket counts — no float sample sum — so lane
//!   merges cannot reorder float additions.
//!
//! Shard lanes each hold a private recorder; the coordinator absorbs
//! them in deterministic lane order ([`TimelineRecorder::absorb`]),
//! and every emitting subsystem is resource-confined to one lane, so
//! the merged timeline is byte-identical at every shard count and in
//! the sequential build. Two *derived* series — `kernel.queue_depth`
//! and `driver.active_sessions` — are materialized at render time as
//! cumulative differences of shard-invariant counters (a lane-local
//! depth sample would not survive re-partitioning; the cumulative
//! difference does).
//!
//! The canonical JSON rendering (`to_json`) is byte-stable and held
//! as a scenario golden; [`TimelineDoc::parse`] reads it back for the
//! `gvc timeline report|csv|check` subcommands, and [`check_rules`]
//! evaluates declarative SLO burn rules
//! (`vc_setup_p99<=5s@95%-of-windows`) against the parsed document.
//! Series names are doc-pinned in `docs/observability.md` (the
//! `schema_drift` meta-test closes the loop).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Default window width: 30 simulated seconds, the paper's SNMP poll
/// period.
pub const DEFAULT_WIDTH_US: u64 = 30_000_000;

/// Quantile-cell histogram layout, mirroring
/// [`crate::Histogram::timing`]: 1 µs to ~1000 s, ~2 buckets per
/// decade, plus underflow and overflow.
const HIST_START: f64 = 1e-6;
const HIST_GROWTH: f64 = 3.162_277_660_168_379_5;
const HIST_BUCKETS: usize = 20;

/// The timeline series base names every subsystem hook emits, pinned
/// here so emit sites, the documentation table in
/// `docs/observability.md`, and the `schema_drift` meta-test can
/// never drift apart. Per-link series carry an `[instance]` suffix on
/// top of the base name (e.g. `net.link_util[west-dtn->sunn]`).
pub mod series {
    /// Events entered into the kernel calendar (counter).
    pub const KERNEL_SCHEDULED: &str = "kernel.scheduled";
    /// Events dispatched by the kernel loop (counter).
    pub const KERNEL_DISPATCHED: &str = "kernel.dispatched";
    /// Derived gauge: cumulative scheduled − dispatched at window end.
    pub const KERNEL_QUEUE_DEPTH: &str = "kernel.queue_depth";
    /// Per-link utilization fraction of capacity (counter, `[link]`).
    pub const NET_LINK_UTIL: &str = "net.link_util";
    /// Background-tagged share of link utilization (counter, `[link]`).
    pub const NET_BG_UTIL: &str = "net.bg_util";
    /// Open reservations in the IDC calendar (gauge).
    pub const OSCARS_OPEN_RESERVATIONS: &str = "oscars.open_reservations";
    /// Sum of reserved bandwidth across open reservations (gauge, bps).
    pub const OSCARS_RESERVED_BPS: &str = "oscars.reserved_bps";
    /// GridFTP sessions started (counter).
    pub const DRIVER_SESSION_STARTS: &str = "driver.session_starts";
    /// GridFTP sessions fully completed (counter).
    pub const DRIVER_SESSION_COMPLETIONS: &str = "driver.session_completions";
    /// Derived gauge: cumulative starts − completions at window end.
    pub const DRIVER_ACTIVE_SESSIONS: &str = "driver.active_sessions";
    /// Foreground transfers completed (counter).
    pub const DRIVER_TRANSFERS: &str = "driver.transfers";
    /// VC setup latency in seconds (quantile), first attempt → ready.
    pub const DRIVER_VC_SETUP: &str = "driver.vc_setup";
    /// VC establishment retries (counter).
    pub const DRIVER_RETRIES: &str = "driver.retries";
    /// Sessions falling back to routed IP (counter).
    pub const DRIVER_FALLBACKS: &str = "driver.fallbacks";
    /// Faults injected by the active fault plan (counter).
    pub const FAULT_INJECTED: &str = "fault.injected";

    /// Every base name above, in rendering order.
    pub const ALL: &[&str] = &[
        KERNEL_SCHEDULED,
        KERNEL_DISPATCHED,
        KERNEL_QUEUE_DEPTH,
        NET_LINK_UTIL,
        NET_BG_UTIL,
        OSCARS_OPEN_RESERVATIONS,
        OSCARS_RESERVED_BPS,
        DRIVER_SESSION_STARTS,
        DRIVER_SESSION_COMPLETIONS,
        DRIVER_ACTIVE_SESSIONS,
        DRIVER_TRANSFERS,
        DRIVER_VC_SETUP,
        DRIVER_RETRIES,
        DRIVER_FALLBACKS,
        FAULT_INJECTED,
    ];
}

/// What a series aggregates per window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Per-window sum of added values.
    Counter,
    /// Per-window sample statistics (mean/max/n).
    Gauge,
    /// Per-window latency histogram rendered as quantiles.
    Quantile,
}

impl SeriesKind {
    fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Quantile => "quantile",
        }
    }
}

#[derive(Clone, Debug)]
enum Cell {
    Counter(f64),
    Gauge { sum: f64, n: u64, max: f64 },
    Quantile { counts: Vec<u64> },
}

#[derive(Clone, Debug)]
struct Series {
    kind: SeriesKind,
    windows: BTreeMap<u64, Cell>,
}

/// Bucket index for a quantile-cell sample, mirroring the registry
/// histogram's layout maths.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() {
        return HIST_BUCKETS - 1;
    }
    if v < HIST_START {
        return 0;
    }
    let i = ((v / HIST_START).ln() / HIST_GROWTH.ln()).floor() as usize + 1;
    i.min(HIST_BUCKETS - 1)
}

/// Upper bound of quantile-cell bucket `i` (`+Inf` for overflow).
fn bucket_upper(i: usize) -> f64 {
    if i + 1 >= HIST_BUCKETS {
        f64::INFINITY
    } else {
        HIST_START * HIST_GROWTH.powi(i as i32)
    }
}

/// Golden-style number formatting: finite values via the shortest
/// round-trip `Display`, non-finite as `null`.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// The windowed aggregation state for one run (or one shard lane).
#[derive(Clone, Debug)]
pub struct TimelineRecorder {
    width_us: u64,
    series: BTreeMap<String, Series>,
}

impl TimelineRecorder {
    /// A recorder with `width_us`-wide windows (clamped to ≥ 1 µs).
    pub fn new(width_us: u64) -> TimelineRecorder {
        TimelineRecorder { width_us: width_us.max(1), series: BTreeMap::new() }
    }

    /// The configured window width in microseconds.
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    fn window(&self, t_us: u64) -> u64 {
        t_us / self.width_us
    }

    fn cell(&mut self, name: &str, kind: SeriesKind, w: u64) -> Option<&mut Cell> {
        let s = self
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series { kind, windows: BTreeMap::new() });
        if s.kind != kind {
            // A series name may not change kind mid-run; drop the
            // mismatched operation rather than corrupt the cell.
            return None;
        }
        Some(s.windows.entry(w).or_insert_with(|| match kind {
            SeriesKind::Counter => Cell::Counter(0.0),
            SeriesKind::Gauge => Cell::Gauge { sum: 0.0, n: 0, max: f64::NEG_INFINITY },
            SeriesKind::Quantile => Cell::Quantile { counts: vec![0; HIST_BUCKETS] },
        }))
    }

    /// Adds `v` to the counter series `name` in the window containing
    /// `t_us`.
    pub fn add(&mut self, name: &str, t_us: u64, v: f64) {
        let w = self.window(t_us);
        if let Some(Cell::Counter(sum)) = self.cell(name, SeriesKind::Counter, w) {
            *sum += v;
        }
    }

    /// Adds `v` to the counter series `name`, distributed across the
    /// windows overlapping `[start_us, end_us)` proportionally to the
    /// overlap (the SNMP-recorder bin-splitting rule, generalized).
    pub fn add_span(&mut self, name: &str, start_us: u64, end_us: u64, v: f64) {
        if end_us <= start_us {
            self.add(name, start_us, v);
            return;
        }
        let total = (end_us - start_us) as f64;
        let (w0, w1) = (self.window(start_us), self.window(end_us.saturating_sub(1)));
        for w in w0..=w1 {
            let lo = (w * self.width_us).max(start_us);
            let hi = ((w + 1) * self.width_us).min(end_us);
            if hi > lo {
                let share = v * ((hi - lo) as f64 / total);
                if let Some(Cell::Counter(sum)) = self.cell(name, SeriesKind::Counter, w) {
                    *sum += share;
                }
            }
        }
    }

    /// Records one gauge sample for series `name` at `t_us`.
    pub fn sample(&mut self, name: &str, t_us: u64, v: f64) {
        let w = self.window(t_us);
        if let Some(Cell::Gauge { sum, n, max }) = self.cell(name, SeriesKind::Gauge, w) {
            *sum += v;
            *n += 1;
            if v > *max {
                *max = v;
            }
        }
    }

    /// Records one quantile observation (seconds) for `name` at `t_us`.
    pub fn observe(&mut self, name: &str, t_us: u64, v: f64) {
        let w = self.window(t_us);
        let idx = bucket_index(v);
        if let Some(Cell::Quantile { counts }) = self.cell(name, SeriesKind::Quantile, w) {
            if let Some(c) = counts.get_mut(idx) {
                *c += 1;
            }
        }
    }

    /// Folds `other` into this recorder. The merge is per-(series,
    /// window) and commutative — counters add, gauges add sum/n and
    /// take the max, quantile cells add bucket counts — so absorbing
    /// lanes in deterministic lane order yields a timeline identical
    /// to the unsharded run. Series with a conflicting kind are
    /// skipped.
    pub fn absorb(&mut self, other: &TimelineRecorder) {
        for (name, theirs) in &other.series {
            let mine = self
                .series
                .entry(name.clone())
                .or_insert_with(|| Series { kind: theirs.kind, windows: BTreeMap::new() });
            if mine.kind != theirs.kind {
                continue;
            }
            for (&w, cell) in &theirs.windows {
                match (mine.windows.entry(w).or_insert_with(|| cell_zero(theirs.kind)), cell) {
                    (Cell::Counter(a), Cell::Counter(b)) => *a += b,
                    (Cell::Gauge { sum, n, max }, Cell::Gauge { sum: bs, n: bn, max: bm }) => {
                        *sum += bs;
                        *n += bn;
                        if *bm > *max {
                            *max = *bm;
                        }
                    }
                    (Cell::Quantile { counts }, Cell::Quantile { counts: bc }) => {
                        for (a, b) in counts.iter_mut().zip(bc) {
                            *a += b;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// True when no series has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The derived gauge series rendered alongside the recorded ones:
    /// cumulative-difference depths that are shard-invariant because
    /// their source counters are.
    fn derived(&self) -> Vec<(String, Series)> {
        let pairs: [(&str, &str, &str); 2] = [
            (series::KERNEL_QUEUE_DEPTH, series::KERNEL_SCHEDULED, series::KERNEL_DISPATCHED),
            (
                series::DRIVER_ACTIVE_SESSIONS,
                series::DRIVER_SESSION_STARTS,
                series::DRIVER_SESSION_COMPLETIONS,
            ),
        ];
        let mut out = Vec::new();
        for (name, up, down) in pairs {
            let (upper, lower) = (self.series.get(up), self.series.get(down));
            if upper.is_none() && lower.is_none() {
                continue;
            }
            let mut windows: BTreeMap<u64, Cell> = BTreeMap::new();
            let mut all: Vec<u64> = Vec::new();
            for s in [upper, lower].into_iter().flatten() {
                all.extend(s.windows.keys().copied());
            }
            all.sort_unstable();
            all.dedup();
            let counter_at = |s: Option<&Series>, w: u64| -> f64 {
                match s.and_then(|s| s.windows.get(&w)) {
                    Some(Cell::Counter(v)) => *v,
                    _ => 0.0,
                }
            };
            let mut depth = 0.0;
            for w in all {
                depth += counter_at(upper, w) - counter_at(lower, w);
                windows.insert(w, Cell::Gauge { sum: depth, n: 1, max: depth });
            }
            out.push((name.to_string(), Series { kind: SeriesKind::Gauge, windows }));
        }
        out
    }

    /// Recorded plus derived series, in name order — the render set.
    fn render_set(&self) -> Vec<(String, Series)> {
        let mut all: Vec<(String, Series)> =
            self.series.iter().map(|(n, s)| (n.clone(), s.clone())).collect();
        all.extend(self.derived());
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Canonical JSON rendering: fixed key order, one window object
    /// per line, golden-style number formatting. Byte-stable per seed
    /// at every shard count.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"width_us\": {},\n  \"series\": [", self.width_us);
        let all = self.render_set();
        for (i, (name, s)) in all.iter().enumerate() {
            let comma = if i + 1 < all.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"name\": \"{name}\", \"kind\": \"{}\", \"windows\": [",
                s.kind.label()
            );
            for (j, (&w, cell)) in s.windows.iter().enumerate() {
                let wc = if j + 1 < s.windows.len() { "," } else { "" };
                let t_s = num(w as f64 * self.width_us as f64 / 1e6);
                let body = render_cell(cell);
                let _ = write!(out, "\n      {{\"w\": {w}, \"t_s\": {t_s}, {body}}}{wc}");
            }
            let _ = write!(out, "\n    ]}}{comma}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// CSV rendering: one row per (series, window) with kind-specific
    /// columns left empty when not applicable.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,kind,w,t_s,value,mean,max,n,p50,p90,p99\n");
        for (name, s) in self.render_set() {
            for (&w, cell) in &s.windows {
                let t_s = num(w as f64 * self.width_us as f64 / 1e6);
                let kind = s.kind.label();
                match cell {
                    Cell::Counter(v) => {
                        let _ = writeln!(out, "{name},{kind},{w},{t_s},{},,,,,,", num(*v));
                    }
                    Cell::Gauge { sum, n, max } => {
                        let mean = if *n > 0 { *sum / *n as f64 } else { f64::NAN };
                        let _ = writeln!(
                            out,
                            "{name},{kind},{w},{t_s},,{},{},{n},,,",
                            num(mean),
                            num(*max)
                        );
                    }
                    Cell::Quantile { counts } => {
                        let n: u64 = counts.iter().sum();
                        let q = |p: f64| num(quantile_of(counts, p));
                        let _ = writeln!(
                            out,
                            "{name},{kind},{w},{t_s},,,,{n},{},{},{}",
                            q(0.5),
                            q(0.9),
                            q(0.99)
                        );
                    }
                }
            }
        }
        out
    }
}

impl Default for TimelineRecorder {
    fn default() -> TimelineRecorder {
        TimelineRecorder::new(DEFAULT_WIDTH_US)
    }
}

fn cell_zero(kind: SeriesKind) -> Cell {
    match kind {
        SeriesKind::Counter => Cell::Counter(0.0),
        SeriesKind::Gauge => Cell::Gauge { sum: 0.0, n: 0, max: f64::NEG_INFINITY },
        SeriesKind::Quantile => Cell::Quantile { counts: vec![0; HIST_BUCKETS] },
    }
}

/// Bucket-quantile estimate over a quantile cell (upper bound of the
/// bucket containing the rank; `NaN` when empty).
fn quantile_of(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper(i);
        }
    }
    f64::INFINITY
}

fn render_cell(cell: &Cell) -> String {
    match cell {
        Cell::Counter(v) => format!("\"value\": {}", num(*v)),
        Cell::Gauge { sum, n, max } => {
            let mean = if *n > 0 { *sum / *n as f64 } else { f64::NAN };
            format!("\"mean\": {}, \"max\": {}, \"n\": {n}", num(mean), num(*max))
        }
        Cell::Quantile { counts } => {
            let n: u64 = counts.iter().sum();
            format!(
                "\"n\": {n}, \"p50\": {}, \"p90\": {}, \"p99\": {}",
                num(quantile_of(counts, 0.5)),
                num(quantile_of(counts, 0.9)),
                num(quantile_of(counts, 0.99))
            )
        }
    }
}

/// A cheap cloneable handle to a shared recorder — the `Option` every
/// subsystem holds. The mutex is uncontended in practice (one lane,
/// one writer); cross-lane merging goes through [`Self::absorb`] on
/// the coordinator, never through shared writes.
#[derive(Clone)]
pub struct TimelineHandle(Arc<Mutex<TimelineRecorder>>);

impl TimelineHandle {
    /// A handle over a fresh recorder with `width_us`-wide windows.
    pub fn new(width_us: u64) -> TimelineHandle {
        TimelineHandle(Arc::new(Mutex::new(TimelineRecorder::new(width_us))))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TimelineRecorder> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The configured window width in microseconds.
    pub fn width_us(&self) -> u64 {
        self.lock().width_us()
    }

    /// Counter add; see [`TimelineRecorder::add`].
    pub fn add(&self, name: &str, t_us: u64, v: f64) {
        self.lock().add(name, t_us, v);
    }

    /// Span-distributed counter add; see [`TimelineRecorder::add_span`].
    pub fn add_span(&self, name: &str, start_us: u64, end_us: u64, v: f64) {
        self.lock().add_span(name, start_us, end_us, v);
    }

    /// Gauge sample; see [`TimelineRecorder::sample`].
    pub fn sample(&self, name: &str, t_us: u64, v: f64) {
        self.lock().sample(name, t_us, v);
    }

    /// Quantile observation; see [`TimelineRecorder::observe`].
    pub fn observe(&self, name: &str, t_us: u64, v: f64) {
        self.lock().observe(name, t_us, v);
    }

    /// Folds another handle's recorder into this one (no-op on self).
    pub fn absorb(&self, other: &TimelineHandle) {
        if Arc::ptr_eq(&self.0, &other.0) {
            return;
        }
        let theirs = other.lock().clone();
        self.lock().absorb(&theirs);
    }

    /// Canonical JSON of the recorder so far.
    pub fn to_json(&self) -> String {
        self.lock().to_json()
    }

    /// CSV of the recorder so far.
    pub fn to_csv(&self) -> String {
        self.lock().to_csv()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

// ---------------------------------------------------------------------------
// Parsed timeline documents (the offline side of the recorder).
// ---------------------------------------------------------------------------

/// A parsed `timeline.json`: what `gvc timeline report|csv|check`
/// operate on.
#[derive(Debug, Clone)]
pub struct TimelineDoc {
    /// Window width in microseconds.
    pub width_us: u64,
    /// Every series, in file order (the emitter sorts by name).
    pub series: Vec<SeriesDoc>,
}

/// One parsed series.
#[derive(Debug, Clone)]
pub struct SeriesDoc {
    /// Full series name, possibly `base[instance]`.
    pub name: String,
    /// `counter` | `gauge` | `quantile`.
    pub kind: String,
    /// Windows in ascending `w` order.
    pub windows: Vec<WindowDoc>,
}

impl SeriesDoc {
    /// The name with any `[instance]` suffix stripped.
    pub fn base_name(&self) -> &str {
        self.name.split('[').next().unwrap_or(&self.name)
    }
}

/// One parsed window: the window index plus its numeric fields
/// (`value`, `mean`, `max`, `n`, `p50`, …); JSON `null`s are absent.
#[derive(Debug, Clone)]
pub struct WindowDoc {
    /// Window index.
    pub w: u64,
    /// Numeric fields by key.
    pub fields: Vec<(String, f64)>,
}

impl WindowDoc {
    /// Field value by key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

impl TimelineDoc {
    /// Parses the canonical timeline JSON back into a document.
    pub fn parse(text: &str) -> Result<TimelineDoc, String> {
        let v = JsonParser { b: text.as_bytes(), at: 0 }.parse()?;
        let Json::Obj(top) = v else { return Err("timeline: top level is not an object".into()) };
        let width_us = match find(&top, "width_us") {
            Some(Json::Num(n)) if *n >= 1.0 => *n as u64,
            _ => return Err("timeline: missing or invalid width_us".into()),
        };
        let Some(Json::Arr(series_v)) = find(&top, "series") else {
            return Err("timeline: missing series array".into());
        };
        let mut series = Vec::with_capacity(series_v.len());
        for sv in series_v {
            let Json::Obj(s) = sv else {
                return Err("timeline: series entry not an object".into());
            };
            let name = match find(s, "name") {
                Some(Json::Str(n)) => n.clone(),
                _ => return Err("timeline: series without a name".into()),
            };
            let kind = match find(s, "kind") {
                Some(Json::Str(k)) => k.clone(),
                _ => return Err(format!("timeline: series {name:?} without a kind")),
            };
            let mut windows = Vec::new();
            if let Some(Json::Arr(ws)) = find(s, "windows") {
                for wv in ws {
                    let Json::Obj(fields) = wv else {
                        return Err(format!("timeline: window of {name:?} not an object"));
                    };
                    let w = match find(fields, "w") {
                        Some(Json::Num(n)) if *n >= 0.0 => *n as u64,
                        _ => return Err(format!("timeline: window of {name:?} without w")),
                    };
                    let nums = fields
                        .iter()
                        .filter(|(k, _)| k != "w")
                        .filter_map(|(k, v)| match v {
                            Json::Num(n) => Some((k.clone(), *n)),
                            _ => None,
                        })
                        .collect();
                    windows.push(WindowDoc { w, fields: nums });
                }
            }
            series.push(SeriesDoc { name, kind, windows });
        }
        Ok(TimelineDoc { width_us, series })
    }
}

fn find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Minimal recursive JSON value — just enough for timeline documents.
#[derive(Debug, Clone)]
enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// A small recursive-descent JSON parser (std-only; the trace-side
/// parser in [`crate::analyze`] is line-oriented and flat, timeline
/// documents are nested).
struct JsonParser<'a> {
    b: &'a [u8],
    at: usize,
}

impl JsonParser<'_> {
    fn parse(mut self) -> Result<Json, String> {
        let v = self.value(0)?;
        self.skip_ws();
        if self.at != self.b.len() {
            return Err(format!("timeline json: trailing bytes at {}", self.at));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.b.get(self.at).is_some_and(u8::is_ascii_whitespace) {
            self.at += 1;
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 32 {
            return Err("timeline json: nesting too deep".into());
        }
        self.skip_ws();
        match self.b.get(self.at) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("timeline json: unexpected end".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("timeline json: bad literal at {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while self
            .b
            .get(self.at)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.at]).map_err(|e| e.to_string())?;
        s.parse::<f64>().map(Json::Num).map_err(|_| format!("timeline json: bad number `{s}`"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.at += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.b.get(self.at) {
                None => return Err("timeline json: unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.b.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(&c) => out.push(c as char),
                        None => return Err("timeline json: bad escape".into()),
                    }
                    self.at += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.at += 1;
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.at += 1; // '{'
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            if self.b.get(self.at) != Some(&b'"') {
                return Err(format!("timeline json: expected key at {}", self.at));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.b.get(self.at) != Some(&b':') {
                return Err(format!("timeline json: expected ':' at {}", self.at));
            }
            self.at += 1;
            let v = self.value(depth + 1)?;
            out.push((key, v));
            self.skip_ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("timeline json: expected ',' or '}}' at {}", self.at)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.at += 1; // '['
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("timeline json: expected ',' or ']' at {}", self.at)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SLO burn rules.
// ---------------------------------------------------------------------------

/// Which per-window statistic a rule tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// Counter window value.
    Value,
    /// Gauge window mean.
    Mean,
    /// Gauge window max.
    Max,
    /// Sample count.
    N,
    /// Quantile p50.
    P50,
    /// Quantile p90.
    P90,
    /// Quantile p99.
    P99,
    /// The kind's default: `value` / `max` / `p99`.
    Default,
}

impl Stat {
    fn key_for(self, kind: &str) -> &'static str {
        match self {
            Stat::Value => "value",
            Stat::Mean => "mean",
            Stat::Max => "max",
            Stat::N => "n",
            Stat::P50 => "p50",
            Stat::P90 => "p90",
            Stat::P99 => "p99",
            Stat::Default => match kind {
                "gauge" => "max",
                "quantile" => "p99",
                _ => "value",
            },
        }
    }
}

/// Rule comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl Cmp {
    fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Le => lhs <= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Gt => lhs > rhs,
        }
    }

    fn token(self) -> &'static str {
        match self {
            Cmp::Le => "<=",
            Cmp::Lt => "<",
            Cmp::Ge => ">=",
            Cmp::Gt => ">",
        }
    }
}

/// One declarative SLO burn rule.
///
/// Grammar (one rule per line; `#` comments and blank lines skipped):
///
/// ```text
/// <series>[_<stat>] <cmp> <bound>[<unit>] [@<pct>%-of-windows]
/// ```
///
/// * `<series>` matches a timeline series by full name, base name
///   (instance suffix stripped), or the last dot-segment of the base
///   name — `vc_setup` matches `driver.vc_setup`, `link_util` matches
///   every `net.link_util[…]` instance;
/// * `<stat>` is one of `p50|p90|p99|mean|max|n|value` (default:
///   `value` for counters, `max` for gauges, `p99` for quantiles);
/// * `<cmp>` is `<=`, `<`, `>=`, or `>`;
/// * `<unit>` is an optional `s`, `ms`, or `us` suffix normalizing
///   the bound to seconds;
/// * `@<pct>%-of-windows` requires only that share of windows to
///   satisfy the comparison (default 100 — every window).
#[derive(Debug, Clone)]
pub struct SloRule {
    /// The rule as written (for reporting).
    pub raw: String,
    /// Series reference (name, base name, or last segment).
    pub series: String,
    /// The statistic tested per window.
    pub stat: Stat,
    /// Comparator.
    pub cmp: Cmp,
    /// Bound, unit-normalized.
    pub bound: f64,
    /// Minimum percentage of windows that must satisfy the rule.
    pub min_pct: f64,
}

/// Outcome of one rule against one matched series.
#[derive(Debug, Clone)]
pub struct SloOutcome {
    /// The rule as written.
    pub rule: String,
    /// The matched series name (or the unmatched reference).
    pub series: String,
    /// Windows evaluated.
    pub windows: u64,
    /// Windows satisfying the comparison.
    pub passing: u64,
    /// Required percentage of passing windows.
    pub required_pct: f64,
    /// Whether the rule held.
    pub pass: bool,
    /// Human-readable verdict detail.
    pub detail: String,
}

/// Parses an SLO rule file (one rule per line).
pub fn parse_rules(text: &str) -> Result<Vec<SloRule>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_rule(line).map_err(|e| format!("rule line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Parses a single rule; see [`SloRule`] for the grammar.
pub fn parse_rule(line: &str) -> Result<SloRule, String> {
    let raw = line.to_string();
    let compact: String = line.chars().filter(|c| !c.is_whitespace()).collect();
    let (cmp, at) = ["<=", ">=", "<", ">"]
        .iter()
        .filter_map(|t| compact.find(t).map(|i| (*t, i)))
        .min_by_key(|&(_, i)| i)
        .ok_or_else(|| format!("no comparator in {line:?} (want <=, <, >=, >)"))?;
    let cmp_val = match cmp {
        "<=" => Cmp::Le,
        ">=" => Cmp::Ge,
        "<" => Cmp::Lt,
        _ => Cmp::Gt,
    };
    let lhs = compact.get(..at).unwrap_or_default();
    let rhs = compact.get(at + cmp.len()..).unwrap_or_default();
    if lhs.is_empty() {
        return Err(format!("missing series in {line:?}"));
    }
    let (series, stat) = split_stat(lhs);
    let (value_part, pct_part) = match rhs.split_once('@') {
        Some((v, p)) => (v, Some(p)),
        None => (rhs, None),
    };
    let bound = parse_bound(value_part)?;
    let min_pct = match pct_part {
        None => 100.0,
        Some(p) => {
            let digits = p
                .strip_suffix("%-of-windows")
                .ok_or_else(|| format!("bad window clause {p:?} (want @95%-of-windows)"))?;
            let pct: f64 =
                digits.parse().map_err(|_| format!("bad percentage {digits:?} in {line:?}"))?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(format!("percentage {pct} out of range in {line:?}"));
            }
            pct
        }
    };
    Ok(SloRule { raw, series, stat, cmp: cmp_val, bound, min_pct })
}

fn split_stat(lhs: &str) -> (String, Stat) {
    for (suffix, stat) in [
        ("_p50", Stat::P50),
        ("_p90", Stat::P90),
        ("_p99", Stat::P99),
        ("_mean", Stat::Mean),
        ("_max", Stat::Max),
        ("_value", Stat::Value),
        ("_n", Stat::N),
    ] {
        if let Some(base) = lhs.strip_suffix(suffix) {
            if !base.is_empty() {
                return (base.to_string(), stat);
            }
        }
    }
    (lhs.to_string(), Stat::Default)
}

fn parse_bound(s: &str) -> Result<f64, String> {
    for (suffix, scale) in [("us", 1e-6), ("ms", 1e-3), ("s", 1.0)] {
        if let Some(digits) = s.strip_suffix(suffix) {
            if digits.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '.') {
                return digits
                    .parse::<f64>()
                    .map(|v| v * scale)
                    .map_err(|_| format!("bad bound {s:?}"));
            }
        }
    }
    s.parse::<f64>().map_err(|_| format!("bad bound {s:?}"))
}

/// True when `rule_series` refers to the series named `name`.
fn rule_matches(rule_series: &str, name: &str) -> bool {
    let base = name.split('[').next().unwrap_or(name);
    if name == rule_series || base == rule_series {
        return true;
    }
    base.rsplit('.').next().is_some_and(|seg| seg == rule_series)
}

/// Evaluates every rule against every matching series of the
/// document. A rule that matches no series yields a failing outcome —
/// an unverifiable SLO must not pass silently.
pub fn check_rules(doc: &TimelineDoc, rules: &[SloRule]) -> Vec<SloOutcome> {
    let mut out = Vec::new();
    for rule in rules {
        let mut matched = false;
        for s in &doc.series {
            if !rule_matches(&rule.series, &s.name) {
                continue;
            }
            matched = true;
            let key = rule.stat.key_for(&s.kind);
            let total = s.windows.len() as u64;
            let passing = s
                .windows
                .iter()
                .filter(|w| w.get(key).is_some_and(|v| rule.cmp.eval(v, rule.bound)))
                .count() as u64;
            let pct = if total > 0 { passing as f64 / total as f64 * 100.0 } else { 0.0 };
            let pass = total > 0 && pct >= rule.min_pct;
            out.push(SloOutcome {
                rule: rule.raw.clone(),
                series: s.name.clone(),
                windows: total,
                passing,
                required_pct: rule.min_pct,
                pass,
                detail: format!(
                    "{passing}/{total} windows have {key} {} {} (need {}%)",
                    rule.cmp.token(),
                    num(rule.bound),
                    num(rule.min_pct)
                ),
            });
        }
        if !matched {
            out.push(SloOutcome {
                rule: rule.raw.clone(),
                series: rule.series.clone(),
                windows: 0,
                passing: 0,
                required_pct: rule.min_pct,
                pass: false,
                detail: format!("no timeline series matches {:?}", rule.series),
            });
        }
    }
    out
}

/// Renders `values` as a unicode sparkline (shared by `gvc timeline
/// report`); non-finite values render as spaces.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in &finite {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                ' '
            } else if hi <= lo {
                // All-equal series render as a flat mid-height bar.
                '▄'
            } else {
                let idx = (((v - lo) / (hi - lo)) * 7.0).round() as usize;
                BLOCKS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_windows_and_span_distribution() {
        let mut r = TimelineRecorder::new(10_000_000); // 10 s windows
        r.add("driver.transfers", 1_000_000, 1.0);
        r.add("driver.transfers", 9_999_999, 1.0);
        r.add("driver.transfers", 10_000_000, 1.0);
        // A 20 s span worth 2.0 split evenly across two windows.
        r.add_span("net.link_util[a->b]", 0, 20_000_000, 2.0);
        let json = r.to_json();
        assert!(json.contains("\"name\": \"driver.transfers\""), "{json}");
        assert!(json.contains("{\"w\": 0, \"t_s\": 0, \"value\": 2}"), "{json}");
        assert!(json.contains("{\"w\": 1, \"t_s\": 10, \"value\": 1}"), "{json}");
        assert!(json.contains("\"net.link_util[a->b]\""), "{json}");
        assert!(json.contains("\"value\": 1},"), "{json}");
    }

    #[test]
    fn gauge_and_quantile_cells_render() {
        let mut r = TimelineRecorder::new(DEFAULT_WIDTH_US);
        r.sample("oscars.open_reservations", 0, 1.0);
        r.sample("oscars.open_reservations", 1, 3.0);
        for _ in 0..100 {
            r.observe("driver.vc_setup", 0, 60.0);
        }
        let json = r.to_json();
        assert!(json.contains("\"mean\": 2, \"max\": 3, \"n\": 2"), "{json}");
        assert!(json.contains("\"n\": 100"), "{json}");
        // p99 of all-60s samples brackets 60 from above within one
        // geometric bucket.
        let doc = TimelineDoc::parse(&json).expect("parse");
        let vc = doc.series.iter().find(|s| s.name == "driver.vc_setup").expect("series");
        let p99 = vc.windows.first().and_then(|w| w.get("p99")).expect("p99");
        assert!((60.0..=60.0 * HIST_GROWTH).contains(&p99), "{p99}");
    }

    #[test]
    fn absorb_is_order_independent_and_matches_serial() {
        let build = |pairs: &[(u64, f64)]| {
            let mut r = TimelineRecorder::new(DEFAULT_WIDTH_US);
            for &(t, v) in pairs {
                r.add("kernel.dispatched", t, v);
                r.sample("oscars.open_reservations", t, v);
                r.observe("driver.vc_setup", t, v);
            }
            r
        };
        let a = build(&[(0, 1.0), (40_000_000, 2.0)]);
        let b = build(&[(10, 3.0), (70_000_000, 4.0)]);
        let serial = build(&[(0, 1.0), (40_000_000, 2.0), (10, 3.0), (70_000_000, 4.0)]);

        let mut ab = TimelineRecorder::new(DEFAULT_WIDTH_US);
        ab.absorb(&a);
        ab.absorb(&b);
        let mut ba = TimelineRecorder::new(DEFAULT_WIDTH_US);
        ba.absorb(&b);
        ba.absorb(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        // Counter and quantile cells match the serial interleaving
        // exactly; gauge sums here are exact dyadics too.
        assert_eq!(ab.to_json(), serial.to_json());
        assert_eq!(ab.to_csv(), serial.to_csv());
    }

    #[test]
    fn derived_depth_series_from_counters() {
        let mut r = TimelineRecorder::new(10_000_000);
        r.add(series::KERNEL_SCHEDULED, 0, 5.0);
        r.add(series::KERNEL_DISPATCHED, 0, 3.0);
        r.add(series::KERNEL_DISPATCHED, 10_000_000, 2.0);
        let json = r.to_json();
        assert!(json.contains("\"name\": \"kernel.queue_depth\""), "{json}");
        let doc = TimelineDoc::parse(&json).expect("parse");
        let depth = doc.series.iter().find(|s| s.name == "kernel.queue_depth").expect("derived");
        let vals: Vec<f64> = depth.windows.iter().filter_map(|w| w.get("max")).collect();
        assert_eq!(vals, vec![2.0, 0.0]);
    }

    #[test]
    fn json_round_trips_through_doc_parser() {
        let mut r = TimelineRecorder::new(DEFAULT_WIDTH_US);
        r.add("driver.transfers", 0, 2.0);
        r.add("driver.transfers", 31_000_000, 1.0);
        r.sample("oscars.reserved_bps", 0, 2e9);
        let doc = TimelineDoc::parse(&r.to_json()).expect("parse");
        assert_eq!(doc.width_us, DEFAULT_WIDTH_US);
        assert_eq!(doc.series.len(), 2);
        let t = doc.series.iter().find(|s| s.name == "driver.transfers").expect("series");
        assert_eq!(t.kind, "counter");
        assert_eq!(t.windows.len(), 2);
        assert_eq!(t.windows.first().and_then(|w| w.get("value")), Some(2.0));
    }

    #[test]
    fn slo_rule_grammar() {
        let r = parse_rule("vc_setup_p99<=5s@95%-of-windows").expect("parse");
        assert_eq!(r.series, "vc_setup");
        assert_eq!(r.stat, Stat::P99);
        assert_eq!(r.cmp, Cmp::Le);
        assert!((r.bound - 5.0).abs() < 1e-12);
        assert!((r.min_pct - 95.0).abs() < 1e-12);

        let r = parse_rule("link_util <= 0.9").expect("parse");
        assert_eq!(r.series, "link_util");
        assert_eq!(r.stat, Stat::Default);
        assert!((r.min_pct - 100.0).abs() < 1e-12);

        let r = parse_rule("driver.retries>=1").expect("parse");
        assert_eq!(r.series, "driver.retries");
        assert_eq!(r.cmp, Cmp::Ge);

        let r = parse_rule("vc_setup_p50<=250ms").expect("parse");
        assert!((r.bound - 0.25).abs() < 1e-12);

        assert!(parse_rule("no comparator here").is_err());
        assert!(parse_rule("x<=5s@95%-of-fortnights").is_err());
        assert!(parse_rule("<=5").is_err());
        let rules = parse_rules("# comment\n\nlink_util<=0.9\nretries<=0\n").expect("file");
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn check_rules_pass_fail_and_unmatched() {
        let mut r = TimelineRecorder::new(10_000_000);
        r.add("net.link_util[a->b]", 0, 0.5);
        r.add("net.link_util[a->b]", 10_000_000, 0.95);
        let doc = TimelineDoc::parse(&r.to_json()).expect("parse");

        // 100% required: the 0.95 window breaches.
        let rules = parse_rules("link_util<=0.9").expect("rules");
        let out = check_rules(&doc, &rules);
        assert_eq!(out.len(), 1);
        assert!(!out.first().is_none_or(|o| o.pass), "{out:?}");

        // 50%-of-windows: one of two suffices.
        let rules = parse_rules("link_util<=0.9@50%-of-windows").expect("rules");
        assert!(check_rules(&doc, &rules).iter().all(|o| o.pass));

        // Unmatched series reference fails loudly.
        let rules = parse_rules("nonexistent<=1").expect("rules");
        let out = check_rules(&doc, &rules);
        assert!(out.iter().all(|o| !o.pass));
        assert!(out.iter().any(|o| o.detail.contains("no timeline series")), "{out:?}");
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[0.0, 7.0]), "▁█");
        assert_eq!(sparkline(&[1.0, 1.0]), "▄▄");
        assert_eq!(sparkline(&[f64::NAN, 1.0, 2.0]), " ▁█");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn handle_absorb_self_is_noop_and_kind_conflicts_drop() {
        let h = TimelineHandle::new(DEFAULT_WIDTH_US);
        h.add("x.count", 0, 1.0);
        h.absorb(&h.clone());
        assert!(h.to_json().contains("\"value\": 1"));
        // Kind conflict: the gauge op on an existing counter is dropped.
        h.sample("x.count", 0, 9.0);
        assert!(h.to_json().contains("\"value\": 1"));
    }
}
